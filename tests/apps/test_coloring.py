"""Tests for MIS-based proper hypergraph coloring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.coloring import Coloring, color_by_mis, is_proper_coloring
from repro.core import beame_luby, karp_upfal_wigderson
from repro.generators import (
    complete_uniform,
    matching_hypergraph,
    sparse_random_graph,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph


class TestColorByMis:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_is_proper(self, seed):
        H = uniform_hypergraph(60, 120, 3, seed=seed)
        col = color_by_mis(H, seed=seed)
        assert is_proper_coloring(H, col.colors)

    def test_matching_two_colors(self):
        # disjoint 3-blocks: class 1 takes 2 per block, class 2 the rest
        H = matching_hypergraph(5, 3)
        col = color_by_mis(H, seed=0)
        assert col.num_colors == 2
        assert is_proper_coloring(H, col.colors)

    def test_edgeless_one_color(self):
        H = Hypergraph(6)
        col = color_by_mis(H, seed=0)
        assert col.num_colors == 1
        assert (col.colors[:6] == 0).all()

    def test_complete_uniform_color_count(self):
        # K_9^(3): each class has ≤ 2 vertices → ≥ ⌈9/2⌉ = 5 classes
        H = complete_uniform(9, 3)
        col = color_by_mis(H, seed=1)
        assert is_proper_coloring(H, col.colors)
        assert col.num_colors == 5

    def test_graph_case(self):
        G = sparse_random_graph(80, 5.0, seed=0)
        col = color_by_mis(G, seed=0)
        assert is_proper_coloring(G, col.colors)
        # MIS coloring of a graph uses at most maxdeg+1 colors
        assert col.num_colors <= G.max_degree() + 1

    def test_classes_partition_vertices(self):
        H = uniform_hypergraph(40, 60, 3, seed=2)
        col = color_by_mis(H, seed=2)
        allv = np.sort(np.concatenate(col.classes))
        assert np.array_equal(allv, H.vertices)

    def test_parallel_algorithms_work_too(self):
        H = uniform_hypergraph(40, 60, 3, seed=3)
        for algo in (beame_luby, karp_upfal_wigderson):
            col = color_by_mis(H, seed=3, algorithm=algo)
            assert is_proper_coloring(H, col.colors)

    def test_singleton_edge_rejected(self):
        H = Hypergraph(3, [(0,), (1, 2)])
        with pytest.raises(ValueError, match="size-1"):
            color_by_mis(H, seed=0)

    def test_max_colors_guard(self):
        H = complete_uniform(8, 2)  # clique: needs 8 colors
        with pytest.raises(RuntimeError, match="colors"):
            color_by_mis(H, seed=0, max_colors=3)

    def test_class_of_bounds(self):
        H = Hypergraph(4, [(0, 1)])
        col = color_by_mis(H, seed=0)
        with pytest.raises(IndexError):
            col.class_of(col.num_colors)

    def test_deterministic(self):
        H = uniform_hypergraph(30, 50, 3, seed=0)
        a = color_by_mis(H, seed=9)
        b = color_by_mis(H, seed=9)
        assert np.array_equal(a.colors, b.colors)


class TestIsProper:
    def test_detects_monochromatic_edge(self, triangle):
        colors = np.zeros(3, dtype=np.intp)  # all same color on a triangle
        assert not is_proper_coloring(triangle, colors)

    def test_accepts_proper(self, triangle):
        colors = np.array([0, 1, 2], dtype=np.intp)
        assert is_proper_coloring(triangle, colors)

    def test_uncolored_active_vertex_fails(self):
        H = Hypergraph(3, [(0, 1)])
        colors = np.array([0, 1, -1], dtype=np.intp)
        assert not is_proper_coloring(H, colors)

    def test_shape_checked(self, triangle):
        with pytest.raises(ValueError):
            is_proper_coloring(triangle, np.zeros(5, dtype=np.intp))

    def test_size_one_edges_ignored_by_checker(self):
        H = Hypergraph(2, [(0,)])
        colors = np.array([0, 0], dtype=np.intp)
        assert is_proper_coloring(H, colors)
