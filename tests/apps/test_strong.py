"""Tests for strong independent sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.strong import (
    is_strong_independent,
    strong_independent_set,
    two_section_hypergraph,
)
from repro.generators import matching_hypergraph, uniform_hypergraph
from repro.hypergraph import Hypergraph, is_independent


class TestTwoSection:
    def test_pairs_of_each_edge(self):
        H = Hypergraph(5, [(0, 1, 2)])
        G = two_section_hypergraph(H)
        assert G.edges == ((0, 1), (0, 2), (1, 2))

    def test_shared_pairs_deduped(self):
        H = Hypergraph(5, [(0, 1, 2), (0, 1, 3)])
        G = two_section_hypergraph(H)
        assert (0, 1) in G.edges
        assert G.num_edges == 5

    def test_universe_and_vertices_preserved(self):
        H = Hypergraph(9, [(1, 2)], vertices=[1, 2, 5])
        G = two_section_hypergraph(H)
        assert G.universe == 9
        assert G.vertices.tolist() == [1, 2, 5]


class TestIsStrongIndependent:
    def test_basic(self):
        H = Hypergraph(5, [(0, 1, 2)])
        assert is_strong_independent(H, [0, 3])
        assert not is_strong_independent(H, [0, 1])

    def test_strong_implies_ordinary(self):
        H = uniform_hypergraph(30, 50, 3, seed=0)
        res = strong_independent_set(H, seed=0)
        assert is_strong_independent(H, res.independent_set)
        assert is_independent(H, res.independent_set)

    def test_ordinary_not_strong(self):
        H = Hypergraph(4, [(0, 1, 2)])
        # {0,1} ordinary-independent (edge not complete) but not strong
        assert is_independent(H, [0, 1])
        assert not is_strong_independent(H, [0, 1])


class TestStrongIndependentSet:
    @pytest.mark.parametrize("seed", range(3))
    def test_strong_and_maximal_on_two_section(self, seed):
        from repro.hypergraph import is_maximal_independent

        H = uniform_hypergraph(40, 60, 3, seed=seed)
        res = strong_independent_set(H, seed=seed)
        assert is_strong_independent(H, res.independent_set)
        G = two_section_hypergraph(H)
        assert is_maximal_independent(G, res.independent_set)

    def test_matching_picks_one_per_block(self):
        H = matching_hypergraph(4, 3)
        res = strong_independent_set(H, seed=0)
        assert res.size == 4  # exactly one vertex per disjoint block

    def test_smaller_than_ordinary_mis(self):
        from repro.core import greedy_mis

        H = uniform_hypergraph(60, 100, 3, seed=1)
        strong = strong_independent_set(H, seed=1).size
        ordinary = greedy_mis(H, seed=1).size
        assert strong < ordinary

    def test_deterministic(self):
        H = uniform_hypergraph(30, 50, 3, seed=2)
        a = strong_independent_set(H, seed=7)
        b = strong_independent_set(H, seed=7)
        assert np.array_equal(a.independent_set, b.independent_set)
