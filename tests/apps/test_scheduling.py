"""Tests for conflict-hypergraph batch scheduling."""

from __future__ import annotations

import pytest

from repro.apps.scheduling import (
    Job,
    Resource,
    build_conflict_hypergraph,
    plan_batches,
    verify_schedule,
)
from repro.core import karp_upfal_wigderson
from repro.hypergraph import check_mis
from repro.util.rng import as_generator


def toy_workload():
    resources = [Resource("gpu", 2), Resource("db", 1)]
    jobs = [
        Job("a", ("gpu",)),
        Job("b", ("gpu",)),
        Job("c", ("gpu", "db")),
        Job("d", ("db",)),
        Job("e", ()),
    ]
    return jobs, resources


def random_workload(num_jobs: int, num_resources: int, seed: int):
    rng = as_generator(seed)
    resources = [
        Resource(f"r{i}", int(rng.integers(1, 4))) for i in range(num_resources)
    ]
    jobs = []
    for j in range(num_jobs):
        needs = tuple(
            r.name for r in resources if rng.random() < 0.15
        )
        jobs.append(Job(f"job{j}", needs))
    return jobs, resources


class TestConflictHypergraph:
    def test_toy_edges(self):
        jobs, resources = toy_workload()
        H = build_conflict_hypergraph(jobs, resources)
        # gpu (cap 2, consumers a,b,c): one 3-edge; db (cap 1, consumers
        # c,d): one 2-edge.
        assert set(H.edges) == {(0, 1, 2), (2, 3)}

    def test_under_capacity_resource_contributes_nothing(self):
        jobs = [Job("a", ("r",)), Job("b", ())]
        H = build_conflict_hypergraph(jobs, [Resource("r", 2)])
        assert H.num_edges == 0

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError, match="unknown resource"):
            build_conflict_hypergraph([Job("a", ("ghost",))], [Resource("r", 1)])

    def test_blowup_guard(self):
        jobs = [Job(f"j{i}", ("r",)) for i in range(40)]
        with pytest.raises(ValueError, match="shard"):
            build_conflict_hypergraph(jobs, [Resource("r", 1)],
                                      max_edges_per_resource=100)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource("r", 0)

    def test_mis_is_maximal_batch(self):
        jobs, resources = random_workload(40, 8, seed=0)
        H = build_conflict_hypergraph(jobs, resources)
        res = karp_upfal_wigderson(H, seed=0)
        check_mis(H, res.independent_set)


class TestPlanBatches:
    def test_toy_schedule_valid(self):
        jobs, resources = toy_workload()
        schedule = plan_batches(jobs, resources, seed=0)
        verify_schedule(schedule, jobs, resources)
        # job e (no needs) runs in the first batch (maximality)
        assert 4 in schedule.batches[0]

    @pytest.mark.parametrize("seed", range(3))
    def test_random_schedules_valid(self, seed):
        jobs, resources = random_workload(60, 10, seed=seed)
        schedule = plan_batches(jobs, resources, seed=seed)
        verify_schedule(schedule, jobs, resources)

    def test_every_batch_maximal(self):
        """No job can be moved to an earlier batch without oversubscription.

        This is exactly the MIS maximality of each extracted batch, checked
        directly against the resource capacities.
        """
        jobs, resources = random_workload(40, 8, seed=1)
        res_map = {r.name: r for r in resources}
        schedule = plan_batches(jobs, resources, seed=1)
        verify_schedule(schedule, jobs, resources)

        def oversubscribed(batch: list[int]) -> bool:
            usage: dict[str, int] = {}
            for i in batch:
                for need in jobs[i].needs:
                    usage[need] = usage.get(need, 0) + 1
            return any(used > res_map[name].capacity for name, used in usage.items())

        for t, batch in enumerate(schedule.batches[1:], start=1):
            for i in batch:
                for earlier in range(t):
                    assert oversubscribed(schedule.batches[earlier] + [i]), (
                        f"job {i} (batch {t}) fits into earlier batch {earlier}"
                    )

    def test_slot_of(self):
        jobs, resources = toy_workload()
        schedule = plan_batches(jobs, resources, seed=0)
        for i in range(len(jobs)):
            assert 0 <= schedule.slot_of(i) < schedule.num_batches
        with pytest.raises(KeyError):
            schedule.slot_of(99)

    def test_parallel_algorithm_plumbs_through(self):
        jobs, resources = random_workload(40, 8, seed=2)
        schedule = plan_batches(
            jobs, resources, seed=2, algorithm=karp_upfal_wigderson
        )
        verify_schedule(schedule, jobs, resources)


class TestVerifySchedule:
    def test_detects_double_scheduling(self):
        jobs, resources = toy_workload()
        from repro.apps.scheduling import Schedule

        bad = Schedule(batches=[[0, 1], [1, 2, 3, 4]])
        with pytest.raises(AssertionError, match="twice"):
            verify_schedule(bad, jobs, resources)

    def test_detects_oversubscription(self):
        jobs, resources = toy_workload()
        from repro.apps.scheduling import Schedule

        bad = Schedule(batches=[[0, 1, 2, 3, 4]])  # gpu gets 3 > 2
        with pytest.raises(AssertionError, match="oversubscribed"):
            verify_schedule(bad, jobs, resources)

    def test_detects_missing_jobs(self):
        jobs, resources = toy_workload()
        from repro.apps.scheduling import Schedule

        bad = Schedule(batches=[[0, 1]])
        with pytest.raises(AssertionError, match="unscheduled"):
            verify_schedule(bad, jobs, resources)
