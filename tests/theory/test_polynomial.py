"""Tests for the migration polynomial S(H′, w′, p) / D(H′, w′, p)."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.generators import sunflower, uniform_hypergraph
from repro.hypergraph import Delta_i, Hypergraph
from repro.hypergraph.degrees import degree_profile
from repro.theory.polynomial import (
    D_value,
    WeightedHypergraph,
    migration_polynomial,
    partial_expectation,
    sample_S,
)


class TestConstruction:
    def test_sunflower_weights(self):
        # sunflower core {0,1}, 4 petals of size 2: edges {0,1,a,b}.
        H = sunflower(2, 4, 2)
        # X = core, j=1, k=2: Y are 1-subsets of each petal; each Y is in
        # exactly one Z (petals disjoint) → weight 1 each, 8 edges.
        W = migration_polynomial(H, [0, 1], 1, 2)
        assert W.num_edges == 8
        assert all(w == 1.0 for w in W.weights.values())
        assert W.dimension == 1

    def test_overlapping_Z_weights_add(self):
        # two edges around X={0} sharing vertex 3: Z's {1,3} and {2,3}
        H = Hypergraph(5, [(0, 1, 3), (0, 2, 3)])
        W = migration_polynomial(H, [0], 1, 2)
        assert W.weights[(3,)] == 2.0
        assert W.weights[(1,)] == 1.0

    def test_k_minus_j_subset_sizes(self):
        H = uniform_hypergraph(12, 20, 4, seed=0)
        W = migration_polynomial(H, [H.edges[0][0]], 1, 3)
        assert all(len(Y) == 2 for Y in W.weights)

    def test_only_matching_edge_size_counted(self):
        H = Hypergraph(6, [(0, 1, 2), (0, 1, 2, 3)])
        # k=2 from X={0}: only the size-3 edge contributes
        W = migration_polynomial(H, [0], 1, 2)
        assert set(W.weights) == {(1,), (2,)}

    def test_empty_when_no_edges_around_X(self):
        H = Hypergraph(6, [(1, 2, 3)])
        W = migration_polynomial(H, [0], 1, 2)
        assert W.num_edges == 0
        assert W.total_weight() == 0.0

    def test_invalid_args(self):
        H = Hypergraph(4, [(0, 1, 2)])
        with pytest.raises(ValueError):
            migration_polynomial(H, [], 1, 2)
        with pytest.raises(ValueError):
            migration_polynomial(H, [0], 2, 2)


class TestPartialExpectation:
    def test_empty_x_is_expectation(self):
        W = WeightedHypergraph(5, {(1,): 2.0, (2, 3): 3.0})
        # E[S] = 2p + 3p²
        assert partial_expectation(W, 0.5) == pytest.approx(2 * 0.5 + 3 * 0.25)

    def test_conditioning_reduces_exponent(self):
        W = WeightedHypergraph(5, {(2, 3): 3.0})
        assert partial_expectation(W, 0.5, [2]) == pytest.approx(3 * 0.5)
        assert partial_expectation(W, 0.5, [2, 3]) == pytest.approx(3.0)

    def test_x_not_contained_contributes_zero(self):
        W = WeightedHypergraph(5, {(2, 3): 3.0})
        assert partial_expectation(W, 0.5, [4]) == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            partial_expectation(WeightedHypergraph(3, {}), 1.5)


class TestDValue:
    def test_at_least_expectation(self):
        H = uniform_hypergraph(14, 25, 4, seed=1)
        x0 = H.edges[0][0]
        W = migration_polynomial(H, [x0], 1, 3)
        p = 0.3
        assert D_value(W, p) >= partial_expectation(W, p) - 1e-12

    def test_bruteforce_small(self):
        W = WeightedHypergraph(4, {(0, 1): 1.0, (1, 2): 2.0, (2,): 1.0})
        p = 0.4
        candidates = [()]
        for Y in W.weights:
            for s in range(1, len(Y) + 1):
                candidates.extend(itertools.combinations(Y, s))
        expect = max(partial_expectation(W, p, x) for x in candidates)
        assert D_value(W, p) == pytest.approx(expect)

    def test_lemma4_bound(self):
        """Lemma 4: D(H′, w′, p) ≤ (Δ_{|X|+k}(H))^j at the BL probability."""
        rng = np.random.default_rng(0)
        for trial in range(5):
            H = uniform_hypergraph(16, 30, 4, seed=rng)
            prof = degree_profile(H)
            delta = prof.delta()
            d = H.dimension
            p = 1.0 / (2 ** (d + 1) * delta)
            for e in H.edges[:3]:
                X = [e[0]]
                for j, k in ((1, 2), (1, 3), (2, 3)):
                    W = migration_polynomial(H, X, j, k)
                    if W.num_edges == 0:
                        continue
                    bound = Delta_i(H, 1 + k, prof) ** j
                    assert D_value(W, p) <= bound + 1e-9


class TestSampling:
    def test_mean_matches_expectation(self):
        H = sunflower(2, 6, 2)
        W = migration_polynomial(H, [0, 1], 1, 2)
        p = 0.4
        draws = sample_S(W, p, trials=4000, seed=0)
        assert draws.mean() == pytest.approx(partial_expectation(W, p), rel=0.1)

    def test_extremes(self):
        H = sunflower(2, 3, 2)
        W = migration_polynomial(H, [0, 1], 1, 2)
        assert sample_S(W, 0.0, 10, seed=0).max() == 0.0
        assert sample_S(W, 1.0, 2, seed=0).min() == W.total_weight()

    def test_empty_polynomial(self):
        W = WeightedHypergraph(4, {})
        assert sample_S(W, 0.5, 5, seed=0).tolist() == [0.0] * 5

    def test_deterministic(self):
        H = sunflower(2, 5, 2)
        W = migration_polynomial(H, [0, 1], 1, 2)
        a = sample_S(W, 0.3, 50, seed=7)
        b = sample_S(W, 0.3, 50, seed=7)
        assert np.array_equal(a, b)

    def test_invalid(self):
        W = WeightedHypergraph(3, {})
        with pytest.raises(ValueError):
            sample_S(W, 0.5, 0)
        with pytest.raises(ValueError):
            sample_S(W, 2.0, 5)
