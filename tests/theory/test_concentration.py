"""Tests for the concentration bounds of §3 (Theorem 3) and §4."""

from __future__ import annotations

import math

import pytest

from repro.theory.concentration import (
    kelsen_corollary1_exponent,
    kelsen_migration_log_terms,
    kelsen_tail,
    kim_vu_tail,
    kim_vu_threshold_factor,
    kimvu_migration_log_terms,
    migration_bound,
    schudy_sviridenko_threshold_factor,
)


class TestKelsenTail:
    def test_log_k_formula(self):
        log2k, _ = kelsen_tail(n=2**16, m=100, d=3, delta=4.0)
        # k = ((log n + 2)·δ)^{2^{d−1}} = (18·4)^4
        assert log2k == pytest.approx(4 * math.log2(18 * 4))

    def test_probability_decreases_with_delta(self):
        _, p1 = kelsen_tail(2**16, 100, 3, delta=16.0)
        _, p2 = kelsen_tail(2**16, 100, 3, delta=256.0)
        assert p2 < p1

    def test_corollary1_regime(self):
        """δ = log²n makes the tail n^{−Θ(log n log log n)}-small."""
        n = 2**32
        delta = math.log2(n) ** 2
        log2k, log2p = kelsen_tail(n, 1000, 4, delta)
        # threshold below the Corollary 1 exponent
        assert log2k <= kelsen_corollary1_exponent(4) * math.log2(math.log2(n))
        # tail genuinely tiny
        assert log2p < -100

    def test_invalid(self):
        with pytest.raises(ValueError):
            kelsen_tail(2, 1, 1, 2.0)
        with pytest.raises(ValueError):
            kelsen_tail(100, 1, 0, 2.0)
        with pytest.raises(ValueError):
            kelsen_tail(100, 1, 1, 1.0)


class TestKimVu:
    def test_threshold_factor_formula(self):
        # degree 1: 1 + 8·λ
        assert kim_vu_threshold_factor(1, 3.0) == pytest.approx(1 + 8 * 3)

    def test_threshold_factor_degree2(self):
        # a_2 = 64·√2
        assert kim_vu_threshold_factor(2, 2.0) == pytest.approx(
            1 + 64 * math.sqrt(2) * 4
        )

    def test_tail_decreases_in_lambda(self):
        assert kim_vu_tail(100, 2, 50.0) < kim_vu_tail(100, 2, 10.0)

    def test_tail_clipped_to_one(self):
        assert kim_vu_tail(10**6, 3, 1.0) == 1.0

    def test_log2n_squared_lambda_kills_polynomial_factor(self):
        """λ = log²n beats the n^{k−1} factor (Corollary 4's choice)."""
        n = 2**20
        lam = math.log(n) ** 2
        assert kim_vu_tail(n, 3, lam) < 1e-20

    def test_invalid(self):
        with pytest.raises(ValueError):
            kim_vu_threshold_factor(0, 1.0)
        with pytest.raises(ValueError):
            kim_vu_threshold_factor(1, 0.0)
        with pytest.raises(ValueError):
            kim_vu_tail(10, 0, 1.0)


class TestSchudySviridenko:
    def test_smaller_constant_than_kim_vu_at_low_degree(self):
        # (√2·1)^1 = 1.41 < 8 = a_1(KV)
        assert schudy_sviridenko_threshold_factor(1, 2.0) < kim_vu_threshold_factor(
            1, 2.0
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            schudy_sviridenko_threshold_factor(0, 1.0)


class TestMigrationBounds:
    def setup_method(self):
        self.deltas = {3: 4.0, 4: 2.0, 5: 1.5}

    def test_kimvu_below_kelsen(self):
        n = 2**16
        for j in (2, 3):
            kv = migration_bound(n, j, self.deltas, variant="kimvu")
            kel = migration_bound(n, j, self.deltas, variant="kelsen")
            assert kv < kel

    def test_only_higher_k_contribute(self):
        n = 2**10
        # j = 4: only Δ_5 contributes
        expected = math.log2(n) ** 2 * 1.5
        assert migration_bound(n, 4, self.deltas, variant="kimvu") == pytest.approx(
            expected
        )

    def test_sequence_input_indexes_from_two(self):
        # sequence [Δ2, Δ3] ↦ {2: ·, 3: ·}
        n = 2**10
        bound = migration_bound(n, 2, [9.0, 4.0], variant="kimvu")
        assert bound == pytest.approx(math.log2(n) ** 2 * 4.0)

    def test_kelsen_exponents(self):
        n = 2**16
        terms = kelsen_migration_log_terms(n, 2, self.deltas)
        # k=3: exponent 2^{2} = 4 → 4·log2(log2 n) + log2 Δ_3 = 4·4 + 2
        assert terms[3] == pytest.approx(4 * 4 + 2.0)

    def test_kimvu_exponents(self):
        n = 2**16
        terms = kimvu_migration_log_terms(n, 2, self.deltas)
        # k=3: exponent 2(k−j)=2 → 2·log2(log2 n) + log2 Δ_3 = 2·4 + 2
        assert terms[3] == pytest.approx(2 * 4 + 2.0)

    def test_zero_delta_gives_neg_inf_term(self):
        terms = kimvu_migration_log_terms(2**10, 2, {3: 0.0})
        assert terms[3] == -math.inf

    def test_trivial_variant(self):
        n = 64
        assert migration_bound(n, 2, {3: 2.0}, variant="trivial") == pytest.approx(
            2.0 * n
        )

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            migration_bound(64, 2, {3: 1.0}, variant="magic")

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            migration_bound(64, 2, {3: -1.0})
