"""Tests for the §2.2 parameter formulas."""

from __future__ import annotations

import math

import pytest

from repro.theory.parameters import (
    chernoff_round_failure,
    oversize_edge_bound,
    round_bound,
    runtime_bound_log2,
    sbl_parameters,
)


class TestSBLParameters:
    def test_formula_consistency(self):
        prm = sbl_parameters(2**16)
        # log3(2^16) = log2(log2(16)) = 2 → α = 1/2
        assert prm.alpha == pytest.approx(0.5)
        assert prm.p == pytest.approx((2**16) ** -0.5)
        # β = log2(16) / (8·4) = 4/32
        assert prm.beta == pytest.approx(4 / 32)
        # d = 4/(4·2)
        assert prm.d == pytest.approx(0.5)

    def test_m_max(self):
        prm = sbl_parameters(2**16)
        assert prm.m_max == pytest.approx((2**16) ** prm.beta)

    def test_round_bound_relation(self):
        prm = sbl_parameters(4096)
        assert prm.r == pytest.approx(2 * math.log2(4096) / prm.p)

    def test_effective_clamps(self):
        prm = sbl_parameters(64)
        assert prm.effective_d >= 2
        assert 0 < prm.effective_p <= 0.5
        assert prm.effective_vertex_floor >= 4
        # floor derived from effective p
        assert prm.effective_vertex_floor == max(
            4, math.ceil(prm.effective_p**-2)
        )

    def test_custom_clamps(self):
        prm = sbl_parameters(64, p_cap=0.25, d_min=3, floor_min=10)
        assert prm.effective_p <= 0.25
        assert prm.effective_d >= 3
        assert prm.effective_vertex_floor >= 10

    def test_too_small_n(self):
        with pytest.raises(ValueError):
            sbl_parameters(1)

    def test_raw_p_in_range(self):
        for n in (16, 256, 2**20):
            prm = sbl_parameters(n)
            assert 0 < prm.p < 1

    def test_runtime_bound_method(self):
        prm = sbl_parameters(2**16)
        assert prm.runtime_bound_log2() == pytest.approx(runtime_bound_log2(2**16))


class TestBounds:
    def test_round_bound(self):
        assert round_bound(1024, 0.5) == pytest.approx(2 * 10 / 0.5)

    def test_round_bound_invalid_p(self):
        with pytest.raises(ValueError):
            round_bound(100, 0.0)

    def test_chernoff_decreasing_in_n(self):
        assert chernoff_round_failure(0.1, 1000) < chernoff_round_failure(0.1, 100)

    def test_chernoff_formula(self):
        assert chernoff_round_failure(0.2, 100) == pytest.approx(math.exp(-0.2 * 100 / 8))

    def test_chernoff_invalid(self):
        with pytest.raises(ValueError):
            chernoff_round_failure(0.0, 10)
        with pytest.raises(ValueError):
            chernoff_round_failure(0.5, -1)

    def test_oversize_bound_formula(self):
        assert oversize_edge_bound(10.0, 100, 0.5, 3) == pytest.approx(
            10 * 100 * 0.5**4
        )

    def test_oversize_bound_decreasing_in_d(self):
        assert oversize_edge_bound(1, 100, 0.3, 5) < oversize_edge_bound(1, 100, 0.3, 2)

    def test_runtime_bound_log2_formula(self):
        # n = 2^256: log3 = 3 → (2/3)·256
        assert runtime_bound_log2(2**256) == pytest.approx(2 / 3 * 256)

    def test_runtime_bound_beats_sqrt_asymptotically(self):
        """n^{2/log³n} < √n once log³n > 4 — the o(√n) claim's boundary."""
        # below the boundary: bound exceeds √n
        assert runtime_bound_log2(2**1024) > 1024 / 2
        # far above (log³ n > 4 needs log²n > 16, log n > 2^16):
        n_log2 = 2.0**20
        from repro.analysis.experiments import params_from_log2n

        prm = params_from_log2n(n_log2)
        assert prm["log2_runtime_bound"] < prm["log2_sqrt_n"]
