"""Tests for Kelsen's recurrences f / F and the stage counts."""

from __future__ import annotations

import math

import pytest

from repro.theory.recurrences import (
    F_original,
    F_paper,
    F_upper_bound,
    f_original,
    f_paper,
    factorial_bound,
    lambda_n,
    log2_q_j,
    log2_stage_bound,
    q_j,
)


class TestOriginal:
    def test_base_cases(self):
        assert F_original(1) == 0
        assert F_original(2) == 7
        assert f_original(2) == 7

    def test_recurrence_relation(self):
        for i in range(2, 10):
            assert F_original(i) == i * F_original(i - 1) + 7

    def test_f_matches_definition(self):
        # f(i) = (i−1)·Σ_{j=2}^{i−1} f(j) + 7 = (i−1)·F(i−1) + 7
        for i in range(3, 9):
            assert f_original(i) == (i - 1) * F_original(i - 1) + 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            F_original(0)
        with pytest.raises(ValueError):
            f_original(1)


class TestPaper:
    def test_base_cases(self):
        assert F_paper(1, 4) == 0
        assert F_paper(2, 4) == 16
        assert f_paper(2, 4) == 16

    def test_recurrence_relation(self):
        for d in (3, 5, 8):
            for i in range(2, 9):
                assert F_paper(i, d) == i * F_paper(i - 1, d) + d * d

    def test_f_matches_definition(self):
        for d in (3, 5):
            for i in range(3, 8):
                assert f_paper(i, d) == (i - 1) * F_paper(i - 1, d) + d * d

    def test_reduces_to_original_shape(self):
        """With the additive constant forced to 7 the recurrences coincide.

        (F_paper uses d², so compare the structural recursion instead.)
        """
        # F_paper with d²=9 vs a hand recursion with constant 9.
        val = 0
        for k in range(2, 7):
            val = k * val + 9
        assert F_paper(6, 3) == val

    def test_induction_upper_bound(self):
        """§3.1's closing induction: F(i) ≤ d²·(i+2)!"""
        for d in (3, 4, 6, 8):
            for i in range(1, 10):
                assert F_paper(i, d) <= F_upper_bound(i, d)

    def test_invalid(self):
        with pytest.raises(ValueError):
            F_paper(1, 1)
        with pytest.raises(ValueError):
            f_paper(1, 3)


class TestScalingBindings:
    def test_paper_scaling_matches_functions(self):
        from repro.theory.recurrences import paper_scaling

        f, F = paper_scaling(5)
        for i in range(2, 8):
            assert f(i) == f_paper(i, 5)
            assert F(i) == F_paper(i, 5)

    def test_original_scaling(self):
        from repro.theory.recurrences import original_scaling

        f, F = original_scaling()
        assert f(2) == 7 and F(3) == F_original(3)

    def test_paper_scaling_invalid_dimension(self):
        from repro.theory.recurrences import paper_scaling

        with pytest.raises(ValueError):
            paper_scaling(1)

    def test_binding_usable_by_potentials(self):
        from repro.generators import sunflower
        from repro.hypergraph.degrees import kelsen_potentials
        from repro.theory.recurrences import paper_scaling

        H = sunflower(2, 9, 2)
        f, F = paper_scaling(H.dimension)
        pots = kelsen_potentials(H, f, F)
        assert pots.v2() > 0


class TestDerived:
    def test_lambda_n(self):
        # λ(2^16) = 2·4/16
        assert lambda_n(2**16) == pytest.approx(0.5)

    def test_lambda_decreasing(self):
        assert lambda_n(2**32) < lambda_n(2**8)

    def test_q_j_log_formula(self):
        # q_2: F(1)=0 → exponent (0·1+2) = 2
        d, n = 3, 2**16
        expected = d * (d + 1) + math.log2(4) + 2 * math.log2(16)
        assert log2_q_j(2, d, n) == pytest.approx(expected)

    def test_q_j_variants_differ(self):
        assert log2_q_j(3, 4, 2**16, variant="paper") != log2_q_j(
            3, 4, 2**16, variant="original"
        )

    def test_q_j_monotone_in_j(self):
        vals = [log2_q_j(j, 5, 2**20) for j in (2, 3, 4, 5)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_q_j_invalid(self):
        with pytest.raises(ValueError):
            log2_q_j(1, 3, 100)
        with pytest.raises(ValueError):
            log2_q_j(2, 3, 100, variant="quantum")

    def test_q_j_plain_caps_overflow(self):
        assert q_j(5, 8, 2**30) == pytest.approx(2.0**1023)

    def test_factorial_bound(self):
        assert factorial_bound(3) == math.factorial(7)
        with pytest.raises(ValueError):
            factorial_bound(-1)

    def test_stage_bound_log(self):
        # (log n)^{(d+4)!} at n = 2^16, d=2: 720·log2(16)
        assert log2_stage_bound(2**16, 2) == pytest.approx(720 * 4)

    def test_stage_bound_dominates_q_d(self):
        """Theorem 2's closing step: log n · q_d ≤ (log n)^{(d+4)!}."""
        for d in (3, 4, 5):
            n = 2**32
            lhs = math.log2(math.log2(n)) + log2_q_j(d, d, n)
            assert lhs <= log2_stage_bound(n, d)
