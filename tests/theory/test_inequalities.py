"""Tests for the §3.1 / §4.1 inequality predicates."""

from __future__ import annotations

import math

import pytest

from repro.theory.inequalities import (
    claim_inequality,
    claim_lhs_log2,
    claim_rhs_log2,
    dimension_cap,
    dimension_inequality,
    f_necessity_holds,
    lemma6_exponent,
    lemma6_holds,
    original_f_claim_sides,
)
from repro.theory.recurrences import F_original, F_paper


class TestLemma6Exponent:
    def test_paper_form_at_k_eq_j_plus_1(self):
        """With the d² recurrence, the k=j+1 exponent equals 6 − d²."""
        for d in (3, 4, 6):
            F = lambda i, _d=d: F_paper(i, _d)
            for j in range(2, d):
                assert lemma6_exponent(j + 1, j, d, F) == 6 - d * d

    def test_original_form_at_k_eq_j_plus_1(self):
        """With Kelsen's original recurrence, the k=j+1 exponent is −1."""
        for j in (2, 3, 4):
            assert lemma6_exponent(j + 1, j, 5, F_original) == -1

    def test_decreasing_in_k(self):
        d = 6
        F = lambda i: F_paper(i, d)
        for j in (2, 3):
            vals = [lemma6_exponent(k, j, d, F) for k in range(j + 1, d + 1)]
            assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_invalid(self):
        F = lambda i: 0
        with pytest.raises(ValueError):
            lemma6_exponent(2, 2, 3, F)
        with pytest.raises(ValueError):
            lemma6_exponent(3, 1, 3, F)


class TestLemma6:
    def test_holds_for_paper_recurrence(self):
        for d in (4, 5, 6, 8, 10):
            assert lemma6_holds(d, lambda i, _d=d: F_paper(i, _d))

    def test_bound_is_tight_only_beyond_j_plus_1(self):
        """Lemma 6 bounds k > j+1 terms by 6 − d²; the k=j+1 term equals it."""
        d = 6
        F = lambda i: F_paper(i, d)
        for j in range(2, d - 1):
            for k in range(j + 2, d + 1):
                assert lemma6_exponent(k, j, d, F) <= 6 - d * d


class TestClaimInequality:
    def test_paper_variant_holds_at_large_n(self):
        for d in (3, 4, 5):
            F = lambda i, _d=d: F_paper(i, _d)
            lhs, rhs, holds = claim_inequality(2**64, d, 2, F)
            assert holds, (lhs, rhs)

    def test_paper_variant_fails_at_tiny_n(self):
        # d=3: lhs has 2^{12} against (log n)^{-3}; at n=2^4 the log is 4.
        F = lambda i: F_paper(i, 3)
        _, _, holds = claim_inequality(16, 3, 2, F)
        assert not holds

    def test_logn_parameter_matches_direct(self):
        F = lambda i: F_paper(i, 4)
        a = claim_inequality(2**64, 4, 2, F)
        b = claim_inequality(0.0, 4, 2, F, logn=64.0)
        assert a[0] == pytest.approx(b[0])
        assert a[1] == pytest.approx(b[1])

    def test_lhs_empty_when_j_equals_d(self):
        F = lambda i: F_paper(i, 4)
        assert claim_lhs_log2(2**32, 4, 4, F) == -math.inf

    def test_invalid_j(self):
        F = lambda i: 0
        with pytest.raises(ValueError):
            claim_lhs_log2(2**16, 3, 1, F)
        with pytest.raises(ValueError):
            claim_lhs_log2(2**16, 3, 4, F)

    def test_rhs_formula(self):
        # 2/(16 + 2·4) = 1/12
        assert claim_rhs_log2(2**16) == pytest.approx(math.log2(2 / 24))


class TestOriginalCounterexample:
    def test_fails_for_all_d(self):
        for d in (1, 2, 3, 5, 10):
            _, _, holds = original_f_claim_sides(2**64, d)
            assert not holds

    def test_rhs_below_two(self):
        _, rhs, _ = original_f_claim_sides(2**64, 3)
        assert rhs < 2.0


class TestDimensionInequality:
    def test_holds_in_paper_range_asymptotically(self):
        """d(d+1) ≤ log²n·(d²−8) for d ≥ 3 and d below the cap."""
        # log²n must exceed d(d+1)/(d²−8); at d=3 that is 12, n = 2^(2^12)
        lhs, rhs, holds = dimension_inequality(2.0**600, 3)
        # log2(log2(2^600)) ≈ 9.2 < 12 → still fails; use explicit check
        assert lhs == 12.0
        assert not holds
        # push log²n to 16 (n = 2^65536 unrepresentable; test the formula
        # directly through params): here use d=4 where threshold is 20/8=2.5
        lhs, rhs, holds = dimension_inequality(2.0**600, 4)
        assert holds  # log²n ≈ 9.2 ≥ 2.5

    def test_never_holds_for_d_le_2(self):
        for d in (1, 2):
            _, _, holds = dimension_inequality(2.0**100, d)
            assert not holds

    def test_cap_formula(self):
        # n = 2^256: log² = 8, log³ = 3 → cap = 8/12
        assert dimension_cap(2.0**256) == pytest.approx(8 / 12)


class TestFNecessity:
    def test_factorial_families_pass(self):
        for j in range(2, 10):
            assert f_necessity_holds(F_original, j)
            assert f_necessity_holds(lambda i: F_paper(i, 5), j)

    def test_constant_4_fails_immediately(self):
        def F4(j):
            val = 0
            for k in range(2, j + 1):
                val = k * val + 4
            return val

        assert not f_necessity_holds(F4, 2)

    def test_polynomial_fails(self):
        assert not f_necessity_holds(lambda j: j**3, 3)

    def test_invalid_j(self):
        with pytest.raises(ValueError):
            f_necessity_holds(F_original, 1)
