"""AsyncBatchExecutor: awaitable batches, per-mode failure isolation."""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.core import greedy_mis, karp_upfal_wigderson
from repro.exec.aio import AsyncBatchExecutor, CellOutcome
from repro.exec.runner import Cell
from repro.generators import uniform_hypergraph
from repro.obs import metrics

_INSTANCE = uniform_hypergraph(30, 60, 3, seed=7)


def _raise(H, seed, machine=None, **options):
    raise ValueError("solver exploded")


def _crash(H, seed, machine=None, **options):
    """Kill the worker process outright (pool-mode isolation tests)."""
    os._exit(1)


def _cells(fn=karp_upfal_wigderson, seeds=(0, 1, 2)):
    return [Cell(instance=_INSTANCE, fn=fn, seed=s, label=f"c{s}") for s in seeds]


class TestInProcess:
    def test_batch_matches_direct_solves(self):
        async def main():
            async with AsyncBatchExecutor() as executor:
                assert executor.workers == 0
                return await executor.solve_batch(_cells())

        outcomes = asyncio.run(main())
        assert all(isinstance(o, CellOutcome) and o.ok for o in outcomes)
        for seed, outcome in zip((0, 1, 2), outcomes):
            direct = karp_upfal_wigderson(_INSTANCE, seed)
            assert outcome.result is not None
            assert outcome.result.mis_size == direct.size
            assert np.array_equal(outcome.result.independent_set, direct.independent_set)
            assert outcome.result.label == f"c{seed}"
            assert outcome.result.wall_ns > 0

    def test_failing_cell_is_isolated(self):
        cells = [
            Cell(instance=_INSTANCE, fn=karp_upfal_wigderson, seed=0),
            Cell(instance=_INSTANCE, fn=_raise, seed=1),
            Cell(instance=_INSTANCE, fn=greedy_mis, seed=2),
        ]

        async def main():
            async with AsyncBatchExecutor() as executor:
                return await executor.solve_batch(cells)

        with metrics.isolated_registry() as registry:
            outcomes = asyncio.run(main())
            counters = registry.snapshot()["counters"]
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].result is None
        assert "ValueError: solver exploded" in (outcomes[1].error or "")
        assert counters["exec/cells_failed"] == 1
        assert counters["exec/cells_done"] == 3
        assert counters["exec/cells_scheduled"] == 3

    def test_empty_batch(self):
        async def main():
            async with AsyncBatchExecutor() as executor:
                return await executor.solve_batch([])

        assert asyncio.run(main()) == []

    def test_closed_executor_refuses(self):
        async def main():
            executor = AsyncBatchExecutor()
            executor.close()
            assert executor.closed
            with pytest.raises(RuntimeError, match="closed"):
                await executor.solve_batch(_cells())

        asyncio.run(main())

    def test_close_is_idempotent(self):
        executor = AsyncBatchExecutor()
        executor.close()
        executor.close()


class TestPool:
    def test_pool_results_bit_identical_to_serial(self):
        async def main():
            async with AsyncBatchExecutor(1) as executor:
                assert executor.workers == 1
                return await executor.solve_batch(_cells(seeds=(3, 4)))

        outcomes = asyncio.run(main())
        for seed, outcome in zip((3, 4), outcomes):
            direct = karp_upfal_wigderson(_INSTANCE, seed)
            assert outcome.ok and outcome.result is not None
            assert np.array_equal(outcome.result.independent_set, direct.independent_set)

    def test_worker_crash_fails_batch_and_rebuilds_pool(self):
        async def main():
            async with AsyncBatchExecutor(1) as executor:
                poisoned = await executor.solve_batch(_cells(fn=_crash, seeds=(0, 1)))
                healthy = await executor.solve_batch(_cells(seeds=(5,)))
                return poisoned, healthy

        with metrics.isolated_registry() as registry:
            poisoned, healthy = asyncio.run(main())
            counters = registry.snapshot()["counters"]
        # the whole in-flight batch is lost, as one error per cell
        assert [o.ok for o in poisoned] == [False, False]
        assert all("worker crashed" in (o.error or "") for o in poisoned)
        assert counters["exec/pool_rebuilds"] == 1
        # ...but the rebuilt pool serves the next batch normally
        assert len(healthy) == 1 and healthy[0].ok

    def test_solver_exception_in_worker_fails_batch_without_rebuild(self):
        async def main():
            async with AsyncBatchExecutor(1) as executor:
                return await executor.solve_batch(_cells(fn=_raise, seeds=(0,)))

        with metrics.isolated_registry() as registry:
            outcomes = asyncio.run(main())
            counters = registry.snapshot()["counters"]
        assert not outcomes[0].ok
        assert "ValueError" in (outcomes[0].error or "")
        assert "exec/pool_rebuilds" not in counters
