"""load_baseline: schema validation, and the stale-schema regression.

The regression class at the bottom is the reason this module exists: a
baseline refresh that changes the document shape must degrade ``--workers
auto`` *loudly* (metric bump + optimistic fallback), never silently.
"""

from __future__ import annotations

import json

import pytest

import repro.exec.workers as workers_mod
from repro.exec.benchfile import BenchSchemaError, load_baseline
from repro.exec.workers import resolve_workers
from repro.obs import metrics

_VALID = {
    "medians_ns": {"campaign_serial": 1_000_000, "workers2": 480_000},
    "iqr_ns": {"campaign_serial": 10_000},
    "speedup_vs_serial": {"workers2": 2.1, "workers4": 1.4},
    "provenance": {"machine_id": "test-box", "commit": "abc"},
}


def _write(tmp_path, doc, name="BENCH_m02.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc) if not isinstance(doc, str) else doc)
    return path


class TestLoadBaseline:
    def test_valid_document(self, tmp_path):
        baseline = load_baseline(_write(tmp_path, _VALID))
        assert baseline.medians_ns == {"campaign_serial": 1_000_000.0, "workers2": 480_000.0}
        assert baseline.iqr_ns == {"campaign_serial": 10_000.0}
        assert baseline.best_speedup() == 2.1
        assert baseline.machine_id == "test-box"
        assert baseline.raw["provenance"]["commit"] == "abc"

    def test_missing_medians(self, tmp_path):
        doc = {k: v for k, v in _VALID.items() if k != "medians_ns"}
        with pytest.raises(BenchSchemaError, match="medians_ns"):
            load_baseline(_write(tmp_path, doc))

    def test_empty_medians(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="medians_ns"):
            load_baseline(_write(tmp_path, {**_VALID, "medians_ns": {}}))

    @pytest.mark.parametrize("table", [[1, 2], "fast", 3])
    def test_non_mapping_table(self, tmp_path, table):
        with pytest.raises(BenchSchemaError, match="must be a mapping"):
            load_baseline(_write(tmp_path, {**_VALID, "iqr_ns": table}))

    @pytest.mark.parametrize("value", ["1e6", None, [1], True])
    def test_non_numeric_entry(self, tmp_path, value):
        doc = {**_VALID, "medians_ns": {"campaign_serial": value}}
        with pytest.raises(BenchSchemaError, match="must be a number"):
            load_baseline(_write(tmp_path, doc))

    def test_top_level_must_be_object(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="top level"):
            load_baseline(_write(tmp_path, "[1, 2, 3]"))

    def test_bad_provenance(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="provenance"):
            load_baseline(_write(tmp_path, {**_VALID, "provenance": "me"}))

    def test_speedups_optional_by_default(self, tmp_path):
        doc = {"medians_ns": {"x": 1}}
        baseline = load_baseline(_write(tmp_path, doc))
        assert baseline.speedup_vs_serial == {}
        assert baseline.best_speedup() is None

    def test_require_speedups(self, tmp_path):
        doc = {"medians_ns": {"x": 1}}
        with pytest.raises(BenchSchemaError, match="speedup_vs_serial"):
            load_baseline(_write(tmp_path, doc), require_speedups=True)

    def test_io_and_json_errors_keep_their_types(self, tmp_path):
        with pytest.raises(OSError):
            load_baseline(tmp_path / "absent.json")
        with pytest.raises(json.JSONDecodeError):
            load_baseline(_write(tmp_path, "{broken"))


class TestStaleSchemaRegression:
    """A refreshed-but-wrong baseline must fail loudly, not silently.

    This is the exact incident the shared loader exists for: the file
    parses as JSON, ``--workers auto`` falls back to optimistic cpu_count
    — and the ``exec/bench_m02_schema_error`` counter records that the
    committed baseline is unusable.
    """

    def test_stale_shape_is_optimistic_but_counted(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 4)
        # the pre-refresh shape: a bare speedup table, no medians_ns
        stale = _write(tmp_path, {"speedup_vs_serial": {"workers2": 0.5}})
        with metrics.isolated_registry() as registry:
            assert resolve_workers("auto", bench_path=stale) == 4
            counters = registry.snapshot()["counters"]
        assert counters["exec/bench_m02_schema_error"] == 1

    def test_unreadable_file_is_not_a_schema_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 4)
        corrupt = _write(tmp_path, "{not json")
        with metrics.isolated_registry() as registry:
            assert resolve_workers("auto", bench_path=corrupt) == 4
            assert resolve_workers("auto", bench_path=tmp_path / "absent.json") == 4
            counters = registry.snapshot()["counters"]
        assert "exec/bench_m02_schema_error" not in counters

    def test_valid_low_speedup_still_floors(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 4)
        doc = {"medians_ns": {"x": 1}, "speedup_vs_serial": {"workers2": 0.8}}
        with metrics.isolated_registry() as registry:
            assert resolve_workers("auto", bench_path=_write(tmp_path, doc)) is None
            counters = registry.snapshot()["counters"]
        assert "exec/bench_m02_schema_error" not in counters
