"""ParallelRunner: determinism, ordering, lifecycle, failure containment."""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
import pytest

from repro.core import greedy_mis, karp_upfal_wigderson
from repro.exec import Cell, ParallelRunner, WorkerPool, current_runner, use_runner
from repro.generators import uniform_hypergraph
from repro.util.rng import spawn_seeds

#: Small but non-trivial: enough randomness to expose seed-tree mistakes.
_INSTANCE = uniform_hypergraph(30, 60, 3, seed=7)


def _make_cells(seed_key, repeats: int = 4) -> list[Cell]:
    """A fresh cell list — seeds re-derived per call (SeedSequence objects
    are consumed by use, so each execution mode needs its own leaves)."""
    seeds = spawn_seeds(seed_key, repeats)
    return [
        Cell(
            instance=_INSTANCE,
            fn=karp_upfal_wigderson,
            seed=s,
            label=f"kuw/{i}",
        )
        for i, s in enumerate(seeds)
    ]


def _serial_reference(seed_key, repeats: int = 4):
    out = []
    for s in spawn_seeds(seed_key, repeats):
        res = karp_upfal_wigderson(_INSTANCE, s)
        res.verify(_INSTANCE)
        out.append(res)
    return out


def _crash(H, seed, machine=None, **options):
    """A cell function that kills its worker outright (no exception to
    catch — the pool must surface BrokenProcessPool)."""
    os._exit(1)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_serial(self, workers):
        reference = _serial_reference(("exec-det", workers))
        with ParallelRunner(workers) as runner:
            results = runner.run_cells(_make_cells(("exec-det", workers)))
        assert [r.mis_size for r in results] == [r.size for r in reference]
        assert [r.num_rounds for r in results] == [r.num_rounds for r in reference]
        for got, want in zip(results, reference):
            assert np.array_equal(got.independent_set, want.independent_set)

    def test_worker_count_does_not_change_results(self):
        outcomes = []
        for workers in (1, 2):
            with ParallelRunner(workers) as runner:
                results = runner.run_cells(_make_cells("exec-wc"))
            outcomes.append(
                [(r.mis_size, r.num_rounds, tuple(r.independent_set)) for r in results]
            )
        assert outcomes[0] == outcomes[1]


class TestRunCells:
    def test_results_in_submission_order(self):
        with ParallelRunner(2) as runner:
            results = runner.run_cells(_make_cells("exec-order", repeats=6))
        assert [r.index for r in results] == list(range(6))
        assert [r.label for r in results] == [f"kuw/{i}" for i in range(6)]

    def test_empty_cell_list(self):
        with ParallelRunner(1) as runner:
            assert runner.run_cells([]) == []

    def test_machine_costs_reported(self):
        with ParallelRunner(1) as runner:
            (result,) = runner.run_cells(_make_cells("exec-costs", repeats=1))
        assert result.depth > 0
        assert result.work > 0
        assert result.wall_ns > 0

    def test_mixed_functions_and_options(self):
        seeds = spawn_seeds("exec-mixed", 2)
        cells = [
            Cell(instance=_INSTANCE, fn=karp_upfal_wigderson, seed=seeds[0]),
            Cell(instance=_INSTANCE, fn=greedy_mis, seed=seeds[1]),
        ]
        with ParallelRunner(2) as runner:
            kuw_res, greedy_res = runner.run_cells(cells)
        assert kuw_res.mis_size > 0
        assert greedy_res.mis_size > 0
        assert kuw_res.num_rounds >= 1

    def test_lambda_function_rejected_with_clear_error(self):
        cells = [Cell(instance=_INSTANCE, fn=lambda H, s, **kw: None, seed=0)]
        with ParallelRunner(1) as runner:
            with pytest.raises(TypeError, match="picklable"):
                runner.run_cells(cells)


def _square(x: int) -> int:
    return x * x


class TestMapTasks:
    def test_results_in_item_order(self):
        with ParallelRunner(2) as runner:
            assert runner.map_tasks(_square, list(range(8))) == [
                i * i for i in range(8)
            ]

    def test_empty_items(self):
        with ParallelRunner(1) as runner:
            assert runner.map_tasks(_square, []) == []

    def test_lambda_rejected_with_clear_error(self):
        with ParallelRunner(1) as runner:
            with pytest.raises(TypeError, match="picklable"):
                runner.map_tasks(lambda x: x, [1])


def _count_and_square(x: int) -> int:
    from repro.obs import metrics as obs_metrics

    obs_metrics.inc("test/chunked_calls")
    return x * x


class TestMapTasksChunking:
    def test_fixed_chunksize_preserves_item_order(self):
        from repro.obs.metrics import isolated_registry

        with ParallelRunner(2) as runner, isolated_registry() as reg:
            got = runner.map_tasks(_square, list(range(37)), chunksize=5)
            snap = reg.snapshot()
        assert got == [i * i for i in range(37)]
        assert snap["counters"]["exec/chunks_dispatched"] == 8  # ceil(37/5)
        assert snap["counters"]["exec/tasks_done"] == 37
        assert snap["gauges"]["exec/chunk_size"] == 5

    def test_auto_chunks_large_grids(self):
        from repro.obs.metrics import isolated_registry

        n = 200
        with ParallelRunner(2) as runner, isolated_registry() as reg:
            got = runner.map_tasks(_square, list(range(n)), chunksize="auto")
            snap = reg.snapshot()
        assert got == [i * i for i in range(n)]
        counters = snap["counters"]
        assert counters["exec/tasks_done"] == n
        # The probe runs singly, the remainder in measured-size chunks.
        assert counters["exec/chunks_dispatched"] >= 1
        assert snap["gauges"]["exec/chunk_size"] >= 1

    def test_auto_skips_chunking_on_small_grids(self):
        from repro.obs.metrics import isolated_registry

        with ParallelRunner(2) as runner, isolated_registry() as reg:
            got = runner.map_tasks(_square, list(range(4)), chunksize="auto")
            snap = reg.snapshot()
        assert got == [0, 1, 4, 9]
        assert "exec/chunks_dispatched" not in snap["counters"]

    def test_chunked_metrics_round_trip(self):
        # Counters inc'd inside chunked workers merge into the parent
        # registry exactly once per call, same as singly-dispatched runs.
        from repro.obs.metrics import isolated_registry

        with ParallelRunner(2) as runner, isolated_registry() as reg:
            runner.map_tasks(_count_and_square, list(range(24)), chunksize=6)
            snap = reg.snapshot()
        assert snap["counters"]["test/chunked_calls"] == 24

    def test_invalid_chunksize_rejected(self):
        with ParallelRunner(1) as runner:
            with pytest.raises(ValueError, match="chunksize"):
                runner.map_tasks(_square, [1, 2], chunksize=0)
            with pytest.raises(ValueError, match="chunksize"):
                runner.map_tasks(_square, [1, 2], chunksize="huge")


class TestLifecycle:
    def test_owned_pool_closed_on_exit(self):
        with ParallelRunner(1) as runner:
            assert not runner.closed
        assert runner.closed

    def test_borrowed_pool_survives_runner(self):
        with WorkerPool(1) as pool:
            with ParallelRunner(pool) as runner:
                runner.run_cells(_make_cells("exec-borrow", repeats=1))
            assert not pool.closed  # borrowed, so the runner left it open
        assert pool.closed

    def test_run_after_close_raises(self):
        runner = ParallelRunner(1)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.run_cells(_make_cells("exec-closed", repeats=1))

    def test_close_idempotent(self):
        runner = ParallelRunner(1)
        runner.close()
        runner.close()

    def test_repr_shows_state(self):
        runner = ParallelRunner(2)
        assert "workers=2" in repr(runner)
        runner.close()
        assert "closed" in repr(runner)


class TestFailureContainment:
    def test_worker_crash_leaves_no_shared_memory(self):
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = set(shm_dir.iterdir())
        cells = [Cell(instance=_INSTANCE, fn=_crash, seed=0)]
        with ParallelRunner(1) as runner:
            with pytest.raises(BrokenProcessPool):
                runner.run_cells(cells)
        leaked = {p for p in set(shm_dir.iterdir()) - before if p.name.startswith("psm_")}
        assert leaked == set()

    def test_pool_usable_error_reported_per_run(self):
        # A crashed pool is broken for good; a fresh runner works fine.
        with ParallelRunner(1) as runner:
            with pytest.raises(BrokenProcessPool):
                runner.run_cells([Cell(instance=_INSTANCE, fn=_crash, seed=0)])
        with ParallelRunner(1) as runner:
            results = runner.run_cells(_make_cells("exec-recover", repeats=1))
        assert results[0].mis_size > 0


class TestAmbientRunner:
    def test_default_is_none(self):
        assert current_runner() is None

    def test_use_runner_installs_and_restores(self):
        with ParallelRunner(1) as runner:
            with use_runner(runner) as installed:
                assert installed is runner
                assert current_runner() is runner
            assert current_runner() is None

    def test_nesting(self):
        with ParallelRunner(1) as outer, ParallelRunner(1) as inner:
            with use_runner(outer):
                with use_runner(inner):
                    assert current_runner() is inner
                assert current_runner() is outer
