"""resolve_workers: spec parsing and the measured ``auto`` floor."""

from __future__ import annotations

import json

import pytest

import repro.exec.workers as workers_mod
from repro.exec.workers import AUTO_SPEEDUP_FLOOR, bench_m02_path, resolve_workers


def _bench(tmp_path, speedups):
    # A schema-valid baseline: the shared loader requires medians_ns; the
    # speedup table is what the auto floor actually reads.
    path = tmp_path / "BENCH_m02.json"
    medians = {"campaign_serial": 1_000_000}
    medians.update({name: 500_000 for name in speedups})
    path.write_text(
        json.dumps({"medians_ns": medians, "speedup_vs_serial": speedups})
    )
    return path


class TestSpecs:
    @pytest.mark.parametrize("spec", [None, 0, "", "0", " 0 "])
    def test_in_process_specs(self, spec):
        assert resolve_workers(spec) is None

    @pytest.mark.parametrize("spec,want", [(3, 3), ("4", 4), (" 2 ", 2), (1, 1)])
    def test_explicit_counts(self, spec, want):
        assert resolve_workers(spec) == want

    @pytest.mark.parametrize("spec", [-1, "-2"])
    def test_negative_rejected(self, spec):
        with pytest.raises(ValueError, match="non-negative"):
            resolve_workers(spec)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="worker count or 'auto'"):
            resolve_workers("lots")

    def test_auto_is_case_insensitive(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 8)
        bench = _bench(tmp_path, {"workers2": 2.0})
        assert resolve_workers(" AUTO ", bench_path=bench) == 8


class TestAutoFloor:
    def test_fans_out_when_measured_speedup_clears_floor(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 6)
        bench = _bench(tmp_path, {"workers1": 0.9, "workers2": 1.8})
        assert resolve_workers("auto", bench_path=bench) == 6

    def test_floored_to_in_process_when_overhead_wins(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 6)
        bench = _bench(tmp_path, {"workers2": AUTO_SPEEDUP_FLOOR - 0.01})
        assert resolve_workers("auto", bench_path=bench) is None

    def test_floor_is_inclusive(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 4)
        bench = _bench(tmp_path, {"workers2": AUTO_SPEEDUP_FLOOR})
        assert resolve_workers("auto", bench_path=bench) == 4

    def test_missing_bench_is_optimistic(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 5)
        assert resolve_workers("auto", bench_path=tmp_path / "absent.json") == 5

    def test_corrupt_bench_is_optimistic(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 5)
        path = tmp_path / "BENCH_m02.json"
        path.write_text("{not json")
        assert resolve_workers("auto", bench_path=path) == 5

    def test_empty_speedup_table_is_optimistic(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 5)
        bench = _bench(tmp_path, {})
        assert resolve_workers("auto", bench_path=bench) == 5

    def test_single_cpu_never_fans_out(self, tmp_path, monkeypatch):
        monkeypatch.setattr(workers_mod.os, "cpu_count", lambda: 1)
        bench = _bench(tmp_path, {"workers2": 3.0})
        assert resolve_workers("auto", bench_path=bench) is None


class TestCommittedBench:
    def test_committed_file_is_readable(self):
        # The committed BENCH_m02.json must parse; 'auto' must resolve
        # without raising whatever this machine looks like.
        assert bench_m02_path().exists()
        resolved = resolve_workers("auto")
        assert resolved is None or resolved >= 1
