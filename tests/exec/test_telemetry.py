"""Worker telemetry round-trip: span splicing and metrics merging.

A parallel run must leave the same observability trail a serial run would:
the parent's event stream gets every worker span (ids remapped, roots
re-parented under ``exec/run_cells``) and the parent's default registry
absorbs every worker counter.
"""

from __future__ import annotations

import numpy as np

from repro.core import karp_upfal_wigderson
from repro.exec import Cell, ParallelRunner
from repro.generators import uniform_hypergraph
from repro.obs import MemorySink, Tracer, use_tracer
from repro.obs.metrics import isolated_registry
from repro.util.rng import spawn_seeds

_INSTANCE = uniform_hypergraph(25, 40, 3, seed=11)


def _cells(key: str, repeats: int = 2) -> list[Cell]:
    return [
        Cell(instance=_INSTANCE, fn=karp_upfal_wigderson, seed=s, label=f"cell/{i}")
        for i, s in enumerate(spawn_seeds(key, repeats))
    ]


def _run_traced(key: str, workers: int = 1, repeats: int = 2):
    """One traced parallel run; returns (span events, merged registry)."""
    sink = MemorySink()
    with isolated_registry() as registry:
        tracer = Tracer(sink, registry=registry)
        with use_tracer(tracer), ParallelRunner(workers) as runner:
            results = runner.run_cells(_cells(key, repeats))
    spans = [e for e in sink.events if e.get("type") == "span"]
    return results, spans, registry


class TestSpanSplicing:
    def test_worker_spans_reach_parent_sink(self):
        _, spans, _ = _run_traced("tele-reach")
        names = [s["name"] for s in spans]
        assert names.count("exec/run_cells") == 1
        assert names.count("exec/cell") == 2
        assert names.count("kuw/solve") == 2  # solver spans crossed the wire

    def test_span_ids_unique_after_remap(self):
        _, spans, _ = _run_traced("tele-ids", workers=2, repeats=3)
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))

    def test_cell_roots_parented_under_run_cells(self):
        _, spans, _ = _run_traced("tele-parent")
        (run_cells,) = [s for s in spans if s["name"] == "exec/run_cells"]
        for cell_span in (s for s in spans if s["name"] == "exec/cell"):
            assert cell_span["parent"] == run_cells["id"]

    def test_tree_connected(self):
        # Every span's parent is either absent (the one true root) or a
        # span id present in the stream — no dangling references.
        _, spans, _ = _run_traced("tele-tree", workers=2)
        ids = {s["id"] for s in spans}
        roots = [s for s in spans if "parent" not in s]
        assert [r["name"] for r in roots] == ["exec/run_cells"]
        for s in spans:
            if "parent" in s:
                assert s["parent"] in ids

    def test_cell_spans_carry_labels_and_pram(self):
        _, spans, _ = _run_traced("tele-attrs")
        cell_spans = [s for s in spans if s["name"] == "exec/cell"]
        assert {s["attrs"]["label"] for s in cell_spans} == {"cell/0", "cell/1"}
        for s in cell_spans:
            assert s["pram"]["depth"] > 0
            assert s["pram"]["work"] > 0


class TestMetricsMerge:
    def test_worker_counters_absorbed(self):
        results, _, registry = _run_traced("tele-counters", repeats=3)
        counters = registry.snapshot()["counters"]
        assert counters["exec/cells_run"] == 3
        # solver-side counters only exist in workers; merging brought them home
        assert counters["solver/vertices_committed"] > 0

    def test_instance_cache_metrics_merged(self):
        _, _, registry = _run_traced("tele-cache", workers=1, repeats=3)
        counters = registry.snapshot()["counters"]
        # 3 cells, 1 instance, 1 worker: one real attach, the rest cache hits
        hits = counters.get("exec/instance_cache_hits", 0)
        misses = counters.get("exec/instance_cache_misses", 0)
        assert hits + misses == 3
        assert misses >= 1

    def test_arena_publish_counted_in_parent(self):
        _, _, registry = _run_traced("tele-publish", repeats=2)
        counters = registry.snapshot()["counters"]
        assert counters["exec/arena_published"] == 1  # deduped across cells
        assert counters["exec/arena_publish_dedup"] == 1


class TestWithoutTracer:
    def test_untraced_run_still_correct(self):
        with isolated_registry() as registry:
            with ParallelRunner(1) as runner:
                results = runner.run_cells(_cells("tele-off"))
        assert all(r.mis_size > 0 for r in results)
        assert all(r.depth > 0 for r in results)
        counters = registry.snapshot()["counters"]
        assert counters["exec/cells_run"] == 2

    def test_untraced_results_match_traced(self):
        traced, _, _ = _run_traced("tele-same")
        with ParallelRunner(1) as runner:
            untraced = runner.run_cells(_cells("tele-same"))
        assert [r.mis_size for r in traced] == [r.mis_size for r in untraced]
        for a, b in zip(traced, untraced):
            assert np.array_equal(a.independent_set, b.independent_set)
