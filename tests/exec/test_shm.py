"""Shared-memory arena: round-trips, refcounts, cleanup, attach cache."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exec import ShmArena, attach, detach_all
from repro.hypergraph import Hypergraph
from repro.obs.metrics import isolated_registry


@pytest.fixture(autouse=True)
def _fresh_attach_cache():
    """Attachment cache is per-process state; keep tests independent."""
    detach_all()
    yield
    detach_all()


class TestRoundTrip:
    def test_publish_get_equal(self, small_mixed):
        with ShmArena() as arena:
            handle = arena.publish(small_mixed)
            assert arena.get(handle) == small_mixed

    def test_get_copies_out_of_the_block(self, small_mixed):
        # get() must copy: the rebuilt instance outlives the arena (views
        # over the mapping would pin it open and break unlink).
        with ShmArena() as arena:
            H = arena.get(arena.publish(small_mixed))
        assert H == small_mixed

    def test_get_arrays_read_only(self, triangle):
        with ShmArena() as arena:
            H = arena.get(arena.publish(triangle))
            _, vertices, indptr, indices = H.to_arrays()
            for arr in (vertices, indptr, indices):
                with pytest.raises(ValueError):
                    arr[0] = 99

    def test_edgeless_instance(self, edgeless):
        with ShmArena() as arena:
            assert arena.get(arena.publish(edgeless)) == edgeless

    def test_empty_universe(self):
        H = Hypergraph(0)
        with ShmArena() as arena:
            assert arena.get(arena.publish(H)) == H

    def test_handle_is_small_and_picklable(self, small_mixed):
        with ShmArena() as arena:
            handle = arena.publish(small_mixed)
            payload = pickle.dumps(handle)
        # the point of the arena: task payloads stay tiny regardless of
        # instance size
        assert len(payload) < 1024
        assert handle.content_hash == small_mixed.content_hash()

    def test_handle_nbytes(self, small_mixed):
        _, vertices, indptr, indices = small_mixed.to_arrays()
        with ShmArena() as arena:
            handle = arena.publish(small_mixed)
            expected = (vertices.size + indptr.size + indices.size) * np.dtype(
                np.intp
            ).itemsize
            assert handle.nbytes == expected


class TestRefcounts:
    def test_dedup_same_content(self, triangle):
        with ShmArena() as arena:
            h1 = arena.publish(triangle)
            h2 = arena.publish(Hypergraph(3, [(1, 0), (2, 1), (2, 0)]))
            assert h1 is h2
            assert arena.num_blocks == 1

    def test_distinct_content_distinct_blocks(self, triangle, small_mixed):
        with ShmArena() as arena:
            arena.publish(triangle)
            arena.publish(small_mixed)
            assert arena.num_blocks == 2

    def test_release_at_zero_unlinks(self, triangle):
        with ShmArena() as arena:
            handle = arena.publish(triangle)
            arena.publish(triangle)  # refcount 2
            arena.release(handle)
            assert arena.num_blocks == 1  # still referenced
            arena.release(handle)
            assert arena.num_blocks == 0

    def test_release_unknown_handle_noop(self, triangle, small_mixed):
        with ShmArena() as arena, ShmArena() as other:
            foreign = other.publish(small_mixed)
            arena.publish(triangle)
            arena.release(foreign)
            assert arena.num_blocks == 1

    def test_iter_yields_handles(self, triangle, small_mixed):
        with ShmArena() as arena:
            published = {arena.publish(triangle), arena.publish(small_mixed)}
            assert set(arena) == published


class TestCleanup:
    def test_close_unlinks_everything(self, triangle, small_mixed):
        arena = ShmArena()
        arena.publish(triangle)
        arena.publish(small_mixed)
        arena.close()
        assert arena.num_blocks == 0

    def test_close_idempotent(self, triangle):
        arena = ShmArena()
        arena.publish(triangle)
        arena.close()
        arena.close()

    def test_attach_after_close_raises(self, triangle):
        with ShmArena() as arena:
            handle = arena.publish(triangle)
        with pytest.raises(FileNotFoundError):
            attach(handle)

    def test_finalizer_cleans_on_gc(self, triangle):
        import gc

        arena = ShmArena()
        handle = arena.publish(triangle)
        del arena
        gc.collect()
        with pytest.raises(FileNotFoundError):
            attach(handle)


class TestAttach:
    def test_attach_equal_and_cached(self, small_mixed):
        with ShmArena() as arena:
            handle = arena.publish(small_mixed)
            with isolated_registry() as registry:
                first = attach(handle)
                second = attach(handle)
                assert first == small_mixed
                assert second is first  # cache hit returns the same object
                counters = registry.snapshot()["counters"]
                assert counters["exec/instance_cache_misses"] == 1
                assert counters["exec/instance_cache_hits"] == 1
                assert counters["exec/attached_bytes"] == handle.nbytes
            detach_all()

    def test_attach_is_zero_copy_views(self, small_mixed):
        with ShmArena() as arena:
            handle = arena.publish(small_mixed)
            H = attach(handle)
            _, vertices, _indptr, _indices = H.to_arrays()
            # Same segment, not a copy: a write through the creator's
            # mapping is visible through the attached (read-only) views.
            block = arena._blocks[handle.block]
            shared = np.frombuffer(block.buf, dtype=np.intp, count=vertices.size)
            original = int(shared[0])
            try:
                shared[0] = original + 7
                assert int(vertices[0]) == original + 7
            finally:
                shared[0] = original
            detach_all()

    def test_detach_all_does_not_unlink(self, small_mixed):
        with ShmArena() as arena:
            handle = arena.publish(small_mixed)
            attach(handle)
            detach_all()
            # block still owned by the arena: re-attach works
            assert attach(handle) == small_mixed
            detach_all()
