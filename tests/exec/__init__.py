"""Tests for the parallel campaign executor (repro.exec)."""
