"""Tier-1 replay of the committed reproducer corpus.

Every ``.npz`` under ``tests/regressions/`` — whether shrunk out of a
real fuzz failure or pinned as a corpus seed — is replayed through the
full differential battery on every test run.  A reproducer that fails
here means a previously fixed bug has come back (or a corpus pin has
rotted); triage with::

    PYTHONPATH=src python -m repro fuzz replay tests/regressions
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.qa import load_reproducer, replay

REGRESSION_DIR = Path(__file__).parent / "regressions"
REPRODUCERS = sorted(REGRESSION_DIR.glob("*.npz"))


def test_corpus_is_not_empty():
    # The corpus ships with seed pins; an empty glob means a packaging
    # or path bug, not a clean bill of health.
    assert REPRODUCERS, f"no reproducers found under {REGRESSION_DIR}"


@pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
def test_reproducer_replays_clean(path):
    failures = replay(path)
    assert failures == [], (
        f"{path.name} regressed:\n" + "\n".join(f"  {f}" for f in failures)
    )


@pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
def test_manifest_is_well_formed(path):
    _, manifest = load_reproducer(path)
    assert manifest["schema"] == 1
    assert isinstance(manifest["seed"], int)
    assert manifest["kind"] in {"shrunk-failure", "unshrunk-failure", "corpus-seed"}
    assert manifest["description"]
