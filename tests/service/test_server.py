"""SolveServer end to end: coalescing, cache, overload, failure isolation.

Every test hosts a real server on a background thread (:class:`ServerThread`)
and talks to it over the unix socket — the same transport production
clients use.  Concurrency (for the coalescing and admission tests) comes
from :func:`run_load`, which pipelines requests across connections.
"""

from __future__ import annotations

import asyncio
import http.client
import json

import pytest

from repro.core import beame_luby, greedy_mis
from repro.generators import uniform_hypergraph
from repro.hypergraph.hio import dump as hio_dump
from repro.service import (
    ServerConfig,
    ServerThread,
    ServiceError,
    SolveClient,
    encode_instance,
    run_load,
)

_H1 = uniform_hypergraph(40, 80, 3, seed=5)
_H2 = uniform_hypergraph(25, 50, 3, seed=6)


def _boom(H, seed, machine=None, **options):
    """A served 'solver' that always fails (failure-isolation tests)."""
    raise RuntimeError("boom")


def _config(tmp_path, **over) -> ServerConfig:
    defaults = dict(socket_path=tmp_path / "repro.sock", batch_window_ms=5.0)
    defaults.update(over)
    return ServerConfig(**defaults)


def _solve_doc(H, algorithm="bl", seed=0, req_id=None, **extra):
    doc = {"op": "solve", "algorithm": algorithm, "seed": seed, "instance": encode_instance(H)}
    if req_id is not None:
        doc["id"] = req_id
    doc.update(extra)
    return doc


class TestCoalescing:
    def test_concurrent_duplicates_cost_one_solve(self, tmp_path):
        # A generous window so all eight duplicates land in one cell.
        config = _config(tmp_path, batch_window_ms=60.0)
        docs = [_solve_doc(_H1, "bl", 3, req_id=f"r{i}") for i in range(8)]
        with ServerThread(config) as handle:
            report = asyncio.run(run_load(config.socket_path, docs, connections=8))
            with SolveClient(config.socket_path) as client:
                stats = client.stats()
        assert report.ok == 8 and report.errors == 0
        assert report.coalesced == 7  # all but the cell-creating request
        assert stats["solved_cells"] == 1
        # every response carries the byte-identical payload of a direct solve
        direct = beame_luby(_H1, 3)
        for response in report.responses:
            assert response["mis_size"] == direct.size
            assert response["independent_set"] == direct.independent_set.tolist()
            assert response["num_rounds"] == direct.num_rounds
        assert handle.server is not None

    def test_repeat_request_is_a_cache_hit(self, tmp_path):
        config = _config(tmp_path)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                first = client.solve(_H1, algorithm="bl", seed=9)
                again = client.solve(_H1, algorithm="bl", seed=9)
                by_hash = client.solve(
                    algorithm="bl", seed=9, content_hash=_H1.content_hash()
                )
                stats = client.stats()
        assert first["cached"] is False
        assert again["cached"] is True and by_hash["cached"] is True
        for key in ("mis_size", "independent_set", "num_rounds"):
            assert again[key] == first[key] == by_hash[key]
        assert stats["solved_cells"] == 1
        assert stats["cache"]["hits"] == 2

    def test_different_seeds_are_different_cells(self, tmp_path):
        config = _config(tmp_path)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                a = client.solve(_H1, algorithm="bl", seed=1)
                b = client.solve(_H1, algorithm="bl", seed=2)
                stats = client.stats()
        assert a["cached"] is False and b["cached"] is False
        assert stats["solved_cells"] == 2


class TestCacheEviction:
    def test_lru_bound_holds_under_distinct_cells(self, tmp_path):
        config = _config(tmp_path, cache_size=2)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                for seed in (0, 1, 2):
                    client.solve(_H1, algorithm="greedy", seed=seed)
                stats = client.stats()
                # seed 0 was evicted (LRU); seed 2 is still resident
                refetch_old = client.solve(_H1, algorithm="greedy", seed=0)
                refetch_new = client.solve(_H1, algorithm="greedy", seed=2)
        assert stats["cache"]["size"] == 2
        assert stats["cache"]["evictions"] == 1
        assert refetch_old["cached"] is False
        assert refetch_new["cached"] is True


class TestOverload:
    def test_deadline_expires_before_dispatch(self, tmp_path):
        # The batch window dwarfs the deadline, so the request must be
        # answered 'expired' without ever reaching a solver.
        config = _config(tmp_path, batch_window_ms=300.0)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.solve(_H1, algorithm="bl", seed=0, deadline_ms=25)
                stats = client.stats()
        assert excinfo.value.status == "expired"
        assert stats["solved_cells"] == 0

    def test_admission_rejects_past_queue_limit(self, tmp_path):
        config = _config(tmp_path, batch_window_ms=300.0, queue_limit=1)
        docs = [_solve_doc(_H1, "bl", seed, req_id=f"q{seed}") for seed in range(4)]
        with ServerThread(config):
            report = asyncio.run(run_load(config.socket_path, docs, connections=4))
        assert report.ok >= 1
        assert report.rejected >= 1
        assert report.ok + report.rejected == 4
        rejected = [r for r in report.responses if r["status"] == "rejected"]
        assert all(r.get("retry") is True for r in rejected)

    def test_duplicates_coalesce_even_at_the_bound(self, tmp_path):
        config = _config(tmp_path, batch_window_ms=120.0, queue_limit=1)
        docs = [_solve_doc(_H1, "bl", 5, req_id=f"d{i}") for i in range(4)]
        with ServerThread(config):
            report = asyncio.run(run_load(config.socket_path, docs, connections=4))
        assert report.ok == 4 and report.rejected == 0
        assert report.coalesced == 3


class TestFailureIsolation:
    def test_crashing_solver_fails_only_its_request(self, tmp_path):
        algorithms = {"bl": beame_luby, "greedy": greedy_mis, "boom": _boom}
        config = _config(tmp_path, batch_window_ms=60.0, algorithms=algorithms)
        docs = [
            _solve_doc(_H1, "boom", 0, req_id="bad"),
            _solve_doc(_H1, "bl", 0, req_id="good"),
        ]
        with ServerThread(config):
            report = asyncio.run(run_load(config.socket_path, docs, connections=2))
            # the server survives the failed cell and keeps solving
            with SolveClient(config.socket_path) as client:
                after = client.solve(_H1, algorithm="bl", seed=1)
        assert report.ok == 1 and report.errors == 1
        failed = next(r for r in report.responses if r["status"] == "error")
        assert failed["id"] == "bad"
        assert "RuntimeError" in failed["error"]
        assert after["mis_size"] == beame_luby(_H1, 1).size


class TestProtocolSurface:
    def test_bad_requests_and_ops(self, tmp_path):
        config = _config(tmp_path)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                assert client.ping() is True

                with pytest.raises(ServiceError) as bad_algo:
                    client.solve(_H1, algorithm="nope", seed=0)

                response = client.request(
                    {"op": "solve", "algorithm": "nope", "instance": encode_instance(_H1)}
                )
                assert response["status"] == "bad_request"
                assert "unknown algorithm" in response["error"]

                response = client.request(
                    {"op": "solve", "algorithm": "bl", "content_hash": "deadbeef"}
                )
                assert response["status"] == "bad_request"
                assert "unknown content_hash" in response["error"]

                response = client.request({"op": "wat"})
                assert response["status"] == "bad_request"

                # a non-JSON line gets an answer instead of a dropped connection
                client._sock.sendall(b"{this is not json\n")
                line = client._rfile.readline()
                garbage = json.loads(line)
                assert garbage["status"] == "bad_request"

                stats = client.stats()
        assert bad_algo.value.status == "bad_request"
        assert stats["requests"] >= 3
        assert {"cache", "queue", "batch", "gauges", "bench_m02"} <= stats.keys()
        assert stats["bench_m02"].get("best_speedup_vs_serial") is not None

    def test_gauges_present_in_stats(self, tmp_path):
        config = _config(tmp_path)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                client.solve(_H2, algorithm="greedy", seed=0)
                gauges = client.stats()["gauges"]
        for name in (
            "service/queue_depth",
            "service/cache_hit_rate",
            "service/latency_p50_ms",
            "service/batch_occupancy",
        ):
            assert name in gauges


class TestPoolMode:
    def test_worker_pool_results_match_direct_solve(self, tmp_path):
        config = _config(tmp_path, workers=1)
        with ServerThread(config):
            with SolveClient(config.socket_path) as client:
                r1 = client.solve(_H1, algorithm="bl", seed=4)
                r2 = client.solve(_H2, algorithm="greedy", seed=4)
                stats = client.stats()
        assert stats["workers"] == 1
        assert stats["instances"] == 2
        d1 = beame_luby(_H1, 4)
        d2 = greedy_mis(_H2, 4)
        assert r1["independent_set"] == d1.independent_set.tolist()
        assert r2["independent_set"] == d2.independent_set.tolist()


class TestHttpTransport:
    def test_solve_metrics_healthz(self, tmp_path):
        config = _config(tmp_path, http=("127.0.0.1", 0))
        with ServerThread(config) as handle:
            assert handle.server is not None
            port = handle.server.http_port
            assert port

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            body = json.dumps(_solve_doc(_H1, "bl", 7, req_id="h1"))
            conn.request("POST", "/solve", body=body)
            solved = json.loads(conn.getresponse().read())
            conn.close()
            assert solved["status"] == "ok"
            assert solved["id"] == "h1"
            assert solved["mis_size"] == beame_luby(_H1, 7).size

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("GET", "/healthz")
            assert conn.getresponse().read() == b"ok\n"
            conn.close()

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("GET", "/metrics")
            metrics_text = conn.getresponse().read().decode("utf-8")
            conn.close()
            assert "repro_service_requests_total" in metrics_text
            assert 'command="serve"' in metrics_text

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
            conn.close()

    def test_error_statuses_map_to_http_codes(self, tmp_path):
        config = _config(tmp_path, http=("127.0.0.1", 0))
        with ServerThread(config) as handle:
            assert handle.server is not None
            port = handle.server.http_port
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("POST", "/solve", body=json.dumps({"algorithm": "nope"}))
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["status"] == "bad_request"
            conn.close()


class TestCLI:
    def test_client_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        config = _config(tmp_path)
        instance_file = tmp_path / "inst.hio"
        with instance_file.open("w", encoding="utf-8") as fp:
            hio_dump(_H1, fp)
        sock = str(config.socket_path)
        with ServerThread(config):
            assert main(["client", "ping", "--socket", sock]) == 0
            assert "pong" in capsys.readouterr().out

            rc = main(
                [
                    "client",
                    "solve",
                    str(instance_file),
                    "--socket",
                    sock,
                    "--algorithm",
                    "bl",
                    "--seed",
                    "2",
                ]
            )
            assert rc == 0
            response = json.loads(capsys.readouterr().out)
            assert response["status"] == "ok"
            assert response["mis_size"] == beame_luby(_H1, 2).size

            assert main(["client", "stats", "--socket", sock]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["requests"] >= 1

    def test_client_against_absent_server(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["client", "ping", "--socket", str(tmp_path / "absent.sock")])
        assert rc == 1
        assert "cannot reach server" in capsys.readouterr().err
