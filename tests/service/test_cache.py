"""ResultCache: LRU bound, recency, counters, disabled mode."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.service.cache import ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k") is None
        cache.put("k", {"mis_size": 3})
        assert cache.get("k") == {"mis_size": 3}
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_hit_rate_zero_before_lookups(self):
        assert ResultCache(4).hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ResultCache(-1)

    def test_contains_and_len(self):
        cache = ResultCache(4)
        cache.put("a", {})
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1


class TestLRU:
    def test_eviction_respects_bound(self):
        cache = ResultCache(2)
        for i in range(5):
            cache.put(i, {"n": i})
        assert len(cache) == 2
        assert cache.evictions == 3
        assert cache.keys() == [3, 4]

    def test_get_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put("a", {})
        cache.put("b", {})
        cache.get("a")  # a is now most recent; c must evict b
        cache.put("c", {})
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put("a", {})
        cache.put("b", {})
        cache.put("a", {"v": 2})  # refresh, not insert
        cache.put("c", {})
        assert cache.keys() == ["a", "c"]
        assert cache.get("a") == {"v": 2}

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put("k", {})
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.evictions == 0


class TestCounters:
    def test_metrics_mirror_attributes(self):
        with metrics.isolated_registry() as registry:
            cache = ResultCache(1)
            cache.get("k")
            cache.put("k", {})
            cache.get("k")
            cache.put("other", {})  # evicts k
            counters = registry.snapshot()["counters"]
        assert counters["service/cache_misses"] == cache.misses == 1
        assert counters["service/cache_hits"] == cache.hits == 1
        assert counters["service/cache_evictions"] == cache.evictions == 1
