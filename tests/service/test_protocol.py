"""Wire protocol: parsing, validation errors, instance round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.generators import uniform_hypergraph
from repro.hypergraph.hio import dumps as hio_dumps
from repro.service.protocol import (
    ERROR_STATUSES,
    ProtocolError,
    SolveRequest,
    decode_line,
    encode_instance,
    encode_line,
    error_response,
    ok_response,
    parse_solve_request,
)

_H = uniform_hypergraph(20, 30, 3, seed=3)
_ALGOS = ("bl", "sbl", "greedy")


def _doc(**over):
    doc = {"algorithm": "bl", "seed": 7, "instance": encode_instance(_H)}
    doc.update(over)
    return doc


class TestLineCodec:
    def test_round_trip(self):
        doc = {"op": "solve", "seed": 3, "nested": {"a": [1, 2]}}
        line = encode_line(doc)
        assert line.endswith(b"\n")
        assert decode_line(line) == doc

    def test_accepts_str_input(self):
        assert decode_line('{"a": 1}') == {"a": 1}

    @pytest.mark.parametrize("bad", [b"{not json}\n", b"[1, 2]\n", b'"just a string"\n'])
    def test_non_object_lines_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode_line(bad)

    def test_non_utf8_rejected(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_line(b"\xff\xfe{}\n")


class TestInstanceCodec:
    def test_object_round_trip(self):
        doc = encode_instance(_H)
        req = parse_solve_request(_doc(instance=doc), algorithms=_ALGOS)
        assert req.instance is not None
        assert req.instance.universe == _H.universe
        assert req.instance.content_hash() == _H.content_hash()

    def test_hio_text_accepted(self):
        req = parse_solve_request(_doc(instance=hio_dumps(_H)), algorithms=_ALGOS)
        assert req.instance is not None
        assert req.instance.content_hash() == _H.content_hash()

    def test_vertices_field_survives(self):
        sub = _H.induced(np.arange(10))
        doc = encode_instance(sub)
        assert "vertices" not in doc or doc["vertices"] == sub.vertices.tolist()
        req = parse_solve_request(_doc(instance=doc), algorithms=_ALGOS)
        assert req.instance is not None
        assert req.instance.content_hash() == sub.content_hash()

    @pytest.mark.parametrize(
        "bad",
        [{"edges": [[0, 1]]}, "not a hio document", 42, [1, 2, 3]],
    )
    def test_bad_instances_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_solve_request(_doc(instance=bad), algorithms=_ALGOS)


class TestParseSolveRequest:
    def test_happy_path_fills_hash(self):
        req = parse_solve_request(_doc(id="r1", deadline_ms=250), algorithms=_ALGOS)
        assert isinstance(req, SolveRequest)
        assert req.id == "r1"
        assert req.algorithm == "bl"
        assert req.seed == 7
        assert req.content_hash == _H.content_hash()
        assert req.deadline_ms == 250.0
        assert req.verify is True

    def test_missing_algorithm(self):
        with pytest.raises(ProtocolError, match="missing 'algorithm'"):
            parse_solve_request({"instance": encode_instance(_H)}, algorithms=_ALGOS)

    def test_unknown_algorithm_lists_known(self):
        with pytest.raises(ProtocolError, match="unknown algorithm 'nope'"):
            parse_solve_request(_doc(algorithm="nope"), algorithms=_ALGOS)

    def test_needs_instance_or_hash(self):
        with pytest.raises(ProtocolError, match="'instance' or 'content_hash'"):
            parse_solve_request({"algorithm": "bl"}, algorithms=_ALGOS)

    def test_hash_only_request(self):
        req = parse_solve_request(
            {"algorithm": "bl", "content_hash": "abc123"}, algorithms=_ALGOS
        )
        assert req.instance is None
        assert req.content_hash == "abc123"

    def test_hash_cross_check(self):
        with pytest.raises(ProtocolError, match="content_hash mismatch"):
            parse_solve_request(_doc(content_hash="wrong"), algorithms=_ALGOS)

    def test_matching_hash_accepted(self):
        req = parse_solve_request(
            _doc(content_hash=_H.content_hash()), algorithms=_ALGOS
        )
        assert req.content_hash == _H.content_hash()

    @pytest.mark.parametrize("seed", ["7", 1.5, True, None])
    def test_bad_seed_types(self, seed):
        with pytest.raises(ProtocolError, match="'seed'"):
            parse_solve_request(_doc(seed=seed), algorithms=_ALGOS)

    @pytest.mark.parametrize("deadline", [0, -5, "fast", True])
    def test_bad_deadlines(self, deadline):
        with pytest.raises(ProtocolError):
            parse_solve_request(_doc(deadline_ms=deadline), algorithms=_ALGOS)

    def test_int_id_coerced_to_str(self):
        req = parse_solve_request(_doc(id=42), algorithms=_ALGOS)
        assert req.id == "42"

    def test_bad_id_type(self):
        with pytest.raises(ProtocolError, match="'id'"):
            parse_solve_request(_doc(id=[1]), algorithms=_ALGOS)

    def test_default_id_used_when_absent(self):
        req = parse_solve_request(_doc(), algorithms=_ALGOS, default_id="auto-3")
        assert req.id == "auto-3"


class TestResponses:
    def test_ok_response_spreads_payload(self):
        req = parse_solve_request(_doc(id="r9"), algorithms=_ALGOS)
        payload = {"mis_size": 4, "independent_set": [0, 2, 5, 8], "num_rounds": 2}
        response = ok_response(req, payload, cached=True, coalesced=False, wall_ms=1.2345)
        assert response["status"] == "ok"
        assert response["id"] == "r9"
        assert response["mis_size"] == 4
        assert response["independent_set"] == [0, 2, 5, 8]
        assert response["cached"] is True
        assert response["coalesced"] is False
        assert response["wall_ms"] == 1.234
        json.dumps(response)  # must be wire-serialisable as-is

    @pytest.mark.parametrize("status", ERROR_STATUSES)
    def test_error_statuses_accepted(self, status):
        response = error_response("r1", status, "why", retry=True)
        assert response == {"id": "r1", "status": status, "error": "why", "retry": True}

    def test_unknown_error_status_asserts(self):
        with pytest.raises(AssertionError):
            error_response("r1", "ok", "not an error status")
