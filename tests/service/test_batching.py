"""MicroBatcher: coalescing, admission control, deadlines at dispatch."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import metrics
from repro.service.batching import MicroBatcher, QueueFull, Waiter


def _waiter(request_id: str = "r", expires_at: float | None = None) -> Waiter:
    return Waiter(
        request_id=request_id,
        future=asyncio.get_running_loop().create_future(),
        expires_at=expires_at,
        t_arrival_ns=0,
    )


def _run(coro):
    return asyncio.run(coro)


class TestSubmit:
    def test_first_submit_builds_work_once(self):
        async def main():
            batcher = MicroBatcher(window_s=0)
            built = []
            coalesced = batcher.submit(("h", "bl", 0), _waiter("a"), lambda: built.append(1))
            assert coalesced is False
            assert built == [1]
            assert batcher.depth == 1
            assert batcher.pending_requests == 1

        _run(main())

    def test_duplicate_coalesces_without_new_work(self):
        async def main():
            with metrics.isolated_registry() as registry:
                batcher = MicroBatcher(window_s=0)
                built = []
                key = ("h", "bl", 0)
                batcher.submit(key, _waiter("a"), lambda: built.append(1) or "work")
                w2 = _waiter("b")
                assert batcher.submit(key, w2, lambda: built.append(2)) is True
                assert w2.coalesced is True
                assert built == [1]  # second make_work never called
                assert batcher.depth == 1
                assert batcher.pending_requests == 2
                counters = registry.snapshot()["counters"]
            assert counters["service/coalesced"] == 1

        _run(main())

    def test_distinct_keys_do_not_coalesce(self):
        async def main():
            batcher = MicroBatcher(window_s=0)
            batcher.submit(("h", "bl", 0), _waiter(), lambda: "w0")
            batcher.submit(("h", "bl", 1), _waiter(), lambda: "w1")
            batcher.submit(("g", "bl", 0), _waiter(), lambda: "w2")
            assert batcher.depth == 3

        _run(main())

    def test_inflight_cell_still_coalesces(self):
        async def main():
            batcher = MicroBatcher(window_s=0)
            key = ("h", "bl", 0)
            batcher.submit(key, _waiter("a"), lambda: "work")
            cells, _ = await batcher.take_batch()
            assert batcher.inflight == 1 and batcher.pending_requests == 0
            late = _waiter("late")
            assert batcher.submit(key, late, lambda: "never") is True
            # in-flight coalescers don't count against admission
            assert batcher.pending_requests == 0
            waiters = batcher.resolve(cells[0])
            assert [w.request_id for w in waiters] == ["a", "late"]
            assert batcher.inflight == 0

        _run(main())


class TestAdmission:
    def test_queue_full_past_bound(self):
        async def main():
            with metrics.isolated_registry() as registry:
                batcher = MicroBatcher(window_s=0, max_pending=2)
                batcher.submit(("h", "bl", 0), _waiter(), lambda: "w")
                batcher.submit(("h", "bl", 1), _waiter(), lambda: "w")
                with pytest.raises(QueueFull, match="limit 2"):
                    batcher.submit(("h", "bl", 2), _waiter(), lambda: "w")
                # rejection left no partial state behind
                assert batcher.depth == 2 and batcher.pending_requests == 2
                counters = registry.snapshot()["counters"]
            assert counters["service/rejected"] == 1

        _run(main())

    def test_coalescing_bypasses_the_bound(self):
        async def main():
            batcher = MicroBatcher(window_s=0, max_pending=1)
            key = ("h", "bl", 0)
            batcher.submit(key, _waiter(), lambda: "w")
            # a duplicate of a queued cell is absorbed even at the bound
            assert batcher.submit(key, _waiter(), lambda: "w") is True

        _run(main())

    @pytest.mark.parametrize("kwargs", [{"max_batch": 0}, {"max_pending": 0}])
    def test_bad_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(window_s=0, **kwargs)


class TestTakeBatch:
    def test_moves_cells_inflight(self):
        async def main():
            batcher = MicroBatcher(window_s=0)
            batcher.submit(("h", "bl", 0), _waiter(), lambda: "w0")
            batcher.submit(("h", "bl", 1), _waiter(), lambda: "w1")
            cells, expired = await batcher.take_batch()
            assert [c.work for c in cells] == ["w0", "w1"]
            assert expired == []
            assert batcher.depth == 0
            assert batcher.inflight == 2
            assert batcher.pending_requests == 0

        _run(main())

    def test_max_batch_leaves_remainder_queued(self):
        async def main():
            batcher = MicroBatcher(window_s=0, max_batch=2)
            for seed in range(5):
                batcher.submit(("h", "bl", seed), _waiter(), lambda: "w")
            first, _ = await batcher.take_batch()
            assert len(first) == 2 and batcher.depth == 3
            # the event stays set, so the next take does not block
            second, _ = await asyncio.wait_for(batcher.take_batch(), timeout=1)
            third, _ = await asyncio.wait_for(batcher.take_batch(), timeout=1)
            assert len(second) == 2 and len(third) == 1
            assert batcher.depth == 0

        _run(main())

    def test_waits_for_work(self):
        async def main():
            batcher = MicroBatcher(window_s=0)
            take = asyncio.create_task(batcher.take_batch())
            await asyncio.sleep(0.01)
            assert not take.done()
            batcher.submit(("h", "bl", 0), _waiter(), lambda: "w")
            cells, _ = await asyncio.wait_for(take, timeout=1)
            assert len(cells) == 1

        _run(main())


class TestDeadlines:
    def test_expired_waiters_returned_not_dispatched(self):
        async def main():
            with metrics.isolated_registry() as registry:
                batcher = MicroBatcher(window_s=0)
                key = ("h", "bl", 0)
                batcher.submit(key, _waiter("live", expires_at=100.0), lambda: "w")
                batcher.submit(key, _waiter("stale", expires_at=1.0), lambda: "w")
                cells, expired = await batcher.take_batch(clock=lambda: 50.0)
                assert [w.request_id for w in expired] == ["stale"]
                assert len(cells) == 1
                assert [w.request_id for w in cells[0].waiters] == ["live"]
                counters = registry.snapshot()["counters"]
            assert counters["service/deadline_expired"] == 1

        _run(main())

    def test_all_expired_cell_is_dropped(self):
        async def main():
            with metrics.isolated_registry() as registry:
                batcher = MicroBatcher(window_s=0)
                batcher.submit(("h", "bl", 0), _waiter("s1", expires_at=1.0), lambda: "w")
                batcher.submit(("h", "bl", 1), _waiter("ok", expires_at=None), lambda: "w")
                cells, expired = await batcher.take_batch(clock=lambda: 50.0)
                # the dead cell never reaches dispatch or in-flight state
                assert [w.request_id for w in expired] == ["s1"]
                assert [w.request_id for c in cells for w in c.waiters] == ["ok"]
                assert batcher.inflight == 1
                counters = registry.snapshot()["counters"]
            assert counters["service/cells_expired"] == 1

        _run(main())

    def test_no_deadline_never_expires(self):
        async def main():
            batcher = MicroBatcher(window_s=0)
            batcher.submit(("h", "bl", 0), _waiter(expires_at=None), lambda: "w")
            cells, expired = await batcher.take_batch(clock=lambda: 1e12)
            assert len(cells) == 1 and expired == []

        _run(main())
