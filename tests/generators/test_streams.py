"""Streamed-update generators: determinism, bias knobs, replay validity."""

from __future__ import annotations

import numpy as np

from repro.generators import churn_stream, sharded_hypergraph, uniform_hypergraph
from repro.generators.streams import UpdateBatch
from repro.hypergraph import Hypergraph, apply_updates


def test_sharded_block_structure():
    H = sharded_hypergraph(4, 10, 12, 3, seed=1)
    assert H.universe == 40
    for e in H.edges:
        blocks = {v // 10 for v in e}
        assert len(blocks) == 1  # every edge lives inside one block
    # Every block contributed edges.
    assert {e[0] // 10 for e in H.edges} == {0, 1, 2, 3}


def test_sharded_determinism():
    a = sharded_hypergraph(3, 8, 10, 2, seed=5)
    b = sharded_hypergraph(3, 8, 10, 2, seed=5)
    c = sharded_hypergraph(3, 8, 10, 2, seed=6)
    assert a.content_hash() == b.content_hash()
    assert a.content_hash() != c.content_hash()


def test_churn_determinism():
    H = uniform_hypergraph(30, 40, 3, seed=2)
    kw = dict(batch_edges=5, arrival_fraction=0.5, adversarial_fraction=0.3)
    a = churn_stream(H, 6, seed=9, **kw)
    b = churn_stream(H, 6, seed=9, **kw)
    c = churn_stream(H, 6, seed=10, **kw)
    assert a == b
    assert a != c
    assert all(isinstance(x, UpdateBatch) for x in a)


def test_pure_arrivals_and_departures():
    H = uniform_hypergraph(25, 30, 3, seed=3)
    arrivals = churn_stream(H, 5, seed=4, batch_edges=4, arrival_fraction=1.0)
    assert all(not b.remove_edges for b in arrivals)
    assert all(len(b.add_edges) == 4 for b in arrivals)
    departures = churn_stream(H, 5, seed=4, batch_edges=4, arrival_fraction=0.0)
    assert all(not b.add_edges for b in departures)


def test_departures_from_empty_start_are_forced_arrivals():
    H = Hypergraph(10, [])
    batches = churn_stream(H, 3, seed=7, batch_edges=1, arrival_fraction=0.0)
    # Nothing to remove at the start: the first event must arrive.
    assert batches[0].add_edges


def test_hot_region_bias_confines_arrivals():
    H = Hypergraph(200, [])
    batches = churn_stream(
        H,
        8,
        seed=11,
        batch_edges=4,
        arrival_fraction=1.0,
        hot_fraction=1.0,
        hot_window=0.1,
    )
    touched = sorted({v for b in batches for e in b.add_edges for v in e})
    span = touched[-1] - touched[0] + 1
    assert span <= int(np.ceil(0.1 * 200))


def test_uniform_arrivals_are_not_confined():
    H = Hypergraph(200, [])
    batches = churn_stream(
        H, 8, seed=11, batch_edges=4, arrival_fraction=1.0, hot_fraction=0.0
    )
    touched = sorted({v for b in batches for e in b.add_edges for v in e})
    assert touched[-1] - touched[0] + 1 > int(np.ceil(0.1 * 200))


def test_adversarial_arrivals_are_dups_or_supersets():
    H = uniform_hypergraph(30, 40, 3, seed=13)
    batches = churn_stream(
        H, 6, seed=14, batch_edges=3, arrival_fraction=1.0, adversarial_fraction=1.0
    )
    present = set(H.edges)
    for b in batches:
        for e in b.add_edges:
            is_dup = e in present
            is_superset = any(
                set(p) < set(e) and len(e) == len(p) + 1 for p in present
            )
            assert is_dup or is_superset, e
            present.add(e)


def test_batches_replay_strictly():
    # Every departure removes a genuinely present edge, so the whole
    # stream replays through apply_updates with strict=True.
    H = uniform_hypergraph(25, 30, 3, seed=15)
    batches = churn_stream(
        H,
        10,
        seed=16,
        batch_edges=4,
        arrival_fraction=0.5,
        hot_fraction=0.5,
        adversarial_fraction=0.4,
    )
    state, chain = H, None
    for b in batches:
        out = apply_updates(
            state, b.add_edges, b.remove_edges, parent_chain=chain, strict=True
        )
        state, chain = out.hypergraph, out.chain
    assert state.num_edges >= 0  # reached the end without a strict violation


def test_custom_dimension():
    H = Hypergraph(20, [])
    batches = churn_stream(
        H, 4, seed=17, batch_edges=3, arrival_fraction=1.0, dimension=4
    )
    assert all(len(e) == 4 for b in batches for e in b.add_edges)


def test_num_events():
    b = UpdateBatch(add_edges=((0, 1),), remove_edges=((2, 3), (4, 5)))
    assert b.num_events == 3
