"""Tests for linear hypergraph generation."""

from __future__ import annotations

import itertools

import pytest

from repro.core.linear_mis import is_linear
from repro.generators import partial_steiner_triples, random_linear_hypergraph


def pairwise_intersections_ok(H) -> bool:
    return all(
        len(set(a) & set(b)) <= 1 for a, b in itertools.combinations(H.edges, 2)
    )


class TestRandomLinear:
    def test_linearity(self):
        H = random_linear_hypergraph(40, 25, 3, seed=0)
        assert pairwise_intersections_ok(H)
        assert is_linear(H)

    def test_requested_count(self):
        H = random_linear_hypergraph(40, 25, 3, seed=0)
        assert H.num_edges == 25

    def test_uniform_size(self):
        H = random_linear_hypergraph(30, 10, 4, seed=1)
        assert all(len(e) == 4 for e in H.edges)

    def test_deterministic(self):
        assert random_linear_hypergraph(30, 10, 3, seed=7) == random_linear_hypergraph(
            30, 10, 3, seed=7
        )

    def test_over_budget_raises(self):
        # C(6,2)/C(3,2) = 15/3 = 5 max edges
        with pytest.raises(ValueError, match="at most"):
            random_linear_hypergraph(6, 6, 3, seed=0)

    def test_stall_raises_runtime(self):
        # budget says 5 is possible but random probing at the exact
        # packing limit stalls with a tiny attempt budget
        with pytest.raises((RuntimeError, ValueError)):
            random_linear_hypergraph(6, 5, 3, seed=0, max_attempts_factor=1)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            random_linear_hypergraph(10, 2, 1)
        with pytest.raises(ValueError):
            random_linear_hypergraph(3, 1, 4)


class TestPartialSteiner:
    def test_linear_and_dense(self):
        H = partial_steiner_triples(15, seed=0)
        assert pairwise_intersections_ok(H)
        # a decent packing: at least half the theoretical budget
        assert H.num_edges >= (15 * 14 // 2) // 3 // 2

    def test_small_n(self):
        H = partial_steiner_triples(3, seed=0)
        assert H.num_edges == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            partial_steiner_triples(2)
