"""Tests for random hypergraph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import (
    bounded_edges_instance,
    mixed_dimension_hypergraph,
    sparse_random_graph,
    uniform_hypergraph,
)
from repro.theory.parameters import sbl_parameters


class TestUniform:
    def test_sizes(self):
        H = uniform_hypergraph(30, 20, 3, seed=0)
        assert H.num_vertices == 30
        assert H.num_edges == 20
        assert all(len(e) == 3 for e in H.edges)

    def test_deterministic(self):
        a = uniform_hypergraph(30, 20, 3, seed=5)
        b = uniform_hypergraph(30, 20, 3, seed=5)
        assert a == b

    def test_seeds_differ(self):
        a = uniform_hypergraph(30, 20, 3, seed=1)
        b = uniform_hypergraph(30, 20, 3, seed=2)
        assert a != b

    def test_edges_distinct(self):
        H = uniform_hypergraph(10, 30, 3, seed=0)
        assert len(set(H.edges)) == 30

    def test_all_edges_possible(self):
        # exactly C(5,2)=10 distinct pairs
        H = uniform_hypergraph(5, 10, 2, seed=0)
        assert H.num_edges == 10

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            uniform_hypergraph(5, 11, 2, seed=0)

    def test_edge_size_exceeds_n_raises(self):
        with pytest.raises(ValueError):
            uniform_hypergraph(3, 1, 4)

    def test_zero_edges(self):
        assert uniform_hypergraph(5, 0, 2).num_edges == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            uniform_hypergraph(0, 1, 1)
        with pytest.raises(ValueError):
            uniform_hypergraph(5, -1, 2)
        with pytest.raises(ValueError):
            uniform_hypergraph(5, 1, 0)

    def test_dense_regime_path(self):
        # size > n//4 triggers the per-row choice path
        H = uniform_hypergraph(8, 5, 5, seed=3)
        assert all(len(e) == 5 for e in H.edges)


class TestMixedDimension:
    def test_sizes_from_dims(self):
        H = mixed_dimension_hypergraph(40, 60, [2, 4], seed=0)
        assert set(len(e) for e in H.edges) <= {2, 4}

    def test_weights_respected(self):
        H = mixed_dimension_hypergraph(60, 300, [2, 5], weights=[0, 1], seed=0)
        assert all(len(e) == 5 for e in H.edges)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            mixed_dimension_hypergraph(10, 5, [2, 3], weights=[1], seed=0)
        with pytest.raises(ValueError):
            mixed_dimension_hypergraph(10, 5, [2, 3], weights=[0, 0], seed=0)

    def test_empty_dims(self):
        with pytest.raises(ValueError):
            mixed_dimension_hypergraph(10, 5, [])

    def test_dims_out_of_range(self):
        with pytest.raises(ValueError):
            mixed_dimension_hypergraph(4, 3, [5])

    def test_deterministic(self):
        a = mixed_dimension_hypergraph(30, 40, [2, 3], seed=9)
        b = mixed_dimension_hypergraph(30, 40, [2, 3], seed=9)
        assert a == b


class TestBoundedEdges:
    def test_within_quadratic_cap(self):
        H = bounded_edges_instance(64, seed=0)
        assert H.num_edges <= 64 * 64

    def test_contains_big_edges(self):
        H = bounded_edges_instance(256, seed=0, beta_fraction=5.0, big_edge_fraction=0.3)
        assert H.dimension >= int(np.sqrt(256)) - 1

    def test_no_big_edges_when_zero_fraction(self):
        H = bounded_edges_instance(256, seed=0, beta_fraction=5.0, big_edge_fraction=0.0)
        assert H.dimension <= 6

    def test_m_tracks_beta(self):
        n = 1024
        params = sbl_parameters(n)
        H = bounded_edges_instance(n, seed=0, beta_fraction=1.0)
        # dedupe can shrink slightly; never exceed the target
        assert H.num_edges <= max(4, int(n**params.beta))

    def test_invalid(self):
        with pytest.raises(ValueError):
            bounded_edges_instance(2)
        with pytest.raises(ValueError):
            bounded_edges_instance(64, big_edge_fraction=1.5)


class TestSparseGraph:
    def test_two_uniform(self):
        H = sparse_random_graph(50, 4.0, seed=0)
        assert all(len(e) == 2 for e in H.edges)

    def test_mean_degree(self):
        H = sparse_random_graph(400, 6.0, seed=0)
        assert abs(2 * H.num_edges / 400 - 6.0) < 0.5

    def test_degree_capped_by_complete(self):
        H = sparse_random_graph(5, 100.0, seed=0)
        assert H.num_edges == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            sparse_random_graph(1, 2.0)
        with pytest.raises(ValueError):
            sparse_random_graph(10, -1.0)
