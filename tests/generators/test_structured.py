"""Tests for structured hypergraph families."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.generators import (
    complete_uniform,
    matching_hypergraph,
    star_hypergraph,
    sunflower,
    tight_cycle,
    tight_path,
)
from repro.hypergraph import is_maximal_independent
from repro.core import greedy_mis


class TestSunflower:
    def test_structure(self):
        H = sunflower(2, 3, 4)
        assert H.num_vertices == 2 + 12
        assert H.num_edges == 3
        assert all(len(e) == 6 for e in H.edges)
        core = {0, 1}
        petals = [set(e) - core for e in H.edges]
        for a, b in itertools.combinations(petals, 2):
            assert not (a & b)

    def test_core_shared(self):
        H = sunflower(3, 5, 2)
        for e in H.edges:
            assert {0, 1, 2} <= set(e)

    def test_invalid(self):
        with pytest.raises(ValueError):
            sunflower(0, 1, 1)


class TestMatching:
    def test_structure(self):
        H = matching_hypergraph(4, 3)
        assert H.num_edges == 4
        assert H.num_vertices == 12
        all_vs = [v for e in H.edges for v in e]
        assert len(all_vs) == len(set(all_vs))

    def test_mis_size_exact(self):
        H = matching_hypergraph(5, 3)
        res = greedy_mis(H, seed=0)
        assert res.size == 15 - 5  # drop exactly one vertex per block

    def test_zero_blocks(self):
        assert matching_hypergraph(0, 3).num_edges == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            matching_hypergraph(2, 0)


class TestStar:
    def test_structure(self):
        H = star_hypergraph(5, 3)
        assert H.num_edges == 5
        assert all(0 in e and len(e) == 3 for e in H.edges)

    def test_leaves_form_mis(self):
        H = star_hypergraph(6, 2)
        leaves = list(range(1, 7))
        assert is_maximal_independent(H, leaves)

    def test_invalid(self):
        with pytest.raises(ValueError):
            star_hypergraph(0)
        with pytest.raises(ValueError):
            star_hypergraph(3, 1)


class TestCompleteUniform:
    def test_edge_count(self):
        H = complete_uniform(6, 3)
        assert H.num_edges == math.comb(6, 3)

    def test_mis_size_is_d_minus_1(self):
        H = complete_uniform(7, 3)
        res = greedy_mis(H, seed=1)
        assert res.size == 2

    def test_d_equals_n(self):
        H = complete_uniform(4, 4)
        assert H.num_edges == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            complete_uniform(3, 4)


class TestTightPathCycle:
    def test_path_edges(self):
        H = tight_path(6, 3)
        assert H.edges == ((0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5))

    def test_cycle_edge_count(self):
        H = tight_cycle(8, 3)
        assert H.num_edges == 8

    def test_cycle_wraps(self):
        H = tight_cycle(5, 2)
        assert (0, 4) in H.edges

    def test_invalid(self):
        with pytest.raises(ValueError):
            tight_path(5, 1)
        with pytest.raises(ValueError):
            tight_cycle(5, 5)

    def test_path_max_degree(self):
        H = tight_path(10, 3)
        assert H.max_degree() == 3
