"""Tests for the planted-MIS generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import beame_luby, greedy_mis
from repro.generators.planted import planted_mis_instance
from repro.hypergraph import check_mis, is_maximal_independent


class TestCertificate:
    @pytest.mark.parametrize("seed", range(5))
    def test_planted_set_is_mis(self, seed):
        H, planted = planted_mis_instance(60, 40, 3, seed=seed)
        check_mis(H, planted)

    @pytest.mark.parametrize("frac", [0.2, 0.5, 0.8])
    def test_fractions(self, frac):
        H, planted = planted_mis_instance(50, 20, 3, seed=0, planted_fraction=frac)
        assert is_maximal_independent(H, planted)
        assert abs(planted.size - 50 * frac) <= 1

    def test_large_d(self):
        H, planted = planted_mis_instance(40, 10, 6, seed=1)
        check_mis(H, planted)

    def test_d_exceeding_planted_size_clamps(self):
        H, planted = planted_mis_instance(10, 0, 8, seed=0, planted_fraction=0.2)
        check_mis(H, planted)

    def test_invalid(self):
        with pytest.raises(ValueError):
            planted_mis_instance(10, 0, 1)
        with pytest.raises(ValueError):
            planted_mis_instance(10, 0, 3, planted_fraction=0.0)
        with pytest.raises(ValueError):
            planted_mis_instance(10, 0, 3, planted_fraction=1.0)

    def test_deterministic(self):
        a = planted_mis_instance(30, 10, 3, seed=4)
        b = planted_mis_instance(30, 10, 3, seed=4)
        assert a[0] == b[0]
        assert np.array_equal(a[1], b[1])


class TestAlgorithmsOnPlanted:
    def test_solver_outputs_valid_even_if_different(self):
        H, planted = planted_mis_instance(60, 40, 3, seed=2)
        res = beame_luby(H, seed=2)
        check_mis(H, res.independent_set)

    def test_greedy_seeded_with_planted_order_recovers_it(self):
        """Scanning planted vertices first must recover exactly the planted set."""
        H, planted = planted_mis_instance(40, 25, 3, seed=3)
        rest = np.setdiff1d(H.vertices, planted)
        order = np.concatenate([planted, rest])
        res = greedy_mis(H, order=order)
        assert np.array_equal(res.independent_set, planted)
