"""Tests for repro.util.rng — deterministic generator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators, spawn_seeds, stream


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(8)
        b = as_generator(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(8)
        b = as_generator(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_identity(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).random(4)
        b = as_generator(np.random.SeedSequence(7)).random(4)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_tuple_seed_supported(self):
        a = as_generator((1, 2)).random(4)
        b = as_generator((1, 2)).random(4)
        assert np.array_equal(a, b)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_independent(self):
        s1, s2 = spawn_seeds(123, 2)
        a = np.random.default_rng(s1).random(16)
        b = np.random.default_rng(s2).random(16)
        assert not np.array_equal(a, b)

    def test_deterministic_across_calls(self):
        a = [np.random.default_rng(s).random(4) for s in spawn_seeds(9, 3)]
        b = [np.random.default_rng(s).random(4) for s in spawn_seeds(9, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_from_generator_deterministic(self):
        g1 = np.random.default_rng(5)
        g2 = np.random.default_rng(5)
        a = np.random.default_rng(spawn_seeds(g1, 1)[0]).random(4)
        b = np.random.default_rng(spawn_seeds(g2, 1)[0]).random(4)
        assert np.array_equal(a, b)

    def test_from_seed_sequence(self):
        root = np.random.SeedSequence(11)
        kids = spawn_seeds(root, 3)
        assert len(kids) == 3


class TestSpawnGenerators:
    def test_returns_generators(self):
        gens = spawn_generators(0, 3)
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_streams_differ(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(16), g2.random(16))


class TestStream:
    def test_prefix_stability(self):
        """Round i's generator must not depend on how many rounds run."""
        s1 = stream(77)
        s2 = stream(77)
        a = [next(s1).random(4) for _ in range(5)]
        b = [next(s2).random(4) for _ in range(2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_distinct_rounds_distinct_draws(self):
        s = stream(3)
        a, b = next(s).random(16), next(s).random(16)
        assert not np.array_equal(a, b)

    def test_stream_from_generator_is_deterministic(self):
        a = next(stream(np.random.default_rng(1))).random(4)
        b = next(stream(np.random.default_rng(1))).random(4)
        assert np.array_equal(a, b)
