"""Tests for repro.util.bitset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.bitset import Bitset


class TestConstruction:
    def test_empty(self):
        b = Bitset(10)
        assert len(b) == 0
        assert b.universe == 10

    def test_with_members(self):
        b = Bitset(8, [1, 3, 5])
        assert sorted(b) == [1, 3, 5]

    def test_duplicate_members_collapse(self):
        b = Bitset(8, [2, 2, 2])
        assert len(b) == 1

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Bitset(4, [4])
        with pytest.raises(IndexError):
            Bitset(4, [-1])

    def test_negative_universe_raises(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_full(self):
        b = Bitset.full(5)
        assert len(b) == 5

    def test_from_mask_copies(self):
        mask = np.array([True, False, True])
        b = Bitset.from_mask(mask)
        mask[1] = True
        assert 1 not in b


class TestMembership:
    def test_contains(self):
        b = Bitset(6, [0, 5])
        assert 0 in b and 5 in b and 3 not in b

    def test_out_of_universe_not_contained(self):
        b = Bitset(6, [0])
        assert 99 not in b and -1 not in b

    def test_iteration_sorted(self):
        b = Bitset(10, [7, 2, 9])
        assert list(b) == [2, 7, 9]


class TestMutation:
    def test_add_discard(self):
        b = Bitset(5)
        b.add(3)
        assert 3 in b
        b.discard(3)
        assert 3 not in b

    def test_discard_missing_noop(self):
        b = Bitset(5)
        b.discard(2)  # no error
        assert len(b) == 0

    def test_update_bulk(self):
        b = Bitset(10)
        b.update(np.array([1, 2, 3]))
        assert len(b) == 3

    def test_difference_update(self):
        b = Bitset(10, range(10))
        b.difference_update([0, 9])
        assert sorted(b) == list(range(1, 9))


class TestAlgebra:
    def test_union(self):
        a, b = Bitset(6, [0, 1]), Bitset(6, [1, 2])
        assert sorted(a.union(b)) == [0, 1, 2]

    def test_intersection(self):
        a, b = Bitset(6, [0, 1]), Bitset(6, [1, 2])
        assert sorted(a.intersection(b)) == [1]

    def test_difference(self):
        a, b = Bitset(6, [0, 1]), Bitset(6, [1, 2])
        assert sorted(a.difference(b)) == [0]

    def test_issubset(self):
        assert Bitset(6, [1]).issubset(Bitset(6, [0, 1]))
        assert not Bitset(6, [2]).issubset(Bitset(6, [0, 1]))

    def test_isdisjoint(self):
        assert Bitset(6, [0]).isdisjoint(Bitset(6, [1]))
        assert not Bitset(6, [0, 1]).isdisjoint(Bitset(6, [1]))

    def test_universe_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitset(4).union(Bitset(5))

    def test_equality(self):
        assert Bitset(4, [1]) == Bitset(4, [1])
        assert Bitset(4, [1]) != Bitset(4, [2])
        assert Bitset(4, [1]) != Bitset(5, [1])


class TestConversions:
    def test_indices_dtype_and_order(self):
        idx = Bitset(9, [8, 0, 4]).indices()
        assert idx.tolist() == [0, 4, 8]

    def test_to_set(self):
        assert Bitset(5, [1, 2]).to_set() == {1, 2}

    def test_copy_is_independent(self):
        a = Bitset(5, [1])
        b = a.copy()
        b.add(2)
        assert 2 not in a

    def test_mask_readonly(self):
        b = Bitset(4, [1])
        with pytest.raises(ValueError):
            b.mask[0] = True

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitset(3))
