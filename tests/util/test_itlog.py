"""Tests for repro.util.itlog — iterated logarithms."""

from __future__ import annotations

import math

import pytest

from repro.util.itlog import ilog, log2_ceil, log_base, loglog, logloglog


class TestLogBase:
    def test_base2(self):
        assert log_base(8) == pytest.approx(3.0)

    def test_custom_base(self):
        assert log_base(100, 10) == pytest.approx(2.0)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            log_base(0)
        with pytest.raises(ValueError):
            log_base(-3)


class TestLogLog:
    def test_tower(self):
        # log2(log2(2^16)) = log2(16) = 4
        assert loglog(2**16) == pytest.approx(4.0)

    def test_floor_clamp(self):
        # log2(log2(2)) = log2(1) = 0 → clamped to 1
        assert loglog(2.0) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            loglog(1.0)

    def test_no_clamp_when_disabled(self):
        assert loglog(2.0, floor=-math.inf) == pytest.approx(0.0)


class TestLogLogLog:
    def test_tower(self):
        # log2^3(2^(2^16)) would need huge n; use 2^256: log2=256, loglog=8, logloglog=3
        assert logloglog(2.0**256) == pytest.approx(3.0)

    def test_floor(self):
        assert logloglog(4.0) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            logloglog(1.0)


class TestIlog:
    def test_matches_specialisations(self):
        n = 2.0**64
        assert ilog(n, 1) == pytest.approx(64.0)
        assert ilog(n, 2) == pytest.approx(loglog(n))
        assert ilog(n, 3) == pytest.approx(logloglog(n))

    def test_floor_engages(self):
        assert ilog(4.0, 3) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ilog(16.0, 0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ilog(1.0, 1)


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10), (1025, 11)],
    )
    def test_values(self, n, expected):
        assert log2_ceil(n) == expected

    def test_matches_math(self):
        for n in range(1, 300):
            assert log2_ceil(n) == math.ceil(math.log2(n))

    def test_invalid(self):
        with pytest.raises(ValueError):
            log2_ceil(0)
