"""Execute every docstring example in the library.

Keeps the examples in the API docs honest: a drifting docstring fails the
suite, not a reader.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    mods = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mods.append(info.name)
    return mods


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
