"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.hypergraph.hio import load


@pytest.fixture
def instance(tmp_path):
    path = tmp_path / "inst.txt"
    rc = main(["generate", "uniform", "--n", "40", "--m", "60", "--d", "3",
               "--seed", "1", "-o", str(path)])
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_parsable_instance(self, instance):
        H = load(instance)
        assert H.num_vertices == 40
        assert H.num_edges == 60

    def test_stdout_output(self, capsys):
        rc = main(["generate", "graph", "--n", "10", "--avg-degree", "2", "-o", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("universe 10")

    @pytest.mark.parametrize("family,extra", [
        ("mixed", ["--m", "20", "--dims", "2,4"]),
        ("linear", ["--m", "10", "--d", "3"]),
        ("bounded", []),
    ])
    def test_families(self, tmp_path, family, extra):
        path = tmp_path / "x.txt"
        rc = main(["generate", family, "--n", "50", *extra, "--seed", "0",
                   "-o", str(path)])
        assert rc == 0
        assert load(path).num_vertices >= 1

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        for p in (a, b):
            main(["generate", "uniform", "--n", "20", "--m", "15", "--seed", "9",
                  "-o", str(p)])
        assert a.read_text() == b.read_text()


class TestInfo:
    def test_prints_stats(self, instance, capsys):
        assert main(["info", str(instance)]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "40" in out
        assert "Δ" in out

    def test_high_dimension_skips_delta(self, tmp_path, capsys):
        # dimension 13 exceeds the enumerable-Δ display cutoff
        path = tmp_path / "big.txt"
        path.write_text("universe 20\n" + " ".join(str(v) for v in range(13)) + "\n")
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Δ" not in out
        assert "13" in out  # dimension shown

    def test_edgeless_instance(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("universe 5\n")
        assert main(["info", str(path)]) == 0
        assert "edges" in capsys.readouterr().out


class TestSolve:
    @pytest.mark.parametrize("algo", ["sbl", "bl", "kuw", "greedy", "permutation"])
    def test_algorithms(self, instance, capsys, algo):
        assert main(["solve", str(instance), "--algorithm", algo, "--seed", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mis_size"] == len(doc["independent_set"])
        assert doc["n"] == 40

    def test_costs_flag(self, instance, capsys):
        assert main(["solve", str(instance), "--algorithm", "bl", "--costs"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pram"]["depth"] > 0

    def test_pretty(self, instance, capsys):
        assert main(["solve", str(instance), "--pretty"]) == 0
        assert "\n  " in capsys.readouterr().out

    def test_luby_on_graph(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        main(["generate", "graph", "--n", "30", "--avg-degree", "3", "-o", str(path)])
        assert main(["solve", str(path), "--algorithm", "luby"]) == 0

    def test_linear_on_linear(self, tmp_path, capsys):
        path = tmp_path / "l.txt"
        main(["generate", "linear", "--n", "40", "--m", "15", "--d", "3",
              "-o", str(path)])
        assert main(["solve", str(path), "--algorithm", "linear"]) == 0


class TestCheck:
    def test_valid_set(self, instance, capsys):
        # get a valid MIS from solve, feed it to check
        main(["solve", str(instance), "--algorithm", "greedy", "--seed", "0"])
        doc = json.loads(capsys.readouterr().out)
        ids = ",".join(str(v) for v in doc["independent_set"])
        assert main(["check", str(instance), "--set", ids]) == 0
        assert "valid" in capsys.readouterr().out

    def test_not_maximal(self, instance, capsys):
        assert main(["check", str(instance), "--set", ""]) == 2
        assert "NOT maximal" in capsys.readouterr().out

    def test_not_independent(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        path.write_text("universe 3\n0 1\n")
        assert main(["check", str(path), "--set", "0,1"]) == 1
        assert "NOT independent" in capsys.readouterr().out


class TestCampaign:
    def test_summary_table(self, capsys):
        rc = main(["campaign", "--sizes", "30", "--algorithms", "greedy,kuw",
                   "--repeats", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign summary" in out and "greedy" in out and "kuw" in out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "runs.csv"
        rc = main(["campaign", "--sizes", "30", "--algorithms", "greedy",
                   "--repeats", "1", "--csv", str(path)])
        assert rc == 0
        assert path.read_text().startswith("instance,algorithm")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            main(["campaign", "--algorithms", "quantum"])


class TestSaveTrace:
    def test_trace_file_loadable(self, instance, tmp_path, capsys):
        from repro.analysis.traces import load_result

        path = tmp_path / "trace.json"
        rc = main(["solve", str(instance), "--algorithm", "bl",
                   "--save-trace", str(path)])
        assert rc == 0
        back = load_result(path)
        assert back.algorithm == "bl"
        assert back.num_rounds > 0


class TestTelemetry:
    def test_solve_streams_versioned_events(self, instance, tmp_path, capsys):
        from repro.obs.events import read_events

        path = tmp_path / "run.jsonl"
        rc = main(["solve", str(instance), "--algorithm", "sbl", "--seed", "2",
                   "--telemetry", str(path)])
        assert rc == 0
        events = read_events(path)
        assert events[0]["type"] == "run"
        assert events[0]["algorithm"] == "sbl"
        names = {e["name"] for e in events if e["type"] == "span"}
        assert "sbl/solve" in names
        assert any(e["type"] == "metrics" for e in events)
        # telemetry must not leak the pram block into stdout without --costs
        doc = json.loads(capsys.readouterr().out)
        assert "pram" not in doc

    def test_solve_telemetry_with_costs(self, instance, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        rc = main(["solve", str(instance), "--algorithm", "bl", "--costs",
                   "--telemetry", str(path)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pram"]["depth"] > 0

    def test_experiment_telemetry(self, tmp_path, capsys):
        from repro.obs.events import read_events

        path = tmp_path / "exp.jsonl"
        rc = main(["experiment", "E12", "--telemetry", str(path)])
        assert rc == 0
        events = read_events(path)
        assert events[0]["type"] == "run"
        assert events[0]["experiment"] == "E12"

    def test_trace_summary(self, instance, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["solve", str(instance), "--algorithm", "bl", "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bl/solve" in out and "per-phase rollup" in out

    def test_trace_compare(self, instance, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["solve", str(instance), "--algorithm", "bl", "--seed", "1",
              "--telemetry", str(a)])
        main(["solve", str(instance), "--algorithm", "bl", "--seed", "2",
              "--telemetry", str(b)])
        capsys.readouterr()
        assert main(["trace", "compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Δ wall" in out and "bl/solve" in out

    def test_trace_compare_disjoint_spans_fails_cleanly(
        self, instance, tmp_path, capsys
    ):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["solve", str(instance), "--algorithm", "bl", "--telemetry", str(a)])
        main(["solve", str(instance), "--algorithm", "kuw", "--telemetry", str(b)])
        capsys.readouterr()
        assert main(["trace", "compare", str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert "no span names" in err

    def test_trace_diff(self, instance, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["solve", str(instance), "--algorithm", "bl", "--seed", "1",
              "--telemetry", str(a)])
        main(["solve", str(instance), "--algorithm", "bl", "--seed", "2",
              "--telemetry", str(b)])
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Δself ms" in out and "bl/solve" in out

    def test_trace_diff_disjoint_fails_cleanly(self, instance, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["solve", str(instance), "--algorithm", "bl", "--telemetry", str(a)])
        main(["solve", str(instance), "--algorithm", "kuw", "--telemetry", str(b)])
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "no span paths" in capsys.readouterr().err

    def test_solve_profile_and_trace_flame(self, instance, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        speedscope = tmp_path / "prof.json"
        rc = main(["solve", str(instance), "--algorithm", "bl",
                   "--telemetry", str(path), "--profile", "300"])
        assert rc == 0
        capsys.readouterr()
        assert main(["trace", "flame", str(path),
                     "--speedscope", str(speedscope)]) == 0
        out = capsys.readouterr().out
        assert "samples by span" in out
        assert json.loads(speedscope.read_text())["profiles"]

    def test_trace_flame_without_profile_fails_cleanly(
        self, instance, tmp_path, capsys
    ):
        path = tmp_path / "run.jsonl"
        main(["solve", str(instance), "--algorithm", "bl", "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["trace", "flame", str(path)]) == 1
        assert "no profile events" in capsys.readouterr().err

    def test_campaign_heartbeat_and_metrics_out(self, tmp_path, capsys):
        from repro.obs.export import parse_openmetrics

        prom = tmp_path / "campaign.prom"
        rc = main(["campaign", "--sizes", "40", "--repeats", "2",
                   "--heartbeat", "0.05", "--metrics-out", str(prom)])
        assert rc == 0
        doc = parse_openmetrics(prom.read_text())
        assert doc.value("repro_exec_cells_done_total", command="campaign") == 6.0
        assert doc.value("repro_exec_cells_total", command="campaign") == 6.0
        assert doc.value("repro_exec_eta_s", command="campaign") == 0.0

    def test_metrics_out_without_heartbeat_writes_final_snapshot(
        self, tmp_path, capsys
    ):
        from repro.obs.export import parse_openmetrics

        prom = tmp_path / "campaign.prom"
        rc = main(["campaign", "--sizes", "40", "--repeats", "1",
                   "--metrics-out", str(prom)])
        assert rc == 0
        doc = parse_openmetrics(prom.read_text())
        assert doc.value("repro_exec_cells_done_total", command="campaign") == 3.0


class TestExperiment:
    def test_theory_experiment(self, capsys):
        assert main(["experiment", "E12"]) == 0
        assert "necessity" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["experiment", "A5"]) == 0
        assert "EREW" in capsys.readouterr().out

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError):
            main(["experiment", "E99"])


class TestFuzz:
    def test_run_case_budget_clean(self, tmp_path, capsys):
        rc = main(["fuzz", "run", "--budget", "12", "--seed", "0",
                   "-o", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "12 cases" in out and "clean" in out
        assert list(tmp_path.glob("*.npz")) == []

    def test_run_time_budget(self, tmp_path, capsys):
        rc = main(["fuzz", "run", "--budget", "500ms", "--seed", "0",
                   "-o", str(tmp_path)])
        assert rc == 0
        assert "budget=0.5s" in capsys.readouterr().out

    def test_run_solver_subset(self, tmp_path, capsys):
        rc = main(["fuzz", "run", "--budget", "6", "--seed", "3",
                   "--solvers", "sbl,greedy", "-o", str(tmp_path)])
        assert rc == 0

    def test_run_writes_telemetry(self, tmp_path):
        from repro.obs.events import read_events

        stream = tmp_path / "fuzz.jsonl"
        rc = main(["fuzz", "run", "--budget", "4", "--seed", "0",
                   "-o", str(tmp_path), "--telemetry", str(stream)])
        assert rc == 0
        events = read_events(stream)
        assert events[0]["type"] == "run"
        assert events[0]["command"] == "fuzz-run"
        names = {e["name"] for e in events if e["type"] == "span"}
        assert "fuzz/run" in names and "fuzz/case" in names

    def test_replay_committed_corpus(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).parent / "regressions"
        rc = main(["fuzz", "replay", str(corpus)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reproducers clean" in out
        assert "FAIL" not in out

    def test_replay_empty_dir_fails(self, tmp_path, capsys):
        assert main(["fuzz", "replay", str(tmp_path)]) == 1

    def test_shrink_healthy_instance_refuses(self, instance, tmp_path, capsys):
        rc = main(["fuzz", "shrink", str(instance), "-o", str(tmp_path)])
        assert rc == 1
        assert "nothing to shrink" in capsys.readouterr().out


class TestStream:
    def test_generated_instance_json(self, capsys):
        rc = main(["stream", "--blocks", "4", "--block-n", "10", "--block-m", "14",
                   "--d", "3", "--steps", "8", "--batch", "3", "--seed", "5"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["steps"] == 8
        assert doc["strategy"] == "auto"
        assert doc["repairs"] + doc["recomputes"] + doc["noops"] == 8
        assert doc["certified"] is True
        assert len(doc["chain"]) == 64

    def test_deterministic_chain(self, capsys):
        argv = ["stream", "--blocks", "3", "--block-n", "8", "--steps", "5",
                "--seed", "9"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_forced_strategy_matches_auto(self, capsys):
        base = ["stream", "--blocks", "3", "--block-n", "8", "--steps", "6",
                "--seed", "4"]
        assert main(base) == 0
        auto = json.loads(capsys.readouterr().out)
        assert main([*base, "--strategy", "recompute"]) == 0
        forced = json.loads(capsys.readouterr().out)
        assert forced["recomputes"] + forced["noops"] == 6
        # Bit-identity: same final state and hash chain either way.
        assert forced["mis_size"] == auto["mis_size"]
        assert forced["chain"] == auto["chain"]

    def test_instance_file_input(self, instance, capsys):
        rc = main(["stream", str(instance), "--steps", "4", "--seed", "2"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["certified"] is True

    def test_telemetry_and_metrics(self, tmp_path, capsys):
        from repro.obs.events import read_events

        stream = tmp_path / "stream.jsonl"
        prom = tmp_path / "stream.prom"
        rc = main(["stream", "--blocks", "3", "--block-n", "8", "--steps", "6",
                   "--seed", "3", "--telemetry", str(stream),
                   "--metrics-out", str(prom)])
        assert rc == 0
        events = read_events(stream)
        assert events[0]["command"] == "stream"
        names = {e["name"] for e in events if e["type"] == "span"}
        assert "dynamic/update" in names
        assert names & {"dynamic/repair", "dynamic/recompute"}
        text = prom.read_text()
        assert "repro_dynamic_updates_total" in text
