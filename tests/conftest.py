"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph


@pytest.fixture
def triangle() -> Hypergraph:
    """The 3-cycle graph as a 2-uniform hypergraph."""
    return Hypergraph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_mixed() -> Hypergraph:
    """A small mixed-dimension hypergraph used across algorithm tests."""
    return Hypergraph(
        8,
        [(0, 1, 2), (2, 3), (3, 4, 5, 6), (1, 5), (6, 7), (0, 4, 7)],
    )


@pytest.fixture
def single_edge() -> Hypergraph:
    """One 3-edge on 5 vertices (2 isolated vertices)."""
    return Hypergraph(5, [(1, 2, 3)])


@pytest.fixture
def edgeless() -> Hypergraph:
    """Six vertices, no constraints: the MIS is everything."""
    return Hypergraph(6)
