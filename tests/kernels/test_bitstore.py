"""BitEdgeStore primitives pinned against plain-Python/CSR references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import mixed_dimension_hypergraph, uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.kernels.bitstore import (
    STRIPE_BITS,
    STRIPE_WORDS,
    BitEdgeStore,
    pack_mask,
    unpack_words,
)

RNG = np.random.default_rng(2024)


def _dense_views(H: Hypergraph):
    return BitEdgeStore.from_store(H.store, H.universe), [set(e) for e in H.edges]


def _instances():
    yield uniform_hypergraph(30, 60, 3, seed=1)
    yield uniform_hypergraph(12, 30, 2, seed=2)
    yield mixed_dimension_hypergraph(25, 50, (1, 2, 3), seed=3)
    yield Hypergraph(5, [(0,), (1, 2), (0, 1, 2)])
    yield Hypergraph(70, [(0, 64, 69), (1, 2)])  # spans a word boundary
    yield Hypergraph(6, [])


class TestConstruction:
    @pytest.mark.parametrize("H", list(_instances()), ids=lambda h: f"n{h.universe}m{h.num_edges}")
    def test_round_trip_preserves_edges(self, H):
        dense, _ = _dense_views(H)
        assert dense.to_store().edge_tuples() == H.store.edge_tuples()

    def test_block_is_padded_with_universe(self):
        H = Hypergraph(5, [(0,), (1, 2, 3)])
        dense, _ = _dense_views(H)
        assert dense.block.shape == (2, 3)
        assert dense.block[0].tolist() == [0, 5, 5]
        assert dense.block[1].tolist() == [1, 2, 3]

    @pytest.mark.parametrize("H", list(_instances()), ids=lambda h: f"n{h.universe}m{h.num_edges}")
    def test_rows_match_edge_membership(self, H):
        dense, edges = _dense_views(H)
        rows = dense.rows
        assert rows.shape == (H.num_edges, max(dense.words, 1))
        for i, edge in enumerate(edges):
            mask = unpack_words(rows[i], H.universe)
            assert set(np.flatnonzero(mask)) == edge


class TestPackUnpack:
    @pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 127, 130])
    def test_round_trip(self, n):
        mask = RNG.random(n) < 0.4
        assert np.array_equal(unpack_words(pack_mask(mask), n), mask)


class TestPrimitives:
    @pytest.mark.parametrize("H", list(_instances()), ids=lambda h: f"n{h.universe}m{h.num_edges}")
    def test_edge_mark_counts(self, H):
        dense, edges = _dense_views(H)
        marked = RNG.random(H.universe) < 0.5
        want = [sum(marked[v] for v in e) for e in edges]
        assert dense.edge_mark_counts(marked).tolist() == want

    @pytest.mark.parametrize("H", list(_instances()), ids=lambda h: f"n{h.universe}m{h.num_edges}")
    def test_fully_marked(self, H):
        dense, edges = _dense_views(H)
        marked = RNG.random(H.universe) < 0.6
        want = [all(marked[v] for v in e) for e in edges]
        assert dense.fully_marked(marked).tolist() == want

    @pytest.mark.parametrize("H", list(_instances()), ids=lambda h: f"n{h.universe}m{h.num_edges}")
    def test_union_of(self, H):
        dense, edges = _dense_views(H)
        pick = RNG.random(H.num_edges) < 0.5
        want = set().union(*(e for e, p in zip(edges, pick) if p)) if pick.any() else set()
        got = dense.union_of(pick)
        assert set(np.flatnonzero(got)) == want
        assert got.shape == (H.universe,)

    @pytest.mark.parametrize("H", list(_instances()), ids=lambda h: f"n{h.universe}m{h.num_edges}")
    def test_touching(self, H):
        dense, edges = _dense_views(H)
        hit = RNG.random(H.universe) < 0.3
        want = [any(hit[v] for v in e) for e in edges]
        assert dense.touching(hit).tolist() == want

    def test_gather_pad_is_explicit(self):
        H = Hypergraph(4, [(0,), (1, 2)])
        dense, _ = _dense_views(H)
        vals = np.array([10, 20, 30, 40])
        got = dense.gather(vals, -1)
        assert got[0].tolist() == [10, -1]
        assert got[1].tolist() == [20, 30]

    def test_singleton_vertices(self):
        H = Hypergraph(8, [(3,), (3,), (5,), (0, 1), (2, 4, 6)])
        dense, _ = _dense_views(H)
        # canonical store may dedup; compare against its actual edges
        want = sorted({e[0] for e in dense.to_store().edge_tuples() if len(e) == 1})
        assert dense.singleton_vertices().tolist() == want

    def test_singleton_vertices_empty(self):
        dense, _ = _dense_views(Hypergraph(4, [(0, 1)]))
        assert dense.singleton_vertices().size == 0


class TestTrim:
    def test_matches_set_semantics(self):
        H = Hypergraph(10, [(0, 1, 2), (3, 4), (5, 6, 7)])
        dense, edges = _dense_views(H)
        drop = np.zeros(10, dtype=bool)
        drop[[1, 4, 7]] = True
        trimmed = dense.trim(drop)
        want = [sorted(e - {1, 4, 7}) for e in edges]
        got = [sorted(e) for e in trimmed.to_store().edge_tuples()]
        assert got == want
        assert trimmed.sizes.tolist() == [2, 1, 2]

    def test_raises_when_an_edge_empties(self):
        H = Hypergraph(4, [(0, 1), (2, 3)])
        dense, _ = _dense_views(H)
        drop = np.zeros(4, dtype=bool)
        drop[[2, 3]] = True
        with pytest.raises(ValueError, match="became empty"):
            dense.trim(drop)

    def test_noop_trim(self):
        H = uniform_hypergraph(16, 20, 3, seed=5)
        dense, _ = _dense_views(H)
        trimmed = dense.trim(np.zeros(16, dtype=bool))
        assert trimmed.to_store().edge_tuples() == H.store.edge_tuples()


def _clustered_big_universe():
    # Universe spans 5 stripes; the edges live in stripes 0 and 3 only.
    lo = [(0, 1, 2), (1, 2), (0, 2)]
    hi_base = 3 * STRIPE_BITS
    hi = [(hi_base + 5, hi_base + 6), (hi_base + 5, hi_base + 6, hi_base + 7)]
    return Hypergraph(4 * STRIPE_BITS + 100, lo + hi)


class TestStripeTiling:
    def test_live_stripes_track_occupancy(self):
        dense, _ = _dense_views(_clustered_big_universe())
        assert dense.stripes == 5
        assert dense.live_stripes.tolist() == [0, 3]

    def test_tiles_are_proportional_to_live_stripes(self):
        dense, _ = _dense_views(_clustered_big_universe())
        _, tiles = dense.tiled
        # Two live stripes of 64 words each vs. ceil(universe/64) words.
        assert tiles.shape == (5, 2 * STRIPE_WORDS)
        assert dense.words > 2 * STRIPE_WORDS

    def test_tiled_rows_agree_with_plain_rows(self):
        dense, _ = _dense_views(_clustered_big_universe())
        live, tiles = dense.tiled
        for i in range(dense.num_edges):
            assert np.array_equal(
                dense.unpack_frontier(tiles[i]),
                unpack_words(dense.rows[i], dense.universe),
            )

    def test_single_stripe_tiles_to_plain_width(self):
        H = uniform_hypergraph(30, 60, 3, seed=1)
        dense, _ = _dense_views(H)
        live, tiles = dense.tiled
        assert live.tolist() == [0]
        assert tiles.shape == dense.rows.shape
        assert np.array_equal(tiles, dense.rows)

    def test_pack_frontier_round_trip(self):
        dense, _ = _dense_views(_clustered_big_universe())
        mask = RNG.random(dense.universe) < 0.3
        packed = dense.pack_frontier(mask)
        assert packed.shape == (2 * STRIPE_WORDS,)
        got = dense.unpack_frontier(packed)
        # Dead-stripe bits are dropped; live-stripe bits survive exactly.
        live = np.zeros(dense.universe, dtype=bool)
        for s in dense.live_stripes.tolist():
            live[s * STRIPE_BITS : (s + 1) * STRIPE_BITS] = True
        assert np.array_equal(got, mask & live)

    def test_empty_store_has_no_live_stripes(self):
        dense, _ = _dense_views(Hypergraph(10 * STRIPE_BITS, []))
        live, tiles = dense.tiled
        assert live.size == 0
        assert tiles.shape == (0, 0)
        assert dense.pack_frontier(np.ones(dense.universe, dtype=bool)).size == 0

    def test_superset_mask_on_wide_universe(self):
        # (0,2) ⊂ (0,1,2) and the hi pair ⊂ the hi triple; cross-stripe
        # pairs must not be confused for containment.
        dense, _ = _dense_views(_clustered_big_universe())
        edges = [set(e) for e in dense.to_store().edge_tuples()]
        want = [
            any(j != i and s < e for j, s in enumerate(edges))
            for i, e in enumerate(edges)
        ]
        assert dense.superset_mask().tolist() == want
        assert sum(want) == 2


class TestSupersetMask:
    def _brute(self, edges):
        return [
            any(j != i and s < e for j, s in enumerate(edges))
            for i, e in enumerate(edges)
        ]

    def test_against_brute_force(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = 12
            edges = []
            for _ in range(14):
                k = int(rng.integers(1, 4))
                edges.append(tuple(sorted(rng.choice(n, size=k, replace=False).tolist())))
            dense = BitEdgeStore.from_store(Hypergraph(n, edges).store, n)
            canon = [set(e) for e in dense.to_store().edge_tuples()]
            assert dense.superset_mask().tolist() == self._brute(canon)

    def test_no_edges(self):
        dense, _ = _dense_views(Hypergraph(4, []))
        assert dense.superset_mask().size == 0
