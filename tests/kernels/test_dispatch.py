"""Shape-based backend dispatch: decisions, reasons, counters, overrides."""

from __future__ import annotations

import json

import pytest

from repro.generators import uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.kernels import DEFAULT_KERNEL, VALID_KERNELS, current_kernel, use_kernel
from repro.kernels.bl_dense import BLOCK_MAX_DIMENSION, BLOCK_MAX_UNIVERSE
from repro.kernels.dispatch import (
    DENSE_MAX_DIMENSION,
    DENSE_MAX_UNIVERSE,
    ShapeFeatures,
    dense_capable,
    invalidate_calibration_cache,
    select_backend,
)
from repro.kernels.jit import HAVE_NUMBA
from repro.obs.metrics import isolated_registry
from repro.util.hostid import machine_identity

DENSE_H = uniform_hypergraph(40, 80, 3, seed=0)
SPARSE_H = Hypergraph(DENSE_MAX_UNIVERSE + 1, [(0, 1, 2)])
WIDE_H = Hypergraph(20, [tuple(range(DENSE_MAX_DIMENSION + 1))])  # dim 9
DIM4_H = Hypergraph(10, [(0, 1, 2, 3)])  # dense-capable since the frontier engine
BIG_U_H = Hypergraph(BLOCK_MAX_UNIVERSE + 1, [(0, 1, 2)])  # scalar yes, block no


@pytest.fixture(autouse=True)
def _fresh_calibration_cache(monkeypatch, tmp_path):
    # Dispatch must not pick up a developer's local KERNEL_CALIBRATION.json:
    # point the env override at a path that does not exist.
    monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(tmp_path / "absent.json"))
    invalidate_calibration_cache()
    yield
    invalidate_calibration_cache()


def _write_calibration(path, buckets, machine_id=None):
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "unit": "ns",
                "stat": "median",
                "buckets": buckets,
                "provenance": {
                    "machine_id": machine_id
                    if machine_id is not None
                    else machine_identity()
                },
            }
        )
    )
    invalidate_calibration_cache()


class TestDenseCapable:
    def test_small_low_dim_is_capable(self):
        assert dense_capable(DENSE_H)

    def test_universe_boundary(self):
        at = Hypergraph(DENSE_MAX_UNIVERSE, [(0, 1)])
        over = Hypergraph(DENSE_MAX_UNIVERSE + 1, [(0, 1)])
        assert dense_capable(at)
        assert not dense_capable(over)

    def test_dimension_boundary(self):
        at = Hypergraph(10, [tuple(range(DENSE_MAX_DIMENSION))])
        assert dense_capable(at)
        assert not dense_capable(WIDE_H)

    def test_dim4_and_big_universe_are_inside_the_envelope(self):
        # The PR-5 ceiling: these shapes used to be CSR-only.
        assert dense_capable(DIM4_H)
        assert dense_capable(Hypergraph(4096, [(0, 1, 2)]))

    def test_envelope_is_wider_than_the_block_engine(self):
        assert DENSE_MAX_DIMENSION > BLOCK_MAX_DIMENSION
        assert DENSE_MAX_UNIVERSE > BLOCK_MAX_UNIVERSE


class TestSelectBackend:
    def test_auto_picks_bitset_on_dense_shapes(self):
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("bitset", "auto:shape-dense")
        assert d.dense

    def test_auto_picks_bitset_on_dim4_shapes(self):
        d = select_backend(DIM4_H, requested="auto")
        assert (d.backend, d.reason) == ("bitset", "auto:shape-dense")

    def test_auto_picks_csr_on_sparse_shapes(self):
        d = select_backend(SPARSE_H, requested="auto")
        assert (d.backend, d.reason) == ("csr", "auto:shape-sparse")
        assert not d.dense

    def test_auto_never_selects_jit(self):
        assert select_backend(DENSE_H, requested="auto").backend != "jit"

    def test_forced_csr_wins_over_shape(self):
        d = select_backend(DENSE_H, requested="csr")
        assert (d.backend, d.reason) == ("csr", "forced:csr")

    def test_forced_bitset(self):
        d = select_backend(DENSE_H, requested="bitset")
        assert (d.backend, d.reason) == ("bitset", "forced:bitset")

    def test_forced_backend_on_unsupported_shape_degrades_to_csr(self):
        d = select_backend(WIDE_H, requested="bitset")
        assert (d.backend, d.reason) == ("csr", "unsupported-shape")

    def test_jit_request(self):
        d = select_backend(DENSE_H, requested="jit")
        if HAVE_NUMBA:
            assert (d.backend, d.reason) == ("jit", "forced:jit")
        else:
            assert (d.backend, d.reason) == ("bitset", "fallback:jit-unavailable")

    def test_jit_request_beyond_block_shape_degrades_to_bitset(self):
        # Inside the dense envelope but outside the U²-table block engine:
        # the request degrades to the scalar/frontier engines, not to CSR.
        for H in (DIM4_H, BIG_U_H):
            d = select_backend(H, requested="jit")
            assert d.backend == "bitset"
            if HAVE_NUMBA:
                assert d.reason == "fallback:jit-shape"
            else:
                assert d.reason == "fallback:jit-unavailable"

    def test_blockers_force_csr(self):
        d = select_backend(DENSE_H, requested="bitset", blockers=("on_round",))
        assert (d.backend, d.reason) == ("csr", "blocked:on_round")

    def test_first_blocker_is_counted(self):
        d = select_backend(DENSE_H, blockers=("backend", "on_round"))
        assert d.reason == "blocked:backend"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            select_backend(DENSE_H, requested="fpga")


class TestCostModelDispatch:
    def test_calibration_steers_auto_to_csr(self, monkeypatch, tmp_path):
        cal = tmp_path / "cal.json"
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(cal))
        _write_calibration(cal, {"d3-u1k": {"csr": 10.0, "bitset": 100.0}})
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("csr", "cost-model:csr")

    def test_calibration_steers_auto_to_bitset(self, monkeypatch, tmp_path):
        cal = tmp_path / "cal.json"
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(cal))
        _write_calibration(cal, {"d3-u1k": {"csr": 100.0, "bitset": 10.0}})
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("bitset", "cost-model:bitset")

    def test_uncovered_bucket_falls_back_to_static(self, monkeypatch, tmp_path):
        cal = tmp_path / "cal.json"
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(cal))
        _write_calibration(cal, {"d2-u8kplus": {"csr": 1.0, "bitset": 2.0}})
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("bitset", "auto:shape-dense")

    def test_cross_machine_calibration_is_ignored(self, monkeypatch, tmp_path):
        cal = tmp_path / "cal.json"
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(cal))
        _write_calibration(
            cal,
            {"d3-u1k": {"csr": 10.0, "bitset": 100.0}},
            machine_id="someone-elses-box-128c",
        )
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("bitset", "auto:shape-dense")

    def test_explicit_requests_beat_the_calibration(self, monkeypatch, tmp_path):
        cal = tmp_path / "cal.json"
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(cal))
        _write_calibration(cal, {"d3-u1k": {"csr": 10.0, "bitset": 100.0}})
        assert select_backend(DENSE_H, requested="bitset").backend == "bitset"

    def test_mode_counters(self, monkeypatch, tmp_path):
        cal = tmp_path / "cal.json"
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(cal))
        _write_calibration(cal, {"d3-u1k": {"csr": 10.0, "bitset": 100.0}})
        with isolated_registry() as reg:
            select_backend(DENSE_H, requested="auto")  # covered bucket
            select_backend(DIM4_H, requested="auto")  # uncovered bucket
            snap = reg.snapshot()
        counters = snap["counters"]
        assert counters["kernels/dispatch_mode/cost-model"] == 1
        assert counters["kernels/dispatch_mode/static"] == 1
        assert counters["kernels/dispatch_shape/d3-u1k/csr"] == 1
        assert counters["kernels/dispatch_shape/d4plus-u1k/bitset"] == 1


FIXTURE = __import__("pathlib").Path(__file__).resolve().parents[1] / (
    "fixtures/kernel_calibration.json"
)


class TestCommittedFixture:
    """The fixture CI's kernel-calibrate step asserts against."""

    def test_is_well_formed_and_foreign(self):
        from repro.kernels.costmodel import load_calibration

        cal = load_calibration(FIXTURE)  # validates the schema
        assert cal.machine_id != machine_identity()
        assert "d3-u1k" in cal.buckets

    def test_restamped_fixture_steers_dispatch(self, monkeypatch, tmp_path):
        # Re-stamp with the local machine id: the d3-u1k bucket records
        # csr as faster (opposite of the static envelope), so honoring
        # the calibration is observable.
        doc = json.loads(FIXTURE.read_text())
        doc["provenance"]["machine_id"] = machine_identity()
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(doc))
        monkeypatch.setenv("REPRO_KERNEL_CALIBRATION", str(path))
        invalidate_calibration_cache()
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("csr", "cost-model:csr")


class TestRequestSources:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert current_kernel() == DEFAULT_KERNEL == "auto"

    def test_use_kernel_drives_dispatch(self):
        with use_kernel("csr"):
            assert select_backend(DENSE_H).reason == "forced:csr"
        with use_kernel("bitset"):
            assert select_backend(DENSE_H).backend == "bitset"

    def test_env_var_drives_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "csr")
        assert select_backend(DENSE_H).reason == "forced:csr"

    def test_use_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "csr")
        with use_kernel("bitset"):
            assert select_backend(DENSE_H).backend == "bitset"

    def test_valid_kernels_are_exactly_the_contract(self):
        assert VALID_KERNELS == ("auto", "csr", "bitset", "jit")


class TestCounters:
    def test_every_decision_is_counted(self):
        with isolated_registry() as reg:
            select_backend(DENSE_H, requested="auto")
            select_backend(SPARSE_H, requested="auto")
            select_backend(DENSE_H, requested="csr")
            snap = reg.snapshot()
        counters = snap["counters"]
        assert counters["kernels/dispatch/bitset"] == 1
        assert counters["kernels/dispatch/csr"] == 2
        assert counters["kernels/dispatch_reason/auto:shape-dense"] == 1
        assert counters["kernels/dispatch_reason/auto:shape-sparse"] == 1
        assert counters["kernels/dispatch_reason/forced:csr"] == 1

    def test_shape_bucket_counters(self):
        with isolated_registry() as reg:
            select_backend(DENSE_H, requested="auto")
            snap = reg.snapshot()
        assert snap["counters"]["kernels/dispatch_shape/d3-u1k/bitset"] == 1


class TestShapeFeatures:
    def test_of_reads_header_fields(self):
        f = ShapeFeatures.of(DENSE_H)
        assert f.n == DENSE_H.num_vertices
        assert f.m == DENSE_H.num_edges
        assert f.universe == DENSE_H.universe
        assert f.dimension == DENSE_H.dimension
        assert f.density == pytest.approx(f.m / f.n)

    def test_empty_instance(self):
        f = ShapeFeatures.of(Hypergraph(0))
        assert (f.n, f.m, f.density) == (0, 0, 0.0)
