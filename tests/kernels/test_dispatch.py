"""Shape-based backend dispatch: decisions, reasons, counters, overrides."""

from __future__ import annotations

import pytest

from repro.generators import uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.kernels import DEFAULT_KERNEL, VALID_KERNELS, current_kernel, use_kernel
from repro.kernels.bl_dense import DENSE_MAX_DIMENSION, DENSE_MAX_UNIVERSE
from repro.kernels.dispatch import ShapeFeatures, dense_capable, select_backend
from repro.kernels.jit import HAVE_NUMBA
from repro.obs.metrics import isolated_registry

DENSE_H = uniform_hypergraph(40, 80, 3, seed=0)
SPARSE_H = Hypergraph(DENSE_MAX_UNIVERSE + 1, [(0, 1, 2)])
WIDE_H = Hypergraph(10, [(0, 1, 2, 3)])  # dimension 4 > DENSE_MAX_DIMENSION


class TestDenseCapable:
    def test_small_low_dim_is_capable(self):
        assert dense_capable(DENSE_H)

    def test_universe_boundary(self):
        at = Hypergraph(DENSE_MAX_UNIVERSE, [(0, 1)])
        over = Hypergraph(DENSE_MAX_UNIVERSE + 1, [(0, 1)])
        assert dense_capable(at)
        assert not dense_capable(over)

    def test_dimension_boundary(self):
        at = Hypergraph(10, [tuple(range(DENSE_MAX_DIMENSION))])
        assert dense_capable(at)
        assert not dense_capable(WIDE_H)


class TestSelectBackend:
    def test_auto_picks_bitset_on_dense_shapes(self):
        d = select_backend(DENSE_H, requested="auto")
        assert (d.backend, d.reason) == ("bitset", "auto:shape-dense")
        assert d.dense

    def test_auto_picks_csr_on_sparse_shapes(self):
        d = select_backend(SPARSE_H, requested="auto")
        assert (d.backend, d.reason) == ("csr", "auto:shape-sparse")
        assert not d.dense

    def test_auto_never_selects_jit(self):
        assert select_backend(DENSE_H, requested="auto").backend != "jit"

    def test_forced_csr_wins_over_shape(self):
        d = select_backend(DENSE_H, requested="csr")
        assert (d.backend, d.reason) == ("csr", "forced:csr")

    def test_forced_bitset(self):
        d = select_backend(DENSE_H, requested="bitset")
        assert (d.backend, d.reason) == ("bitset", "forced:bitset")

    def test_forced_backend_on_unsupported_shape_degrades_to_csr(self):
        d = select_backend(WIDE_H, requested="bitset")
        assert (d.backend, d.reason) == ("csr", "unsupported-shape")

    def test_jit_request(self):
        d = select_backend(DENSE_H, requested="jit")
        if HAVE_NUMBA:
            assert (d.backend, d.reason) == ("jit", "forced:jit")
        else:
            assert (d.backend, d.reason) == ("bitset", "fallback:jit-unavailable")

    def test_blockers_force_csr(self):
        d = select_backend(DENSE_H, requested="bitset", blockers=("on_round",))
        assert (d.backend, d.reason) == ("csr", "blocked:on_round")

    def test_first_blocker_is_counted(self):
        d = select_backend(DENSE_H, blockers=("tracer", "on_round"))
        assert d.reason == "blocked:tracer"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            select_backend(DENSE_H, requested="fpga")


class TestRequestSources:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert current_kernel() == DEFAULT_KERNEL == "auto"

    def test_use_kernel_drives_dispatch(self):
        with use_kernel("csr"):
            assert select_backend(DENSE_H).reason == "forced:csr"
        with use_kernel("bitset"):
            assert select_backend(DENSE_H).backend == "bitset"

    def test_env_var_drives_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "csr")
        assert select_backend(DENSE_H).reason == "forced:csr"

    def test_use_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "csr")
        with use_kernel("bitset"):
            assert select_backend(DENSE_H).backend == "bitset"

    def test_valid_kernels_are_exactly_the_contract(self):
        assert VALID_KERNELS == ("auto", "csr", "bitset", "jit")


class TestCounters:
    def test_every_decision_is_counted(self):
        with isolated_registry() as reg:
            select_backend(DENSE_H, requested="auto")
            select_backend(SPARSE_H, requested="auto")
            select_backend(DENSE_H, requested="csr")
            snap = reg.snapshot()
        counters = snap["counters"]
        assert counters["kernels/dispatch/bitset"] == 1
        assert counters["kernels/dispatch/csr"] == 2
        assert counters["kernels/dispatch_reason/auto:shape-dense"] == 1
        assert counters["kernels/dispatch_reason/auto:shape-sparse"] == 1
        assert counters["kernels/dispatch_reason/forced:csr"] == 1


class TestShapeFeatures:
    def test_of_reads_header_fields(self):
        f = ShapeFeatures.of(DENSE_H)
        assert f.n == DENSE_H.num_vertices
        assert f.m == DENSE_H.num_edges
        assert f.universe == DENSE_H.universe
        assert f.dimension == DENSE_H.dimension
        assert f.density == pytest.approx(f.m / f.n)

    def test_empty_instance(self):
        f = ShapeFeatures.of(Hypergraph(0))
        assert (f.n, f.m, f.density) == (0, 0, 0.0)
