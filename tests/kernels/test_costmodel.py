"""Cost-model calibration: schema, machine identity, buckets, preference."""

from __future__ import annotations

import json

import pytest

from repro.kernels.costmodel import (
    CalibrationSchemaError,
    load_calibration,
    preferred_backend,
    shape_bucket,
    usable_calibration,
)
from repro.kernels.dispatch import ShapeFeatures
from repro.obs.metrics import isolated_registry
from repro.util.hostid import machine_identity


def _doc(buckets=None, machine_id=None, **over):
    doc = {
        "schema": 1,
        "unit": "ns",
        "stat": "median",
        "buckets": buckets
        if buckets is not None
        else {"d3-u1k": {"csr": 100.0, "bitset": 10.0}},
        "provenance": {
            "machine_id": machine_id if machine_id is not None else machine_identity()
        },
    }
    doc.update(over)
    return doc


def _write(tmp_path, doc, name="cal.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestShapeBucket:
    @pytest.mark.parametrize(
        "dim,universe,expected",
        [
            (2, 100, "d2-u1k"),
            (1, 1024, "d2-u1k"),
            (3, 1025, "d3-u2k"),
            (3, 2048, "d3-u2k"),
            (3, 4096, "d3-u4k"),
            (4, 8192, "d4plus-u8k"),
            (8, 8193, "d4plus-u8kplus"),
            (5, 400, "d4plus-u1k"),
        ],
    )
    def test_bands(self, dim, universe, expected):
        assert shape_bucket(dim, universe) == expected

    def test_cardinality_is_bounded(self):
        labels = {
            shape_bucket(d, u)
            for d in range(1, 12)
            for u in (1, 1024, 2048, 4096, 8192, 1 << 20)
        }
        assert len(labels) <= 15


class TestLoadCalibration:
    def test_roundtrip(self, tmp_path):
        path = _write(tmp_path, _doc())
        cal = load_calibration(path)
        assert cal.machine_id == machine_identity()
        assert cal.buckets["d3-u1k"] == {"csr": 100.0, "bitset": 10.0}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_calibration(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        with pytest.raises(CalibrationSchemaError, match="not valid JSON"):
            load_calibration(path)

    def test_wrong_schema_version(self, tmp_path):
        path = _write(tmp_path, _doc(schema=2))
        with pytest.raises(CalibrationSchemaError, match="unsupported schema"):
            load_calibration(path)

    def test_machine_id_is_mandatory(self, tmp_path):
        doc = _doc()
        del doc["provenance"]["machine_id"]
        path = _write(tmp_path, doc)
        with pytest.raises(CalibrationSchemaError, match="machine_id"):
            load_calibration(path)

    def test_missing_backend_entry(self, tmp_path):
        path = _write(tmp_path, _doc(buckets={"d3-u1k": {"csr": 1.0}}))
        with pytest.raises(CalibrationSchemaError, match="missing 'bitset'"):
            load_calibration(path)

    def test_non_numeric_timing(self, tmp_path):
        path = _write(
            tmp_path, _doc(buckets={"d3-u1k": {"csr": "fast", "bitset": 1.0}})
        )
        with pytest.raises(CalibrationSchemaError, match="must be a number"):
            load_calibration(path)

    def test_negative_timing(self, tmp_path):
        path = _write(tmp_path, _doc(buckets={"d3-u1k": {"csr": -5, "bitset": 1.0}}))
        with pytest.raises(CalibrationSchemaError, match="non-negative"):
            load_calibration(path)

    def test_empty_buckets(self, tmp_path):
        path = _write(tmp_path, _doc(buckets={}))
        with pytest.raises(CalibrationSchemaError, match="non-empty"):
            load_calibration(path)


class TestUsableCalibration:
    def test_same_machine_is_usable(self, tmp_path):
        path = _write(tmp_path, _doc())
        with isolated_registry() as reg:
            cal = usable_calibration(path)
            snap = reg.snapshot()
        assert cal is not None
        assert snap["counters"]["kernels/calibration/loaded"] == 1

    def test_cross_machine_is_ignored(self, tmp_path):
        # The bench_gate rule, applied to dispatch: wall-clock measured on
        # another machine must never steer this one.
        path = _write(tmp_path, _doc(machine_id="linux-arm64-other-cpu-256c"))
        with isolated_registry() as reg:
            cal = usable_calibration(path)
            snap = reg.snapshot()
        assert cal is None
        assert snap["counters"]["kernels/calibration/machine-mismatch"] == 1

    def test_machine_id_parameter_overrides_ambient(self, tmp_path):
        path = _write(tmp_path, _doc(machine_id="linux-arm64-other-cpu-256c"))
        assert usable_calibration(path, machine_id="linux-arm64-other-cpu-256c")

    def test_missing_is_counted(self, tmp_path):
        with isolated_registry() as reg:
            assert usable_calibration(tmp_path / "nope.json") is None
            snap = reg.snapshot()
        assert snap["counters"]["kernels/calibration/missing"] == 1

    def test_invalid_is_counted(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("[]")
        with isolated_registry() as reg:
            assert usable_calibration(path) is None
            snap = reg.snapshot()
        assert snap["counters"]["kernels/calibration/invalid"] == 1


class TestPreferredBackend:
    def _cal(self, tmp_path, buckets):
        return load_calibration(_write(tmp_path, _doc(buckets=buckets)))

    def test_picks_the_measured_faster_backend(self, tmp_path):
        cal = self._cal(
            tmp_path,
            {
                "d3-u1k": {"csr": 100.0, "bitset": 10.0},
                "d3-u2k": {"csr": 10.0, "bitset": 100.0},
            },
        )
        f1 = ShapeFeatures(n=40, m=80, universe=40, dimension=3, density=2.0)
        f2 = ShapeFeatures(n=2000, m=80, universe=2000, dimension=3, density=0.04)
        assert preferred_backend(cal, f1) == "bitset"
        assert preferred_backend(cal, f2) == "csr"

    def test_tie_prefers_bitset(self, tmp_path):
        cal = self._cal(tmp_path, {"d3-u1k": {"csr": 10.0, "bitset": 10.0}})
        f = ShapeFeatures(n=40, m=80, universe=40, dimension=3, density=2.0)
        assert preferred_backend(cal, f) == "bitset"

    def test_uncovered_bucket_returns_none(self, tmp_path):
        cal = self._cal(tmp_path, {"d2-u1k": {"csr": 1.0, "bitset": 2.0}})
        f = ShapeFeatures(n=40, m=80, universe=40, dimension=3, density=2.0)
        assert preferred_backend(cal, f) is None
