"""Cross-backend bit-identity: the dispatcher can never change a result.

Every solver that consults the dispatcher is replayed under each forced
kernel and compared field-for-field — independent set, header, per-round
records (modulo wall-clock), meta, and PRAM machine totals.  The
regression corpus replays under every backend too, so a reproducer pinned
on one engine guards them all.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson, permutation_bl
from repro.generators import mixed_dimension_hypergraph, uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.kernels import use_kernel
from repro.kernels.jit import HAVE_NUMBA
from repro.pram.machine import CountingMachine
from repro.qa import replay

KERNELS = ["csr", "bitset"] + (["jit"] if HAVE_NUMBA else [])

SOLVERS = {
    "bl": beame_luby,
    "kuw": karp_upfal_wigderson,
    "permutation": permutation_bl,
    "greedy": greedy_mis,
}

INSTANCES = {
    "uniform-d3": uniform_hypergraph(60, 120, 3, seed=0),
    "uniform-d2": uniform_hypergraph(40, 90, 2, seed=1),
    "mixed": mixed_dimension_hypergraph(50, 120, (1, 2, 3), seed=2),
    "degenerate": Hypergraph(8, [(0,), (1,), (0, 1, 2), (3, 4), (3, 4, 5)]),
    "edgeless": Hypergraph(10, []),
    "empty": Hypergraph(0, []),
    # The widened envelope: dimension > 3 routes to the frontier engine,
    # universe > 2048 to the big-universe scalar path.
    "uniform-d4": uniform_hypergraph(36, 90, 4, seed=3),
    "uniform-d5": uniform_hypergraph(30, 60, 5, seed=4),
    "wide-u4096": uniform_hypergraph(4096, 96, 3, seed=5),
    "mixed-d5-wide": mixed_dimension_hypergraph(3000, 48, (2, 3, 4, 5), seed=6),
}

REGRESSION_DIR = Path(__file__).parents[1] / "regressions"


def _record_key(rec):
    extras = tuple(
        sorted((k, v) for k, v in (rec.extras or {}).items() if k != "wall_ns")
    )
    return (
        rec.index, rec.phase, rec.n_before, rec.m_before, rec.n_after,
        rec.m_after, rec.marked, rec.unmarked, rec.added, rec.removed_red,
        rec.dimension, extras,
    )


def _solve(fn, kernel, H, seed, **kwargs):
    if kwargs.pop("count", False):
        kwargs["machine"] = CountingMachine()
    with use_kernel(kernel):
        return fn(H, seed, **kwargs)


def _assert_identical(a, b, tag):
    assert np.array_equal(a.independent_set, b.independent_set), tag
    assert (a.algorithm, a.n, a.m) == (b.algorithm, b.n, b.m), tag
    assert len(a.rounds) == len(b.rounds), tag
    for x, y in zip(a.rounds, b.rounds):
        assert _record_key(x) == _record_key(y), (tag, _record_key(x), _record_key(y))
    assert a.meta == b.meta, tag
    assert a.machine == b.machine, tag


@pytest.mark.parametrize("solver", sorted(SOLVERS), ids=str)
@pytest.mark.parametrize("name", sorted(INSTANCES), ids=str)
@pytest.mark.parametrize("seed", [0, 3])
def test_backends_bit_identical(solver, name, seed):
    H = INSTANCES[name]
    fn = SOLVERS[solver]
    baseline = _solve(fn, "csr", H, seed, count=True)
    for kernel in KERNELS[1:]:
        got = _solve(fn, kernel, H, seed, count=True)
        _assert_identical(baseline, got, (solver, name, seed, kernel))


def test_auto_matches_forced_backends():
    H = INSTANCES["uniform-d3"]
    for solver, fn in SOLVERS.items():
        auto = _solve(fn, "auto", H, 5)
        forced = _solve(fn, "bitset", H, 5)
        assert np.array_equal(auto.independent_set, forced.independent_set), solver


def test_jit_without_numba_degrades_to_bitset():
    if HAVE_NUMBA:
        pytest.skip("numba present: jit is its own backend")
    H = INSTANCES["uniform-d3"]
    a = _solve(beame_luby, "jit", H, 2)
    b = _solve(beame_luby, "bitset", H, 2)
    _assert_identical(a, b, "jit-fallback")


class TestSblDenseRouting:
    """SBL hands its reduced instances to the dispatcher; results can't move.

    The sampling phase keeps its own coin stream, and the inner BL/KUW
    solves are bit-identical per backend — so SBL's full ``Result``
    payload must match field-for-field whichever kernel the reduced
    instances route through.
    """

    @pytest.mark.parametrize(
        "path", sorted(REGRESSION_DIR.glob("*.npz")), ids=lambda p: p.stem
    )
    def test_identical_across_kernels_on_corpus(self, path):
        from repro.core import sbl
        from repro.qa import load_reproducer

        H, manifest = load_reproducer(path)
        seed = int(manifest["seed"])
        baseline = _solve(sbl, "csr", H, seed, count=True)
        for kernel in ("bitset", "auto"):
            got = _solve(sbl, kernel, H, seed, count=True)
            _assert_identical(baseline, got, (path.stem, kernel))

    @pytest.mark.parametrize("name", ["uniform-d5", "mixed-d5-wide"], ids=str)
    def test_identical_on_high_dimension_instances(self, name):
        from repro.core import sbl

        H = INSTANCES[name]
        baseline = _solve(sbl, "csr", H, 9, count=True)
        got = _solve(sbl, "bitset", H, 9, count=True)
        _assert_identical(baseline, got, (name, "bitset"))


class TestTracedDenseRounds:
    """The tracer blocker is gone: dense rounds emit per-round spans."""

    @pytest.mark.parametrize(
        "name", ["uniform-d3", "uniform-d4", "wide-u4096"], ids=str
    )
    def test_span_per_round_under_dense_kernels(self, name):
        from repro.obs.events import MemorySink
        from repro.obs.tracer import Tracer, use_tracer

        H = INSTANCES[name]
        sink = MemorySink()
        tracer = Tracer(sink)
        try:
            with use_tracer(tracer), use_kernel("bitset"):
                res = beame_luby(H, seed=1)
        finally:
            tracer.close()
        rounds = [
            e
            for e in sink.events
            if e.get("type") == "span" and e.get("name") == "bl/round"
        ]
        assert len(rounds) == res.num_rounds
        # The traced run must still match the CSR reference bit-for-bit.
        ref = _solve(beame_luby, "csr", H, 1, count=True)
        got = _solve(beame_luby, "bitset", H, 1, count=True)
        _assert_identical(ref, got, (name, "traced-dense"))


class TestCorpusMatrix:
    """Backend-matrix replay of the committed reproducer corpus."""

    @pytest.mark.parametrize("kernel", KERNELS, ids=str)
    @pytest.mark.parametrize(
        "path", sorted(REGRESSION_DIR.glob("*.npz")), ids=lambda p: p.stem
    )
    def test_reproducer_clean_under_kernel(self, path, kernel):
        with use_kernel(kernel):
            failures = replay(path)
        assert failures == [], (
            f"{path.name} under {kernel}:\n"
            + "\n".join(f"  {f}" for f in failures)
        )
