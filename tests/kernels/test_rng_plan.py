"""RoundRngPlan: bit-exact replication of BL's per-round RNG chain.

The oracle is the real NumPy object chain the CSR path runs —
``stream(seed)`` → ``integers(0, 2⁶³-1, 4)`` → ``SeedSequence.spawn`` →
``default_rng`` — so every assertion here is against NumPy itself, not
against a second hand-rolled model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.rng import (
    RoundRngPlan,
    _int_to_u32s,
    _scalar_round_state,
)
from repro.util.rng import stream


def _oracle_coins(seed, rounds: int, draws: int = 32) -> list[np.ndarray]:
    """Round coins exactly as ``SerialBackend.bernoulli`` derives them."""
    out = []
    st = stream(seed)
    for _ in range(rounds):
        gen = next(st)
        e4 = gen.integers(0, 2**63 - 1, size=4).tolist()
        child = np.random.SeedSequence(e4).spawn(1)[0]
        out.append(np.random.default_rng(child).random(draws))
    return out


def _plan_coins(seed, rounds: int, draws: int = 32) -> list[np.ndarray]:
    plan = RoundRngPlan(seed)
    return [plan.generator(i).random(draws) for i in range(rounds)]


class TestIntSeeds:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345, 2**31 - 1, 2**64 + 3])
    def test_matches_numpy_chain(self, seed):
        assert all(
            np.array_equal(a, b)
            for a, b in zip(_oracle_coins(seed, 12), _plan_coins(seed, 12))
        )

    def test_block_extension_past_first_block(self):
        # A small block forces several batch extensions over 40 rounds.
        plan = RoundRngPlan(3, block=16)
        got = [plan.generator(i).random(32) for i in range(40)]
        oracle = _oracle_coins(3, 40)
        assert all(np.array_equal(a, b) for a, b in zip(oracle, got))

    def test_scalar_reference_matches_numpy(self):
        # The scalar fallback must equal PCG64's own seeded state.
        words = _int_to_u32s(99) + [0] * (4 - len(_int_to_u32s(99)))
        for index in (0, 1, 7):
            state, inc = _scalar_round_state(words, index)
            gen = np.random.default_rng(
                np.random.SeedSequence(99, spawn_key=(index,))
            )
            e4 = gen.integers(0, 2**63 - 1, size=4).tolist()
            child = np.random.SeedSequence(e4).spawn(1)[0]
            got = np.random.PCG64(child).state["state"]
            assert (got["state"], got["inc"]) == (state, inc)


class TestGeneratorSeeds:
    def test_matches_numpy_chain(self):
        # stream() consumes entropy from the generator; give each side its
        # own identically-seeded instance.
        oracle = _oracle_coins(np.random.default_rng(11), 8)
        got = _plan_coins(np.random.default_rng(11), 8)
        assert all(np.array_equal(a, b) for a, b in zip(oracle, got))


class TestSeedSequenceSeeds:
    def test_plain_seedsequence(self):
        oracle = _oracle_coins(np.random.SeedSequence(21), 8)
        got = _plan_coins(np.random.SeedSequence(21), 8)
        assert all(np.array_equal(a, b) for a, b in zip(oracle, got))

    def test_spawned_child_with_spawn_key(self):
        # Campaign seeds are spawn-tree leaves: same entropy, distinct
        # spawn_key.  The plan must fold the key into the round hash.
        a = np.random.SeedSequence(42).spawn(3)[2]
        b = np.random.SeedSequence(42).spawn(3)[2]
        assert a.spawn_key == (2,)
        oracle = _oracle_coins(a, 8)
        got = _plan_coins(b, 8)
        assert all(np.array_equal(x, y) for x, y in zip(oracle, got))

    def test_sibling_leaves_diverge(self):
        left, right = np.random.SeedSequence(42).spawn(2)
        assert not np.array_equal(
            _plan_coins(left, 1)[0], _plan_coins(right, 1)[0]
        )

    def test_partially_consumed_root(self):
        # A SeedSequence that has already spawned children resumes from
        # its counter, not from zero.
        a = np.random.SeedSequence(5)
        a.spawn(2)
        b = np.random.SeedSequence(5)
        b.spawn(2)
        oracle = _oracle_coins(a, 6)
        got = _plan_coins(b, 6)
        assert all(np.array_equal(x, y) for x, y in zip(oracle, got))

    def test_mirrors_stream_spawn_consumption(self):
        # stream() spawns one child per round; the plan must leave the
        # caller's SeedSequence in the same state, so a later solve from
        # the same object stays aligned with the CSR path.
        a = np.random.SeedSequence(6)
        b = np.random.SeedSequence(6)
        _oracle_coins(a, 5)
        _plan_coins(b, 5)
        assert a.n_children_spawned == b.n_children_spawned

    def test_back_to_back_solves_from_one_object(self):
        a = np.random.SeedSequence(17)
        b = np.random.SeedSequence(17)
        for _ in range(2):  # second solve starts at the advanced counter
            oracle = _oracle_coins(a, 4)
            got = _plan_coins(b, 4)
            assert all(np.array_equal(x, y) for x, y in zip(oracle, got))


class TestExactModeFallback:
    def test_nondefault_pool_size(self):
        # pool_size ≠ 4 invalidates the replicated hash constants: the
        # plan must fall back to the exact object chain.
        a = np.random.SeedSequence(3, pool_size=8)
        b = np.random.SeedSequence(3, pool_size=8)
        oracle = _oracle_coins(a, 6)
        got = _plan_coins(b, 6)
        assert all(np.array_equal(x, y) for x, y in zip(oracle, got))

    def test_exact_mode_is_sequential_only(self):
        plan = RoundRngPlan(np.random.SeedSequence(3, pool_size=8))
        plan.generator(0)
        with pytest.raises(ValueError, match="sequential"):
            plan.generator(2)


class TestStateCache:
    def test_same_seed_shares_the_state_list(self):
        a = RoundRngPlan(1234)
        a.generator(0)
        b = RoundRngPlan(1234)
        assert a._states is b._states

    def test_consumed_roots_do_not_collide(self):
        # Same entropy, different spawn counter: distinct cache entries.
        r1 = np.random.SeedSequence(77)
        r2 = np.random.SeedSequence(77)
        r2.spawn(1)
        a = RoundRngPlan(r1)
        b = RoundRngPlan(r2)
        coins_a = a.generator(0).random(16)
        coins_b = b.generator(0).random(16)
        assert not np.array_equal(coins_a, coins_b)
