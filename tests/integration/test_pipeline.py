"""Integration tests: full pipelines across modules.

These exercise generator → algorithm → validator → analysis chains the way
the examples and benchmarks do, including the process-pool backend and the
serialisation round trip through an algorithm run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CountingMachine,
    Hypergraph,
    ProcessBackend,
    SerialBackend,
    beame_luby,
    check_mis,
    greedy_mis,
    karp_upfal_wigderson,
    permutation_bl,
    sbl,
)
from repro.analysis.instrument import fit_power_law
from repro.generators import (
    bounded_edges_instance,
    mixed_dimension_hypergraph,
    uniform_hypergraph,
)
from repro.hypergraph.hio import dumps, loads


class TestEndToEnd:
    def test_generate_solve_verify_all_algorithms(self):
        H = mixed_dimension_hypergraph(120, 240, [2, 3, 4], seed=0)
        for fn in (beame_luby, karp_upfal_wigderson, greedy_mis, permutation_bl):
            res = fn(H, seed=1)
            check_mis(H, res.independent_set)
        res = sbl(H, seed=1, p_override=0.3, d_cap_override=4, floor_override=16)
        check_mis(H, res.independent_set)

    def test_serialise_then_solve(self, tmp_path):
        H = uniform_hypergraph(60, 90, 3, seed=0)
        path = tmp_path / "instance.txt"
        path.write_text(dumps(H))
        H2 = loads(path.read_text())
        a = beame_luby(H, seed=5)
        b = beame_luby(H2, seed=5)
        assert np.array_equal(a.independent_set, b.independent_set)

    def test_sbl_with_shared_machine_accumulates_all_phases(self):
        H = bounded_edges_instance(512, seed=0, beta_fraction=5.0)
        mach = CountingMachine()
        res = sbl(
            H, seed=0, machine=mach, p_override=0.15, d_cap_override=4,
            floor_override=64,
        )
        check_mis(H, res.independent_set)
        phases = {r.phase for r in res.rounds}
        # sampling phase ran and the end-game too
        assert "sbl" in phases
        assert ("kuw" in phases) or res.meta["outer_rounds"] > 0
        assert mach.depth > 0

    @pytest.mark.slow
    def test_process_backend_equals_serial_backend(self):
        """Parallel execution must not change any algorithmic output."""
        H = uniform_hypergraph(80, 160, 3, seed=0)
        with ProcessBackend(workers=2, chunk_size=64) as pb:
            a = beame_luby(H, seed=3, backend=pb)
        b = beame_luby(H, seed=3, backend=SerialBackend(chunk_size=64))
        assert np.array_equal(a.independent_set, b.independent_set)
        assert a.num_rounds == b.num_rounds

    def test_scaling_pipeline(self):
        """Mini version of E8: generate, run, fit the exponent."""
        ns, rounds = [], []
        for n in (64, 128, 256):
            H = uniform_hypergraph(n, 2 * n, 3, seed=0)
            res = karp_upfal_wigderson(H, seed=0)
            check_mis(H, res.independent_set)
            ns.append(n)
            rounds.append(res.num_rounds)
        a, _ = fit_power_law(ns, rounds)
        assert a < 0.8

    def test_sbl_composes_with_initial_singletons_and_supersets(self):
        """SBL on an un-normalised input (singletons, nested edges)."""
        H = Hypergraph(
            12,
            [(0,), (0, 1), (1, 2, 3), (1, 2, 3, 4), (5, 6), (6, 7, 8), (9, 10, 11)],
        )
        res = sbl(H, seed=2, p_override=0.4, d_cap_override=3, floor_override=4)
        check_mis(H, res.independent_set)
        assert 0 not in res.independent_set

    def test_large_instance_smoke(self):
        H = uniform_hypergraph(2000, 4000, 3, seed=1)
        res = karp_upfal_wigderson(H, seed=1)
        check_mis(H, res.independent_set)

    def test_result_summaries_tabulate(self):
        from repro.analysis.tables import render_table

        H = uniform_hypergraph(50, 80, 3, seed=0)
        rows = []
        for fn in (beame_luby, greedy_mis):
            s = fn(H, seed=0).summary()
            rows.append([s["algorithm"], s["mis_size"], s["rounds"]])
        out = render_table(["algo", "|I|", "rounds"], rows)
        assert "bl" in out and "greedy" in out
