"""Tests for the PRAM cost model."""

from __future__ import annotations

import pytest

from repro.pram import CostModel, CountingMachine, NullMachine


class TestNullMachine:
    def test_charges_dropped(self):
        m = NullMachine()
        m.map(100)
        m.reduce(100)
        m.scan(100)
        m.broadcast(100)
        # NullMachine has no counters; simply must not raise.

    def test_all_helpers_accept_zero(self):
        m = NullMachine()
        m.map(0)
        m.reduce(0)
        m.scan(0)
        m.broadcast(0)
        m.sort(0)
        m.compact(0)


class TestCountingMachineSteps:
    def test_map(self):
        m = CountingMachine()
        m.map(8)
        assert (m.depth, m.work, m.max_processors) == (1, 8, 8)

    def test_map_op_depth(self):
        m = CountingMachine()
        m.map(4, op_depth=3)
        assert (m.depth, m.work) == (3, 12)

    def test_reduce_log_depth(self):
        m = CountingMachine()
        m.reduce(8)
        assert m.depth == 3
        assert m.work == 7

    def test_reduce_nonpow2(self):
        m = CountingMachine()
        m.reduce(9)
        assert m.depth == 4

    def test_reduce_single(self):
        m = CountingMachine()
        m.reduce(1)
        assert m.depth == 1

    def test_scan_two_sweeps(self):
        m = CountingMachine()
        m.scan(8)
        assert m.depth == 6
        assert m.work == 16

    def test_broadcast_erew_is_log(self):
        m = CountingMachine()
        m.broadcast(8)
        assert m.depth == 3

    def test_broadcast_crew_is_constant(self):
        m = CountingMachine(model=CostModel.CREW)
        m.broadcast(8)
        assert m.depth == 1

    def test_sort_log_squared(self):
        m = CountingMachine()
        m.sort(16)
        assert m.depth == 16  # (log2 16)^2

    def test_compact_is_scan_plus_map(self):
        m1 = CountingMachine()
        m1.compact(8)
        m2 = CountingMachine()
        m2.scan(8)
        m2.map(8)
        assert m1.depth == m2.depth and m1.work == m2.work

    def test_sync(self):
        m = CountingMachine()
        m.sync()
        assert (m.depth, m.work) == (1, 0)

    def test_accumulation(self):
        m = CountingMachine()
        m.map(4)
        m.map(4)
        assert m.depth == 2 and m.work == 8

    def test_negative_charge_rejected(self):
        m = CountingMachine()
        with pytest.raises(ValueError):
            m.charge(-1, 0, 0)


class TestPhases:
    def test_phase_attribution(self):
        m = CountingMachine()
        with m.phase("mark"):
            m.map(10)
        m.map(5)
        assert m.phases["mark"].work == 10
        assert m.work == 15

    def test_nested_phases_both_charged(self):
        m = CountingMachine()
        with m.phase("outer"):
            with m.phase("inner"):
                m.map(3)
        assert m.phases["outer"].work == 3
        assert m.phases["inner"].work == 3

    def test_phase_stack_unwinds_on_error(self):
        m = CountingMachine()
        with pytest.raises(RuntimeError):
            with m.phase("x"):
                raise RuntimeError("boom")
        m.map(1)
        assert "x" not in m.phases or m.phases["x"].work == 0


class TestBrent:
    def test_brent_time(self):
        m = CountingMachine()
        m.charge(10, 1000, 100)
        assert m.brent_time(10) == pytest.approx(110.0)

    def test_brent_one_processor_is_work_plus_depth(self):
        m = CountingMachine()
        m.charge(5, 50, 10)
        assert m.brent_time(1) == pytest.approx(55.0)

    def test_brent_invalid(self):
        with pytest.raises(ValueError):
            CountingMachine().brent_time(0)


class TestSnapshot:
    def test_snapshot_keys(self):
        m = CountingMachine()
        m.map(4)
        snap = m.snapshot()
        assert snap == {"depth": 1, "work": 4, "max_processors": 4}

    def test_repr(self):
        assert "depth=0" in repr(CountingMachine())
