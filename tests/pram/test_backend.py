"""Tests for execution backends (serial and process-pool)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hypergraph import Hypergraph
from repro.pram import ProcessBackend, SerialBackend, deterministic_equivalence


class TestSerialBackend:
    def test_bernoulli_deterministic(self):
        b = SerialBackend()
        a = b.bernoulli(42, 1000, 0.3)
        c = b.bernoulli(42, 1000, 0.3)
        assert np.array_equal(a, c)

    def test_bernoulli_rate(self):
        b = SerialBackend()
        marks = b.bernoulli(0, 20000, 0.25)
        assert abs(marks.mean() - 0.25) < 0.02

    def test_bernoulli_extremes(self):
        b = SerialBackend()
        assert not b.bernoulli(0, 100, 0.0).any()
        assert b.bernoulli(0, 100, 1.0).all()

    def test_bernoulli_empty(self):
        assert SerialBackend().bernoulli(0, 0, 0.5).size == 0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            SerialBackend().bernoulli(0, 10, 1.5)

    def test_chunking_invariance(self):
        """Same seed, different chunk sizes: chunk boundaries change draws,
        but each fixed chunk size is self-consistent."""
        a = SerialBackend(chunk_size=64).bernoulli(9, 200, 0.5)
        b = SerialBackend(chunk_size=64).bernoulli(9, 200, 0.5)
        assert np.array_equal(a, b)

    def test_edge_mark_counts(self, small_mixed):
        be = SerialBackend()
        marked = np.zeros(small_mixed.universe, dtype=bool)
        marked[[0, 1, 2]] = True
        counts = be.edge_mark_counts(small_mixed.incidence(), marked)
        expected = [sum(v in (0, 1, 2) for v in e) for e in small_mixed.edges]
        assert counts.tolist() == expected

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            SerialBackend(chunk_size=0)


@pytest.mark.slow
class TestProcessBackend:
    def test_matches_serial(self):
        with ProcessBackend(workers=2, chunk_size=128) as pb:
            sb = SerialBackend(chunk_size=128)
            a = pb.bernoulli(7, 1000, 0.4)
            b = sb.bernoulli(7, 1000, 0.4)
            assert np.array_equal(a, b)

    def test_edge_counts_match_serial(self):
        H = Hypergraph(50, [(i, i + 1, i + 2) for i in range(48)])
        marked = np.zeros(50, dtype=bool)
        marked[::2] = True
        with ProcessBackend(workers=2, chunk_size=16) as pb:
            a = pb.edge_mark_counts(H.incidence(), marked)
        b = SerialBackend().edge_mark_counts(H.incidence(), marked)
        assert np.array_equal(a, b)

    def test_empty_inputs(self):
        with ProcessBackend(workers=1) as pb:
            assert pb.bernoulli(0, 0, 0.5).size == 0
            empty = sp.csr_matrix((0, 10), dtype=np.int64)
            assert pb.edge_mark_counts(empty, np.zeros(10, dtype=bool)).size == 0

    def test_closed_backend_raises(self):
        pb = ProcessBackend(workers=1)
        pb.close()
        with pytest.raises(RuntimeError):
            pb.bernoulli(0, 10, 0.5)

    def test_close_idempotent(self):
        pb = ProcessBackend(workers=1)
        pb.close()
        pb.close()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessBackend(chunk_size=0)

    def test_presplit_cache_reused(self):
        """The same incidence object is sliced once, not once per call."""
        H = Hypergraph(40, [(i, i + 1) for i in range(39)])
        inc = H.incidence()
        marked = np.zeros(40, dtype=bool)
        marked[::3] = True
        with ProcessBackend(workers=1, chunk_size=8) as pb:
            pb.edge_mark_counts(inc, marked)
            first = pb._split_chunks
            assert pb._split_for is inc
            pb.edge_mark_counts(inc, marked)
            assert pb._split_chunks is first
            # A different matrix evicts the one-entry cache.
            other = H.incidence().copy()
            pb.edge_mark_counts(other, marked)
            assert pb._split_for is other
            assert pb._split_chunks is not first


class TestDeterministicEquivalence:
    """The chunking contract: results depend on (seed, chunk_size) only."""

    def test_single_chunk_rejected(self):
        """n inside one chunk certifies nothing — must raise, not pass."""
        backends = [SerialBackend(chunk_size=256), SerialBackend(chunk_size=64)]
        with pytest.raises(ValueError, match="one chunk"):
            deterministic_equivalence(backends, seed=3, n=200, p=0.5)

    def test_serial_backends_agree_across_chunks(self):
        backends = [SerialBackend(chunk_size=64), SerialBackend(chunk_size=64)]
        assert deterministic_equivalence(backends, seed=3, n=1000, p=0.5)

    def test_incidence_shape_checked(self):
        H = Hypergraph(50, [(i, i + 1) for i in range(49)])
        backends = [SerialBackend(chunk_size=16), SerialBackend(chunk_size=16)]
        with pytest.raises(ValueError, match="columns"):
            deterministic_equivalence(
                backends, seed=0, n=60, p=0.5, incidence=H.incidence()
            )

    def test_different_chunk_sizes_detected(self):
        """Different chunk sizes place chunk boundaries differently, so the
        streams genuinely diverge — the check must see that, which is what
        the multi-chunk requirement guarantees."""
        backends = [SerialBackend(chunk_size=64), SerialBackend(chunk_size=128)]
        assert not deterministic_equivalence(backends, seed=3, n=1000, p=0.5)

    @pytest.mark.slow
    def test_process_matches_serial_across_chunks(self):
        """Same seed, n spanning multiple chunks: the pool and the serial
        path must agree bit-for-bit on draws AND on the matvec fan-out."""
        n = 300
        H = Hypergraph(n, [(i, i + 1, i + 2) for i in range(n - 2)])
        with ProcessBackend(workers=2, chunk_size=64) as pb:
            backends = [SerialBackend(chunk_size=64), pb]
            assert deterministic_equivalence(
                backends, seed=11, n=n, p=0.4, incidence=H.incidence()
            )
