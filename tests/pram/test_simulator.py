"""Tests for the step-level EREW simulator and its reference programs."""

from __future__ import annotations

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram.programs import broadcast, compact, exclusive_prefix_sum, tree_reduce
from repro.pram.simulator import AccessViolation, EREWSimulator, Instruction
from repro.util.itlog import log2_ceil


class TestSimulatorBasics:
    def test_alloc_and_memory(self):
        sim = EREWSimulator(2)
        sim.alloc("x", [1, 2, 3])
        assert sim.memory("x").tolist() == [1, 2, 3]

    def test_alloc_by_size(self):
        sim = EREWSimulator(2)
        sim.alloc("x", 4)
        assert sim.memory("x").tolist() == [0, 0, 0, 0]

    def test_double_alloc_rejected(self):
        sim = EREWSimulator(1)
        sim.alloc("x", 1)
        with pytest.raises(ValueError):
            sim.alloc("x", 1)

    def test_unknown_array(self):
        with pytest.raises(KeyError):
            EREWSimulator(1).memory("nope")

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            EREWSimulator(0)

    def test_simple_parallel_move(self):
        sim = EREWSimulator(4)
        sim.alloc("x", [1, 2, 3, 4])
        sim.alloc("y", 4)
        sim.step(Instruction("y", lambda p: p, "x", lambda p: 3 - p))
        assert sim.memory("y").tolist() == [4, 3, 2, 1]
        assert sim.steps_executed == 1
        assert sim.work_executed == 4

    def test_none_address_deactivates(self):
        sim = EREWSimulator(4)
        sim.alloc("x", [1, 1, 1, 1])
        sim.step(Instruction("x", lambda p: p if p < 2 else None, "x", lambda p: p,
                             op=lambda a, b: a + 1))
        assert sim.memory("x").tolist() == [2, 2, 1, 1]
        assert sim.work_executed == 2

    def test_binary_op(self):
        sim = EREWSimulator(2)
        sim.alloc("x", [5, 7])
        sim.alloc("y", [1, 2])
        sim.alloc("z", 2)
        sim.step(Instruction("z", lambda p: p, "x", lambda p: p, "y", lambda p: p,
                             op=operator.mul))
        assert sim.memory("z").tolist() == [5, 14]

    def test_out_of_range_index(self):
        sim = EREWSimulator(2)
        sim.alloc("x", 1)
        with pytest.raises(IndexError):
            sim.step(Instruction("x", lambda p: p, "x", lambda p: 0))


class TestEREWEnforcement:
    def test_concurrent_read_detected(self):
        sim = EREWSimulator(2)
        sim.alloc("x", [7])
        sim.alloc("y", 2)
        with pytest.raises(AccessViolation, match="read"):
            sim.step(Instruction("y", lambda p: p, "x", lambda p: 0))

    def test_concurrent_write_detected(self):
        sim = EREWSimulator(2)
        sim.alloc("x", [1, 2])
        sim.alloc("y", 1)
        with pytest.raises(AccessViolation, match="write"):
            sim.step(Instruction("y", lambda p: 0, "x", lambda p: p))

    def test_cross_processor_read_write_detected(self):
        sim = EREWSimulator(2)
        sim.alloc("x", [1, 2])
        # p0 writes x[1]; p1 reads x[1]
        with pytest.raises(AccessViolation, match="read/write"):
            sim.step(
                Instruction("x", lambda p: 1 - p, "x", lambda p: 1)
                if False
                else Instruction("x", lambda p: 1 if p == 0 else 0,
                                 "x", lambda p: 0 if p == 0 else 1)
            )

    def test_same_processor_read_write_allowed(self):
        sim = EREWSimulator(2)
        sim.alloc("x", [1, 2])
        sim.step(Instruction("x", lambda p: p, "x", lambda p: p,
                             op=lambda a, b: a * 10))
        assert sim.memory("x").tolist() == [10, 20]

    def test_violation_carries_details(self):
        sim = EREWSimulator(3)
        sim.alloc("x", [7])
        sim.alloc("y", 3)
        try:
            sim.step(Instruction("y", lambda p: p, "x", lambda p: 0))
        except AccessViolation as exc:
            assert exc.cell == ("x", 0)
            assert len(exc.processors) == 3
        else:  # pragma: no cover
            pytest.fail("expected violation")


class TestBroadcast:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 32])
    def test_value_and_depth(self, n):
        sim = EREWSimulator(max(n, 1))
        sim.alloc("x", [42.0] + [0.0] * (n - 1))
        steps = broadcast(sim, "x", n)
        assert sim.memory("x").tolist() == [42.0] * n
        assert steps == log2_ceil(n)


class TestTreeReduce:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 20])
    def test_sum(self, n):
        sim = EREWSimulator(max(n, 1))
        vals = list(range(1, n + 1))
        sim.alloc("x", vals)
        steps = tree_reduce(sim, "x", n)
        assert sim.memory("x")[0] == sum(vals)
        assert steps == log2_ceil(n)

    def test_max(self):
        sim = EREWSimulator(8)
        sim.alloc("x", [3, 9, 1, 7, 2, 8, 5, 4])
        tree_reduce(sim, "x", 8, op=max)
        assert sim.memory("x")[0] == 9


class TestPrefixSum:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_matches_numpy(self, n):
        sim = EREWSimulator(n)
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 9, size=n).astype(float)
        sim.alloc("x", vals.tolist())
        exclusive_prefix_sum(sim, "x", n)
        expect = np.concatenate([[0.0], np.cumsum(vals)[:-1]])
        assert sim.memory("x").tolist() == expect.tolist()

    def test_rejects_non_power_of_two(self):
        sim = EREWSimulator(3)
        sim.alloc("x", 3)
        with pytest.raises(ValueError):
            exclusive_prefix_sum(sim, "x", 3)

    def test_depth_is_order_log(self):
        sim = EREWSimulator(16)
        sim.alloc("x", [1.0] * 16)
        steps = exclusive_prefix_sum(sim, "x", 16)
        assert steps <= 4 * log2_ceil(16) + 1


class TestCompact:
    def test_stable_compaction(self):
        n = 8
        sim = EREWSimulator(n)
        sim.alloc("x", [10, 11, 12, 13, 14, 15, 16, 17])
        sim.alloc("flags", [1, 0, 1, 1, 0, 0, 1, 0])
        sim.alloc("out", n)
        compact(sim, "x", "flags", "out", n)
        assert sim.memory("out")[:4].tolist() == [10, 12, 13, 16]

    def test_all_kept(self):
        n = 4
        sim = EREWSimulator(n)
        sim.alloc("x", [1, 2, 3, 4])
        sim.alloc("flags", [1, 1, 1, 1])
        sim.alloc("out", n)
        compact(sim, "x", "flags", "out", n)
        assert sim.memory("out").tolist() == [1, 2, 3, 4]

    def test_none_kept(self):
        n = 4
        sim = EREWSimulator(n)
        sim.alloc("x", [1, 2, 3, 4])
        sim.alloc("flags", [0, 0, 0, 0])
        sim.alloc("out", n)
        compact(sim, "x", "flags", "out", n)
        assert sim.memory("out").tolist() == [0, 0, 0, 0]


class TestPropertyPrograms:
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_reduce_any_values(self, vals):
        n = len(vals)
        sim = EREWSimulator(n)
        sim.alloc("x", vals)
        tree_reduce(sim, "x", n)
        assert sim.memory("x")[0] == sum(vals)

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_scan_powers_of_two(self, k):
        n = 1 << k
        sim = EREWSimulator(n)
        vals = [float(i % 3) for i in range(n)]
        sim.alloc("x", vals)
        exclusive_prefix_sum(sim, "x", n)
        expect = [sum(vals[:i]) for i in range(n)]
        assert sim.memory("x").tolist() == expect
