"""Tests for the certified EREW BL-round program."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bl import apply_bl_round
from repro.generators import sunflower, uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.pram.bl_program import BLRoundProgram, run_bl_round_program


def reference_resolution(H: Hypergraph, marked: np.ndarray):
    """The NumPy ground truth: fully-marked edges and surviving marks."""
    marked = marked & H.vertex_mask()
    if H.num_edges:
        counts = H.incidence() @ marked.astype(np.int64)
        fully = counts == H.edge_sizes()
    else:
        fully = np.zeros(0, dtype=bool)
    unmark = np.zeros(H.universe, dtype=bool)
    for i in np.flatnonzero(fully).tolist():
        for v in H.edges[i]:
            unmark[v] = True
    return fully, marked & ~unmark


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        H = uniform_hypergraph(20, 25, 3, seed=seed)
        rng = np.random.default_rng(seed)
        marked = rng.random(H.universe) < 0.5
        fully, survivors, steps = run_bl_round_program(H, marked)
        ref_fully, ref_surv = reference_resolution(H, marked)
        assert np.array_equal(fully, ref_fully)
        assert np.array_equal(survivors, ref_surv)

    def test_shared_vertex_unmarked_once(self):
        """A vertex in two fully marked edges (the concurrent-write trap)."""
        H = Hypergraph(5, [(0, 1, 2), (2, 3, 4)])
        marked = np.ones(5, dtype=bool)
        fully, survivors, _ = run_bl_round_program(H, marked)
        assert fully.all()
        assert not survivors.any()

    def test_high_degree_vertex(self):
        """deg(v) concurrent reads resolved by the segmented broadcast."""
        H = sunflower(1, 9, 2)  # vertex 0 in nine edges
        marked = np.zeros(H.universe, dtype=bool)
        marked[0] = True
        fully, survivors, _ = run_bl_round_program(H, marked)
        assert not fully.any()
        assert survivors[0]

    def test_partial_marking(self):
        H = Hypergraph(6, [(0, 1), (1, 2, 3), (4, 5)])
        marked = np.array([True, True, False, False, True, True])
        fully, survivors, _ = run_bl_round_program(H, marked)
        assert fully.tolist() == [True, False, True]
        assert survivors.tolist() == [False] * 6

    def test_edgeless(self):
        H = Hypergraph(4)
        marked = np.array([True, False, True, False])
        fully, survivors, _ = run_bl_round_program(H, marked)
        assert fully.size == 0
        assert np.array_equal(survivors, marked)

    def test_inactive_vertices_ignored(self):
        H = Hypergraph(6, [(1, 2)], vertices=[1, 2, 3])
        marked = np.ones(6, dtype=bool)  # marks outside active set ignored
        fully, survivors, _ = run_bl_round_program(H, marked)
        assert fully.tolist() == [True]
        assert survivors.tolist() == [False, False, False, True, False, False]

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_matches_apply_bl_round_commit(self, seed):
        """The program's survivors are exactly what apply_bl_round commits."""
        H = uniform_hypergraph(15, 18, 3, seed=seed)
        rng = np.random.default_rng(seed)
        marked = rng.random(H.universe) < 0.4
        _, survivors, _ = run_bl_round_program(H, marked)
        _, added, _, _ = apply_bl_round(H, marked)
        assert set(np.flatnonzero(survivors).tolist()) == set(added.tolist())


class TestDepth:
    def test_logarithmic_step_count(self):
        H = uniform_hypergraph(40, 60, 4, seed=0)
        prog = BLRoundProgram(H)
        bound = 2 * math.log2(max(prog.seg_v, 2)) + 2 * math.log2(max(prog.seg_e, 2)) + 8
        rng = np.random.default_rng(0)
        marked = rng.random(H.universe) < 0.3
        from repro.pram import EREWSimulator

        sim = EREWSimulator(max(prog.vm_total, prog.em_total, prog.num_vertices))
        prog.run(sim, marked)
        assert prog.steps <= bound

    def test_layout_sizes_are_padded_powers(self):
        H = uniform_hypergraph(30, 40, 3, seed=1)
        prog = BLRoundProgram(H)
        assert prog.seg_e >= 3 and (prog.seg_e & (prog.seg_e - 1)) == 0
        assert prog.seg_v >= H.max_degree()
        assert (prog.seg_v & (prog.seg_v - 1)) == 0
