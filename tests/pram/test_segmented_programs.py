"""Unit tests for the segmented EREW programs (used by the BL-round program)."""

from __future__ import annotations

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram.programs import segmented_broadcast, segmented_combine
from repro.pram.simulator import EREWSimulator


def _sim_with(values):
    sim = EREWSimulator(len(values))
    sim.alloc("x", list(values))
    return sim


class TestSegmentedBroadcast:
    def test_heads_copied(self):
        sim = _sim_with([5, 0, 0, 0, 7, 0, 0, 0])
        steps = segmented_broadcast(sim, "x", 4, 2)
        assert sim.memory("x").tolist() == [5, 5, 5, 5, 7, 7, 7, 7]
        assert steps == 2

    def test_segment_size_one_is_noop(self):
        sim = _sim_with([1, 2, 3])
        assert segmented_broadcast(sim, "x", 1, 3) == 0
        assert sim.memory("x").tolist() == [1, 2, 3]

    def test_single_segment_equals_broadcast(self):
        sim = _sim_with([9, 0, 0, 0, 0, 0, 0, 0])
        segmented_broadcast(sim, "x", 8, 1)
        assert sim.memory("x").tolist() == [9.0] * 8

    def test_non_power_of_two_rejected(self):
        sim = _sim_with([0] * 6)
        with pytest.raises(ValueError):
            segmented_broadcast(sim, "x", 3, 2)

    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_any_layout(self, log_seg, num_segs):
        seg = 1 << log_seg
        heads = list(range(10, 10 + num_segs))
        values = []
        for h in heads:
            values.extend([h] + [0] * (seg - 1))
        sim = _sim_with(values)
        segmented_broadcast(sim, "x", seg, num_segs)
        expect = [h for h in heads for _ in range(seg)]
        assert sim.memory("x").tolist() == expect


class TestSegmentedCombine:
    def test_sum_per_segment(self):
        sim = _sim_with([1, 2, 3, 4, 10, 20, 30, 40])
        steps = segmented_combine(sim, "x", 4, 2)
        got = sim.memory("x")[::4].tolist()
        assert got == [10, 100]
        assert steps == 2

    def test_max_per_segment(self):
        sim = _sim_with([3, 9, 1, 7, 5, 2, 8, 4])
        segmented_combine(sim, "x", 4, 2, op=max)
        assert sim.memory("x")[::4].tolist() == [9, 8]

    def test_min_models_boolean_and(self):
        sim = _sim_with([1, 1, 1, 0, 1, 1, 1, 1])
        segmented_combine(sim, "x", 4, 2, op=min)
        assert sim.memory("x")[::4].tolist() == [0, 1]

    def test_non_power_of_two_rejected(self):
        sim = _sim_with([0] * 6)
        with pytest.raises(ValueError):
            segmented_combine(sim, "x", 6, 1)

    @given(
        st.integers(min_value=0, max_value=3),
        st.lists(st.integers(min_value=-9, max_value=9), min_size=1, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sums(self, log_seg, seg_sums_shape):
        seg = 1 << log_seg
        num_segs = len(seg_sums_shape)
        rng = np.random.default_rng(0)
        values = rng.integers(-5, 6, size=seg * num_segs).tolist()
        sim = _sim_with(values)
        segmented_combine(sim, "x", seg, num_segs, op=operator.add)
        for g in range(num_segs):
            assert sim.memory("x")[g * seg] == sum(values[g * seg : (g + 1) * seg])

    def test_broadcast_then_combine_identity(self):
        """combine(max) after broadcast returns the head values."""
        sim = _sim_with([4, 0, 0, 0, 6, 0, 0, 0])
        segmented_broadcast(sim, "x", 4, 2)
        segmented_combine(sim, "x", 4, 2, op=max)
        assert sim.memory("x")[::4].tolist() == [4, 6]
