"""Tests for computing-and-charging PRAM primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pram import (
    CountingMachine,
    NullMachine,
    broadcast,
    compact,
    exclusive_scan,
    inclusive_scan,
    pmap,
    preduce,
)


class TestPmap:
    def test_computes_and_charges(self):
        m = CountingMachine()
        out = pmap(m, lambda x: x * 2, np.arange(5))
        assert out.tolist() == [0, 2, 4, 6, 8]
        assert m.work == 5

    def test_op_depth(self):
        m = CountingMachine()
        pmap(m, lambda x: x, np.arange(4), op_depth=2)
        assert m.depth == 2


class TestPreduce:
    @pytest.mark.parametrize(
        "op,expected",
        [("sum", 10), ("max", 4), ("min", 1), ("any", True), ("all", True)],
    )
    def test_ops(self, op, expected):
        m = NullMachine()
        assert preduce(m, np.array([1, 2, 3, 4]), op) == expected

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            preduce(NullMachine(), np.arange(3), "median")

    def test_charges_log_depth(self):
        m = CountingMachine()
        preduce(m, np.arange(16))
        assert m.depth == 4


class TestScans:
    def test_inclusive_matches_cumsum(self):
        x = np.array([3, 1, 4, 1, 5])
        assert inclusive_scan(NullMachine(), x).tolist() == np.cumsum(x).tolist()

    def test_exclusive_shifts(self):
        x = np.array([3, 1, 4])
        assert exclusive_scan(NullMachine(), x).tolist() == [0, 3, 4]

    def test_exclusive_empty_and_single(self):
        assert exclusive_scan(NullMachine(), np.array([], dtype=int)).size == 0
        assert exclusive_scan(NullMachine(), np.array([7])).tolist() == [0]

    def test_scan_identity(self):
        """inclusive[i] == exclusive[i] + x[i] — the defining relation."""
        x = np.arange(1, 9)
        inc = inclusive_scan(NullMachine(), x)
        exc = exclusive_scan(NullMachine(), x)
        assert np.array_equal(inc, exc + x)


class TestBroadcastCompact:
    def test_broadcast_values(self):
        out = broadcast(NullMachine(), 7, 4)
        assert out.tolist() == [7, 7, 7, 7]

    def test_broadcast_charges_erew(self):
        m = CountingMachine()
        broadcast(m, 1, 8)
        assert m.depth == 3

    def test_compact(self):
        x = np.array([10, 20, 30, 40])
        keep = np.array([True, False, True, False])
        assert compact(NullMachine(), x, keep).tolist() == [10, 30]

    def test_compact_shape_mismatch(self):
        with pytest.raises(ValueError):
            compact(NullMachine(), np.arange(3), np.array([True]))

    def test_compact_charges_scan(self):
        m = CountingMachine()
        compact(m, np.arange(8), np.ones(8, dtype=bool))
        assert m.depth == 2 * 3 + 1  # scan + map
