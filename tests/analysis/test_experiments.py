"""Smoke + verdict tests for the experiment runners E1–E17.

Each experiment must (a) run at quick scale, (b) produce a well-formed
table, and (c) reach the verdict the paper predicts (recorded in extras).
The heavy runners are exercised at quick scale only; benchmarks re-run
them under pytest-benchmark.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import EXPERIMENTS, ExperimentResult, run_experiment


def _well_formed(res: ExperimentResult) -> None:
    assert res.headers
    assert res.rows
    for row in res.rows:
        assert len(row) == len(res.headers)
    md = res.to_markdown()
    assert res.experiment_id in md


class TestRegistry:
    def test_all_fourteen_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 18)}

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("E99")

    def test_case_insensitive(self):
        res = run_experiment("e9")
        assert res.experiment_id == "E9"


class TestQuickVerdicts:
    """One test per experiment: well-formed + paper-predicted verdict."""

    def test_e1_round_bound(self):
        res = run_experiment("E1", seed=0)
        _well_formed(res)
        assert res.extras["all_within"]

    def test_e2_depth_comparison(self):
        res = run_experiment("E2", seed=0)
        _well_formed(res)
        # KUW must stay within its √n envelope shape
        assert res.extras["kuw_exponent"] < 0.7

    def test_e3_bl_polylog(self):
        res = run_experiment("E3", seed=0)
        _well_formed(res)
        # normalised rounds/log²n column bounded by a small constant
        assert all(row[4] < 4.0 for row in res.rows)

    def test_e4_colored_fraction(self):
        res = run_experiment("E4", seed=0)
        _well_formed(res)
        assert res.extras["failure_rate"] <= res.extras["bound"] + 0.05

    def test_e5_sampled_dimension(self):
        res = run_experiment("E5", seed=0)
        _well_formed(res)
        assert res.extras["all_within"]

    def test_e6_unmark_probability(self):
        res = run_experiment("E6", seed=0)
        _well_formed(res)
        assert res.extras["all_below"]

    def test_e7_migration(self):
        res = run_experiment("E7", seed=0)
        _well_formed(res)
        assert res.extras["holds"]
        # Kim–Vu term strictly below Kelsen term in log2 for every row
        for row in res.rows:
            assert row[3] < row[4]

    def test_e8_kuw_sqrt(self):
        res = run_experiment("E8", seed=0)
        _well_formed(res)
        assert res.extras["within_envelope"]
        assert res.extras["exponent"] < 0.7

    def test_e9_parameters(self):
        res = run_experiment("E9", seed=0)
        _well_formed(res)
        # the asymptotic columns must flip from no to yes down the table
        beats = [row[6] for row in res.rows]
        assert beats[0] is False and beats[-1] is True

    def test_e10_matrix(self):
        res = run_experiment("E10", seed=0)
        _well_formed(res)
        algos = {row[1] for row in res.rows}
        assert {"greedy", "bl", "permutation", "kuw", "sbl", "luby"} <= algos

    def test_e11_recurrence_fix(self):
        res = run_experiment("E11", seed=0)
        _well_formed(res)
        assert all(res.extras["paper_ok"].values())
        # original F fails in every row
        assert all(row[5] is False for row in res.rows)

    def test_e12_necessity(self):
        res = run_experiment("E12", seed=0)
        _well_formed(res)
        verdict = {row[0]: row[1] for row in res.rows}
        assert verdict["F(j)=j·F(j−1)+5"] is True
        assert verdict["F(j)=j·F(j−1)+4"] is False

    def test_e13_invariants(self):
        res = run_experiment("E13", seed=0)
        _well_formed(res)
        assert res.extras["caught_all"]

    def test_e14_linear(self):
        res = run_experiment("E14", seed=0)
        _well_formed(res)
        assert res.extras["exponent"] < 0.4

    def test_e15_polynomial_tails(self):
        res = run_experiment("E15", seed=0)
        _well_formed(res)
        assert res.extras["never_exceeded"]
        # the deepest migration row shows the KV < Kelsen gap
        deep = [row for row in res.rows if row[2] - row[1] >= 3]
        assert deep and all(row[7] < row[8] for row in deep)

    def test_e16_potential_decay(self):
        res = run_experiment("E16", seed=0)
        _well_formed(res)
        assert res.extras["growth_ok"]
        # v2 hits zero well below the q_d budget
        for row in res.rows:
            assert row[3] is not None and math.log2(max(row[3], 1)) < row[6]

    def test_e17_permutation_conjecture(self):
        res = run_experiment("E17", seed=0)
        _well_formed(res)
        assert res.extras["worst_exponent"] < 0.3


class TestDeterminism:
    def test_same_seed_same_rows(self):
        a = run_experiment("E1", seed=3)
        b = run_experiment("E1", seed=3)
        assert a.rows == b.rows
