"""Tests for trace serialisation."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.analysis.traces import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.core import beame_luby, sbl
from repro.generators import mixed_dimension_hypergraph, uniform_hypergraph
from repro.pram import CountingMachine
from repro.theory.parameters import SBLParameters


@pytest.fixture
def traced_result():
    H = uniform_hypergraph(40, 60, 3, seed=0)
    mach = CountingMachine()
    return beame_luby(H, seed=1, machine=mach)


class TestRoundTrip:
    def test_set_and_counts(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        assert np.array_equal(back.independent_set, traced_result.independent_set)
        assert back.algorithm == traced_result.algorithm
        assert back.n == traced_result.n and back.m == traced_result.m
        assert back.num_rounds == traced_result.num_rounds

    def test_round_fields_exact(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        for a, b in zip(traced_result.rounds, back.rounds):
            assert (a.index, a.phase, a.n_before, a.m_before) == (
                b.index, b.phase, b.n_before, b.m_before,
            )
            assert (a.marked, a.unmarked, a.added, a.removed_red) == (
                b.marked, b.unmarked, b.added, b.removed_red,
            )

    def test_machine_snapshot_preserved(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        assert back.machine == traced_result.machine

    def test_numeric_extras_preserved(self, traced_result):
        back = result_from_json(result_to_json(traced_result))
        constrained = [r for r in back.rounds if r.m_before > 0]
        assert all(isinstance(r.extras["p"], float) for r in constrained)

    def test_sbl_meta_with_dataclass_params(self):
        H = mixed_dimension_hypergraph(50, 80, [2, 3, 5], seed=0)
        res = sbl(H, seed=0, p_override=0.3, d_cap_override=4, floor_override=8)
        back = result_from_json(result_to_json(res))
        # dataclass params reconstruct exactly (format v2 tagged encoding)
        assert isinstance(back.meta["params"], SBLParameters)
        assert back.meta["params"] == res.meta["params"]
        assert back.meta["outer_rounds"] == res.meta["outer_rounds"]

    def test_unknown_dataclass_degrades_to_dict(self, traced_result):
        doc = json.loads(result_to_json(traced_result))
        doc["meta"]["mystery"] = {
            "__dataclass__": "NotARealDataclass",
            "fields": {"x": 1},
        }
        back = result_from_json(json.dumps(doc))
        assert back.meta["mystery"] == {"x": 1}

    def test_version_1_file_still_loads(self, traced_result):
        doc = json.loads(result_to_json(traced_result))
        doc["format_version"] = 1
        doc["meta"]["params"] = "SBLParameters(n=40, ...)"  # v1 repr string
        back = result_from_json(json.dumps(doc))
        assert back.meta["params"] == "SBLParameters(n=40, ...)"
        assert back.num_rounds == traced_result.num_rounds

    def test_file_round_trip(self, traced_result, tmp_path):
        path = tmp_path / "trace.json"
        save_result(traced_result, path)
        back = load_result(path)
        assert np.array_equal(back.independent_set, traced_result.independent_set)

    def test_file_object_round_trip(self, traced_result):
        buf = io.StringIO()
        save_result(traced_result, buf)
        buf.seek(0)
        back = load_result(buf)
        assert back.num_rounds == traced_result.num_rounds


class TestFormatGuards:
    def test_version_rejected(self, traced_result):
        doc = json.loads(result_to_json(traced_result))
        doc["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            result_from_json(json.dumps(doc))

    def test_document_is_plain_json(self, traced_result):
        doc = json.loads(result_to_json(traced_result))
        assert doc["format_version"] == 2
        assert isinstance(doc["rounds"], list)
