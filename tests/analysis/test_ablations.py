"""Tests for the ablation runners A1–A5."""

from __future__ import annotations

import pytest

from repro.analysis.ablations import ABLATIONS, run_ablation


class TestRegistry:
    def test_all_registered(self):
        assert set(ABLATIONS) == {"A1", "A2", "A3", "A4", "A5", "A6", "A7"}

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown ablation"):
            run_ablation("A9")

    def test_case_insensitive(self):
        assert run_ablation("a5").experiment_id == "A5"


class TestVerdicts:
    def test_a1_vectorisation_wins(self):
        res = run_ablation("A1", seed=0)
        assert res.extras["min_speedup"] > 2.0

    def test_a2_pivot_wins(self):
        res = run_ablation("A2", seed=0)
        assert res.extras["min_speedup"] > 1.0

    def test_a3_adaptive_needs_fewer_rounds(self):
        res = run_ablation("A3", seed=0)
        # fixed/adaptive ratio above 1 on every size
        assert all(row[4] > 1.0 for row in res.rows)

    def test_a4_rows_well_formed(self):
        res = run_ablation("A4", seed=0)
        for row in res.rows:
            assert len(row) == len(res.headers)
            assert row[1] > 0 and row[2] > 0

    def test_a5_erew_at_least_crew(self):
        res = run_ablation("A5", seed=0)
        assert all(row[1] >= row[2] for row in res.rows)

    def test_a6_fused_cleanup_wins(self):
        res = run_ablation("A6", seed=0)
        assert res.extras["min_speedup"] > 1.2

    def test_a7_component_composition_wins_for_kuw(self):
        res = run_ablation("A7", seed=0)
        assert res.extras["min_speedup"] > 1.0
