"""Tests for the campaign grid runner."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.campaign import (
    AlgorithmSpec,
    Campaign,
    InstanceSpec,
    RunRecord,
    write_csv,
)
from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson
from repro.generators import sparse_random_graph, uniform_hypergraph


def small_campaign(repeats: int = 2) -> Campaign:
    return Campaign(
        instances=[
            InstanceSpec("u3", uniform_hypergraph, {"n": 30, "m": 45, "d": 3}),
            InstanceSpec("graph", sparse_random_graph, {"n": 30, "avg_degree": 3.0}),
        ],
        algorithms=[
            AlgorithmSpec("bl", beame_luby),
            AlgorithmSpec("kuw", karp_upfal_wigderson),
        ],
        repeats=repeats,
    )


class TestRun:
    def test_grid_coverage(self):
        records = small_campaign().run(seed=0)
        assert len(records) == 2 * 2 * 2
        cells = {(r.instance, r.algorithm) for r in records}
        assert cells == {("u3", "bl"), ("u3", "kuw"), ("graph", "bl"), ("graph", "kuw")}

    def test_records_carry_costs(self):
        for r in small_campaign().run(seed=0):
            assert r.depth > 0 and r.work > 0
            assert 0 < r.mis_size <= r.n

    def test_deterministic(self):
        a = small_campaign().run(seed=5)
        b = small_campaign().run(seed=5)
        assert a == b

    def test_parallel_matches_serial(self):
        camp = small_campaign()
        serial = camp.run(seed=3)
        assert camp.run(seed=3, parallel=2) == serial

    def test_parallel_accepts_runner(self):
        from repro.exec import ParallelRunner

        camp = small_campaign()
        serial = camp.run(seed=3)
        with ParallelRunner(1) as runner:
            assert camp.run(seed=3, parallel=runner) == serial

    def test_repeats_vary_seeds(self):
        records = small_campaign(repeats=4).run(seed=0)
        bl_rounds = {r.rounds for r in records if r.algorithm == "bl" and r.instance == "u3"}
        assert len(bl_rounds) > 1  # different seeds → (almost surely) different rounds

    def test_algorithm_options_forwarded(self):
        camp = Campaign(
            instances=[InstanceSpec("u3", uniform_hypergraph, {"n": 20, "m": 25, "d": 3})],
            algorithms=[AlgorithmSpec("bl-fixed", beame_luby,
                                      {"recompute_probability": False})],
            repeats=1,
        )
        assert camp.run(seed=0)[0].algorithm == "bl-fixed"

    def test_validation_failure_propagates(self):
        def broken(H, seed, machine=None):
            res = greedy_mis(H, seed)
            # corrupt: drop one member
            res.independent_set = res.independent_set[1:]
            return res

        camp = Campaign(
            instances=[InstanceSpec("u3", uniform_hypergraph, {"n": 20, "m": 25, "d": 3})],
            algorithms=[AlgorithmSpec("broken", broken)],
            repeats=1,
        )
        with pytest.raises(Exception):
            camp.run(seed=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            Campaign(instances=[], algorithms=[]).run()

    def test_bad_repeats(self):
        camp = small_campaign()
        camp.repeats = 0
        with pytest.raises(ValueError):
            camp.run()


class TestSummarize:
    def test_per_cell_means(self):
        camp = small_campaign(repeats=3)
        records = camp.run(seed=1)
        summary = camp.summarize(records)
        assert len(summary) == 4
        for cell in summary:
            assert cell["runs"] == 3
            assert cell["mis_size"] > 0


class TestCsv:
    def test_round_trip(self):
        records = small_campaign().run(seed=0)
        buf = io.StringIO()
        write_csv(records, buf)
        buf.seek(0)
        rows = list(csv.reader(buf))
        assert rows[0] == list(RunRecord.FIELDS)
        assert len(rows) == len(records) + 1

    def test_path_output(self, tmp_path):
        records = small_campaign().run(seed=0)
        path = tmp_path / "runs.csv"
        write_csv(records, path)
        assert path.read_text().startswith("instance,algorithm")
