"""Tests for terminal sparklines and trace views."""

from __future__ import annotations

import math

import pytest

from repro.analysis.instrument import PotentialTracker
from repro.analysis.sparkline import BLOCKS, sparkline, trace_view, trajectory
from repro.core import beame_luby
from repro.generators import uniform_hypergraph


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline(range(8))
        assert out == BLOCKS

    def test_constant_series_lowest_block(self):
        assert sparkline([5, 5, 5]) == BLOCKS[0] * 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_peak_gets_top_block(self):
        out = sparkline([0, 10, 0])
        assert out[1] == BLOCKS[-1]

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0, math.nan])
        with pytest.raises(ValueError):
            sparkline([1.0, math.inf])

    def test_log_scaling_compresses(self):
        lin = sparkline([1, 10, 100, 1000])
        logd = sparkline([1, 10, 100, 1000], log=True)
        # linear view buries the small values at the bottom block
        assert lin[:2] == BLOCKS[0] * 2
        assert logd[1] != BLOCKS[0]

    def test_length_preserved(self):
        assert len(sparkline(range(37))) == 37


class TestTrajectory:
    def test_label_and_endpoints(self):
        out = trajectory("vertices", [100, 50, 25])
        assert "vertices" in out
        assert "100 → 25" in out

    def test_downsampling_caps_width(self):
        out = trajectory("x", list(range(500)), width=40)
        spark = out.split()[1]
        assert len(spark) == 40

    def test_short_series_untouched(self):
        out = trajectory("x", [1, 2, 3], width=40)
        assert len(out.split()[1]) == 3


class TestTraceView:
    def test_rows_present(self):
        H = uniform_hypergraph(40, 60, 3, seed=0)
        res = beame_luby(H, seed=0)
        view = trace_view(res)
        assert "active vertices" in view
        assert "active edges" in view
        assert "added/round" in view
        assert "v2" not in view

    def test_v2_row_when_tracked(self):
        H = uniform_hypergraph(40, 60, 3, seed=0)
        tracker = PotentialTracker()
        res = beame_luby(H, seed=0, on_round=tracker.on_round)
        view = trace_view(res)
        assert "v2 potential" in view

    def test_empty_trace(self):
        H = uniform_hypergraph(20, 20, 3, seed=0)
        res = beame_luby(H, seed=0, trace=False)
        assert "no trace" in trace_view(res)
