"""Tests for instrumentation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.instrument import MigrationTracker, colored_fractions, fit_power_law
from repro.core import beame_luby, sbl
from repro.generators import mixed_dimension_hypergraph, sunflower


class TestFitPowerLaw:
    def test_exact_power(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**2 for x in xs]
        a, c = fit_power_law(xs, ys)
        assert a == pytest.approx(2.0)
        assert c == pytest.approx(3.0)

    def test_constant_series(self):
        a, _ = fit_power_law([1, 2, 4], [5, 5, 5])
        assert a == pytest.approx(0.0)

    def test_filters_nonpositive(self):
        a, _ = fit_power_law([1, 2, 0, 4], [2, 4, 9, 8])
        assert a == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestMigrationTracker:
    def test_tracks_bl_run(self):
        H = mixed_dimension_hypergraph(50, 80, [2, 3, 4], seed=0)
        tracker = MigrationTracker()
        res = beame_luby(H, seed=0, on_round=tracker.on_round)
        assert len(tracker.delta_history) > 0
        # delta history aligns with constrained rounds
        constrained = [r for r in res.rounds if r.m_before > 0]
        assert len(tracker.delta_history) == len(constrained)

    def test_extras_populated(self):
        H = mixed_dimension_hypergraph(40, 60, [2, 3, 4], seed=1)
        tracker = MigrationTracker()
        res = beame_luby(H, seed=1, on_round=tracker.on_round)
        for rec in res.rounds:
            if rec.m_before > 0:
                assert "dj_increase" in rec.extras

    def test_sunflower_core_migration_detected(self):
        """When a petal vertex is colored, core degrees at lower j rise."""
        H = sunflower(2, 8, 2)  # edges of size 4
        increases = []
        for seed in range(12):
            tracker = MigrationTracker()
            beame_luby(H, seed=seed, on_round=tracker.on_round)
            increases.append(sum(tracker.max_increase_by_j.values()))
        assert any(v > 0 for v in increases)

    def test_increases_nonnegative(self):
        H = mixed_dimension_hypergraph(40, 60, [3, 4], seed=2)
        tracker = MigrationTracker()
        beame_luby(H, seed=2, on_round=tracker.on_round)
        assert all(v >= 0 for v in tracker.max_increase_by_j.values())


class TestColoredFractions:
    def test_extracts_sbl_rounds(self):
        H = mixed_dimension_hypergraph(200, 300, [2, 3, 6], seed=0)
        res = sbl(H, seed=0, p_override=0.25, d_cap_override=4, floor_override=16)
        fracs = colored_fractions(res)
        assert len(fracs) == len(res.rounds_in_phase("sbl"))
        for n_before, colored, ratio in fracs:
            assert colored <= n_before
            assert ratio == pytest.approx(colored / (0.25 * n_before))

    def test_empty_for_missing_phase(self):
        H = mixed_dimension_hypergraph(30, 30, [2, 3], seed=0)
        res = beame_luby(H, seed=0)
        assert colored_fractions(res, phase="sbl") == []
