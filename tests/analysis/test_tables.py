"""Tests for table rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis.tables import format_cell, render_kv, render_table


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "—"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float(self):
        assert format_cell(3.14159) == "3.142"

    def test_float_formats(self):
        assert format_cell(3.14159, ".2f") == "3.14"

    def test_nan_inf(self):
        assert format_cell(float("nan")) == "nan"
        assert format_cell(math.inf) == "inf"
        assert format_cell(-math.inf) == "-inf"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_markdown_shape(self):
        out = render_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert len(lines) == 4

    def test_column_alignment(self):
        out = render_table(["x"], [["looooong"], ["s"]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("**T**")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert out.count("\n") == 1


class TestRenderKv:
    def test_basic(self):
        out = render_kv("params", {"alpha": 0.5, "n": 100})
        assert "alpha" in out and "0.5" in out and "params" in out
