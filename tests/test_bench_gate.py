"""Perf-gate comparison logic (no benchmarks are run here)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_gate import compare  # noqa: E402


def test_within_threshold_passes():
    lines, violations = compare({"kuw": 1000, "bl": 2000}, {"kuw": 1200, "bl": 1900}, 1.25)
    assert violations == []
    assert any("ok" in line for line in lines)


def test_regression_past_threshold_fails():
    _, violations = compare({"kuw": 1000}, {"kuw": 1300}, 1.25)
    assert len(violations) == 1
    assert "kuw" in violations[0] and "1.30x" in violations[0]


def test_boundary_ratio_is_not_a_violation():
    _, violations = compare({"kuw": 1000}, {"kuw": 1250}, 1.25)
    assert violations == []


def test_missing_kernel_fails():
    _, violations = compare({"kuw": 1000, "bl": 2000}, {"kuw": 1000}, 1.25)
    assert any("missing" in v for v in violations)


def test_new_kernel_is_reported_not_failed():
    lines, violations = compare({"kuw": 1000}, {"kuw": 1000, "shiny": 500}, 1.25)
    assert violations == []
    assert any("NEW" in line and "shiny" in line for line in lines)


def test_over_threshold_within_iqr_noise_passes():
    # 1.4x ratio, but the baseline's own spread covers the increase
    lines, violations = compare(
        {"kuw": 1000}, {"kuw": 1400}, 1.25, baseline_iqr={"kuw": 200}
    )
    assert violations == []
    assert any("within noise" in line for line in lines)


def test_over_threshold_beyond_iqr_fails():
    # +700 > 3 x IQR(200): a real regression, not jitter
    _, violations = compare(
        {"kuw": 1000}, {"kuw": 1700}, 1.25, baseline_iqr={"kuw": 200}
    )
    assert len(violations) == 1
    assert "IQR" in violations[0]


def test_iqr_mult_is_tunable():
    _, lenient = compare(
        {"kuw": 1000}, {"kuw": 1700}, 1.25, baseline_iqr={"kuw": 200}, iqr_mult=4.0
    )
    assert lenient == []


def test_zero_iqr_falls_back_to_ratio_test():
    _, violations = compare(
        {"kuw": 1000}, {"kuw": 1300}, 1.25, baseline_iqr={"kuw": 0}
    )
    assert len(violations) == 1


def test_missing_iqr_entry_falls_back_to_ratio_test():
    _, violations = compare(
        {"kuw": 1000}, {"kuw": 1300}, 1.25, baseline_iqr={"other": 500}
    )
    assert len(violations) == 1


@pytest.mark.parametrize("name", ["BENCH_m01.json", "BENCH_m02.json"])
def test_committed_baseline_is_parseable(name):
    import json

    baseline = Path(__file__).resolve().parent.parent / name
    doc = json.loads(baseline.read_text())
    assert doc["unit"] == "ns"
    assert doc["medians_ns"]
    assert all(isinstance(v, int) for v in doc["medians_ns"].values())
    assert set(doc["iqr_ns"]) == set(doc["medians_ns"])


@pytest.mark.parametrize("name", ["BENCH_m01.json", "BENCH_m02.json"])
def test_committed_baseline_records_machine_identity(name):
    import json

    baseline = Path(__file__).resolve().parent.parent / name
    prov = json.loads(baseline.read_text())["provenance"]
    assert isinstance(prov["cpu_count"], int) and prov["cpu_count"] >= 1
    assert prov["machine_id"]


class TestMachineGuard:
    def _doc(self, machine_id):
        prov = {"machine_id": machine_id} if machine_id is not None else {}
        return {"medians_ns": {"kuw": 1000}, "provenance": prov}

    def test_same_machine_passes(self, capsys):
        from bench_gate import check_machine
        from bench_smoke import machine_identity

        doc = self._doc(machine_identity())
        assert check_machine(doc, Path("BENCH_m01.json"), "m01") is None
        assert capsys.readouterr().err == ""

    def test_different_machine_is_an_error_naming_both(self):
        from bench_gate import check_machine

        err = check_machine(self._doc("linux-arm64-apple-m9-64c"), Path("b.json"), "m01")
        assert err is not None
        assert "linux-arm64-apple-m9-64c" in err
        assert "--allow-machine-mismatch" in err

    def test_unstamped_baseline_warns_and_proceeds(self, capsys):
        from bench_gate import check_machine

        assert check_machine(self._doc(None), Path("old.json"), "m01") is None
        assert "no machine identity" in capsys.readouterr().err


class TestMachineIdentity:
    def test_is_normalized_and_stable(self):
        from bench_smoke import machine_identity

        a, b = machine_identity(), machine_identity()
        assert a == b
        assert a == a.lower()
        assert " " not in a
        assert a.endswith("c")


class TestHistory:
    def test_append_and_trend_round_trip(self, tmp_path, capsys):
        from bench_smoke import append_history, machine_identity
        from bench_trend import load_history, render_trend

        history = tmp_path / "hist.jsonl"
        prov = {"machine_id": machine_identity(), "timestamp": "t"}
        for median in (1000_000, 1100_000, 900_000):
            append_history(
                "m01",
                {"provenance": prov, "medians_ns": {"bl": median}, "iqr_ns": {"bl": 1}},
                history_path=history,
            )
        history.write_text(history.read_text() + "not json\n")  # damaged tail
        records = load_history(history)
        assert len(records) == 3
        assert "skipped 1" in capsys.readouterr().err
        out = render_trend(records, suite="m01", entry="bl")
        assert "3 run(s)" in out
        assert "drift -10.0%" in out

    def test_trend_filters_by_suite_and_entry(self):
        from bench_trend import render_trend

        records = [
            {"suite": "m01", "medians_ns": {"bl": 1}, "provenance": {}},
            {"suite": "m02", "medians_ns": {"campaign_serial": 2}, "provenance": {}},
        ]
        out = render_trend(records, suite="m02")
        assert "campaign_serial" in out and "bl" not in out
        assert render_trend(records, suite="m01", entry="nope") == ""

    def test_forensic_solver_map_covers_committed_solver_entries(self):
        import json

        from bench_gate import FORENSIC_SOLVERS

        baseline = Path(__file__).resolve().parent.parent / "BENCH_m01.json"
        entries = set(json.loads(baseline.read_text())["medians_ns"])
        # every solver entry in the baseline has a forensics recipe
        assert {"bl", "bl_bitset", "kuw", "permutation", "greedy"} <= entries
        assert {"bl", "bl_bitset", "kuw", "permutation", "greedy"} <= set(
            FORENSIC_SOLVERS
        )

    def test_forensics_trace_is_inspectable(self, tmp_path):
        from bench_gate import write_forensics_trace

        from repro.obs.inspector import load_trace

        out = tmp_path / "forensics_m01_greedy.jsonl"
        assert write_forensics_trace("greedy", out) is True
        doc = load_trace(out)
        assert doc.run["entry"] == "greedy"
        assert doc.spans  # the solver emitted spans under the tracer
        assert write_forensics_trace("normalize", tmp_path / "x.jsonl") is False

