"""Perf-gate comparison logic (no benchmarks are run here)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_gate import compare  # noqa: E402


def test_within_threshold_passes():
    lines, violations = compare({"kuw": 1000, "bl": 2000}, {"kuw": 1200, "bl": 1900}, 1.25)
    assert violations == []
    assert any("ok" in line for line in lines)


def test_regression_past_threshold_fails():
    _, violations = compare({"kuw": 1000}, {"kuw": 1300}, 1.25)
    assert len(violations) == 1
    assert "kuw" in violations[0] and "1.30x" in violations[0]


def test_boundary_ratio_is_not_a_violation():
    _, violations = compare({"kuw": 1000}, {"kuw": 1250}, 1.25)
    assert violations == []


def test_missing_kernel_fails():
    _, violations = compare({"kuw": 1000, "bl": 2000}, {"kuw": 1000}, 1.25)
    assert any("missing" in v for v in violations)


def test_new_kernel_is_reported_not_failed():
    lines, violations = compare({"kuw": 1000}, {"kuw": 1000, "shiny": 500}, 1.25)
    assert violations == []
    assert any("NEW" in line and "shiny" in line for line in lines)


def test_over_threshold_within_iqr_noise_passes():
    # 1.4x ratio, but the baseline's own spread covers the increase
    lines, violations = compare(
        {"kuw": 1000}, {"kuw": 1400}, 1.25, baseline_iqr={"kuw": 200}
    )
    assert violations == []
    assert any("within noise" in line for line in lines)


def test_over_threshold_beyond_iqr_fails():
    # +700 > 3 x IQR(200): a real regression, not jitter
    _, violations = compare(
        {"kuw": 1000}, {"kuw": 1700}, 1.25, baseline_iqr={"kuw": 200}
    )
    assert len(violations) == 1
    assert "IQR" in violations[0]


def test_iqr_mult_is_tunable():
    _, lenient = compare(
        {"kuw": 1000}, {"kuw": 1700}, 1.25, baseline_iqr={"kuw": 200}, iqr_mult=4.0
    )
    assert lenient == []


def test_zero_iqr_falls_back_to_ratio_test():
    _, violations = compare(
        {"kuw": 1000}, {"kuw": 1300}, 1.25, baseline_iqr={"kuw": 0}
    )
    assert len(violations) == 1


def test_missing_iqr_entry_falls_back_to_ratio_test():
    _, violations = compare(
        {"kuw": 1000}, {"kuw": 1300}, 1.25, baseline_iqr={"other": 500}
    )
    assert len(violations) == 1


@pytest.mark.parametrize("name", ["BENCH_m01.json", "BENCH_m02.json"])
def test_committed_baseline_is_parseable(name):
    import json

    baseline = Path(__file__).resolve().parent.parent / name
    doc = json.loads(baseline.read_text())
    assert doc["unit"] == "ns"
    assert doc["medians_ns"]
    assert all(isinstance(v, int) for v in doc["medians_ns"].values())
    assert set(doc["iqr_ns"]) == set(doc["medians_ns"])
