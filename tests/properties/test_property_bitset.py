"""Property tests: packed uint64 Bitset vs a plain set/bool-mask model.

The packed rewrite (word-parallel ops, vectorised popcount) must be
semantically indistinguishable from the original byte-mask version.  A
seeded interpreter runs random operation sequences against both the
:class:`Bitset` and a Python-``set`` model and compares every observable
after every step — membership, length, iteration order, mask, indices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.bitset import Bitset

UNIVERSES = [0, 1, 7, 63, 64, 65, 127, 128, 200]


def _check_equiv(b: Bitset, model: set[int], n: int) -> None:
    assert len(b) == len(model)
    assert sorted(b) == sorted(model)
    assert b.indices().tolist() == sorted(model)
    assert b.to_set() == model
    mask = b.mask
    assert mask.shape == (n,)
    assert set(np.flatnonzero(mask)) == model
    for v in list(model)[:5]:
        assert v in b
    assert n not in b  # one past the universe is never a member
    assert -1 not in b


def _random_subset(rng: np.random.Generator, n: int) -> list[int]:
    if n == 0:
        return []
    k = int(rng.integers(0, n + 1))
    return rng.choice(n, size=k, replace=False).tolist()


@pytest.mark.parametrize("n", UNIVERSES)
@pytest.mark.parametrize("trial", range(3))
def test_operation_sequences_match_set_model(n, trial):
    rng = np.random.default_rng(1000 * n + trial)
    b = Bitset(n)
    model: set[int] = set()
    for _ in range(60):
        op = int(rng.integers(0, 6))
        if op == 0 and n:
            v = int(rng.integers(0, n))
            b.add(v)
            model.add(v)
        elif op == 1 and n:
            v = int(rng.integers(0, n + 10))  # discard is out-of-range safe
            b.discard(v)
            model.discard(v)
        elif op == 2:
            vs = _random_subset(rng, n)
            b.update(vs)
            model.update(vs)
        elif op == 3:
            vs = _random_subset(rng, n)
            b.difference_update(vs)
            model.difference_update(vs)
        elif op == 4:
            other = _random_subset(rng, n)
            ob = Bitset(n, other)
            assert b.issubset(ob) == model.issubset(set(other))
            assert b.isdisjoint(ob) == model.isdisjoint(set(other))
        else:
            other = _random_subset(rng, n)
            ob = Bitset(n, other)
            for got, want in (
                (b.union(ob), model | set(other)),
                (b.intersection(ob), model & set(other)),
                (b.difference(ob), model - set(other)),
            ):
                assert got.to_set() == want
                assert len(got) == len(want)
        _check_equiv(b, model, n)


@pytest.mark.parametrize("n", UNIVERSES)
def test_mask_round_trip(n):
    rng = np.random.default_rng(n)
    mask = rng.random(n) < 0.5
    b = Bitset.from_mask(mask)
    assert np.array_equal(b.mask, mask)
    assert len(b) == int(mask.sum())
    # from_mask copies: mutating the source does not alias the bitset
    if n:
        mask[:] = True
        assert len(b) != n or bool(mask.sum() == len(b))


@pytest.mark.parametrize("n", UNIVERSES)
def test_full_equals_every_vertex(n):
    b = Bitset.full(n)
    assert b.to_set() == set(range(n))
    assert len(b) == n
    # the tail bits beyond n stay zero: popcount over words is exact
    assert b.indices().tolist() == list(range(n))


def test_bool_mask_dtype_and_readonly():
    b = Bitset(70, [0, 64, 69])
    mask = b.mask
    assert mask.dtype == bool
    with pytest.raises(ValueError):
        mask[0] = False


def test_strict_bounds_match_old_semantics():
    b = Bitset(5)
    with pytest.raises(IndexError):
        b.add(5)
    with pytest.raises(IndexError):
        b.update([0, 9])
    with pytest.raises(IndexError):
        Bitset(3, [3])
    b.discard(99)  # silent, like set.discard


def test_universe_mismatch_raises():
    with pytest.raises(ValueError, match="universe mismatch"):
        Bitset(4).union(Bitset(5))


def test_equality_and_copy_semantics():
    a = Bitset(40, [1, 5, 39])
    c = a.copy()
    assert a == c
    c.add(2)
    assert a != c
    assert a != Bitset(41, [1, 5, 39])  # same members, different universe
    with pytest.raises(TypeError):
        hash(a)
