"""Property-based tests: every algorithm returns an MIS on every input."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    beame_luby,
    greedy_mis,
    karp_upfal_wigderson,
    permutation_bl,
    sbl,
)
from repro.hypergraph import Hypergraph, check_mis


@st.composite
def hypergraphs(draw, max_universe: int = 12, max_edges: int = 10, max_size: int = 4):
    n = draw(st.integers(min_value=1, max_value=max_universe))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        size = draw(st.integers(min_value=1, max_value=min(max_size, n)))
        edge = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        edges.append(tuple(edge))
    return Hypergraph(n, edges)


SEEDS = st.integers(min_value=0, max_value=2**31)


class TestAlgorithmsReturnMIS:
    """The central invariant: output is independent AND maximal, always."""

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_bl(self, H, seed):
        check_mis(H, beame_luby(H, seed=seed).independent_set)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_kuw(self, H, seed):
        check_mis(H, karp_upfal_wigderson(H, seed=seed).independent_set)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_greedy(self, H, seed):
        check_mis(H, greedy_mis(H, seed=seed).independent_set)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_permutation(self, H, seed):
        check_mis(H, permutation_bl(H, seed=seed).independent_set)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_sbl(self, H, seed):
        res = sbl(H, seed=seed, p_override=0.4, d_cap_override=3, floor_override=4)
        check_mis(H, res.independent_set)


class TestCrossAlgorithmConsistency:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_greedy_explicit_order_is_canonical(self, H, seed):
        """Two greedy runs with the same explicit order agree exactly."""
        order = H.vertices.tolist()
        a = greedy_mis(H, order=order)
        b = greedy_mis(H, order=order)
        assert a.independent_set.tolist() == b.independent_set.tolist()

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_mis_sizes_plausible(self, H, seed):
        """Any two MIS sizes differ by at most the trivial bounds."""
        a = beame_luby(H, seed=seed).size
        b = greedy_mis(H, seed=seed).size
        n = H.num_vertices
        assert 0 <= a <= n and 0 <= b <= n
        if H.num_edges == 0:
            assert a == b == n
