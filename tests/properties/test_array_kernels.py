"""Differential properties: the array kernels vs the tuple-path semantics.

The vectorised hot path (CSR edge store, masked round bodies, fused
incremental cleanup, cross-round Δ tracking) must be *bit-identical* to
the pre-array behaviour.  Two baselines pin that down:

* :mod:`repro.core.reference` — per-edge Python loops straight from the
  paper's definitions (the slow oracle);
* inline tuple reimplementations of the old ``Hypergraph`` operations
  (``sorted(set(...))`` canonicalisation, list comprehensions per edge).

Random instances sweep ``n``, ``m`` and ``d`` via both Hypothesis
strategies and seeded generator draws.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apply_bl_round, beame_luby
from repro.core.reference import reference_bl_round, reference_superset_removal
from repro.generators import uniform_hypergraph
from repro.hypergraph import Hypergraph, check_mis, degree_profile, normalize
from repro.hypergraph.degrees import DeltaTracker
from repro.hypergraph.ops import normalize_after_trim, trim_vertices
from repro.pram import SerialBackend

# ----------------------------------------------------------------------
# instance generation
# ----------------------------------------------------------------------


@st.composite
def hypergraphs(draw, max_universe: int = 14, max_edges: int = 12, max_size: int = 4):
    n = draw(st.integers(min_value=1, max_value=max_universe))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        size = draw(st.integers(min_value=1, max_value=min(max_size, n)))
        edge = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        edges.append(tuple(edge))
    return Hypergraph(n, edges)


SEEDS = st.integers(min_value=0, max_value=2**31)


def random_instances(seed: int, trials: int = 40):
    """Seeded (H, rng) pairs sweeping n, m, d — the generator path."""
    rng = np.random.default_rng(seed)
    import math

    for _ in range(trials):
        n = int(rng.integers(4, 30))
        d = int(rng.integers(2, min(5, n) + 1))
        m = int(rng.integers(1, min(40, math.comb(n, d)) + 1))
        yield uniform_hypergraph(n, m, d, seed=int(rng.integers(2**31))), rng


# ----------------------------------------------------------------------
# tuple-path reimplementations (the pre-change semantics)
# ----------------------------------------------------------------------


def tuple_normalize(H: Hypergraph) -> tuple[Hypergraph, set[int]]:
    """Fixpoint of superset removal + singleton deletion, on tuples."""
    edges = list(H.edges)
    vertices = H.vertices.tolist()
    red: set[int] = set()
    while True:
        sets = [frozenset(e) for e in edges]
        edges = [
            e
            for i, e in enumerate(edges)
            if not any(sets[j] < sets[i] for j in range(len(sets)) if j != i)
        ]
        singles = {e[0] for e in edges if len(e) == 1}
        if not singles:
            break
        red.update(singles)
        vertices = [v for v in vertices if v not in singles]
        edges = [e for e in edges if not (set(e) & singles)]
    return Hypergraph(H.universe, edges, vertices=vertices), red


def tuple_trim(H: Hypergraph, removed: set[int]) -> Hypergraph:
    """Per-edge filter + re-canonicalisation through the general constructor."""
    edges = [tuple(v for v in e if v not in removed) for e in H.edges]
    vertices = [v for v in H.vertices.tolist() if v not in removed]
    return Hypergraph(H.universe, edges, vertices=vertices)


def tuple_induced(H: Hypergraph, subset: set[int]) -> Hypergraph:
    return Hypergraph(
        H.universe,
        [e for e in H.edges if set(e) <= subset],
        vertices=[v for v in H.vertices.tolist() if v in subset],
    )


def tuple_without(H: Hypergraph, subset: set[int]) -> Hypergraph:
    return Hypergraph(
        H.universe,
        [e for e in H.edges if not (set(e) & subset)],
        vertices=[v for v in H.vertices.tolist() if v not in subset],
    )


def _independent_subset(H: Hypergraph, rng: np.random.Generator) -> np.ndarray:
    """A random vertex subset containing no full edge (safe to trim)."""
    mask = np.zeros(H.universe, dtype=bool)
    active = H.vertices
    mask[active[rng.random(active.size) < 0.4]] = True
    for e in H.edges:
        if all(mask[v] for v in e):
            mask[e[0]] = False
    return mask


# ----------------------------------------------------------------------
# sub-hypergraph + cleanup operations
# ----------------------------------------------------------------------


class TestSubHypergraphOps:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_induced_matches_tuple_path(self, H, seed):
        rng = np.random.default_rng(seed)
        subset = {int(v) for v in H.vertices if rng.random() < 0.5}
        assert H.induced(sorted(subset)) == tuple_induced(H, subset)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_without_vertices_matches_tuple_path(self, H, seed):
        rng = np.random.default_rng(seed)
        subset = {int(v) for v in H.vertices if rng.random() < 0.5}
        assert H.without_vertices(sorted(subset)) == tuple_without(H, subset)

    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_normalize_matches_tuple_path(self, H):
        got, red = normalize(H)
        want, want_red = tuple_normalize(H)
        assert got == want
        assert set(red.tolist()) == want_red
        # And against the O(m²) oracle for the superset half.
        assert set(reference_superset_removal(H).edges) >= set(got.edges)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_trim_matches_tuple_path(self, H, seed):
        rng = np.random.default_rng(seed)
        mask = _independent_subset(H, rng)
        removed = {int(v) for v in np.flatnonzero(mask)}
        assert trim_vertices(H, np.flatnonzero(mask)) == tuple_trim(H, removed)

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_normalize_after_trim_matches_composition(self, H, seed):
        """On a normal hypergraph the fused kernel equals normalize∘trim —
        both as arrays and through the tuple path."""
        W, _ = normalize(H)
        rng = np.random.default_rng(seed)
        mask = _independent_subset(W, rng)
        fused, red = normalize_after_trim(W, np.flatnonzero(mask))
        composed, red2 = normalize(trim_vertices(W, np.flatnonzero(mask)))
        assert fused == composed
        assert red.tolist() == red2.tolist()
        removed = {int(v) for v in np.flatnonzero(mask)}
        want, want_red = tuple_normalize(tuple_trim(W, removed))
        assert fused == want and set(red.tolist()) == want_red


# ----------------------------------------------------------------------
# the BL round body vs the reference oracle
# ----------------------------------------------------------------------


class TestBLRoundDifferential:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_round_matches_reference(self, H, seed):
        W, _ = normalize(H)
        rng = np.random.default_rng(seed)
        marked_mask = np.zeros(W.universe, dtype=bool)
        active = W.vertices
        marked_mask[active[rng.random(active.size) < 0.5]] = True

        W_after, added, red, unmark = apply_bl_round(
            W, marked_mask, SerialBackend(), assume_normal=True
        )
        ref_after, ref_added, ref_red = reference_bl_round(
            W, {int(v) for v in np.flatnonzero(marked_mask)}
        )
        assert W_after == ref_after
        assert set(added.tolist()) == ref_added
        assert set(red.tolist()) == ref_red

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_assume_normal_agrees_with_general_path(self, H, seed):
        W, _ = normalize(H)
        rng = np.random.default_rng(seed)
        marked_mask = np.zeros(W.universe, dtype=bool)
        active = W.vertices
        marked_mask[active[rng.random(active.size) < 0.5]] = True
        be = SerialBackend()
        fast = apply_bl_round(W, marked_mask, be, assume_normal=True)
        slow = apply_bl_round(W, marked_mask, be, assume_normal=False)
        assert fast[0] == slow[0]
        assert fast[1].tolist() == slow[1].tolist()
        assert set(fast[2].tolist()) == set(slow[2].tolist())
        assert np.array_equal(fast[3], slow[3])

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_collect_diff_is_exact(self, H, seed):
        W, _ = normalize(H)
        rng = np.random.default_rng(seed)
        marked_mask = np.zeros(W.universe, dtype=bool)
        active = W.vertices
        marked_mask[active[rng.random(active.size) < 0.5]] = True
        W_after, added, red, unmark, (rem, add) = apply_bl_round(
            W, marked_mask, SerialBackend(), assume_normal=True, collect_diff=True
        )
        before, after = set(W.edges), set(W_after.edges)
        assert set(rem) == before - after
        assert set(add) == after - before
        assert len(rem) == len(set(rem)) and len(add) == len(set(add))


# ----------------------------------------------------------------------
# cross-round Δ tracking
# ----------------------------------------------------------------------


class TestDeltaTracker:
    def test_bulk_init_matches_profile(self):
        for H, _ in random_instances(seed=11, trials=25):
            tracker = DeltaTracker.from_hypergraph(H)
            assert tracker.delta_by_size == degree_profile(H).delta_by_size
            assert tracker.delta() == degree_profile(H).delta()

    def test_incremental_updates_match_recomputation(self):
        """Drive the tracker with the exact round diffs over several BL
        rounds; after every round it must equal the from-scratch profile."""
        for H, rng in random_instances(seed=23, trials=15):
            W, _ = normalize(H)
            tracker = DeltaTracker.from_hypergraph(W)
            for _ in range(6):
                if W.num_vertices == 0 or W.num_edges == 0:
                    break
                marked_mask = np.zeros(W.universe, dtype=bool)
                active = W.vertices
                marked_mask[active[rng.random(active.size) < 0.4]] = True
                W_after, added, red, unmark, (rem, add) = apply_bl_round(
                    W, marked_mask, SerialBackend(), assume_normal=True, collect_diff=True
                )
                if W_after is not W:
                    if rem:
                        tracker.remove_edges(rem)
                    if add:
                        tracker.add_edges(add)
                W = W_after
                assert tracker.delta_by_size == degree_profile(W).delta_by_size


# ----------------------------------------------------------------------
# end-to-end MIS equivalence
# ----------------------------------------------------------------------


class TestEndToEndMIS:
    def test_bl_rounds_replay_against_reference(self):
        """Every round the solver takes must agree with the oracle round
        applied to the same marking, and the final set must be an MIS."""
        for H, rng in random_instances(seed=37, trials=12):
            seed = int(rng.integers(2**31))

            def check(record, W, W_after, marked_mask, added):
                ref_after, ref_added, _ = reference_bl_round(
                    W, {int(v) for v in np.flatnonzero(marked_mask)}
                )
                assert W_after == ref_after
                assert set(added.tolist()) == ref_added

            res = beame_luby(H, seed=seed, on_round=check)
            check_mis(H, res.independent_set)

    def test_same_seed_same_set(self):
        for H, rng in random_instances(seed=41, trials=10):
            seed = int(rng.integers(2**31))
            a = beame_luby(H, seed=seed).independent_set
            b = beame_luby(H, seed=seed).independent_set
            assert a.tolist() == b.tolist()

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_bl_mis_on_arbitrary_instances(self, H, seed):
        check_mis(H, beame_luby(H, seed=seed).independent_set)
