"""Property-based tests (hypothesis) for the hypergraph substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    is_independent,
    normalize,
    remove_superset_edges,
    trim_vertices,
)
from repro.hypergraph.degrees import degree_profile, neighborhood_count
from repro.hypergraph.hio import dumps, from_json, loads, to_json


@st.composite
def hypergraphs(draw, max_universe: int = 14, max_edges: int = 12, max_size: int = 5):
    """Random small hypergraphs with full active vertex sets."""
    n = draw(st.integers(min_value=1, max_value=max_universe))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        size = draw(st.integers(min_value=1, max_value=min(max_size, n)))
        edge = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        edges.append(tuple(edge))
    return Hypergraph(n, edges)


@st.composite
def hypergraph_with_subset(draw):
    H = draw(hypergraphs())
    subset = draw(
        st.lists(
            st.integers(min_value=0, max_value=H.universe - 1),
            max_size=H.universe,
            unique=True,
        )
    )
    return H, subset


class TestCanonicalisation:
    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_is_identity(self, H):
        assert Hypergraph(H.universe, H.edges, vertices=H.vertices) == H

    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_edges_sorted_and_unique(self, H):
        assert list(H.edges) == sorted(set(H.edges))
        for e in H.edges:
            assert list(e) == sorted(set(e))

    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_serialisation_roundtrips(self, H):
        assert loads(dumps(H)) == H
        assert from_json(to_json(H)) == H


class TestEdgesWithin:
    @given(hypergraph_with_subset())
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, case):
        H, subset = case
        mask = np.zeros(H.universe, dtype=bool)
        mask[subset] = True
        got = {H.edges[i] for i in H.edges_within(mask).tolist()}
        expect = {e for e in H.edges if set(e) <= set(subset)}
        assert got == expect

    @given(hypergraph_with_subset())
    @settings(max_examples=60, deadline=None)
    def test_independence_definition(self, case):
        H, subset = case
        expect = not any(set(e) <= set(subset) for e in H.edges)
        assert is_independent(H, subset) == expect


class TestOpsInvariants:
    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_superset_removal_keeps_minimal_constraints(self, H):
        H2 = remove_superset_edges(H)
        # every surviving edge was an edge; every dropped edge has a
        # surviving subset
        survivors = set(H2.edges)
        assert survivors <= set(H.edges)
        for e in H.edges:
            if e not in survivors:
                assert any(set(s) < set(e) for s in survivors)

    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_superset_removal_preserves_independent_sets(self, H):
        """A set is independent in H iff independent in the minimised H."""
        H2 = remove_superset_edges(H)
        rng = np.random.default_rng(0)
        for _ in range(5):
            subset = np.flatnonzero(rng.random(H.universe) < 0.5)
            assert is_independent(H, subset) == is_independent(H2, subset)

    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_normalize_no_singletons_no_supersets(self, H):
        H2, red = normalize(H)
        sizes = [len(e) for e in H2.edges]
        assert all(s >= 2 for s in sizes)
        sets = [set(e) for e in H2.edges]
        for i, a in enumerate(sets):
            for j, b in enumerate(sets):
                if i != j:
                    assert not (a < b)

    @given(hypergraphs(), st.integers(min_value=0, max_value=13))
    @settings(max_examples=60, deadline=None)
    def test_trim_removes_vertex_everywhere(self, H, v):
        if v >= H.universe:
            return
        if any(set(e) == {v} for e in H.edges):
            return  # would empty an edge; covered by unit tests
        H2 = trim_vertices(H, [v])
        assert all(v not in e for e in H2.edges)
        assert v not in H2.vertices.tolist()


class TestDegreeConsistency:
    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_profile_counts_match_neighborhood_count(self, H):
        prof = degree_profile(H)
        for (x, i), c in prof.counts.items():
            assert neighborhood_count(H, x, i - len(x)) == c

    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_delta_nonnegative_and_bounded(self, H):
        prof = degree_profile(H)
        assert prof.delta() >= 0
        # d_j(x) ≤ m^(1/j) ≤ m
        assert prof.delta() <= max(H.num_edges, 1)
