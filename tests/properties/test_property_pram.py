"""Property-based tests for the PRAM cost model and primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import (
    CountingMachine,
    NullMachine,
    compact,
    exclusive_scan,
    inclusive_scan,
    preduce,
)
from repro.util.itlog import log2_ceil

ARRAYS = st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=64)


class TestScanProperties:
    @given(ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_inclusive_matches_cumsum(self, xs):
        x = np.asarray(xs)
        assert np.array_equal(inclusive_scan(NullMachine(), x), np.cumsum(x))

    @given(ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_defining_relation(self, xs):
        x = np.asarray(xs)
        inc = inclusive_scan(NullMachine(), x)
        exc = exclusive_scan(NullMachine(), x)
        assert np.array_equal(inc, exc + x)

    @given(ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_last_inclusive_is_total(self, xs):
        x = np.asarray(xs)
        assert inclusive_scan(NullMachine(), x)[-1] == x.sum()


class TestReduceProperties:
    @given(ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_sum_max_min(self, xs):
        x = np.asarray(xs)
        m = NullMachine()
        assert preduce(m, x, "sum") == x.sum()
        assert preduce(m, x, "max") == x.max()
        assert preduce(m, x, "min") == x.min()


class TestCompactProperties:
    @given(ARRAYS, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_compact_preserves_order(self, xs, rnd):
        x = np.asarray(xs)
        keep = np.asarray([rnd.random() < 0.5 for _ in xs])
        out = compact(NullMachine(), x, keep)
        assert out.tolist() == [v for v, k in zip(xs, keep) if k]


class TestCostInvariants:
    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=80, deadline=None)
    def test_reduce_depth_is_ceil_log(self, n):
        m = CountingMachine()
        m.reduce(n)
        assert m.depth == max(log2_ceil(n), 1)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=80, deadline=None)
    def test_work_at_least_depth_implied(self, n):
        """Work ≥ depth·1 for any single primitive (no free depth)."""
        for step in ("map", "reduce", "scan", "broadcast", "sort"):
            m = CountingMachine()
            getattr(m, step)(n)
            assert m.work >= 1
            assert m.depth >= 1

    @given(st.integers(min_value=2, max_value=10**4), st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_brent_monotone_in_processors(self, n, p):
        m = CountingMachine()
        m.scan(n)
        m.reduce(n)
        assert m.brent_time(p) >= m.brent_time(p + 1)

    @given(st.integers(min_value=1, max_value=10**4))
    @settings(max_examples=60, deadline=None)
    def test_brent_lower_bounded_by_depth(self, n):
        m = CountingMachine()
        m.sort(n)
        assert m.brent_time(10**9) >= m.depth
