"""Property-based tests on algorithm *traces* (not just outputs).

The experiments read quantities off the round traces; these tests pin the
trace semantics down on random inputs so the experiment code can trust
them:

* conservation: committed vertices across rounds = |I|; every vertex ends
  blue, red, or still-active-at-zero-edges;
* monotonicity: active vertices and edges never grow;
* SBL rounds: colored-per-round equals the sampled count, and every
  sampled sub-hypergraph respects the dimension cap.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import beame_luby, karp_upfal_wigderson, permutation_bl, sbl
from repro.hypergraph import Hypergraph

SEEDS = st.integers(min_value=0, max_value=2**31)


@st.composite
def hypergraphs(draw, max_universe: int = 12, max_edges: int = 10, max_size: int = 4):
    n = draw(st.integers(min_value=2, max_value=max_universe))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        size = draw(st.integers(min_value=2, max_value=min(max_size, n)))
        edge = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        edges.append(tuple(edge))
    return Hypergraph(n, edges)


class TestBLTrace:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_conservation(self, H, seed):
        res = beame_luby(H, seed=seed)
        assert sum(r.added for r in res.rounds) == res.size
        # blue + red + prenormalized red = all active vertices
        reds = sum(r.removed_red for r in res.rounds)
        assert res.size + reds + res.meta["prenormalized_red"] == H.num_vertices

    @given(hypergraphs(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, H, seed):
        res = beame_luby(H, seed=seed)
        for r in res.rounds:
            assert r.n_after <= r.n_before
            assert r.m_after <= r.m_before
        for a, b in zip(res.rounds, res.rounds[1:]):
            assert b.n_before == a.n_after
            assert b.m_before == a.m_after


class TestPermutationTrace:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_conservation(self, H, seed):
        res = permutation_bl(H, seed=seed)
        assert sum(r.added for r in res.rounds) == res.size
        reds = sum(r.removed_red for r in res.rounds)
        assert res.size + reds == H.num_vertices


class TestKUWTrace:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_prefixes_sum_to_set(self, H, seed):
        res = karp_upfal_wigderson(H, seed=seed)
        assert sum(r.extras["prefix"] for r in res.rounds) == res.size


class TestSBLTrace:
    @given(hypergraphs(), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_outer_round_invariants(self, H, seed):
        res = sbl(H, seed=seed, p_override=0.4, d_cap_override=3, floor_override=4)
        for r in res.rounds_in_phase("sbl"):
            # every sampled vertex is decided this round
            assert r.marked == r.added + r.removed_red
            assert r.n_before - r.n_after == r.marked
            # the sampled sub-hypergraph respected the cap
            assert r.extras["sampled_dim"] <= 3
