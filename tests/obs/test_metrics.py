"""Tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry


class TestMetricKinds:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="negative"):
            reg.counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (4, 1, 7):
            reg.histogram("h").observe(v)
        h = reg.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (3, 12, 1, 7)
        assert h.mean == 4.0

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")


class TestRegistry:
    def test_snapshot_groups_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"] == {"count": 1, "sum": 3, "min": 3, "max": 3}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0


class TestIsolation:
    def test_isolated_registry_captures_module_helpers(self):
        with metrics.isolated_registry() as reg:
            metrics.inc("c", 3)
            metrics.set_gauge("g", 1)
            metrics.observe("h", 2)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        # nothing leaked into the surrounding default registry
        assert metrics.default_registry() is not reg

    def test_isolation_nests_and_restores(self):
        outer_default = metrics.default_registry()
        with metrics.isolated_registry() as outer:
            with metrics.isolated_registry() as inner:
                metrics.inc("x")
                assert metrics.default_registry() is inner
            metrics.inc("y")
            assert outer.snapshot()["counters"] == {"y": 1}
            assert inner.snapshot()["counters"] == {"x": 1}
        assert metrics.default_registry() is outer_default

    def test_isolation_restores_on_error(self):
        before = metrics.default_registry()
        with pytest.raises(RuntimeError):
            with metrics.isolated_registry():
                raise RuntimeError("boom")
        assert metrics.default_registry() is before

    def test_explicit_registry_reused(self):
        reg = MetricsRegistry()
        with metrics.isolated_registry(reg) as got:
            assert got is reg
            metrics.inc("k")
        assert reg.counter("k").value == 1
