"""Sampling profiler: capture, span attribution, rendering, zero-impact."""

from __future__ import annotations

import io
import json
import time

import numpy as np
import pytest

from repro.core import beame_luby
from repro.generators import uniform_hypergraph
from repro.obs.events import JsonlSink
from repro.obs.profile import (
    SamplingProfiler,
    _merge_profiles,
    folded_stacks,
    render_flame,
    write_speedscope,
)
from repro.obs.tracer import Tracer, use_tracer


def _spin_here(deadline: float) -> int:
    """A named frame the sampler must observe."""
    spins = 0
    while time.perf_counter() < deadline:
        spins += 1
    return spins


def _profiled_spin(hz: float = 400.0, seconds: float = 0.15) -> dict:
    with SamplingProfiler(hz) as prof:
        _spin_here(time.perf_counter() + seconds)
    return prof.stop()  # idempotent: thread already joined, returns event


class TestCapture:
    def test_samples_name_the_hot_frame(self):
        event = _profiled_spin()
        assert event["type"] == "profile"
        assert event["samples"] > 0
        names = {name for name, _file, _line in event["frames"]}
        assert "_spin_here" in names

    def test_frame_table_is_interned(self):
        event = _profiled_spin()
        for st in event["stacks"]:
            for idx in st["f"]:
                assert 0 <= idx < len(event["frames"])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(50).start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                prof.start()
        finally:
            prof.stop()


class TestSpanAttribution:
    def test_samples_carry_open_span_id_and_event_lands_on_stream(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with use_tracer(tracer):
            with SamplingProfiler(400.0, tracer=tracer):
                with tracer.span("hot/phase") as span:
                    _spin_here(time.perf_counter() + 0.15)
        buf.seek(0)
        events = [json.loads(line) for line in buf if line.strip()]
        profiles = [e for e in events if e.get("type") == "profile"]
        assert len(profiles) == 1
        spans_hit = {st.get("span") for st in profiles[0]["stacks"]}
        assert span.span_id in spans_hit


class TestRendering:
    def _trace_with_profile(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(JsonlSink(path))
        with use_tracer(tracer):
            with SamplingProfiler(400.0, tracer=tracer):
                with tracer.span("hot/phase"):
                    _spin_here(time.perf_counter() + 0.15)
        tracer.close()
        return path

    def test_folded_stacks_join_frame_names(self):
        event = _profiled_spin()
        folded = folded_stacks(event)
        assert sum(folded.values()) == event["samples"]
        assert any("_spin_here" in key for key in folded)

    def test_render_flame_names_frame_and_span(self, tmp_path):
        out = render_flame(self._trace_with_profile(tmp_path))
        assert "_spin_here" in out
        assert "hot/phase" in out
        assert "hot frames" in out and "samples by span" in out

    def test_render_flame_without_profile_events_errors(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        tracer = Tracer(JsonlSink(path))
        with tracer.span("a"):
            pass
        tracer.close()
        with pytest.raises(ValueError, match="no profile events"):
            render_flame(path)

    def test_speedscope_export_is_schema_shaped(self, tmp_path):
        trace = self._trace_with_profile(tmp_path)
        out = tmp_path / "prof.speedscope.json"
        n = write_speedscope(trace, out)
        doc = json.loads(out.read_text())
        assert n > 0
        assert doc["$schema"].endswith("file-format-schema.json")
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"])
        for sample in prof["samples"]:
            for idx in sample:
                assert 0 <= idx < len(doc["shared"]["frames"])

    def test_merge_reinterns_frames_across_events(self):
        a = _profiled_spin(seconds=0.05)
        b = _profiled_spin(seconds=0.05)
        merged = _merge_profiles([a, b])
        assert merged["samples"] == a["samples"] + b["samples"]
        names = {name for name, _f, _l in merged["frames"]}
        assert "_spin_here" in names


class TestSolverEquivalence:
    def test_profiling_does_not_change_solver_output(self):
        H = uniform_hypergraph(80, 160, 3, seed=5)
        plain = beame_luby(H, seed=9)
        with SamplingProfiler(200.0):
            profiled = beame_luby(H, seed=9)
        assert np.array_equal(plain.independent_set, profiled.independent_set)
        assert plain.num_rounds == profiled.num_rounds
