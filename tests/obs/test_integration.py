"""Integration: solver runs emit well-formed span trees and round wall-times."""

from __future__ import annotations

import io
import json

import pytest

from repro.core import beame_luby, karp_upfal_wigderson, luby_mis, sbl
from repro.generators import sparse_random_graph, uniform_hypergraph
from repro.obs import metrics
from repro.obs.events import JsonlSink, read_events
from repro.obs.tracer import Tracer
from repro.pram import CountingMachine


def _run_sbl(buf):
    H = uniform_hypergraph(400, 800, 3, seed=1)
    tracer = Tracer(JsonlSink(buf))
    with metrics.isolated_registry() as reg:
        res = sbl(
            H,
            seed=2,
            machine=CountingMachine(),
            tracer=tracer,
            p_override=0.05,
            d_cap_override=2,
            floor_override=50,
            max_failures_per_round=500,
        )
        tracer.flush_metrics(reg)
    return res


class TestSpanStructure:
    @pytest.fixture(scope="class")
    def events(self):
        buf = io.StringIO()
        _run_sbl(buf)
        buf.seek(0)
        return read_events(buf)

    def test_nesting_matches_phase_structure(self, events):
        spans = [e for e in events if e["type"] == "span"]
        by_id = {e["id"]: e for e in spans}
        parent_name = {
            e["id"]: by_id[e["parent"]]["name"] if "parent" in e else None
            for e in spans
        }
        expected_parent = {
            "sbl/solve": {None},
            "sbl/outer_round": {"sbl/solve"},
            "sbl/sample": {"sbl/outer_round"},
            "sbl/commit": {"sbl/outer_round"},
            "sbl/finisher": {"sbl/solve"},
            # inner BL runs inside outer rounds; the finisher's KUW inside it
            "bl/solve": {"sbl/outer_round"},
            "bl/round": {"bl/solve"},
            "kuw/solve": {"sbl/finisher"},
            "kuw/round": {"kuw/solve"},
        }
        seen = {e["name"] for e in spans}
        # every expected phase must actually occur on this seeded instance
        assert set(expected_parent) - {"kuw/solve", "kuw/round"} <= seen
        for e in spans:
            assert parent_name[e["id"]] in expected_parent[e["name"]]

    def test_every_span_has_wall_and_pram(self, events):
        spans = [e for e in events if e["type"] == "span"]
        assert spans
        for e in spans:
            assert e["wall_ns"] >= 0
            assert set(e["pram"]) == {"depth", "work"}

    def test_rounds_carry_shrinkage_attrs(self, events):
        outer = [e for e in events if e["type"] == "span" and e["name"] == "sbl/outer_round"]
        assert outer
        for e in outer:
            attrs = e["attrs"]
            assert attrs["n_after"] <= attrs["n"]
            assert attrs["m_after"] <= attrs["m"]

    def test_metrics_flushed(self, events):
        (event,) = [e for e in events if e["type"] == "metrics"]
        counters = event["metrics"]["counters"]
        assert counters["solver/vertices_committed"] > 0
        assert counters["backend/bernoulli_calls"] > 0
        assert counters["edgestore/trim_calls"] > 0


class TestWallNsExtras:
    def test_round_records_stamped_when_tracing(self):
        H = uniform_hypergraph(60, 120, 3, seed=3)
        tracer = Tracer(JsonlSink(io.StringIO()))
        with metrics.isolated_registry():
            res = beame_luby(H, seed=4, tracer=tracer)
        assert res.rounds
        assert all(r.extras["wall_ns"] > 0 for r in res.rounds)

    def test_no_stamp_without_tracer(self):
        H = uniform_hypergraph(60, 120, 3, seed=3)
        res = beame_luby(H, seed=4)
        assert all("wall_ns" not in r.extras for r in res.rounds)

    def test_kuw_and_luby_stamped(self):
        tracer = Tracer(JsonlSink(io.StringIO()))
        with metrics.isolated_registry():
            rk = karp_upfal_wigderson(
                uniform_hypergraph(50, 100, 3, seed=5), seed=6, tracer=tracer
            )
            rl = luby_mis(sparse_random_graph(50, 3.0, seed=7), seed=8, tracer=tracer)
        for res in (rk, rl):
            assert res.rounds
            assert all("wall_ns" in r.extras for r in res.rounds)

    def test_determinism_unaffected_by_tracing(self):
        H = uniform_hypergraph(80, 160, 3, seed=9)
        plain = sbl(H, seed=10)
        tracer = Tracer(JsonlSink(io.StringIO()))
        with metrics.isolated_registry():
            traced = sbl(H, seed=10, tracer=tracer)
        assert plain.independent_set.tolist() == traced.independent_set.tolist()
