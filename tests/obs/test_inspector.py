"""Tests for the trace inspector (span-tree reconstruction + rendering)."""

from __future__ import annotations

import pytest

from repro.obs.events import JsonlSink
from repro.obs.inspector import load_trace, render_compare, render_summary
from repro.obs.tracer import Tracer


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "run.jsonl"
    tracer = Tracer(JsonlSink(path))
    tracer.emit("run", command="solve", algorithm="bl", seed=3, n=100, m=200)
    with tracer.span("bl/solve", n=100, m=200):
        for i in range(3):
            with tracer.span("bl/round", round=i) as sp:
                sp.set(n_after=100 - 10 * (i + 1))
    tracer.flush_metrics()
    tracer.close()
    return path


class TestLoadTrace:
    def test_tree_reconstruction(self, trace_path):
        doc = load_trace(trace_path)
        assert doc.run["algorithm"] == "bl"
        (root,) = doc.roots
        assert root.name == "bl/solve"
        assert [c.name for c in root.children] == ["bl/round"] * 3
        # children restored to open order even though closes arrive first
        assert [c.attrs["round"] for c in root.children] == [0, 1, 2]

    def test_metrics_captured(self, trace_path):
        doc = load_trace(trace_path)
        assert doc.metrics is not None
        assert "counters" in doc.metrics

    def test_orphan_span_becomes_root(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "span", "id": 5, "name": "x", "wall_ns": 10, "parent": 99})
        sink.close()
        doc = load_trace(path)
        assert [s.name for s in doc.roots] == ["x"]


class TestRenderSummary:
    def test_contains_tree_rollup_and_run(self, trace_path):
        text = render_summary(trace_path)
        assert "run: command=solve" in text
        assert "bl/solve" in text
        assert "×3" in text  # collapsed sibling rounds
        assert "per-phase rollup" in text

    def test_sparkline_for_repeated_spans(self, trace_path):
        text = render_summary(trace_path)
        assert "bl/round" in text.split("trajectories")[-1]

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlSink(path).close()
        assert "no spans recorded" in render_summary(path)

    def test_kernel_dispatch_table(self, tmp_path):
        from repro.obs.metrics import isolated_registry

        path = tmp_path / "run.jsonl"
        with isolated_registry() as reg:
            tracer = Tracer(JsonlSink(path), registry=reg)
            with tracer.span("bl/solve"):
                reg.counter("kernels/dispatch_shape/d3-u1k/bitset").inc()
                reg.counter("kernels/dispatch_shape/d4plus-u4k/bitset").inc(2)
                reg.counter("kernels/dispatch_mode/cost-model").inc()
                reg.counter("kernels/dispatch_mode/static").inc(2)
            tracer.flush_metrics()
            tracer.close()
        text = render_summary(path)
        assert "kernel dispatch" in text
        assert "d3-u1k" in text and "d4plus-u4k" in text
        assert "cost-model: 1" in text and "static: 2" in text


class TestRenderCompare:
    def test_deltas_and_missing_sides(self, trace_path, tmp_path):
        other = tmp_path / "other.jsonl"
        tracer = Tracer(JsonlSink(other))
        with tracer.span("bl/solve"):
            pass
        with tracer.span("kuw/solve"):
            pass
        tracer.close()
        text = render_compare(trace_path, other)
        assert "trace compare" in text
        assert "bl/solve" in text and "kuw/solve" in text
        assert "%" in text  # at least one relative delta
        assert "—" in text  # spans missing from stream A
