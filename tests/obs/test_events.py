"""Tests for the versioned JSONL event stream."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.obs.events import (
    EVENT_VERSION,
    JsonlSink,
    from_jsonable,
    iter_events,
    read_events,
    to_jsonable,
)


class TestEncoding:
    def test_python_scalars_pass_through(self):
        for v in ("x", 3, 2.5, True, None):
            assert to_jsonable(v) == v

    def test_numpy_scalars_collapse(self):
        assert to_jsonable(np.int64(7)) == 7
        assert isinstance(to_jsonable(np.int64(7)), int)
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert isinstance(to_jsonable(np.float64(0.5)), float)
        assert to_jsonable(np.bool_(True)) is True

    def test_ndarray_round_trips_exactly(self):
        for arr in (
            np.arange(5, dtype=np.int32),
            np.array([0.25, -1.5], dtype=np.float64),
            np.array([], dtype=np.intp),
            np.array([True, False]),
        ):
            encoded = to_jsonable(arr)
            # must survive an actual JSON round trip, not just the encoder
            back = from_jsonable(json.loads(json.dumps(encoded)))
            assert isinstance(back, np.ndarray)
            assert back.dtype == arr.dtype
            assert np.array_equal(back, arr)

    def test_nested_containers(self):
        doc = {"a": [np.int64(1), {"b": np.arange(3)}], "c": (1, 2)}
        back = from_jsonable(json.loads(json.dumps(to_jsonable(doc))))
        assert back["a"][0] == 1
        assert np.array_equal(back["a"][1]["b"], np.arange(3))
        assert back["c"] == [1, 2]

    def test_unknown_objects_become_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert to_jsonable(Weird()) == "<weird>"


class TestJsonlSink:
    def test_every_line_is_versioned(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"type": "a"})
        sink.emit({"type": "b", "x": np.int64(3)})
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [doc["v"] for doc in lines] == [EVENT_VERSION] * 2
        assert lines[1]["x"] == 3
        assert sink.events_emitted == 2

    def test_path_target_owns_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "run"})
        sink.close()
        assert read_events(path)[0]["type"] == "run"

    def test_emit_after_close_raises(self):
        sink = JsonlSink(io.StringIO())
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.emit({"type": "a"})

    def test_borrowed_file_left_open(self):
        buf = io.StringIO()
        with JsonlSink(buf) as sink:
            sink.emit({"type": "a"})
        assert not buf.closed


class TestReader:
    def test_numpy_payload_parses_back_exactly(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        arr = np.array([5, 6, 7], dtype=np.uint16)
        sink.emit({"type": "span", "data": arr, "n": np.int64(9)})
        buf.seek(0)
        (event,) = read_events(buf)
        assert event["n"] == 9
        assert event["data"].dtype == np.uint16
        assert np.array_equal(event["data"], arr)

    def test_unknown_version_rejected(self):
        buf = io.StringIO('{"v": 999, "type": "span"}\n')
        with pytest.raises(ValueError, match="event version"):
            read_events(buf)

    def test_blank_lines_skipped(self):
        buf = io.StringIO('{"v": 1, "type": "a"}\n\n{"v": 1, "type": "b"}\n')
        assert [e["type"] for e in iter_events(buf)] == ["a", "b"]
