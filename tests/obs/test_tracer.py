"""Tests for span tracing: nesting, PRAM deltas, and the disabled path."""

from __future__ import annotations

import io
import itertools
import json

import pytest

from repro.core import sbl
from repro.generators import uniform_hypergraph
from repro.obs import metrics
from repro.obs.events import JsonlSink, read_events
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.pram import CountingMachine


def _span_events(buf: io.StringIO):
    buf.seek(0)
    return [e for e in read_events(buf) if e["type"] == "span"]


class TestSpanLifecycle:
    def test_wall_time_from_injected_clock(self):
        ticks = itertools.count(step=100)
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf), clock=lambda: next(ticks))
        with tracer.span("a"):
            pass
        (event,) = _span_events(buf)
        assert event["name"] == "a"
        assert event["wall_ns"] == 100

    def test_nesting_produces_parent_links(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        events = {e["name"]: e for e in _span_events(buf)}
        assert "parent" not in events["outer"]
        assert events["inner"]["parent"] == events["outer"]["id"]
        assert inner.parent_id == outer.span_id

    def test_siblings_share_parent(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("solve"):
            with tracer.span("round"):
                pass
            with tracer.span("round"):
                pass
        events = _span_events(buf)
        rounds = [e for e in events if e["name"] == "round"]
        (solve,) = [e for e in events if e["name"] == "solve"]
        assert {e["parent"] for e in rounds} == {solve["id"]}

    def test_pram_deltas_from_counting_machine(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        mach = CountingMachine()
        mach.map(10)
        with tracer.span("work", machine=mach):
            mach.map(50)
            mach.sync()
        (event,) = _span_events(buf)
        # only the inside-the-span activity is attributed
        assert event["pram"]["work"] == 50
        assert event["pram"]["depth"] >= 1

    def test_no_machine_no_pram_key(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("bare"):
            pass
        (event,) = _span_events(buf)
        assert "pram" not in event

    def test_attrs_and_set_merge(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("r", round=3, n=100) as sp:
            sp.set(n_after=40, n=99)
        (event,) = _span_events(buf)
        assert event["attrs"] == {"round": 3, "n": 99, "n_after": 40}

    def test_exception_still_emits_and_unwinds(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        names = [e["name"] for e in _span_events(buf)]
        assert names == ["inner", "outer"]
        with tracer.span("after") as sp:
            pass
        assert sp.parent_id is None  # stack fully unwound


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(JsonlSink(io.StringIO())).enabled is True

    def test_span_is_shared_singleton(self):
        a = NULL_TRACER.span("x", machine=object(), round=1)
        b = NULL_TRACER.span("y")
        assert a is b

    def test_disabled_run_allocates_no_events(self):
        # a full solver run under the null tracer must not write anywhere;
        # the null span has no mutable state at all
        H = uniform_hypergraph(30, 50, 3, seed=0)
        res = sbl(H, seed=1, tracer=NullTracer())
        assert res.size > 0
        assert not hasattr(NULL_TRACER.span("x"), "__dict__")

    def test_null_span_noops(self):
        span = NULL_TRACER.span("x")
        with span as sp:
            sp.set(a=1)
        assert span.attrs == {}
        assert span.wall_ns == 0


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer(JsonlSink(io.StringIO()))
        with use_tracer(tracer) as got:
            assert got is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_restores_on_error(self):
        tracer = Tracer(JsonlSink(io.StringIO()))
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER

    def test_solver_picks_up_ambient_tracer(self):
        H = uniform_hypergraph(30, 50, 3, seed=0)
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with metrics.isolated_registry():
            with use_tracer(tracer):
                sbl(H, seed=1)
        assert any(e["name"] == "sbl/solve" for e in _span_events(buf))


class TestFlushMetrics:
    def test_metrics_event_carries_snapshot(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with metrics.isolated_registry():
            metrics.inc("solver/vertices_committed", 12)
            tracer.flush_metrics()
        buf.seek(0)
        (event,) = [e for e in read_events(buf) if e["type"] == "metrics"]
        assert event["metrics"]["counters"] == {"solver/vertices_committed": 12}


class TestResourceAttribution:
    def test_every_span_event_carries_cpu_ns(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(50_000))
        for event in _span_events(buf):
            assert event["cpu_ns"] >= 0

    def test_nested_cpu_is_monotone_outer_covers_inner(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(200_000))  # measurable CPU inside the inner span
        assert inner.cpu_ns > 0
        assert outer.cpu_ns >= inner.cpu_ns

    def test_cpu_does_not_count_sleep(self):
        import time

        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("nap") as span:
            time.sleep(0.05)
        assert span.wall_ns >= int(0.05e9)
        assert span.cpu_ns < span.wall_ns // 2

    def test_gc_pauses_attributed_to_span(self):
        import gc

        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("collecting") as span:
            gc.collect()
        assert span.gc_pauses is not None
        assert span.gc_pauses["count"] >= 1
        assert span.gc_pauses["pause_ns"] >= 0
        (event,) = _span_events(buf)
        assert event["gc"]["count"] >= 1

    def test_no_gc_no_gc_key(self):
        import gc

        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        gc.disable()
        try:
            with tracer.span("quiet"):
                pass
        finally:
            gc.enable()
        (event,) = _span_events(buf)
        assert "gc" not in event

    def test_gc_hook_released_on_close(self):
        import gc

        from repro.obs.tracer import gc_watch

        before = gc_watch._refs
        tracer = Tracer(JsonlSink(io.StringIO()))
        assert gc_watch._refs == before + 1
        assert gc_watch._callback in gc.callbacks
        tracer.close()
        assert gc_watch._refs == before

    def test_memory_tracking_is_opt_in(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        with tracer.span("a"):
            pass
        (event,) = _span_events(buf)
        assert "mem" not in event
        tracer.close()

    def test_memory_peak_and_net_recorded(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf), track_memory=True)
        try:
            with tracer.span("alloc") as span:
                blob = [bytearray(256) for _ in range(2000)]
                del blob
            assert span.mem is not None
            assert span.mem["peak"] >= 2000 * 256
            assert span.mem["net"] < span.mem["peak"]
        finally:
            tracer.close()
        import tracemalloc

        assert not tracemalloc.is_tracing()  # owned tracing stopped on close

    def test_child_peak_folds_into_parent(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf), track_memory=True)
        try:
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    blob = bytearray(1_000_000)
                    del blob
            assert inner.mem["peak"] >= 1_000_000
            # the child's high-water mark happened inside the parent too
            assert outer.mem["peak"] >= inner.mem["peak"]
        finally:
            tracer.close()

    def test_null_tracer_has_zero_cost_fields(self):
        span = NULL_TRACER.span("anything")
        assert span.cpu_ns == 0
        assert span.gc_pauses is None
        assert span.mem is None
        assert NULL_TRACER.track_memory is False
