"""OpenMetrics rendering and the minimal round-trip parser."""

from __future__ import annotations

import math

import pytest

from repro.obs.export import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


class TestMetricName:
    def test_slashes_become_underscores_with_prefix(self):
        assert metric_name("exec/cells_done") == "repro_exec_cells_done"

    def test_custom_prefix_and_empty_prefix(self):
        assert metric_name("a/b", prefix="x") == "x_a_b"
        assert metric_name("a/b", prefix="") == "a_b"

    def test_leading_digit_is_guarded(self):
        assert metric_name("9lives", prefix="")[0] == "_"


class TestRender:
    def test_counter_gauge_histogram_families(self):
        reg = MetricsRegistry()
        reg.counter("solver/runs").inc(3)
        reg.gauge("exec/workers").set(4)
        reg.histogram("solver/wall_ms").observe(10.0)
        reg.histogram("solver/wall_ms").observe(30.0)
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE repro_solver_runs counter" in text
        assert "repro_solver_runs_total 3" in text
        assert "repro_exec_workers 4" in text
        assert "repro_solver_wall_ms_count 2" in text
        assert "repro_solver_wall_ms_sum 40.0" in text
        assert "repro_solver_wall_ms_min 10.0" in text
        assert "repro_solver_wall_ms_max 30.0" in text
        assert text.endswith("# EOF\n")

    def test_unset_gauge_is_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("maybe")  # never .set()
        text = render_openmetrics(reg.snapshot())
        assert "maybe" not in text

    def test_labels_attach_to_every_sample(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        text = render_openmetrics(reg.snapshot(), labels={"command": "campaign"})
        assert 'repro_c_total{command="campaign"} 1' in text
        assert 'repro_g{command="campaign"} 1' in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        text = render_openmetrics(
            reg.snapshot(), labels={"path": 'a"b\\c\nd'}
        )
        doc = parse_openmetrics(text)
        assert doc.value("repro_c_total", path='a"b\\c\nd') == 1.0

    def test_nonfinite_values_render_openmetrics_style(self):
        reg = MetricsRegistry()
        reg.gauge("inf").set(float("inf"))
        reg.gauge("ninf").set(float("-inf"))
        reg.gauge("nan").set(float("nan"))
        text = render_openmetrics(reg.snapshot())
        assert "repro_inf +Inf" in text
        assert "repro_ninf -Inf" in text
        assert "repro_nan NaN" in text


class TestRoundTrip:
    def test_registry_snapshot_survives_render_parse(self):
        reg = MetricsRegistry()
        reg.counter("exec/cells_done").inc(42)
        reg.gauge("exec/cells_per_s").set(431.7)
        reg.gauge("exec/eta_s").set(-1.0)
        reg.histogram("cell/wall_ms").observe(5.5)
        text = render_openmetrics(reg.snapshot(), labels={"command": "campaign"})
        doc = parse_openmetrics(text)
        assert doc.value("repro_exec_cells_done_total", command="campaign") == 42.0
        assert doc.value("repro_exec_cells_per_s", command="campaign") == 431.7
        assert doc.value("repro_exec_eta_s", command="campaign") == -1.0
        assert doc.value("repro_cell_wall_ms_count", command="campaign") == 1.0
        assert doc.families["repro_exec_cells_done"] == "counter"
        assert doc.families["repro_cell_wall_ms"] == "summary"

    def test_nan_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("nan").set(float("nan"))
        doc = parse_openmetrics(render_openmetrics(reg.snapshot()))
        assert math.isnan(doc.value("repro_nan"))


class TestParserRejects:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_x 1\n")

    def test_content_after_eof(self):
        with pytest.raises(ValueError, match="after # EOF"):
            parse_openmetrics("# EOF\nrepro_x 1\n")

    def test_unparseable_sample_line(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_openmetrics("!!! not a sample\n# EOF\n")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_openmetrics("repro_x hello\n# EOF\n")

    def test_names_helper(self):
        doc = parse_openmetrics("repro_a 1\nrepro_b 2\n# EOF\n")
        assert doc.names() == {"repro_a", "repro_b"}
