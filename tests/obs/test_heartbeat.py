"""Heartbeat: liveness gauges from executor counters, textfile export."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.events import JsonlSink
from repro.obs.export import parse_openmetrics
from repro.obs.heartbeat import Heartbeat
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _registry(done=0, scheduled=0, busy_ns=0, workers=None):
    reg = MetricsRegistry()
    if done:
        reg.counter("exec/cells_done").inc(done)
    if scheduled:
        reg.counter("exec/cells_scheduled").inc(scheduled)
    if busy_ns:
        reg.counter("exec/cell_wall_ns").inc(busy_ns)
    if workers is not None:
        reg.gauge("exec/workers").set(workers)
    return reg


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestBeat:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Heartbeat(0)

    def test_gauges_from_counters(self):
        clock = FakeClock()
        reg = _registry(scheduled=100, workers=4)
        hb = Heartbeat(1.0, registry=reg, clock=clock)
        hb._last_t = clock.t
        # 10 cells and 20 worker·seconds of cell wall in 10s on 4 workers
        reg.counter("exec/cells_done").inc(10)
        reg.counter("exec/cell_wall_ns").inc(int(20e9))
        clock.t += 10.0
        gauges = hb.beat()
        assert gauges["exec/cells_total"] == 100.0
        assert gauges["exec/cells_per_s"] == pytest.approx(1.0)
        assert gauges["exec/eta_s"] == pytest.approx(90.0)
        assert gauges["exec/worker_utilization"] == pytest.approx(0.5)
        assert reg.gauge("exec/cells_per_s").value == pytest.approx(1.0)
        assert reg.counter("obs/heartbeats").value == 1

    def test_rate_is_per_beat_not_cumulative(self):
        clock = FakeClock()
        reg = _registry(scheduled=10, workers=1)
        hb = Heartbeat(1.0, registry=reg, clock=clock)
        hb._last_t = clock.t
        reg.counter("exec/cells_done").inc(5)
        clock.t += 5.0
        assert hb.beat()["exec/cells_per_s"] == pytest.approx(1.0)
        # no further progress: rate drops to zero, ETA becomes unknown (-1)
        clock.t += 5.0
        gauges = hb.beat()
        assert gauges["exec/cells_per_s"] == pytest.approx(0.0)
        assert gauges["exec/eta_s"] == -1.0

    def test_finished_grid_has_zero_eta(self):
        clock = FakeClock()
        reg = _registry(scheduled=4, workers=1)
        hb = Heartbeat(1.0, registry=reg, clock=clock)
        hb._last_t = clock.t
        reg.counter("exec/cells_done").inc(4)
        clock.t += 2.0
        assert hb.beat()["exec/eta_s"] == 0.0

    def test_tasks_twins_count_toward_progress(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        reg.counter("exec/tasks_scheduled").inc(8)
        reg.counter("exec/tasks_done").inc(2)
        hb = Heartbeat(1.0, registry=reg, clock=clock)
        hb._last_t = clock.t
        clock.t += 1.0
        gauges = hb.beat()
        assert gauges["exec/cells_total"] == 8.0
        assert gauges["exec/cells_per_s"] == pytest.approx(2.0)

    def test_utilization_clamped_to_unit_interval(self):
        clock = FakeClock()
        reg = _registry(scheduled=1, workers=1)
        hb = Heartbeat(1.0, registry=reg, clock=clock)
        hb._last_t = clock.t
        reg.counter("exec/cell_wall_ns").inc(int(100e9))  # impossible: 100s busy in 1s
        clock.t += 1.0
        assert hb.beat()["exec/worker_utilization"] == 1.0


class TestPublication:
    def test_beat_flushes_metrics_event_to_tracer(self):
        buf = io.StringIO()
        tracer = Tracer(JsonlSink(buf))
        reg = _registry(scheduled=2, workers=1)
        hb = Heartbeat(1.0, registry=reg, tracer=tracer, clock=FakeClock())
        hb._last_t = 100.0
        hb.beat()
        buf.seek(0)
        events = [json.loads(line) for line in buf if line.strip()]
        assert any(e.get("type") == "metrics" for e in events)

    def test_textfile_is_valid_openmetrics(self, tmp_path):
        out = tmp_path / "metrics.prom"
        reg = _registry(done=3, scheduled=10, workers=2)
        hb = Heartbeat(1.0, registry=reg, textfile=out, clock=FakeClock())
        hb._last_t = 100.0
        hb.beat()
        doc = parse_openmetrics(out.read_text())
        assert doc.value("repro_exec_cells_done_total") == 3.0
        assert doc.value("repro_exec_cells_total") == 10.0
        assert not out.with_name(out.name + ".tmp").exists()

    def test_thread_lifecycle_and_final_beat(self, tmp_path):
        out = tmp_path / "metrics.prom"
        reg = _registry(done=1, scheduled=1, workers=1)
        # long interval: the thread alone would never beat during the test,
        # so the textfile below proves stop() emits a final beat.
        with Heartbeat(60.0, registry=reg, textfile=out):
            pass
        assert parse_openmetrics(out.read_text()).value("repro_exec_cells_total") == 1.0
        assert reg.counter("obs/heartbeats").value >= 1
