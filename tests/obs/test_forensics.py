"""Regression forensics: trace diff, planted slowdowns, damaged streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import beame_luby
from repro.generators import uniform_hypergraph
from repro.obs.events import JsonlSink
from repro.obs.inspector import (
    TraceError,
    load_trace,
    render_compare,
    render_diff,
    render_summary,
)
from repro.obs.profile import SamplingProfiler, render_flame
from repro.obs.tracer import Tracer, use_tracer
from repro.qa.faults import slow_phase


def _ms(x: float) -> int:
    return int(x * 1e6)


def _write_tree(path, spans):
    """Write span events; ``spans`` is (id, parent, name, wall_ms, cpu_ms)."""
    with JsonlSink(path) as sink:
        for span_id, parent, name, wall, cpu in spans:
            event = {
                "type": "span",
                "id": span_id,
                "name": name,
                "wall_ns": _ms(wall),
                "cpu_ns": _ms(cpu),
            }
            if parent is not None:
                event["parent"] = parent
            sink.emit(event)
    return path


class TestDiffSynthetic:
    def _pair(self, tmp_path):
        a = _write_tree(
            tmp_path / "a.jsonl",
            [
                (2, 1, "phase/mark", 5.0, 4.0),
                (3, 1, "phase/cleanup", 5.0, 5.0),
                (1, None, "solve", 12.0, 10.0),
            ],
        )
        b = _write_tree(
            tmp_path / "b.jsonl",
            [
                (2, 1, "phase/mark", 5.0, 4.0),
                (3, 1, "phase/cleanup", 30.0, 28.0),
                (1, None, "solve", 37.0, 33.0),
            ],
        )
        return a, b

    def test_regressed_path_ranks_first(self, tmp_path):
        out = render_diff(*self._pair(tmp_path))
        rows = [line for line in out.splitlines() if line.startswith("|")]
        # rows[0] is the header, rows[1] the separator; rows[2] the top rank
        assert "solve>phase/cleanup" in rows[2]
        assert "+25.000" in rows[2]
        assert "6.00x" in rows[2]

    def test_unchanged_path_shows_unit_ratio(self, tmp_path):
        out = render_diff(*self._pair(tmp_path))
        mark_row = next(line for line in out.splitlines() if "phase/mark" in line)
        assert "1.00x" in mark_row

    def test_path_only_in_b_is_new(self, tmp_path):
        a = _write_tree(tmp_path / "a.jsonl", [(1, None, "solve", 10.0, 9.0)])
        b = _write_tree(
            tmp_path / "b.jsonl",
            [(2, 1, "planted/slow", 50.0, 49.0), (1, None, "solve", 60.0, 58.0)],
        )
        out = render_diff(a, b)
        rows = [line for line in out.splitlines() if line.startswith("|")]
        assert "planted/slow" in rows[2] and "new" in rows[2]

    def test_same_name_under_different_parents_stays_distinct(self, tmp_path):
        spans = [
            (2, 1, "round", 3.0, 3.0),
            (1, None, "outer", 4.0, 4.0),
            (4, 3, "round", 9.0, 9.0),
            (3, None, "inner", 10.0, 10.0),
        ]
        a = _write_tree(tmp_path / "a.jsonl", spans)
        b = _write_tree(tmp_path / "b.jsonl", spans)
        out = render_diff(a, b)
        assert "outer>round" in out and "inner>round" in out

    def test_top_limits_rows_keeping_largest_deltas(self, tmp_path):
        out = render_diff(*self._pair(tmp_path), top=1)
        rows = [line for line in out.splitlines() if line.startswith("|")]
        assert len(rows) == 3  # header + separator + 1 data row
        assert "phase/cleanup" in rows[2]

    def test_disjoint_structures_raise(self, tmp_path):
        a = _write_tree(tmp_path / "a.jsonl", [(1, None, "x", 1.0, 1.0)])
        b = _write_tree(tmp_path / "b.jsonl", [(1, None, "y", 1.0, 1.0)])
        with pytest.raises(TraceError, match="no span paths"):
            render_diff(a, b)


class TestPlantedSlowdown:
    """The acceptance demo: forensics must convict a planted perf fault."""

    def _trace(self, path, fn, H, *, profile_hz=0.0):
        tracer = Tracer(JsonlSink(path))
        profiler = (
            SamplingProfiler(profile_hz, tracer=tracer) if profile_hz else None
        )
        with use_tracer(tracer):
            if profiler is not None:
                profiler.start()
            result = fn(H, seed=3)
            if profiler is not None:
                profiler.stop()
        tracer.close()
        return result

    def test_diff_convicts_planted_span_and_flame_names_frame(self, tmp_path):
        H = uniform_hypergraph(60, 120, 3, seed=2)
        slow = slow_phase(0.15, base=beame_luby)
        base_path = tmp_path / "base.jsonl"
        slow_path = tmp_path / "slow.jsonl"
        res_a = self._trace(base_path, beame_luby, H)
        res_b = self._trace(slow_path, slow, H, profile_hz=400.0)
        # the fault is performance-only: results stay bit-identical
        assert np.array_equal(res_a.independent_set, res_b.independent_set)

        out = render_diff(base_path, slow_path)
        rows = [line for line in out.splitlines() if line.startswith("|")]
        assert "planted/slow_phase" in rows[2]  # top wall-time regression

        flame = render_flame(slow_path)
        assert "_planted_hot_frame" in flame
        assert "planted/slow_phase" in flame  # span attribution names it too

    def test_zero_delay_solver_is_equivalent(self):
        H = uniform_hypergraph(40, 80, 3, seed=1)
        wrapped = slow_phase(0.0)
        plain_greedy = wrapped(H, seed=5)
        assert plain_greedy.independent_set.size > 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            slow_phase(-1.0)


class TestDamagedStreams:
    def _trace_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(JsonlSink(path))
        with tracer.span("solve"):
            with tracer.span("round"):
                pass
        tracer.close()
        return path

    def test_truncated_last_line_is_skipped_and_counted(self, tmp_path):
        path = self._trace_file(tmp_path)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"type": "span", "id": 99, "name": "trunc')  # crashed writer
        doc = load_trace(path)
        assert len(doc.skipped) == 1
        assert {s.name for s in doc.spans} == {"solve", "round"}
        out = render_summary(path)
        assert "skipped 1 unparseable line(s)" in out
        assert "solve" in out

    def test_foreign_version_line_is_skipped(self, tmp_path):
        path = self._trace_file(tmp_path)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v": 999, "type": "span", "id": 9, "name": "x", "wall_ns": 1}\n')
        doc = load_trace(path)
        assert len(doc.skipped) == 1
        assert "version" in doc.skipped[0][1]

    def test_empty_file_renders_without_crash(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "no spans recorded" in render_summary(path)

    def test_all_garbage_file_reports_every_line(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n[1, 2]\n")
        doc = load_trace(path)
        assert len(doc.skipped) == 2

    def test_compare_requires_shared_names(self, tmp_path):
        a = _write_tree(tmp_path / "a.jsonl", [(1, None, "x", 1.0, 1.0)])
        b = _write_tree(tmp_path / "b.jsonl", [(1, None, "y", 1.0, 1.0)])
        with pytest.raises(TraceError, match="no span names"):
            render_compare(a, b)

    def test_diff_surfaces_skipped_lines_of_either_side(self, tmp_path):
        a = self._trace_file(tmp_path)
        b = tmp_path / "b.jsonl"
        b.write_text(a.read_text() + "garbage line\n")
        out = render_diff(a, b)
        assert "[B] warning: skipped 1" in out


def test_slow_phase_span_carries_cpu_attribution(tmp_path):
    """The busy-spin burns CPU, not just wall — attribution must show it."""
    H = uniform_hypergraph(30, 60, 3, seed=0)
    path = tmp_path / "run.jsonl"
    tracer = Tracer(JsonlSink(path))
    with use_tracer(tracer):
        slow_phase(0.05)(H, seed=1)
    tracer.close()
    doc = load_trace(path)
    planted = next(s for s in doc.spans if s.name == "planted/slow_phase")
    assert planted.wall_ns >= int(0.05e9)
    assert planted.cpu_ns is not None
    # a sleep would have ~0 CPU; the spin's CPU time tracks its wall time
    assert planted.cpu_ns > planted.wall_ns * 0.5
