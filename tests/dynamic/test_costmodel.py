"""The repair-vs-recompute dispatcher: schema, machine gating, routing."""

from __future__ import annotations

import json

import pytest

from repro.dynamic import costmodel as cm
from repro.kernels.costmodel import shape_bucket
from repro.util.hostid import machine_identity


@pytest.fixture(autouse=True)
def _isolated_calibration(tmp_path, monkeypatch):
    """Point dispatch at a nonexistent file so the repo root never leaks in."""
    monkeypatch.setenv(cm.ENV_CALIBRATION, str(tmp_path / "absent.json"))
    cm.invalidate_calibration_cache()
    yield
    cm.invalidate_calibration_cache()


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return path


def _valid_doc(bucket="d3-u1k", fraction=0.05, machine=None):
    return {
        "schema": 1,
        "provenance": {"machine_id": machine or machine_identity()},
        "buckets": {bucket: {"crossover_fraction": fraction}},
    }


def test_delta_band_boundaries():
    assert cm.delta_band(0.0) == "lt1pct"
    assert cm.delta_band(0.0099) == "lt1pct"
    assert cm.delta_band(0.01) == "lt5pct"
    assert cm.delta_band(0.049) == "lt5pct"
    assert cm.delta_band(0.05) == "lt20pct"
    assert cm.delta_band(0.2) == "ge20pct"
    assert cm.delta_band(1.0) == "ge20pct"


def test_static_fallback_routes_on_threshold():
    d = cm.decide_strategy(0.01, 3, 900)
    assert d.strategy == "repair"
    assert d.mode == "static"
    assert d.threshold == cm.STATIC_CROSSOVER_FRACTION
    assert d.bucket == shape_bucket(3, 900)
    assert d.band == "lt5pct"
    big = cm.decide_strategy(0.5, 3, 900)
    assert big.strategy == "recompute"
    assert "static" in big.reason


def test_load_calibration_valid(tmp_path):
    path = _write(tmp_path / "cal.json", _valid_doc())
    cal = cm.load_calibration(path)
    assert cal.buckets["d3-u1k"] == 0.05
    assert cal.machine_id == machine_identity()


def test_load_calibration_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        cm.load_calibration(tmp_path / "nope.json")


@pytest.mark.parametrize(
    "mangle",
    [
        lambda d: d.update(schema=2),
        lambda d: d.pop("provenance"),
        lambda d: d.update(provenance={}),
        lambda d: d.update(buckets={}),
        lambda d: d.update(buckets={"d3-u1k": {}}),
        lambda d: d.update(buckets={"d3-u1k": {"crossover_fraction": "0.1"}}),
        lambda d: d.update(buckets={"d3-u1k": {"crossover_fraction": 1.5}}),
        lambda d: d.update(buckets={"d3-u1k": {"crossover_fraction": True}}),
    ],
    ids=[
        "schema",
        "no-provenance",
        "no-machine-id",
        "empty-buckets",
        "no-fraction",
        "string-fraction",
        "out-of-range",
        "bool-fraction",
    ],
)
def test_load_calibration_schema_violations(tmp_path, mangle):
    doc = _valid_doc()
    mangle(doc)
    path = _write(tmp_path / "bad.json", doc)
    with pytest.raises(cm.DynamicCalibrationError):
        cm.load_calibration(path)


def test_load_calibration_not_json(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(cm.DynamicCalibrationError):
        cm.load_calibration(path)


def test_usable_calibration_machine_gate(tmp_path):
    path = _write(tmp_path / "cal.json", _valid_doc(machine="somebody-else"))
    assert cm.usable_calibration(path) is None
    ok = _write(tmp_path / "cal2.json", _valid_doc())
    cal = cm.usable_calibration(ok)
    assert cal is not None and cal.machine_id == machine_identity()


def test_usable_calibration_invalid_returns_none(tmp_path):
    doc = _valid_doc()
    doc["schema"] = 99
    path = _write(tmp_path / "bad.json", doc)
    assert cm.usable_calibration(path) is None


def test_env_override_steers_dispatch(tmp_path, monkeypatch):
    bucket = shape_bucket(3, 900)
    path = _write(tmp_path / "cal.json", _valid_doc(bucket=bucket, fraction=0.02))
    monkeypatch.setenv(cm.ENV_CALIBRATION, str(path))
    cm.invalidate_calibration_cache()
    d = cm.decide_strategy(0.03, 3, 900)
    assert d.mode == "cost-model"
    assert d.threshold == 0.02
    assert d.strategy == "recompute"  # 0.03 > measured 0.02, static would repair
    small = cm.decide_strategy(0.01, 3, 900)
    assert small.strategy == "repair"


def test_uncovered_bucket_falls_back_to_static(tmp_path, monkeypatch):
    path = _write(tmp_path / "cal.json", _valid_doc(bucket="d2-u1k", fraction=0.02))
    monkeypatch.setenv(cm.ENV_CALIBRATION, str(path))
    cm.invalidate_calibration_cache()
    d = cm.decide_strategy(0.1, 4, 900)  # bucket d4plus-u1k not covered
    assert d.mode == "static"
    assert d.threshold == cm.STATIC_CROSSOVER_FRACTION


def test_cache_invalidation_picks_up_rewrite(tmp_path, monkeypatch):
    bucket = shape_bucket(3, 900)
    path = _write(tmp_path / "cal.json", _valid_doc(bucket=bucket, fraction=0.02))
    monkeypatch.setenv(cm.ENV_CALIBRATION, str(path))
    cm.invalidate_calibration_cache()
    assert cm.decide_strategy(0.03, 3, 900).threshold == 0.02
    _write(path, _valid_doc(bucket=bucket, fraction=0.4))
    # Memoised: the old threshold sticks until the cache is dropped.
    assert cm.decide_strategy(0.03, 3, 900).threshold == 0.02
    cm.invalidate_calibration_cache()
    assert cm.decide_strategy(0.03, 3, 900).threshold == 0.4
