"""DynamicMIS: the repair engine's exactness, state machine, and backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import DynamicMIS
from repro.generators import churn_stream, sharded_hypergraph, uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.hypergraph.components import component_labels
from repro.kernels import use_kernel
from repro.kernels.dispatch import dense_capable


def _partitions_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Two label arrays induce the same partition (up to renaming)."""
    if a.shape != b.shape:
        return False
    pairs = a.astype(np.int64) * (int(b.max()) + 2) + b.astype(np.int64)
    # Same partition iff the pairing is a bijection on both sides.
    return (
        np.unique(pairs).size == np.unique(a).size == np.unique(b).size
    )


def _drive(engine: DynamicMIS, batches) -> list[str]:
    strategies = []
    for batch in batches:
        out = engine.apply(batch.add_edges, batch.remove_edges, strict=False)
        strategies.append(out.strategy)
    return strategies


@pytest.mark.parametrize(
    "make",
    [
        lambda: sharded_hypergraph(5, 12, 18, 3, seed=11),
        lambda: uniform_hypergraph(40, 70, 2, seed=12),
    ],
    ids=["sharded", "connected"],
)
@pytest.mark.parametrize("strategy", ["auto", "repair", "recompute"])
def test_invariant_matches_pinned_recompute(make, strategy):
    H = make()
    engine = DynamicMIS(H, seed=7, strategy=strategy)
    batches = churn_stream(
        H, 8, seed=13, batch_edges=4, arrival_fraction=0.5, adversarial_fraction=0.3
    )
    for batch in batches:
        out = engine.apply(batch.add_edges, batch.remove_edges, strict=False)
        assert out.certified
        assert np.array_equal(engine.independent_set, engine.recompute_reference())
    assert engine.certify()


def test_forced_strategies_are_bit_identical():
    H = sharded_hypergraph(6, 10, 15, 3, seed=21)
    batches = churn_stream(H, 10, seed=22, batch_edges=3, hot_fraction=0.6)
    engines = {s: DynamicMIS(H, seed=5, strategy=s) for s in ("auto", "repair", "recompute")}
    for s, engine in engines.items():
        _drive(engine, batches)
    ref = engines["auto"]
    for s in ("repair", "recompute"):
        assert np.array_equal(engines[s].independent_set, ref.independent_set), s
        assert engines[s].chain == ref.chain, s


def test_label_maintenance_matches_fresh_labeling():
    H = sharded_hypergraph(4, 10, 14, 3, seed=31)
    engine = DynamicMIS(H, seed=3, strategy="repair")
    batches = churn_stream(H, 12, seed=32, batch_edges=4, arrival_fraction=0.5)
    for batch in batches:
        engine.apply(batch.add_edges, batch.remove_edges, strict=False)
        fresh = component_labels(engine.hypergraph)
        active = engine.hypergraph.vertex_mask()
        assert _partitions_equal(engine._labels[active], fresh[active])


def test_noop_batch():
    H = uniform_hypergraph(20, 30, 3, seed=41)
    engine = DynamicMIS(H, seed=1)
    before = engine.independent_set.copy()
    chain_before = engine.chain
    out = engine.apply()  # empty batch
    assert out.strategy == "noop"
    assert out.patch_vertices == 0
    assert np.array_equal(engine.independent_set, before)
    # The chain still advances: a no-op batch is a recorded stream state.
    assert engine.chain != chain_before
    assert engine.steps == 1


def test_remove_and_readd_is_structural_noop():
    H = uniform_hypergraph(15, 20, 3, seed=42)
    engine = DynamicMIS(H, seed=1)
    e = H.edges[0]
    out = engine.apply(add_edges=[e], remove_edges=[e])
    assert out.strategy == "noop"
    assert out.update.is_noop


def test_all_components_update():
    # Touch every component in one batch: repair must handle the degenerate
    # "everything is dirty" case and still match recompute.
    H = sharded_hypergraph(3, 8, 10, 2, seed=43)
    engine = DynamicMIS(H, seed=2, strategy="repair")
    adds = [(b * 8, b * 8 + 1) for b in range(3)]
    out = engine.apply(add_edges=adds, strict=False)
    assert out.strategy == "repair"
    assert np.array_equal(engine.independent_set, engine.recompute_reference())


def test_emptying_and_refilling():
    H = uniform_hypergraph(12, 8, 2, seed=44)
    engine = DynamicMIS(H, seed=9)
    engine.apply(remove_edges=list(H.edges))
    # Edgeless: every active vertex is independent.
    assert engine.independent_set.size == engine.hypergraph.num_vertices
    engine.apply(add_edges=[(0, 1), (2, 3)])
    assert np.array_equal(engine.independent_set, engine.recompute_reference())


def test_strict_propagates_and_state_survives():
    H = uniform_hypergraph(10, 10, 2, seed=45)
    engine = DynamicMIS(H, seed=4)
    before = engine.independent_set.copy()
    steps = engine.steps
    with pytest.raises(ValueError):
        engine.apply(remove_edges=[(8, 9)] if (8, 9) not in H.edges else [(7, 9)])
    assert np.array_equal(engine.independent_set, before)
    assert engine.steps == steps


def test_trace_records_rounds():
    H = sharded_hypergraph(3, 10, 12, 3, seed=46)
    engine = DynamicMIS(H, seed=6, strategy="repair")
    batch = churn_stream(H, 1, seed=47, batch_edges=3, arrival_fraction=1.0)[0]
    out = engine.apply(batch.add_edges, batch.remove_edges, strict=False, trace=True)
    assert out.strategy == "repair"
    assert len(out.rounds) >= 1
    # Interleave: a traced update then an untraced one on the same engine.
    out2 = engine.apply(add_edges=[(0, 1, 2)], strict=False)
    assert out2.rounds == ()
    assert np.array_equal(engine.independent_set, engine.recompute_reference())


def test_invalid_strategy_rejected():
    H = uniform_hypergraph(5, 3, 2, seed=48)
    with pytest.raises(ValueError):
        DynamicMIS(H, strategy="sometimes")


def test_backend_bit_identity():
    H = sharded_hypergraph(5, 12, 20, 3, seed=51)
    assert dense_capable(H)
    batches = churn_stream(H, 6, seed=52, batch_edges=4, adversarial_fraction=0.2)
    finals = {}
    for kernel in ("csr", "bitset", "jit"):
        with use_kernel(kernel):
            engine = DynamicMIS(H, seed=8)
            _drive(engine, batches)
            finals[kernel] = (engine.independent_set.copy(), engine.chain)
    ref_set, ref_chain = finals["csr"]
    for kernel, (mis, chain) in finals.items():
        assert np.array_equal(mis, ref_set), kernel
        assert chain == ref_chain, kernel


def test_outcome_fields_are_coherent():
    H = sharded_hypergraph(4, 10, 15, 3, seed=61)
    engine = DynamicMIS(H, seed=10, strategy="repair")
    batch = churn_stream(H, 1, seed=62, batch_edges=2, arrival_fraction=1.0)[0]
    out = engine.apply(batch.add_edges, batch.remove_edges, strict=False)
    assert out.mis_size == out.mis.size == engine.independent_set.size
    assert out.chain == engine.chain
    assert 0.0 <= out.dirty_fraction <= 1.0
    assert out.patch_vertices + out.frozen_vertices >= out.mis_size


def test_validate_false_skips_certificate():
    H = uniform_hypergraph(15, 20, 3, seed=63)
    engine = DynamicMIS(H, seed=2, validate=False)
    out = engine.apply(add_edges=[(0, 1, 2)])
    assert not out.certified
    assert engine.certify()  # external pass still available


def test_empty_hypergraph_start():
    H = Hypergraph(8, [])
    engine = DynamicMIS(H, seed=0)
    assert engine.independent_set.size == 8
    out = engine.apply(add_edges=[(0, 1), (1, 2)])
    assert out.certified
    assert np.array_equal(engine.independent_set, engine.recompute_reference())
