"""Reproducer archive round-trips and replay semantics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.hypergraph import Hypergraph
from repro.qa import load_reproducer, replay, replay_dir, save_reproducer


@pytest.fixture
def manifest():
    return {
        "kind": "corpus-seed",
        "seed": 42,
        "solvers": None,
        "description": "round-trip fixture",
        "failures": [],
        "replay": {"metamorphic": True, "oracle": True, "focus_index": 0},
    }


class TestRoundTrip:
    def test_instance_and_manifest_survive(self, tmp_path, manifest, small_mixed):
        path = save_reproducer(small_mixed, manifest, tmp_path)
        H, loaded = load_reproducer(path)
        assert H == small_mixed
        assert loaded["seed"] == 42
        assert loaded["schema"] == 1
        assert loaded["description"] == "round-trip fixture"

    def test_sparse_active_set_survives(self, tmp_path, manifest):
        original = Hypergraph(12, [(3, 4), (7, 9)], vertices=[3, 4, 7, 9, 11])
        path = save_reproducer(original, manifest, tmp_path)
        H, _ = load_reproducer(path)
        assert H == original
        assert H.vertices.tolist() == [3, 4, 7, 9, 11]

    def test_empty_universe_survives(self, tmp_path, manifest):
        path = save_reproducer(Hypergraph(0), manifest, tmp_path)
        H, _ = load_reproducer(path)
        assert H.universe == 0 and H.num_edges == 0

    def test_filename_is_content_addressed(self, tmp_path, manifest, small_mixed):
        a = save_reproducer(small_mixed, manifest, tmp_path)
        b = save_reproducer(small_mixed, manifest, tmp_path)
        assert a == b
        assert a.name.startswith("corpus-seed-")
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_missing_seed_rejected(self, tmp_path, small_mixed):
        with pytest.raises(ValueError, match="seed"):
            save_reproducer(small_mixed, {"kind": "x"}, tmp_path)

    def test_unsupported_schema_rejected(self, tmp_path, manifest, small_mixed):
        path = save_reproducer(small_mixed, {**manifest, "schema": 99}, tmp_path)
        # save_reproducer keeps an explicit schema; loading must refuse it.
        with pytest.raises(ValueError, match="schema"):
            load_reproducer(path)

    def test_no_pickle_in_archive(self, tmp_path, manifest, small_mixed):
        path = save_reproducer(small_mixed, manifest, tmp_path)
        with np.load(path, allow_pickle=False) as data:
            parsed = json.loads(str(data["manifest"]))
        assert parsed["kind"] == "corpus-seed"


class TestReplay:
    def test_replay_clean_instance(self, tmp_path, manifest, small_mixed):
        path = save_reproducer(small_mixed, manifest, tmp_path)
        assert replay(path) == []

    def test_replay_dir_maps_filenames(self, tmp_path, manifest, small_mixed, triangle):
        save_reproducer(small_mixed, manifest, tmp_path, name="a.npz")
        save_reproducer(triangle, manifest, tmp_path, name="b.npz")
        results = replay_dir(tmp_path)
        assert set(results) == {"a.npz", "b.npz"}
        assert all(f == [] for f in results.values())
