"""run_fuzz on the shared ParallelRunner: parity with the serial engine."""

from __future__ import annotations

from repro.core import greedy_mis
from repro.qa import run_fuzz


def _buggy(H, seed=None, **kwargs):
    """Module-level (picklable) fault: drops one vertex from greedy's MIS."""
    res = greedy_mis(H, seed=seed, **kwargs)
    if res.independent_set.size > 1:
        object.__setattr__(res, "independent_set", res.independent_set[:-1])
    return res


def _report_key(report):
    return (
        report.cases,
        report.stop_reason,
        [
            (c.index, c.description, [str(f) for f in c.failures])
            for c in report.failures
        ],
    )


class TestParity:
    def test_clean_campaign_matches_serial(self):
        serial = run_fuzz("15", seed=5)
        parallel = run_fuzz("15", seed=5, workers=2)
        assert serial.ok and parallel.ok
        assert _report_key(serial) == _report_key(parallel)

    def test_failing_campaign_matches_serial(self):
        kwargs = dict(
            seed=1,
            extra_solvers={"buggy": _buggy},
            max_failures=2,
            shrink_failures=False,
        )
        serial = run_fuzz("10", **kwargs)
        parallel = run_fuzz("10", workers=2, **kwargs)
        assert serial.stop_reason == parallel.stop_reason == "max-failures"
        assert _report_key(serial) == _report_key(parallel)

    def test_worker_count_does_not_change_the_report(self):
        keys = [
            _report_key(run_fuzz("12", seed=9, workers=w)) for w in (None, 1, 3)
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_start_index_respected(self):
        serial = run_fuzz("6", seed=2, start_index=11)
        parallel = run_fuzz("6", seed=2, start_index=11, workers=2)
        assert _report_key(serial) == _report_key(parallel)

    def test_reproducers_written_from_parallel_run(self, tmp_path):
        report = run_fuzz(
            "6",
            seed=1,
            extra_solvers={"buggy": _buggy},
            out_dir=tmp_path,
            max_failures=1,
            shrink_failures=False,
            workers=2,
        )
        assert not report.ok
        (case,) = report.failures
        assert case.reproducer is not None and case.reproducer.exists()
