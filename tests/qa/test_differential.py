"""Differential harness: clean instances pass, planted faults are caught."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph
from repro.qa import applicable_solvers, generate_case, make_predicate, run_case
from repro.qa.faults import (
    break_independence_above,
    drop_maximality_above,
    nondeterministic,
)


class TestApplicability:
    def test_all_subjects_on_a_graph(self, triangle):
        names = {s.name for s in applicable_solvers(triangle)}
        assert names == {
            "sbl", "bl", "kuw", "greedy", "permutation", "luby", "linear",
            "bl-csr", "bl-bitset", "bl-jit",
        }

    def test_luby_and_linear_drop_out(self, small_mixed):
        names = {s.name for s in applicable_solvers(small_mixed)}
        assert "luby" not in names  # not 2-uniform
        assert {"sbl", "bl", "kuw", "greedy", "permutation"} <= names

    def test_unknown_solver_name_raises(self, triangle):
        with pytest.raises(ValueError, match="unknown solver"):
            applicable_solvers(triangle, ["sbl", "nope"])


class TestCleanInstances:
    @pytest.mark.parametrize("index", range(10))
    def test_first_rotation_window_is_clean(self, index):
        case = generate_case(0, index)
        failures = run_case(
            case.hypergraph,
            case.solver_seed,
            focus_index=case.index,
            certificate=case.certificate,
        )
        assert failures == [], [str(f) for f in failures]

    def test_fixture_instances_are_clean(self, small_mixed, edgeless):
        for H in (small_mixed, edgeless):
            for focus in range(5):
                assert run_case(H, 3, focus_index=focus) == []


class TestFaultDetection:
    def test_maximality_fault_is_caught(self, small_mixed):
        failures = run_case(
            small_mixed,
            0,
            extra_solvers={"buggy": drop_maximality_above(0)},
            metamorphic=False,
            oracle=False,
        )
        assert any(f.solver == "buggy" and f.check == "maximality" for f in failures)

    def test_independence_fault_is_caught(self, small_mixed):
        failures = run_case(
            small_mixed,
            0,
            extra_solvers={"buggy": break_independence_above(0)},
            metamorphic=False,
            oracle=False,
        )
        kinds = {(f.solver, f.check) for f in failures}
        assert ("buggy", "independence") in kinds
        # The pure-Python reference must independently agree.
        assert ("buggy", "reference") in kinds

    def test_bad_certificate_is_caught(self, small_mixed):
        # {0, 1, 2} contains the edge (0, 1, 2): not independent.
        failures = run_case(
            small_mixed,
            0,
            certificate=np.array([0, 1, 2]),
            metamorphic=False,
            oracle=False,
        )
        assert any(
            f.solver == "planted" and f.check == "certificate-independence"
            for f in failures
        )

    def test_nondeterministic_solver_is_caught(self):
        # A path graph long enough that the scan order matters.
        H = Hypergraph(9, [(i, i + 1) for i in range(8)])
        flaky = nondeterministic()
        # focus the extra solver: it is appended after the 10 applicable
        # (7 library solvers + 3 pinned-kernel BL subjects).
        failures = run_case(
            H,
            12,
            extra_solvers={"flaky": flaky},
            focus_index=10,
            metamorphic=True,
            oracle=False,
        )
        assert any(f.solver == "flaky" and f.check == "determinism" for f in failures)

    def test_exception_is_a_finding(self, small_mixed):
        def crashing(H, seed=None, **kwargs):
            raise RuntimeError("boom")

        failures = run_case(
            small_mixed,
            0,
            extra_solvers={"crash": crashing},
            metamorphic=False,
            oracle=False,
        )
        assert any(
            f.solver == "crash" and f.check == "exception" and "boom" in f.detail
            for f in failures
        )

    def test_max_failures_caps_the_report(self, small_mixed):
        failures = run_case(
            small_mixed,
            0,
            extra_solvers={
                f"buggy{i}": drop_maximality_above(0) for i in range(6)
            },
            metamorphic=False,
            oracle=False,
            max_failures=3,
        )
        assert len(failures) == 3


class TestPredicate:
    def test_predicate_tracks_the_fault_trigger(self, small_mixed):
        fails = make_predicate(
            0, extra_solvers={"buggy": drop_maximality_above(4)}
        )
        assert fails(small_mixed)  # 6 edges > 4: triggers
        small = Hypergraph(3, [(0, 1)])
        assert not fails(small)  # 1 edge: healthy path

    def test_predicate_is_false_on_clean_instances(self, small_mixed):
        assert not make_predicate(0)(small_mixed)
