"""The stream-updates fuzz family: battery, shrinker, reproducers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import churn_stream, sharded_hypergraph
from repro.qa import (
    FAMILIES,
    decode_steps,
    encode_steps,
    generate_case,
    load_reproducer,
    make_stream_predicate,
    replay,
    run_stream_battery,
    save_reproducer,
    shrink_steps,
    steps_from_params,
)
from repro.qa.engine import _handle_failure
from repro.qa.differential import Failure
from repro.qa.fuzzer import FuzzCase


def _steps(H, n=5, seed=2, **kw):
    batches = churn_stream(H, n, seed=seed, **kw)
    return [(list(b.add_edges), list(b.remove_edges)) for b in batches]


def test_encode_decode_roundtrip():
    steps = [([(0, 1), (2, 3, 4)], []), ([], [(0, 1)]), ([(5, 6)], [(2, 3, 4)])]
    encoded = encode_steps(steps)
    # JSON-able: lists all the way down.
    assert all(
        isinstance(x, list) for batch in encoded for side in batch for x in side
    )
    assert decode_steps(encoded) == steps


def test_steps_from_params():
    steps = [([(0, 1)], [])]
    params = {"n": 5, "stream": {"steps": encode_steps(steps)}}
    assert steps_from_params(params) == steps


def test_stream_family_registered():
    assert "stream-updates" in {name for name, _ in FAMILIES}
    index = [name for name, _ in FAMILIES].index("stream-updates")
    case = generate_case(123, index)
    assert case.family == "stream-updates"
    assert "stream" in case.params
    assert steps_from_params(case.params)  # at least one batch


def test_battery_clean_on_healthy_engine():
    H = sharded_hypergraph(3, 8, 10, 2, seed=5)
    steps = _steps(H, 6, seed=6, batch_edges=3, adversarial_fraction=0.3)
    assert run_stream_battery(H, steps, engine_seed=7) == []


def test_battery_clean_on_generated_cases():
    index = [name for name, _ in FAMILIES].index("stream-updates")
    for k in range(3):
        case = generate_case(99 + k, index + k * len(FAMILIES))
        failures = run_stream_battery(
            case.hypergraph, steps_from_params(case.params), case.solver_seed
        )
        assert failures == [], (k, [str(f) for f in failures])


def test_battery_reports_exceptions_as_failures():
    H = sharded_hypergraph(2, 6, 6, 2, seed=8)
    # A strict-invalid vertex id crashes apply_updates inside the engine:
    # the battery must convert that into Failure(check="exception"), not
    # propagate.
    steps = [([(10**9, 10**9 + 1)], [])]
    failures = run_stream_battery(H, steps, engine_seed=1)
    assert failures
    assert all(f.check == "exception" for f in failures)


def test_make_stream_predicate():
    H = sharded_hypergraph(2, 6, 6, 2, seed=9)
    fails = make_stream_predicate(H, engine_seed=3)
    assert fails([([(10**9,)], [])]) is True
    assert fails(_steps(H, 2, seed=10)) is False


def test_shrink_steps_minimises_synthetic_failure():
    H = sharded_hypergraph(2, 6, 6, 2, seed=11)
    poison = (0, 1)

    def fails(steps):
        return any(poison in adds for adds, _ in steps)

    steps = _steps(H, 6, seed=12, batch_edges=3)
    steps[3] = (steps[3][0] + [poison], steps[3][1])
    shrunk, evals = shrink_steps(H, steps, fails)
    assert evals > 0
    assert shrunk == [([poison], [])]


def test_shrink_steps_rejects_passing_sequence():
    H = sharded_hypergraph(2, 6, 6, 2, seed=13)
    with pytest.raises(ValueError):
        shrink_steps(H, _steps(H, 2, seed=14), lambda steps: False)


def test_shrink_steps_respects_eval_budget():
    H = sharded_hypergraph(2, 6, 6, 2, seed=15)
    calls = 0

    def fails(steps):
        nonlocal calls
        calls += 1
        return True

    steps = _steps(H, 8, seed=16, batch_edges=4)
    _, evals = shrink_steps(H, steps, fails, max_evals=10)
    assert evals <= 10
    assert calls <= 10


def test_stream_reproducer_roundtrip(tmp_path):
    H = sharded_hypergraph(3, 8, 10, 2, seed=17)
    steps = _steps(H, 4, seed=18, batch_edges=3)
    manifest = {
        "kind": "corpus-seed",
        "seed": 5,
        "solvers": None,
        "description": "test stream reproducer",
        "stream": {"steps": encode_steps(steps)},
    }
    path = save_reproducer(H, manifest, tmp_path)
    H2, loaded = load_reproducer(path)
    assert H2.content_hash() == H.content_hash()
    assert decode_steps(loaded["stream"]["steps"]) == steps
    # replay() routes stream manifests to the stream battery.
    assert replay(path) == []


def test_handle_stream_failure_pins_reproducer(tmp_path):
    H = sharded_hypergraph(2, 6, 6, 2, seed=19)
    steps = _steps(H, 3, seed=20, batch_edges=2)
    case = FuzzCase(
        index=13,
        family="stream-updates",
        params={"blocks": 2, "stream": {"steps": encode_steps(steps)}},
        mutations=(),
        solver_seed=21,
        hypergraph=H,
        certificate=None,
    )
    failures = [Failure("dynamic-auto", "incremental-recompute", "synthetic")]
    report = _handle_failure(case, failures, tmp_path, None, True, 100, fuzz_seed=0)
    assert report.reproducer is not None
    _, manifest = load_reproducer(report.reproducer)
    # The battery is healthy, so re-evaluation cannot reproduce the
    # (synthetic) failure: the sequence is pinned unshrunk.
    assert manifest["kind"] == "unshrunk-failure"
    assert decode_steps(manifest["stream"]["steps"]) == steps
    assert manifest["fuzz"]["family"] == "stream-updates"
    assert "stream" not in manifest["fuzz"]["params"]
    assert np.array_equal(
        load_reproducer(report.reproducer)[0].vertices, H.vertices
    )
    assert replay(report.reproducer) == []
