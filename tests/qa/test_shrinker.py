"""Shrinker contract: minimal reproducers, preserved failures, budgets."""

from __future__ import annotations

import pytest

from repro.generators import uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.qa import make_predicate, run_case, run_fuzz, shrink
from repro.qa.faults import drop_maximality_above
from repro.qa.regressions import load_reproducer


class TestShrink:
    def test_planted_bug_shrinks_to_trigger_boundary(self):
        # The wrapped solver drops maximality once m > 4, so the minimal
        # trigger has exactly 5 edges — well under the <= 8 requirement.
        H = uniform_hypergraph(30, 45, 3, seed=2)
        fails = make_predicate(7, extra_solvers={"buggy": drop_maximality_above(4)})
        assert fails(H)
        result = shrink(H, fails)
        assert fails(result.hypergraph)
        assert result.hypergraph.num_edges == 5
        assert result.hypergraph.num_edges <= 8
        assert result.evals > 0

    def test_shrinking_a_passing_instance_raises(self, small_mixed):
        with pytest.raises(ValueError, match="does not fail"):
            shrink(small_mixed, make_predicate(0))

    def test_eval_budget_still_returns_a_failing_instance(self):
        H = uniform_hypergraph(25, 40, 3, seed=3)
        fails = make_predicate(5, extra_solvers={"buggy": drop_maximality_above(4)})
        result = shrink(H, fails, max_evals=10)
        assert fails(result.hypergraph)

    def test_compacts_dead_universe_slots(self):
        # Predicate depends only on edge count, so the shrinker can strip
        # the dead id range entirely.
        H = Hypergraph(40, [(30, 31), (32, 33), (34, 35)], vertices=range(30, 40))

        def fails(candidate: Hypergraph) -> bool:
            return candidate.num_edges >= 2

        result = shrink(H, fails)
        assert result.hypergraph.num_edges == 2
        assert result.hypergraph.universe <= 4

    def test_predicate_crash_counts_as_not_failing(self):
        H = Hypergraph(4, [(0, 1), (2, 3)])

        def fails(candidate: Hypergraph) -> bool:
            if candidate.num_edges < 2:
                raise RuntimeError("predicate blew up")
            return True

        result = shrink(H, fails)
        assert result.hypergraph.num_edges == 2


class TestEndToEnd:
    def test_fuzz_detect_shrink_replay(self, tmp_path):
        """The acceptance pipeline: plant a bug, fuzz, shrink, replay."""
        broken = {"buggy": drop_maximality_above(4)}
        report = run_fuzz(
            "40", seed=0, extra_solvers=broken, out_dir=tmp_path, max_failures=1
        )
        assert not report.ok
        assert report.stop_reason == "max-failures"
        [case_report] = report.failures
        assert any(f.check == "maximality" for f in case_report.failures)
        assert case_report.reproducer is not None
        assert case_report.shrunk_m is not None and case_report.shrunk_m <= 8

        # The reproducer replays the failure deterministically when the
        # faulty solver is plugged back in...
        H, manifest = load_reproducer(case_report.reproducer)
        first = run_case(H, int(manifest["seed"]), extra_solvers=broken,
                         metamorphic=False, oracle=False)
        second = run_case(H, int(manifest["seed"]), extra_solvers=broken,
                          metamorphic=False, oracle=False)
        assert [str(f) for f in first] == [str(f) for f in second]
        assert any(f.solver == "buggy" and f.check == "maximality" for f in first)

        # ...and is clean against the healthy solver fleet (so it can sit
        # in tests/regressions/ as a permanent pin).
        assert run_case(H, int(manifest["seed"])) == []

    def test_clean_fuzz_writes_nothing(self, tmp_path):
        report = run_fuzz("15", seed=0, out_dir=tmp_path)
        assert report.ok
        assert report.cases == 15
        assert list(tmp_path.glob("*.npz")) == []

    def test_time_budget_stops(self):
        report = run_fuzz("1s", seed=0)
        assert report.elapsed_s < 10
        assert report.cases >= 1
