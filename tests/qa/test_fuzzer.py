"""Fuzzer determinism, family coverage and mutation semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.components import num_components
from repro.hypergraph.validate import check_mis
from repro.qa import FAMILIES, generate_case, iter_cases
from repro.qa.mutations import (
    add_duplicate_edges,
    add_isolated_vertices,
    add_singleton_edges,
    add_superset_edges,
    compact_universe,
    disjoint_union,
    relabel_vertices,
    shuffle_edge_order,
)


class TestCaseSynthesis:
    def test_deterministic_in_seed_and_index(self):
        for index in range(12):
            a = generate_case(3, index)
            b = generate_case(3, index)
            assert a.hypergraph == b.hypergraph
            assert a.solver_seed == b.solver_seed
            assert a.family == b.family
            assert a.mutations == b.mutations

    def test_independent_of_generation_order(self):
        forward = [generate_case(5, i).hypergraph for i in range(6)]
        backward = [generate_case(5, i).hypergraph for i in reversed(range(6))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = [generate_case(0, i).hypergraph for i in range(10)]
        b = [generate_case(1, i).hypergraph for i in range(10)]
        assert a != b

    def test_family_rotation_covers_everything(self):
        seen = {generate_case(0, i).family for i in range(len(FAMILIES))}
        assert seen == {name for name, _ in FAMILIES}

    def test_iter_cases_matches_generate_case(self):
        stream = iter_cases(2)
        for i in range(5):
            assert next(stream).hypergraph == generate_case(2, i).hypergraph

    def test_planted_certificate_is_valid(self):
        planted = [
            c for i in range(30) if (c := generate_case(0, i)).certificate is not None
        ]
        assert planted, "rotation must produce planted cases"
        for case in planted:
            check_mis(case.hypergraph, case.certificate)

    def test_degenerate_shapes_appear(self):
        cases = [generate_case(0, i) for i in range(60)]
        assert any(c.hypergraph.num_edges == 0 for c in cases)
        assert any(
            c.hypergraph.num_edges and num_components(c.hypergraph) > 1 for c in cases
        )
        assert any(c.hypergraph.min_edge_size == 1 for c in cases)

    def test_new_dense_families_hit_the_widened_envelope(self):
        # dense-dim45 targets the frontier engine (dimension > 3),
        # dense-wide the big-universe engines (universe > 2048); both must
        # stay inside the dense envelope so auto dispatch routes them there.
        from repro.kernels.dispatch import dense_capable

        by_family: dict[str, list] = {}
        for i in range(3 * len(FAMILIES)):
            c = generate_case(0, i)
            by_family.setdefault(c.family, []).append(c.hypergraph)
        assert by_family["dense-dim45"] and by_family["dense-wide"]
        for H in by_family["dense-dim45"]:
            assert H.dimension >= 4
        for H in by_family["dense-wide"]:
            assert H.universe > 2048
            assert dense_capable(H)

    def test_describe_mentions_provenance(self):
        case = generate_case(0, 4)
        text = case.describe()
        assert "planted" in text and str(case.solver_seed) in text


class TestMutations:
    def setup_method(self):
        self.H = Hypergraph(8, [(0, 1, 2), (2, 3), (3, 4, 5, 6), (1, 5), (6, 7)])

    def test_duplicates_are_identity(self):
        assert add_duplicate_edges(self.H, 3, seed=0) == self.H

    def test_supersets_add_strictly_larger_edges(self):
        mutated = add_superset_edges(self.H, 3, seed=0)
        originals = set(self.H.edges)
        added = [e for e in mutated.edges if e not in originals]
        assert added
        for e in added:
            assert any(set(orig) < set(e) for orig in originals)

    def test_singletons_forbid_vertices(self):
        mutated = add_singleton_edges(self.H, 2, seed=0)
        singles = [e for e in mutated.edges if len(e) == 1]
        assert len(singles) == 2

    def test_isolated_vertices_grow_universe(self):
        mutated = add_isolated_vertices(self.H, 4)
        assert mutated.universe == self.H.universe + 4
        assert mutated.num_edges == self.H.num_edges
        assert mutated.num_vertices == self.H.num_vertices + 4

    def test_relabel_is_a_bijection_on_structure(self):
        relabeled, pi = relabel_vertices(self.H, seed=1)
        assert relabeled.num_edges == self.H.num_edges
        assert sorted(relabeled.edge_sizes().tolist()) == sorted(
            self.H.edge_sizes().tolist()
        )
        inv = np.argsort(pi)
        back = [tuple(sorted(int(inv[v]) for v in e)) for e in relabeled.edges]
        assert sorted(back) == sorted(self.H.edges)

    def test_relabel_rejects_non_bijection(self):
        with pytest.raises(ValueError):
            relabel_vertices(self.H, permutation=np.zeros(8, dtype=np.intp))

    def test_shuffle_edge_order_is_identity(self):
        assert shuffle_edge_order(self.H, seed=3) == self.H

    def test_disjoint_union_shifts_and_separates(self):
        other = Hypergraph(3, [(0, 1, 2)])
        union = disjoint_union(self.H, other)
        assert union.universe == 11
        assert union.num_edges == self.H.num_edges + 1
        assert (8, 9, 10) in union.edges
        assert num_components(union) > 1

    def test_compact_universe_drops_dead_ids(self):
        sparse = Hypergraph(10, [(2, 7), (7, 9)], vertices=[2, 5, 7, 9])
        compact, old_ids = compact_universe(sparse)
        assert compact.universe == 4
        assert old_ids.tolist() == [2, 5, 7, 9]
        assert compact.edges == ((0, 2), (2, 3))
