"""EdgeStore: canonicalisation, masked selection, trim bookkeeping, diff.

Every test here compares the vectorised array path against a direct
Python-tuple reimplementation of the same semantics — the pre-array
behaviour the store must reproduce bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph.edgestore import _PAD_LIMIT, EdgeStore


def reference_canonical(edges) -> tuple[tuple[int, ...], ...]:
    """The tuple-path canonical form: sorted dedup within each edge, then
    the sorted set of edge tuples."""
    return tuple(sorted({tuple(sorted(set(e))) for e in edges}))


def random_edge_lists(seed: int, trials: int = 60):
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        n = int(rng.integers(1, 20))
        m = int(rng.integers(0, 25))
        edges = []
        for _ in range(m):
            size = int(rng.integers(1, min(6, n) + 1))
            # Deliberately unsorted, possibly with repeated vertices.
            edges.append(tuple(rng.integers(0, n, size=size).tolist()))
        yield n, edges


class TestCanonicalisation:
    def test_matches_tuple_reference(self):
        for _, edges in random_edge_lists(seed=101):
            store = EdgeStore.from_iterable(edges)
            assert store.edge_tuples() == reference_canonical(edges)

    def test_prefix_sorts_before_extension(self):
        """Python tuple order: (0, 1) < (0, 1, 2).  The -1 sentinel padding
        must reproduce this."""
        store = EdgeStore.from_iterable([(0, 1, 2), (0, 1), (0, 2)])
        assert store.edge_tuples() == ((0, 1), (0, 1, 2), (0, 2))

    def test_duplicate_edges_merge(self):
        store = EdgeStore.from_iterable([(2, 1), (1, 2), (1, 2, 2)])
        assert store.edge_tuples() == ((1, 2),)

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            EdgeStore.from_iterable([(0, 1), ()])

    def test_empty_store(self):
        store = EdgeStore.empty()
        assert store.num_edges == 0
        assert store.edge_tuples() == ()
        assert EdgeStore.from_iterable([]) == store

    def test_fallback_beyond_pad_limit(self):
        """An edge wider than _PAD_LIMIT takes the tuple fallback; the
        result must be identical to the reference."""
        big = tuple(range(_PAD_LIMIT + 5))
        edges = [big, (3, 1), (1, 3), big, (0,)]
        store = EdgeStore.from_iterable(edges)
        assert store.edge_tuples() == reference_canonical(edges)

    def test_canonical_arrays_adopted_verbatim(self):
        base = EdgeStore.from_iterable([(0, 1), (2, 3)])
        trusted = EdgeStore.from_arrays(base.indptr, base.indices, canonical=True)
        assert trusted.indptr is base.indptr
        assert trusted.indices is base.indices


class TestSelect:
    def test_matches_tuple_selection(self):
        rng = np.random.default_rng(7)
        for _, edges in random_edge_lists(seed=202):
            store = EdgeStore.from_iterable(edges)
            mask = rng.random(store.num_edges) < 0.5
            selected = store.select(mask)
            expected = tuple(
                t for t, keep in zip(store.edge_tuples(), mask) if keep
            )
            assert selected.edge_tuples() == expected
            # A subsequence of a canonical list is canonical.
            assert selected == EdgeStore.from_iterable(expected)

    def test_position_mask(self):
        store = EdgeStore.from_iterable([(0, 1), (2, 3, 4), (5,)])
        mask = np.array([True, False, True])
        assert store.position_mask(mask).tolist() == [1, 1, 0, 0, 0, 1]


class TestTrim:
    @staticmethod
    def _cases(seed: int):
        rng = np.random.default_rng(seed)
        for n, edges in random_edge_lists(seed=seed, trials=80):
            store = EdgeStore.from_iterable(edges)
            if store.num_edges == 0:
                continue
            mask = rng.random(n) < 0.35
            # Keep one vertex of every edge so no edge empties.
            for t in store.edge_tuples():
                if all(mask[v] for v in t):
                    mask[t[0]] = False
            yield store, mask

    def test_result_matches_tuple_path(self):
        for store, mask in self._cases(303):
            out, changed, any_change, changed_in, present = store.trim(mask)
            expected = reference_canonical(
                tuple(v for v in t if not mask[v]) for t in store.edge_tuples()
            )
            assert out.edge_tuples() == expected

    def test_bookkeeping_masks_are_exact(self):
        """The trim masks must reconstruct the exact edge diff:

        * ``changed_in`` flags precisely the input edges that shrank;
        * ``present`` flags precisely the output tuples that existed
          verbatim in the input;
        * an unchanged output edge always has an untouched group member.
        """
        for store, mask in self._cases(404):
            inputs = store.edge_tuples()
            out, changed, any_change, changed_in, present = store.trim(mask)
            outputs = out.edge_tuples()
            in_set = set(inputs)

            shrank = [any(mask[v] for v in t) for t in inputs]
            assert changed_in.tolist() == shrank
            assert any_change == any(shrank)

            assert present.tolist() == [t in in_set for t in outputs]
            # ~changed ⇒ the tuple survived untouched, so it was present.
            assert all(p for p, c in zip(present, changed) if not c)

            # Exact diff reconstruction (what the Δ tracker consumes):
            # removed = old tuples of shrunk inputs that no longer exist,
            # added = output tuples absent from the input.
            out_set = set(outputs)
            removed = {t for t, s in zip(inputs, shrank) if s} - out_set
            assert removed == in_set - out_set
            added = {t for t, p in zip(outputs, present) if not p}
            assert added == out_set - in_set

    def test_no_hit_returns_self(self):
        store = EdgeStore.from_iterable([(0, 1), (2, 3)])
        mask = np.zeros(4, dtype=bool)
        out, changed, any_change, changed_in, present = store.trim(mask)
        assert out is store
        assert not any_change
        assert not changed.any() and not changed_in.any()
        assert present.all()

    def test_empty_edge_raises(self):
        store = EdgeStore.from_iterable([(0, 1), (2,)])
        mask = np.zeros(3, dtype=bool)
        mask[2] = True
        with pytest.raises(ValueError, match="became empty"):
            store.trim(mask)

    def test_empty_store(self):
        out, changed, any_change, changed_in, present = EdgeStore.empty().trim(
            np.ones(5, dtype=bool)
        )
        assert out.num_edges == 0 and not any_change


class TestDiff:
    def test_matches_set_difference(self):
        rng = np.random.default_rng(9)
        for _, edges in random_edge_lists(seed=505):
            a = EdgeStore.from_iterable(edges)
            # Perturb: drop some edges, add some fresh ones.
            keep = rng.random(a.num_edges) < 0.6
            extra = [
                tuple(sorted(set(rng.integers(0, 30, size=3).tolist())))
                for _ in range(int(rng.integers(0, 4)))
            ]
            b = EdgeStore.from_iterable(
                [t for t, k in zip(a.edge_tuples(), keep) if k] + extra
            )
            removed_idx, added_idx = a.diff(b)
            a_set, b_set = set(a.edge_tuples()), set(b.edge_tuples())
            assert {a.edge(int(i)) for i in removed_idx} == a_set - b_set
            assert {b.edge(int(i)) for i in added_idx} == b_set - a_set

    def test_identical_stores(self):
        a = EdgeStore.from_iterable([(0, 1), (1, 2)])
        removed, added = a.diff(a)
        assert removed.size == 0 and added.size == 0

    def test_against_empty(self):
        a = EdgeStore.from_iterable([(0, 1), (1, 2)])
        removed, added = a.diff(EdgeStore.empty())
        assert removed.tolist() == [0, 1] and added.size == 0


class TestDunder:
    def test_eq_and_hash(self):
        a = EdgeStore.from_iterable([(1, 0), (2, 3)])
        b = EdgeStore.from_iterable([(0, 1), (3, 2)])
        assert a == b and hash(a) == hash(b)
        assert a != EdgeStore.from_iterable([(0, 1)])

    def test_sizes_cached(self):
        a = EdgeStore.from_iterable([(0, 1), (2, 3, 4)])
        assert a.sizes() is a.sizes()
        assert a.sizes().tolist() == [2, 3]
