"""Tests for the Hypergraph value type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph


class TestConstruction:
    def test_basic(self):
        H = Hypergraph(5, [(0, 1, 2), (2, 3)])
        assert H.num_vertices == 5
        assert H.num_edges == 2
        assert H.dimension == 3

    def test_edges_canonicalised(self):
        H = Hypergraph(5, [(2, 0, 1), (1, 0, 2)])
        assert H.edges == ((0, 1, 2),)

    def test_duplicate_vertices_in_edge_collapse(self):
        H = Hypergraph(5, [(1, 1, 2)])
        assert H.edges == ((1, 2),)

    def test_edge_order_canonical(self):
        H1 = Hypergraph(5, [(3, 4), (0, 1)])
        H2 = Hypergraph(5, [(0, 1), (3, 4)])
        assert H1.edges == H2.edges

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(5, [()])

    def test_edge_outside_universe_rejected(self):
        with pytest.raises((ValueError, IndexError)):
            Hypergraph(3, [(1, 5)])

    def test_edge_on_inactive_vertex_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(5, [(0, 4)], vertices=[0, 1, 2])

    def test_negative_universe_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(-1)

    def test_default_vertices_full_universe(self):
        H = Hypergraph(4)
        assert H.vertices.tolist() == [0, 1, 2, 3]

    def test_explicit_vertices_sorted_unique(self):
        H = Hypergraph(6, vertices=[5, 1, 1, 3])
        assert H.vertices.tolist() == [1, 3, 5]


class TestProperties:
    def test_dimension_edgeless(self, edgeless):
        assert edgeless.dimension == 0
        assert edgeless.min_edge_size == 0

    def test_min_edge_size(self, small_mixed):
        assert small_mixed.min_edge_size == 2
        assert small_mixed.dimension == 4

    def test_total_edge_size(self):
        H = Hypergraph(5, [(0, 1), (1, 2, 3)])
        assert H.total_edge_size == 5

    def test_edge_sizes_aligned(self, small_mixed):
        sizes = small_mixed.edge_sizes()
        assert sizes.tolist() == [len(e) for e in small_mixed.edges]

    def test_len_is_num_edges(self, small_mixed):
        assert len(small_mixed) == small_mixed.num_edges

    def test_iter_yields_edges(self, triangle):
        assert list(triangle) == list(triangle.edges)

    def test_repr_mentions_sizes(self, triangle):
        r = repr(triangle)
        assert "n=3" in r and "m=3" in r


class TestIncidence:
    def test_shape(self, small_mixed):
        inc = small_mixed.incidence()
        assert inc.shape == (small_mixed.num_edges, small_mixed.universe)

    def test_row_sums_are_edge_sizes(self, small_mixed):
        inc = small_mixed.incidence()
        row_sums = np.asarray(inc.sum(axis=1)).ravel()
        assert row_sums.tolist() == small_mixed.edge_sizes().tolist()

    def test_matvec_counts_members(self, triangle):
        mask = np.array([True, True, False])
        counts = triangle.incidence() @ mask.astype(np.int64)
        # edges sorted: (0,1),(0,2),(1,2)
        assert counts.tolist() == [2, 1, 1]

    def test_cached(self, triangle):
        assert triangle.incidence() is triangle.incidence()


class TestDegrees:
    def test_degree(self, triangle):
        assert all(triangle.degree(v) == 2 for v in range(3))

    def test_degree_isolated(self, single_edge):
        assert single_edge.degree(0) == 0

    def test_max_degree(self, small_mixed):
        adj = small_mixed.vertex_to_edges()
        assert small_mixed.max_degree() == max(len(v) for v in adj.values())

    def test_max_degree_edgeless(self, edgeless):
        assert edgeless.max_degree() == 0


class TestQueries:
    def test_has_edge(self, triangle):
        assert triangle.has_edge((1, 0))
        assert not triangle.has_edge((0, 1, 2))

    def test_has_edge_empty_hypergraph(self, edgeless):
        assert not edgeless.has_edge((0, 1))

    def test_edges_within(self, small_mixed):
        mask = np.zeros(8, dtype=bool)
        mask[[0, 1, 2, 3]] = True
        inside = small_mixed.edges_within(mask)
        kept = [small_mixed.edges[i] for i in inside.tolist()]
        assert kept == [(0, 1, 2), (2, 3)]

    def test_edges_touching(self, small_mixed):
        mask = np.zeros(8, dtype=bool)
        mask[7] = True
        touch = small_mixed.edges_touching(mask)
        touched = {small_mixed.edges[i] for i in touch.tolist()}
        assert touched == {(6, 7), (0, 4, 7)}

    def test_contains_fully(self, triangle):
        mask = np.array([True, True, True])
        assert triangle.contains_fully(mask)
        mask[0] = False
        assert triangle.contains_fully(mask)  # (1,2) still inside
        mask[1] = False
        assert not triangle.contains_fully(mask)

    def test_mask_shape_checked(self, triangle):
        with pytest.raises(ValueError):
            triangle.edges_within(np.zeros(5, dtype=bool))

    def test_vertex_mask(self):
        H = Hypergraph(5, vertices=[1, 3])
        assert H.vertex_mask().tolist() == [False, True, False, True, False]


class TestSubhypergraphs:
    def test_induced_keeps_contained_edges_only(self, small_mixed):
        sub = small_mixed.induced([0, 1, 2, 3])
        assert sub.edges == ((0, 1, 2), (2, 3))
        assert sub.vertices.tolist() == [0, 1, 2, 3]

    def test_induced_empty(self, small_mixed):
        sub = small_mixed.induced([])
        assert sub.num_edges == 0
        assert sub.num_vertices == 0

    def test_induced_universe_preserved(self, small_mixed):
        sub = small_mixed.induced([0, 1])
        assert sub.universe == small_mixed.universe

    def test_without_vertices(self, small_mixed):
        rest = small_mixed.without_vertices([2])
        assert all(2 not in e for e in rest.edges)
        assert 2 not in rest.vertices.tolist()
        # edges not touching 2 survive
        assert (6, 7) in rest.edges

    def test_replace_edges(self, triangle):
        H2 = triangle.replace(edges=[(0, 1)])
        assert H2.edges == ((0, 1),)
        assert triangle.num_edges == 3  # original unchanged


class TestArrayTransfer:
    """to_arrays / from_arrays / content_hash — the shared-memory wire format."""

    def test_round_trip(self, small_mixed):
        universe, vertices, indptr, indices = small_mixed.to_arrays()
        rebuilt = Hypergraph.from_arrays(universe, vertices, indptr, indices)
        assert rebuilt == small_mixed
        assert rebuilt.edges == small_mixed.edges
        assert rebuilt.vertices.tolist() == small_mixed.vertices.tolist()

    def test_round_trip_edgeless(self, edgeless):
        assert Hypergraph.from_arrays(*edgeless.to_arrays()) == edgeless

    def test_round_trip_empty_universe(self):
        H = Hypergraph(0)
        assert Hypergraph.from_arrays(*H.to_arrays()) == H

    def test_to_arrays_is_zero_copy_read_only(self, small_mixed):
        _, vertices, indptr, indices = small_mixed.to_arrays()
        for arr in (vertices, indptr, indices):
            assert arr.base is not None  # a view, not a copy
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_from_arrays_canonical_adopts_without_copy(self, small_mixed):
        universe, vertices, indptr, indices = small_mixed.to_arrays()
        rebuilt = Hypergraph.from_arrays(universe, vertices, indptr, indices)
        _, _, indptr2, indices2 = rebuilt.to_arrays()
        assert np.shares_memory(indptr, indptr2)
        assert np.shares_memory(indices, indices2)

    def test_from_arrays_uncanonical_input_canonicalised(self):
        # (2,1,0) unsorted; canonical=False must sort and validate it
        indptr = np.array([0, 3], dtype=np.intp)
        indices = np.array([2, 1, 0], dtype=np.intp)
        H = Hypergraph.from_arrays(
            4, np.arange(4, dtype=np.intp), indptr, indices, canonical=False
        )
        assert H.edges == ((0, 1, 2),)

    def test_content_hash_equal_iff_equal(self, small_mixed):
        same = Hypergraph(8, list(small_mixed.edges))
        other = small_mixed.without_vertices([7])
        assert same.content_hash() == small_mixed.content_hash()
        assert other.content_hash() != small_mixed.content_hash()

    def test_content_hash_distinguishes_universe_and_vertices(self):
        assert Hypergraph(4).content_hash() != Hypergraph(5).content_hash()
        assert (
            Hypergraph(4, vertices=[0, 1]).content_hash()
            != Hypergraph(4).content_hash()
        )

    def test_content_hash_cached(self, triangle):
        assert triangle.content_hash() is triangle.content_hash()

    def test_content_hash_survives_round_trip(self, small_mixed):
        rebuilt = Hypergraph.from_arrays(*small_mixed.to_arrays())
        assert rebuilt.content_hash() == small_mixed.content_hash()


class TestEquality:
    def test_equal(self):
        assert Hypergraph(4, [(0, 1)]) == Hypergraph(4, [(1, 0)])

    def test_differs_by_edges(self):
        assert Hypergraph(4, [(0, 1)]) != Hypergraph(4, [(0, 2)])

    def test_differs_by_universe(self):
        assert Hypergraph(4, [(0, 1)]) != Hypergraph(5, [(0, 1)])

    def test_differs_by_vertices(self):
        assert Hypergraph(4, vertices=[0, 1]) != Hypergraph(4)

    def test_hashable(self):
        assert hash(Hypergraph(4, [(0, 1)])) == hash(Hypergraph(4, [(1, 0)]))

    def test_not_equal_other_type(self):
        assert Hypergraph(2) != "hypergraph"
