"""Tests for the MIS ↔ minimal-transversal duality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson
from repro.generators import uniform_hypergraph
from repro.hypergraph import Hypergraph, is_maximal_independent
from repro.hypergraph.transversal import (
    complement,
    is_minimal_transversal,
    is_transversal,
    minimal_transversal,
)


class TestIsTransversal:
    def test_hits_all(self, triangle):
        assert is_transversal(triangle, [0, 1])  # hits (0,1),(0,2),(1,2)

    def test_misses_an_edge(self, triangle):
        assert not is_transversal(triangle, [0])  # misses (1,2)

    def test_edgeless_vacuous(self, edgeless):
        assert is_transversal(edgeless, [])
        assert is_transversal(edgeless, [3])

    def test_full_set_always_transversal(self, small_mixed):
        assert is_transversal(small_mixed, range(8))


class TestIsMinimal:
    def test_minimal_example(self, triangle):
        # {1, 2} hits all three edges; both essential ((0,1) only by 1,
        # (0,2) only by 2)
        assert is_minimal_transversal(triangle, [1, 2])

    def test_redundant_vertex(self, triangle):
        assert not is_minimal_transversal(triangle, [0, 1, 2])

    def test_non_transversal_not_minimal(self, triangle):
        assert not is_minimal_transversal(triangle, [0])

    def test_edgeless_only_empty_minimal(self, edgeless):
        assert is_minimal_transversal(edgeless, [])
        assert not is_minimal_transversal(edgeless, [0])

    def test_degree_zero_member_never_minimal(self, single_edge):
        # vertex 0 touches no edge
        assert not is_minimal_transversal(single_edge, [0, 1])


class TestDuality:
    @pytest.mark.parametrize("seed", range(5))
    def test_mis_complement_is_minimal_transversal(self, seed):
        H = uniform_hypergraph(40, 70, 3, seed=seed)
        res = beame_luby(H, seed=seed)
        T = complement(H, res.independent_set)
        assert is_transversal(H, T)
        assert is_minimal_transversal(H, T)

    def test_minimal_transversal_helper(self):
        H = uniform_hypergraph(50, 90, 3, seed=1)
        T = minimal_transversal(H, karp_upfal_wigderson, seed=2)
        assert is_minimal_transversal(H, T)

    def test_complement_of_minimal_transversal_is_mis(self):
        H = uniform_hypergraph(40, 70, 3, seed=3)
        T = minimal_transversal(H, greedy_mis, seed=3)
        I = complement(H, T)
        assert is_maximal_independent(H, I)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_duality_random(self, seed):
        H = uniform_hypergraph(20, 30, 3, seed=seed)
        res = greedy_mis(H, seed=seed)
        T = complement(H, res.independent_set)
        # both directions of the theorem
        assert is_minimal_transversal(H, T) == is_maximal_independent(
            H, res.independent_set
        )
        assert is_minimal_transversal(H, T)

    def test_duality_breaks_for_non_maximal(self, small_mixed):
        """A non-maximal IS complements to a non-minimal transversal."""
        I = []  # empty set: independent but not maximal
        T = complement(small_mixed, I)
        assert is_transversal(small_mixed, T)
        assert not is_minimal_transversal(small_mixed, T)

    def test_partial_vertex_set(self):
        H = Hypergraph(8, [(1, 2), (2, 3)], vertices=[1, 2, 3, 5])
        res = greedy_mis(H, seed=0)
        T = complement(H, res.independent_set)
        assert set(T.tolist()) <= {1, 2, 3, 5}
        assert is_minimal_transversal(H, T)
