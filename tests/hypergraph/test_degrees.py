"""Tests for Kelsen's degree structures (N_j, d_j, Δ_i, Δ, potentials)."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.generators import sunflower, uniform_hypergraph
from repro.hypergraph import (
    Delta,
    Delta_i,
    Hypergraph,
    degree_profile,
    kelsen_potentials,
    neighborhood_count,
    normalized_degree,
)
from repro.hypergraph.degrees import MAX_ENUMERABLE_DIMENSION, neighborhood


class TestNeighborhood:
    def test_explicit_sets(self):
        H = Hypergraph(6, [(0, 1, 2), (0, 1, 3), (0, 4)])
        assert sorted(neighborhood(H, [0, 1], 1)) == [(2,), (3,)]
        assert neighborhood(H, [0], 1) == [(4,)]

    def test_count_matches_listing(self):
        H = Hypergraph(6, [(0, 1, 2), (0, 1, 3), (1, 2, 3), (0, 4)])
        for x_size in (1, 2):
            for x in itertools.combinations(range(5), x_size):
                for j in (1, 2):
                    assert neighborhood_count(H, x, j) == len(neighborhood(H, x, j))

    def test_empty_x_raises(self):
        H = Hypergraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            neighborhood_count(H, [], 1)
        with pytest.raises(ValueError):
            neighborhood(H, [], 1)

    def test_bad_j_raises(self):
        H = Hypergraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            neighborhood_count(H, [0], 0)

    def test_vertex_absent_from_all_edges(self):
        H = Hypergraph(5, [(0, 1)])
        assert neighborhood_count(H, [4], 1) == 0


class TestNormalizedDegree:
    def test_jth_root(self):
        # core {0} sits in 8 edges of size 3 → d_2(0) = 8^(1/2)
        edges = [(0, 2 * i + 1, 2 * i + 2) for i in range(8)]
        H = Hypergraph(17, edges)
        assert normalized_degree(H, [0], 2) == pytest.approx(math.sqrt(8))

    def test_zero_when_absent(self):
        H = Hypergraph(4, [(0, 1)])
        assert normalized_degree(H, [3], 1) == 0.0


class TestDelta:
    def test_sunflower_core_dominates(self):
        # sunflower(2, 9, 2): 9 edges of size 4 sharing core {0,1};
        # d_2(core) = 9^(1/2) = 3 dominates.
        H = sunflower(2, 9, 2)
        assert Delta_i(H, 4) == pytest.approx(3.0)
        assert Delta(H) == pytest.approx(3.0)

    def test_matches_bruteforce_random(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            H = uniform_hypergraph(12, 14, 3, seed=rng)
            prof = degree_profile(H)
            # brute force over all x ⊆ V, sizes 1..2
            best = 0.0
            for size in (1, 2):
                for x in itertools.combinations(range(12), size):
                    j = 3 - size
                    best = max(best, neighborhood_count(H, x, j) ** (1.0 / j))
            assert Delta(H, prof) == pytest.approx(best)

    def test_edgeless_zero(self):
        assert Delta(Hypergraph(5)) == 0.0

    def test_delta_i_invalid(self):
        with pytest.raises(ValueError):
            Delta_i(Hypergraph(3, [(0, 1)]), 1)

    def test_dimension_guard(self):
        H = Hypergraph(30, [tuple(range(MAX_ENUMERABLE_DIMENSION + 1))])
        with pytest.raises(ValueError):
            degree_profile(H)

    def test_graph_delta_is_max_degree(self):
        # for a graph, Δ_2 = max_v |N_1(v)| = max degree
        H = Hypergraph(5, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert Delta(H) == pytest.approx(3.0)


class TestProfile:
    def test_counts_keyed_by_subset_and_size(self):
        H = Hypergraph(4, [(0, 1, 2)])
        prof = degree_profile(H)
        assert prof.counts[((0,), 3)] == 1
        assert prof.counts[((0, 1), 3)] == 1
        assert ((0, 1, 2), 3) not in prof.counts  # proper subsets only

    def test_singleton_edges_ignored(self):
        H = Hypergraph(4, [(0,), (1, 2)])
        prof = degree_profile(H)
        assert all(i >= 2 for (_, i) in prof.counts)

    def test_delta_by_size_consistent(self):
        H = Hypergraph(6, [(0, 1), (0, 1, 2), (3, 4, 5)])
        prof = degree_profile(H)
        assert set(prof.delta_by_size) == {2, 3}


class TestPotentials:
    def test_v_ladder_monotone_scaling(self):
        H = sunflower(2, 9, 2)  # dimension 4
        f = lambda i: 2
        F = lambda i: 2 * max(i - 1, 0)
        pots = kelsen_potentials(H, f, F)
        d = H.dimension
        assert set(pots.v) == set(range(2, d + 1))
        # v_i ≥ (log n)^{f(i)} · v_{i+1}
        for i in range(2, d):
            assert pots.v[i] >= (pots.log_n ** f(i)) * pots.v[i + 1] - 1e-9

    def test_thresholds_decreasing(self):
        H = sunflower(2, 9, 2)
        f = lambda i: 2
        F = lambda i: 2 * max(i - 1, 0)
        pots = kelsen_potentials(H, f, F)
        ts = [pots.T[j] for j in sorted(pots.T)]
        assert all(a >= b for a, b in zip(ts, ts[1:]))

    def test_v2_zero_when_dim_lt_2(self):
        H = Hypergraph(3, [(0,)])
        pots = kelsen_potentials(H, lambda i: 2, lambda i: 0)
        assert pots.v2() == 0.0

    def test_explicit_log_n(self):
        H = sunflower(2, 4, 2)
        pots = kelsen_potentials(H, lambda i: 1, lambda i: max(i - 1, 0), log_n=2.0)
        assert pots.log_n == 2.0
