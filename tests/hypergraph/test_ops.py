"""Tests for hypergraph update operations (BL/SBL cleanup rules)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    normalize,
    remove_edges_touching,
    remove_singleton_edges,
    remove_superset_edges,
    trim_vertices,
)


class TestTrimVertices:
    def test_removes_from_edges_and_vertices(self):
        H = Hypergraph(5, [(0, 1, 2), (2, 3)])
        H2 = trim_vertices(H, [0])
        assert H2.edges == ((1, 2), (2, 3))
        assert 0 not in H2.vertices.tolist()

    def test_untouched_edges_survive(self):
        H = Hypergraph(5, [(0, 1), (3, 4)])
        H2 = trim_vertices(H, [0])
        assert (3, 4) in H2.edges

    def test_empty_edge_raises(self):
        H = Hypergraph(4, [(1, 2)])
        with pytest.raises(ValueError):
            trim_vertices(H, [1, 2])

    def test_noop_on_disjoint_set(self):
        H = Hypergraph(5, [(0, 1)])
        H2 = trim_vertices(H, [4])
        assert H2.edges == H.edges

    def test_out_of_universe_raises(self):
        H = Hypergraph(3, [(0, 1)])
        with pytest.raises(IndexError):
            trim_vertices(H, [7])

    def test_accepts_numpy_array(self):
        H = Hypergraph(5, [(0, 1, 2)])
        H2 = trim_vertices(H, np.array([0]))
        assert H2.edges == ((1, 2),)


class TestRemoveEdgesTouching:
    def test_drops_touching_only(self):
        H = Hypergraph(6, [(0, 1), (2, 3), (1, 4)])
        H2 = remove_edges_touching(H, [1])
        assert H2.edges == ((2, 3),)

    def test_vertices_unchanged(self):
        H = Hypergraph(6, [(0, 1)])
        H2 = remove_edges_touching(H, [0])
        assert H2.num_vertices == 6

    def test_empty_set_noop(self):
        H = Hypergraph(6, [(0, 1)])
        assert remove_edges_touching(H, []).edges == H.edges


class TestRemoveSupersetEdges:
    def test_superset_dropped_subset_kept(self):
        H = Hypergraph(5, [(0, 1), (0, 1, 2)])
        H2 = remove_superset_edges(H)
        assert H2.edges == ((0, 1),)

    def test_chain_of_supersets(self):
        H = Hypergraph(6, [(0,), (0, 1), (0, 1, 2), (0, 1, 2, 3)])
        H2 = remove_superset_edges(H)
        assert H2.edges == ((0,),)

    def test_incomparable_edges_kept(self):
        H = Hypergraph(6, [(0, 1, 2), (1, 2, 3), (3, 4)])
        H2 = remove_superset_edges(H)
        assert H2.num_edges == 3

    def test_empty_and_single(self):
        assert remove_superset_edges(Hypergraph(3)).num_edges == 0
        H = Hypergraph(3, [(0, 1)])
        assert remove_superset_edges(H).num_edges == 1

    def test_matches_bruteforce_on_random(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = 12
            edges = []
            for _ in range(15):
                size = int(rng.integers(1, 5))
                edges.append(tuple(sorted(rng.choice(n, size, replace=False).tolist())))
            H = Hypergraph(n, edges)
            got = set(remove_superset_edges(H).edges)
            sets = [frozenset(e) for e in H.edges]
            expect = {
                e
                for e, fs in zip(H.edges, sets)
                if not any(other < fs for other in sets)
            }
            assert got == expect


class TestRemoveSingletonEdges:
    def test_vertex_and_edge_removed(self):
        H = Hypergraph(4, [(2,), (0, 1)])
        H2, red = remove_singleton_edges(H)
        assert red.tolist() == [2]
        assert H2.edges == ((0, 1),)
        assert 2 not in H2.vertices.tolist()

    def test_edges_touching_singleton_vertex_dropped(self):
        H = Hypergraph(4, [(2,), (2, 3)])
        H2, red = remove_singleton_edges(H)
        assert H2.num_edges == 0
        assert 3 in H2.vertices.tolist()  # 3 survives, its constraint was vacuous

    def test_no_singletons_is_noop(self):
        H = Hypergraph(4, [(0, 1)])
        H2, red = remove_singleton_edges(H)
        assert red.size == 0
        assert H2.edges == H.edges


class TestNormalizeAfterTrim:
    """The fused incremental cleanup must equal normalize ∘ trim exactly."""

    def _random_normal_hypergraph(self, rng, n=14, m=12):
        from repro.hypergraph import normalize as _normalize

        edges = []
        for _ in range(m):
            size = int(rng.integers(2, 5))
            edges.append(tuple(sorted(rng.choice(n, size, replace=False).tolist())))
        H, _ = _normalize(Hypergraph(n, edges))
        return H

    def test_differential_random(self):
        import numpy as np

        from repro.hypergraph.ops import normalize_after_trim

        rng = np.random.default_rng(0)
        checked = 0
        for trial in range(200):
            H = self._random_normal_hypergraph(rng)
            # a trim set that empties no edge
            candidates = H.vertices.tolist()
            rng.shuffle(candidates)
            trim = []
            protected = {e: len(e) for e in H.edges}
            for v in candidates[: len(candidates) // 2]:
                ok = True
                for e in H.edges:
                    if v in e:
                        if protected[e] <= 1:
                            ok = False
                            break
                if ok:
                    trim.append(v)
                    for e in H.edges:
                        if v in e:
                            protected[e] -= 1
            if not trim:
                continue
            checked += 1
            fused, red_fast = normalize_after_trim(H, trim)
            slow, red_slow = normalize(trim_vertices(H, trim))
            assert fused == slow, (H.edges, trim)
            assert red_fast.tolist() == red_slow.tolist()
        assert checked > 100

    def test_empty_edge_raises(self):
        from repro.hypergraph.ops import normalize_after_trim

        H = Hypergraph(4, [(0, 1)])
        with pytest.raises(ValueError, match="empty"):
            normalize_after_trim(H, [0, 1])

    def test_dedup_collision_counts_as_changed(self):
        """Two edges shrinking onto the same survivor must still trigger
        the containment scan for it."""
        from repro.hypergraph.ops import normalize_after_trim

        # (0,1,2) and (0,1,3) both shrink to (0,1) when {2,3} trimmed;
        # (0,1) then swallows nothing, but a superset (0,1,4) must go.
        H = Hypergraph(6, [(0, 1, 2), (0, 1, 3), (0, 1, 4)])
        fused, red = normalize_after_trim(H, [2, 3])
        slow, _ = normalize(trim_vertices(H, [2, 3]))
        assert fused == slow
        assert fused.edges == ((0, 1),)

    def test_changed_edge_swallowing_untouched(self):
        from repro.hypergraph.ops import normalize_after_trim

        # (2,3) untouched; (1,2,3,4) trims to (2,3,4)?? no — trim 1 only:
        # (1,2,3) → (2,3): collides with untouched (2,3)... use a proper
        # superset case: (1,2,3,4) trim {1} → (2,3,4) ⊃ (2,3): drop it.
        H = Hypergraph(6, [(2, 3), (1, 2, 3, 4)])
        fused, _ = normalize_after_trim(H, [1])
        assert fused.edges == ((2, 3),)

    def test_singleton_cascade(self):
        from repro.hypergraph.ops import normalize_after_trim

        # (0,1) trims to (1): singleton → vertex 1 red, edge (1,5) dropped.
        H = Hypergraph(6, [(0, 1), (1, 5), (2, 3, 4)])
        fused, red = normalize_after_trim(H, [0])
        assert red.tolist() == [1]
        assert fused.edges == ((2, 3, 4),)
        assert 1 not in fused.vertices.tolist()


class TestNormalize:
    def test_fixed_point_combined(self):
        # (0,1,2) ⊇ (0,1); (3,) singleton kills 3 and the (3,4) edge.
        H = Hypergraph(6, [(0, 1, 2), (0, 1), (3,), (3, 4)])
        H2, red = normalize(H)
        assert H2.edges == ((0, 1),)
        assert red.tolist() == [3]

    def test_cascading_singletons(self):
        # Removing superset (0,1) of (0,) exposes nothing; singleton 0 kills
        # edge (0,2) making 2 free.
        H = Hypergraph(4, [(0,), (0, 1), (0, 2)])
        H2, red = normalize(H)
        assert H2.num_edges == 0
        assert red.tolist() == [0]

    def test_superset_then_new_singleton(self):
        # (1,2) ⊂ (1,2,3): drop superset. Then (1,) singleton → removes 1,
        # kills (1,2) → edgeless.
        H = Hypergraph(5, [(1,), (1, 2), (1, 2, 3)])
        H2, red = normalize(H)
        assert H2.num_edges == 0
        assert red.tolist() == [1]

    def test_noop_already_normal(self):
        H = Hypergraph(5, [(0, 1), (2, 3, 4)])
        H2, red = normalize(H)
        assert H2.edges == H.edges
        assert red.size == 0

    def test_terminates_on_edgeless(self):
        H2, red = normalize(Hypergraph(3))
        assert H2.num_edges == 0 and red.size == 0
