"""Tests for connected components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import matching_hypergraph, tight_path, uniform_hypergraph
from repro.hypergraph import Hypergraph
from repro.hypergraph.components import (
    component_labels,
    connected_components,
    num_components,
)


class TestLabels:
    def test_single_component(self):
        H = tight_path(6, 3)
        labels = component_labels(H)
        assert len(set(labels[H.vertices].tolist())) == 1

    def test_matching_has_one_component_per_block(self):
        H = matching_hypergraph(4, 3)
        assert num_components(H) == 4

    def test_isolated_vertices_are_singletons(self):
        H = Hypergraph(5, [(0, 1)])
        assert num_components(H) == 4  # {0,1} plus 2,3,4

    def test_inactive_vertices_labelled_minus_one(self):
        H = Hypergraph(6, [(1, 2)], vertices=[1, 2, 4])
        labels = component_labels(H)
        assert labels[0] == -1 and labels[3] == -1 and labels[5] == -1
        assert labels[1] == labels[2] != labels[4]

    def test_chain_merging(self):
        # edges overlapping pairwise chain everything together
        H = Hypergraph(7, [(0, 1, 2), (2, 3), (3, 4, 5), (5, 6)])
        assert num_components(H) == 1

    def test_empty(self):
        assert num_components(Hypergraph(0)) == 0

    def test_edgeless(self):
        assert num_components(Hypergraph(4)) == 4


class TestSplit:
    def test_parts_partition_vertices(self):
        H = matching_hypergraph(3, 4)
        parts = connected_components(H)
        seen = np.concatenate([p.vertices for p in parts])
        assert sorted(seen.tolist()) == H.vertices.tolist()

    def test_parts_carry_their_edges(self):
        H = Hypergraph(8, [(0, 1), (2, 3, 4), (6, 7)])
        parts = connected_components(H)
        all_edges = sorted(e for p in parts for e in p.edges)
        assert tuple(all_edges) == H.edges

    def test_universe_preserved(self):
        H = Hypergraph(9, [(0, 1), (4, 5)])
        for p in connected_components(H):
            assert p.universe == 9

    def test_random_instance_consistency(self):
        H = uniform_hypergraph(60, 30, 3, seed=0)
        parts = connected_components(H)
        assert sum(p.num_vertices for p in parts) == H.num_vertices
        assert sum(p.num_edges for p in parts) == H.num_edges
        assert len(parts) == num_components(H)
