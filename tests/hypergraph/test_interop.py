"""Tests for NetworkX interoperability."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import luby_mis
from repro.generators import sparse_random_graph, uniform_hypergraph
from repro.hypergraph import Hypergraph, is_independent
from repro.hypergraph.interop import (
    from_bipartite,
    graph_to_hypergraph,
    hypergraph_to_graph,
    to_bipartite,
    two_section,
)


class TestBipartite:
    def test_round_trip(self, small_mixed):
        assert from_bipartite(to_bipartite(small_mixed)) == small_mixed

    def test_round_trip_partial_vertices(self):
        H = Hypergraph(7, [(1, 2, 3)], vertices=[1, 2, 3, 5])
        assert from_bipartite(to_bipartite(H)) == H

    def test_structure(self, triangle):
        G = to_bipartite(triangle)
        vertex_nodes = [n for n, d in G.nodes(data=True) if d["bipartite"] == 0]
        edge_nodes = [n for n, d in G.nodes(data=True) if d["bipartite"] == 1]
        assert len(vertex_nodes) == 3 and len(edge_nodes) == 3
        assert nx.is_bipartite(G)

    def test_degree_matches_membership(self, small_mixed):
        G = to_bipartite(small_mixed)
        for i, e in enumerate(small_mixed.edges):
            assert G.degree(("e", i)) == len(e)

    def test_missing_universe_rejected(self):
        with pytest.raises(ValueError, match="universe"):
            from_bipartite(nx.Graph())

    def test_missing_bipartite_attr_rejected(self):
        G = nx.Graph(universe=2)
        G.add_node(0)
        with pytest.raises(ValueError, match="bipartite"):
            from_bipartite(G)

    def test_random_round_trip(self):
        H = uniform_hypergraph(30, 40, 3, seed=0)
        assert from_bipartite(to_bipartite(H)) == H


class TestTwoSection:
    def test_clique_per_edge(self):
        H = Hypergraph(5, [(0, 1, 2)])
        G = two_section(H)
        assert set(G.edges()) == {(0, 1), (0, 2), (1, 2)}

    def test_mis_of_two_section_is_strong_is(self, small_mixed):
        G = two_section(small_mixed)
        # maximal IS of the 2-section via networkx
        I = nx.maximal_independent_set(G, seed=0)
        assert is_independent(small_mixed, I)

    def test_isolated_vertices_present(self, single_edge):
        G = two_section(single_edge)
        assert set(G.nodes()) == {0, 1, 2, 3, 4}


class TestGraphConversion:
    def test_round_trip_integer_graph(self):
        G = nx.path_graph(6)
        H = graph_to_hypergraph(G)
        G2 = hypergraph_to_graph(H)
        assert set(G.edges()) == set(G2.edges())

    def test_string_nodes_relabelled(self):
        G = nx.Graph()
        G.add_edge("a", "b")
        H = graph_to_hypergraph(G)
        assert H.num_vertices == 2 and H.num_edges == 1

    def test_self_loops_dropped(self):
        G = nx.Graph()
        G.add_edge(0, 0)
        G.add_edge(0, 1)
        H = graph_to_hypergraph(G)
        assert H.edges == ((0, 1),)

    def test_non_graph_rejected(self, small_mixed):
        with pytest.raises(ValueError, match="2-uniform"):
            hypergraph_to_graph(small_mixed)

    def test_luby_on_imported_graph(self):
        G = nx.erdos_renyi_graph(50, 0.08, seed=1)
        H = graph_to_hypergraph(G)
        res = luby_mis(H, seed=0)
        res.verify(H)
        # cross-check against the original graph directly
        chosen = set(res.independent_set.tolist())
        assert not any(u in chosen and v in chosen for u, v in G.edges())

    def test_export_matches_generator(self):
        H = sparse_random_graph(20, 3.0, seed=0)
        G = hypergraph_to_graph(H)
        assert G.number_of_edges() == H.num_edges
