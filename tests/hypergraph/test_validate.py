"""Tests for independence/maximality validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    IndependenceViolation,
    MaximalityViolation,
    check_mis,
    is_independent,
    is_maximal_independent,
)
from repro.hypergraph.validate import (
    find_independence_witness,
    find_maximality_witness,
)


class TestIndependence:
    def test_empty_set_independent(self, triangle):
        assert is_independent(triangle, [])

    def test_single_vertices_independent(self, triangle):
        for v in range(3):
            assert is_independent(triangle, [v])

    def test_edge_is_dependent(self, triangle):
        assert not is_independent(triangle, [0, 1])

    def test_witness_is_contained_edge(self, small_mixed):
        w = find_independence_witness(small_mixed, [0, 1, 2, 7])
        assert w == (0, 1, 2)

    def test_no_witness_when_independent(self, small_mixed):
        assert find_independence_witness(small_mixed, [0, 1]) is None

    def test_edgeless_any_set_independent(self, edgeless):
        assert is_independent(edgeless, range(6))

    def test_member_outside_universe_raises(self, triangle):
        with pytest.raises(IndexError):
            is_independent(triangle, [5])

    def test_subset_of_big_edge_independent(self, single_edge):
        assert is_independent(single_edge, [1, 2])
        assert not is_independent(single_edge, [1, 2, 3])


class TestMaximality:
    def test_triangle_mis(self, triangle):
        # any single vertex is maximal in the triangle? No: {0} can add nothing
        # adjacent... adding 1 creates edge (0,1): blocked; adding 2 creates
        # (0,2): blocked. So {0} is maximal.
        assert is_maximal_independent(triangle, [0])

    def test_triangle_empty_not_maximal(self, triangle):
        assert not is_maximal_independent(triangle, [])
        assert find_maximality_witness(triangle, []) is not None

    def test_witness_is_addable(self, small_mixed):
        members = [0]
        w = find_maximality_witness(small_mixed, members)
        assert w is not None
        assert is_independent(small_mixed, members + [w])

    def test_full_edgeless_maximal(self, edgeless):
        assert is_maximal_independent(edgeless, range(6))

    def test_singleton_edge_blocks_vertex(self):
        H = Hypergraph(3, [(0,), (1, 2)])
        # 0 can never join: {1} ∪ {2} blocked by (1,2); I = {1} with 2 blocked
        # only if adding 2 completes (1,2) — yes. 0 blocked by (0,).
        assert is_maximal_independent(H, [1])
        assert not is_maximal_independent(H, [])

    def test_isolated_vertices_must_be_included(self, single_edge):
        # vertices 0 and 4 touch no edge: any maximal set includes them.
        assert not is_maximal_independent(single_edge, [1, 2])
        assert is_maximal_independent(single_edge, [0, 1, 2, 4])

    def test_inactive_vertices_not_required(self):
        H = Hypergraph(5, [(1, 2)], vertices=[1, 2, 3])
        # 0 and 4 inactive: maximality only ranges over active vertices.
        assert is_maximal_independent(H, [1, 3])

    def test_near_complete_big_edge(self):
        H = Hypergraph(5, [(0, 1, 2, 3, 4)])
        assert is_maximal_independent(H, [0, 1, 2, 3])
        assert not is_maximal_independent(H, [0, 1, 2])


class TestCheckMis:
    def test_passes_on_valid(self, triangle):
        check_mis(triangle, [0])  # no exception

    def test_independence_violation_carries_edge(self, triangle):
        with pytest.raises(IndependenceViolation) as exc:
            check_mis(triangle, [0, 1])
        assert exc.value.edge == (0, 1)

    def test_maximality_violation_carries_vertex(self, triangle):
        with pytest.raises(MaximalityViolation) as exc:
            check_mis(triangle, [])
        assert 0 <= exc.value.vertex < 3

    def test_independence_checked_before_maximality(self, small_mixed):
        # a dependent set that is also non-maximal reports independence first
        with pytest.raises(IndependenceViolation):
            check_mis(small_mixed, [2, 3])

    def test_numpy_input(self, triangle):
        check_mis(triangle, np.array([0]))

    def test_exception_str(self):
        assert "edge" in str(IndependenceViolation((0, 1)))
        assert "vertex" in str(MaximalityViolation(3))
