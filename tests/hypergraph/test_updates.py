"""The incremental update API: exact diffs, chaining, fast-path identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph, apply_updates, chain_hash, feed_tracker
from repro.hypergraph.degrees import DeltaTracker
from repro.hypergraph.updates import _fast_apply
from repro.generators import uniform_hypergraph
from repro.util.rng import as_generator


def test_empty_batch_is_noop():
    H = uniform_hypergraph(20, 30, 3, seed=1)
    upd = apply_updates(H)
    assert upd.is_noop
    assert upd.num_changed == 0
    assert upd.dirty_vertices.size == 0
    assert upd.hypergraph.content_hash() == H.content_hash()
    assert upd.delta_fraction() == 0.0


def test_add_and_remove_report_exact_diff():
    H = Hypergraph(6, [(0, 1), (2, 3), (4, 5)])
    upd = apply_updates(H, add_edges=[(1, 2)], remove_edges=[(4, 5)])
    new = upd.hypergraph
    assert sorted(new.edges) == [(0, 1), (1, 2), (2, 3)]
    assert [H.edges[int(i)] for i in upd.removed] == [(4, 5)]
    assert [new.edges[int(i)] for i in upd.added] == [(1, 2)]
    assert sorted(upd.dirty_vertices.tolist()) == [1, 2, 4, 5]


def test_remove_and_readd_cancels_in_diff():
    H = Hypergraph(6, [(0, 1), (2, 3)])
    upd = apply_updates(H, add_edges=[(0, 1)], remove_edges=[(0, 1)])
    assert upd.is_noop
    assert sorted(upd.hypergraph.edges) == sorted(H.edges)


def test_emptying_update():
    H = Hypergraph(5, [(0, 1), (1, 2), (3, 4)])
    upd = apply_updates(H, remove_edges=list(H.edges))
    assert upd.hypergraph.num_edges == 0
    # Removals never deactivate: vertices stay active, edgeless.
    assert np.array_equal(upd.hypergraph.vertices, H.vertices)
    assert upd.removed.size == 3


def test_adding_activates_new_vertices():
    H = Hypergraph(10, [(0, 1)], vertices=[0, 1])
    upd = apply_updates(H, add_edges=[(7, 8)])
    assert sorted(upd.hypergraph.vertices.tolist()) == [0, 1, 7, 8]
    assert sorted(upd.dirty_vertices.tolist()) == [7, 8]


def test_strict_missing_removal_raises():
    H = Hypergraph(4, [(0, 1)])
    with pytest.raises(ValueError):
        apply_updates(H, remove_edges=[(2, 3)])


def test_lenient_missing_removal_is_counted():
    H = Hypergraph(4, [(0, 1)])
    upd = apply_updates(H, remove_edges=[(2, 3)], strict=False)
    assert upd.ignored_removals == 1
    assert upd.is_noop


def test_add_out_of_range_raises():
    H = Hypergraph(4, [(0, 1)])
    with pytest.raises(IndexError):
        apply_updates(H, add_edges=[(3, 4)])


def test_repeated_add_remove_round_trips():
    H = uniform_hypergraph(15, 20, 3, seed=3)
    edge = H.edges[0]
    state = H
    chain = None
    for _ in range(3):
        out = apply_updates(state, remove_edges=[edge], parent_chain=chain)
        state, chain = out.hypergraph, out.chain
        out = apply_updates(state, add_edges=[edge], parent_chain=chain)
        state, chain = out.hypergraph, out.chain
    assert sorted(state.edges) == sorted(H.edges)
    assert state.content_hash() == H.content_hash()


def test_chain_links_states():
    H = Hypergraph(6, [(0, 1)])
    upd1 = apply_updates(H, add_edges=[(2, 3)])
    assert upd1.parent_chain == H.content_hash()
    assert upd1.chain == chain_hash(H.content_hash(), upd1.content_hash)
    upd2 = apply_updates(upd1.hypergraph, add_edges=[(4, 5)], parent_chain=upd1.chain)
    assert upd2.chain == chain_hash(upd1.chain, upd2.content_hash)
    assert upd2.chain != upd1.chain


def test_chain_is_history_sensitive():
    # Same final state via different histories => different chains.
    H = Hypergraph(6, [(0, 1)])
    direct = apply_updates(H, add_edges=[(2, 3)])
    detour1 = apply_updates(H, add_edges=[(4, 5)])
    detour2 = apply_updates(
        detour1.hypergraph,
        add_edges=[(2, 3)],
        remove_edges=[(4, 5)],
        parent_chain=detour1.chain,
    )
    assert detour2.hypergraph.content_hash() == direct.hypergraph.content_hash()
    assert detour2.chain != direct.chain


def test_delta_fraction_definition():
    H = Hypergraph(8, [(0, 1), (2, 3), (4, 5)])
    upd = apply_updates(H, add_edges=[(6, 7)], remove_edges=[(0, 1)])
    # |E_old ∪ E_new| = 4, changed = 2.
    assert upd.delta_fraction() == pytest.approx(0.5)


def test_fast_path_matches_python_reference():
    rng = as_generator(77)
    for trial in range(60):
        n = int(rng.integers(5, 40))
        d = int(rng.integers(2, min(5, n)))
        m = int(rng.integers(1, 2 * n))
        H = uniform_hypergraph(n, m, d, seed=int(rng.integers(2**31)))
        k = int(rng.integers(0, H.num_edges + 1))
        removes = (
            [H.edges[int(i)] for i in rng.choice(H.num_edges, size=k, replace=False)]
            if k
            else []
        )
        adds = [
            tuple(sorted(int(v) for v in rng.choice(n, size=d, replace=False)))
            for _ in range(int(rng.integers(0, 5)))
        ]
        upd = apply_updates(H, add_edges=adds, remove_edges=removes, strict=False)
        ref = (set(H.edges) - set(removes)) | set(adds)
        assert sorted(upd.hypergraph.edges) == sorted(ref), trial
        # The diff is exact: applying it to the old edge set lands on ref.
        replayed = set(H.edges)
        replayed -= {H.edges[int(i)] for i in upd.removed}
        replayed |= {upd.hypergraph.edges[int(i)] for i in upd.added}
        assert replayed == ref, trial


def test_wide_shapes_take_general_path():
    # width * log2(universe+3) > 62 => packed keys infeasible: an 8-wide
    # edge over a 300-vertex universe needs ~66 bits.
    universe = 300
    wide = tuple(range(8))
    other = tuple(range(100, 108))
    H = Hypergraph(universe, [wide, other])
    assert (
        _fast_apply(
            H.store,
            H.store.select(np.zeros(2, dtype=bool)),
            H.store.select(np.zeros(2, dtype=bool)),
            universe,
        )
        is None
    )
    fresh = tuple(range(200, 208))
    upd = apply_updates(H, add_edges=[fresh], remove_edges=[wide], strict=True)
    assert sorted(upd.hypergraph.edges) == sorted([other, fresh])
    assert upd.num_changed == 2


def test_feed_tracker_matches_from_hypergraph():
    H = uniform_hypergraph(18, 24, 3, seed=9)
    upd = apply_updates(
        H, add_edges=[(0, 1, 2), (3, 4, 5)], remove_edges=[H.edges[0], H.edges[5]]
    )
    tracker = DeltaTracker.from_hypergraph(H)
    feed_tracker(tracker, upd, H)
    fresh = DeltaTracker.from_hypergraph(upd.hypergraph)
    assert tracker.delta_by_size == fresh.delta_by_size
    assert tracker.delta() == fresh.delta()
