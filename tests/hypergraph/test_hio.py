"""Tests for hypergraph serialisation."""

from __future__ import annotations

import io

import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.hio import dump, dumps, from_json, load, loads, to_json


class TestTextRoundTrip:
    def test_simple(self, small_mixed):
        assert loads(dumps(small_mixed)) == small_mixed

    def test_partial_vertices(self):
        H = Hypergraph(6, [(1, 2)], vertices=[1, 2, 4])
        assert loads(dumps(H)) == H

    def test_edgeless(self):
        H = Hypergraph(4)
        assert loads(dumps(H)) == H

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        universe 4

        0 1  # trailing comment
        2 3
        """
        H = loads(text)
        assert H.edges == ((0, 1), (2, 3))

    def test_missing_universe_raises(self):
        with pytest.raises(ValueError, match="universe"):
            loads("0 1\n")

    def test_malformed_universe_raises(self):
        with pytest.raises(ValueError):
            loads("universe 4 5\n")

    def test_non_integer_vertex_raises(self):
        with pytest.raises(ValueError, match="line"):
            loads("universe 4\n0 x\n")

    def test_file_object_round_trip(self, triangle):
        buf = io.StringIO()
        dump(triangle, buf)
        buf.seek(0)
        assert load(buf) == triangle

    def test_path_round_trip(self, triangle, tmp_path):
        path = tmp_path / "h.txt"
        dump(triangle, path)
        assert load(path) == triangle


class TestJsonRoundTrip:
    def test_simple(self, small_mixed):
        assert from_json(to_json(small_mixed)) == small_mixed

    def test_partial_vertices(self):
        H = Hypergraph(6, [(1, 2)], vertices=[1, 2, 4])
        assert from_json(to_json(H)) == H

    def test_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing"):
            from_json('{"universe": 3}')

    def test_vertices_optional(self):
        H = from_json('{"universe": 3, "edges": [[0, 1]]}')
        assert H.num_vertices == 3
