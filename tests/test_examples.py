"""Smoke-run every example script.

Examples are user-facing documentation; a broken one is a broken promise.
Each runs as a subprocess with a generous timeout.  The process-pool
scaling demo is excluded from CI-speed runs (it deliberately spins up
worker pools); run it with ``-m slow``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "theory_tables.py",
    "job_batching.py",
    "hypergraph_coloring.py",
    "potential_decay.py",
    "erew_simulator.py",
    "linear_hypergraphs.py",
    "streaming_updates.py",
]


def _run(name: str, timeout: int = 180) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    proc = _run(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_directory_fully_covered():
    """Every example is either in the fast list or explicitly slow."""
    slow = {"parallel_scaling.py"}
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert present == set(FAST_EXAMPLES) | slow


@pytest.mark.slow
def test_parallel_scaling_example():
    proc = _run("parallel_scaling.py", timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Brent" in proc.stdout or "backend" in proc.stdout
