"""Tests for the independence-oracle model of KUW."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.oracle import IndependenceOracle, kuw_oracle
from repro.generators import complete_uniform, uniform_hypergraph
from repro.hypergraph import Hypergraph, check_mis


class TestOracle:
    def test_query_answers_and_counts(self, triangle):
        o = IndependenceOracle(triangle)
        assert o.query([0]) is True
        assert o.query([0, 1]) is False
        assert o.queries == 2
        assert o.batches == 2

    def test_batch_counts_one_round(self, triangle):
        o = IndependenceOracle(triangle)
        answers = o.query_batch([np.array([0]), np.array([0, 1]), np.array([2])])
        assert answers == [True, False, True]
        assert o.queries == 3
        assert o.batches == 1

    def test_exposes_only_ground_set(self, small_mixed):
        o = IndependenceOracle(small_mixed)
        assert o.universe == small_mixed.universe
        assert not hasattr(o, "edges")


class TestKuwOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_returns_mis(self, seed):
        H = uniform_hypergraph(40, 80, 3, seed=seed)
        res = kuw_oracle(IndependenceOracle(H), seed=seed)
        check_mis(H, res.independent_set)

    def test_clique(self):
        H = complete_uniform(20, 2)
        res = kuw_oracle(IndependenceOracle(H), seed=0)
        check_mis(H, res.independent_set)
        assert res.size == 1

    def test_edgeless(self, edgeless):
        res = kuw_oracle(IndependenceOracle(edgeless), seed=0)
        assert res.size == 6

    def test_singleton_edges(self):
        H = Hypergraph(4, [(0,), (1, 2)])
        res = kuw_oracle(IndependenceOracle(H), seed=0)
        check_mis(H, res.independent_set)
        assert 0 not in res.independent_set

    def test_partial_vertex_set(self):
        H = Hypergraph(8, [(1, 2)], vertices=[1, 2, 5])
        res = kuw_oracle(IndependenceOracle(H), seed=0)
        check_mis(H, res.independent_set)
        assert set(res.independent_set.tolist()) <= {1, 2, 5}

    def test_query_budget_shape(self):
        """Per round ≤ 2·|C| queries in exactly 2 batches."""
        H = uniform_hypergraph(60, 120, 3, seed=0)
        oracle = IndependenceOracle(H)
        res = kuw_oracle(oracle, seed=1)
        rounds = res.num_rounds
        assert oracle.batches <= 2 * rounds + 2
        # total queries bounded by 2n per round
        assert oracle.queries <= 2 * 60 * rounds
        assert res.meta["queries"] == oracle.queries

    def test_round_shape_matches_structural_kuw(self):
        """Oracle rounds stay within the √n·log n envelope too."""
        H = uniform_hypergraph(150, 300, 3, seed=0)
        res = kuw_oracle(IndependenceOracle(H), seed=2)
        assert res.num_rounds <= math.sqrt(150) * math.log2(150)

    def test_deterministic(self):
        H = uniform_hypergraph(40, 60, 3, seed=0)
        a = kuw_oracle(IndependenceOracle(H), seed=5)
        b = kuw_oracle(IndependenceOracle(H), seed=5)
        assert np.array_equal(a.independent_set, b.independent_set)

    def test_trace_queries_recorded(self):
        H = uniform_hypergraph(30, 50, 3, seed=0)
        res = kuw_oracle(IndependenceOracle(H), seed=0)
        assert all(r.extras["queries"] > 0 for r in res.rounds)
