"""Tests for the Karp–Upfal–Wigderson algorithm."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import karp_upfal_wigderson as kuw
from repro.generators import (
    complete_uniform,
    matching_hypergraph,
    star_hypergraph,
    tight_cycle,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph, check_mis
from repro.pram import CountingMachine


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        H = uniform_hypergraph(50, 100, 3, seed=seed)
        res = kuw(H, seed=seed)
        check_mis(H, res.independent_set)

    def test_small_mixed(self, small_mixed):
        res = kuw(small_mixed, seed=0)
        check_mis(small_mixed, res.independent_set)

    def test_edgeless(self, edgeless):
        res = kuw(edgeless, seed=0)
        assert res.size == 6
        assert res.num_rounds == 1  # one unconstrained full-prefix round

    def test_complete_graph_two_rounds(self):
        """Commit + mass filter resolves a clique immediately."""
        H = complete_uniform(30, 2)
        res = kuw(H, seed=1)
        check_mis(H, res.independent_set)
        assert res.size == 1
        assert res.num_rounds <= 3

    def test_complete_uniform_d3(self):
        H = complete_uniform(20, 3)
        res = kuw(H, seed=1)
        check_mis(H, res.independent_set)
        assert res.size == 2

    def test_singleton_edges(self):
        H = Hypergraph(4, [(0,), (1, 2)])
        res = kuw(H, seed=0)
        check_mis(H, res.independent_set)
        assert 0 not in res.independent_set

    def test_matching_takes_all_but_one_per_block(self):
        H = matching_hypergraph(5, 4)
        res = kuw(H, seed=0)
        check_mis(H, res.independent_set)
        assert res.size == 15

    def test_star(self):
        H = star_hypergraph(10, 2)
        res = kuw(H, seed=0)
        check_mis(H, res.independent_set)

    def test_tight_cycle(self):
        H = tight_cycle(40, 4)
        res = kuw(H, seed=0)
        check_mis(H, res.independent_set)

    def test_partial_vertex_set(self):
        H = Hypergraph(10, [(2, 3)], vertices=[2, 3, 4])
        res = kuw(H, seed=0)
        check_mis(H, res.independent_set)
        assert set(res.independent_set.tolist()) <= {2, 3, 4}


class TestRoundBehaviour:
    def test_round_shape(self):
        H = uniform_hypergraph(200, 600, 3, seed=0)
        res = kuw(H, seed=1)
        # well below √n·log n
        assert res.num_rounds <= math.sqrt(200) * math.log2(200)

    def test_every_round_progresses(self):
        H = uniform_hypergraph(60, 120, 3, seed=0)
        res = kuw(H, seed=2)
        for r in res.rounds:
            assert r.n_after < r.n_before

    def test_prefix_recorded(self):
        H = uniform_hypergraph(40, 60, 3, seed=0)
        res = kuw(H, seed=0)
        assert all("prefix" in r.extras for r in res.rounds)
        assert sum(r.extras["prefix"] for r in res.rounds) == res.size

    def test_trace_disabled(self, small_mixed):
        res = kuw(small_mixed, seed=0, trace=False)
        assert res.rounds == []


class TestDeterminism:
    def test_same_seed(self):
        H = uniform_hypergraph(50, 100, 3, seed=0)
        a = kuw(H, seed=4)
        b = kuw(H, seed=4)
        assert np.array_equal(a.independent_set, b.independent_set)


class TestMachine:
    def test_accounting(self):
        H = uniform_hypergraph(50, 100, 3, seed=0)
        mach = CountingMachine()
        res = kuw(H, seed=0, machine=mach)
        assert mach.depth >= res.num_rounds
        assert res.machine == mach.snapshot()
