"""Differential tests: vectorised hot paths vs pure-Python references."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bl import apply_bl_round
from repro.core.reference import (
    reference_bl_round,
    reference_fully_marked_edges,
    reference_superset_removal,
)
from repro.hypergraph import Hypergraph, remove_superset_edges


@st.composite
def hypergraph_and_marks(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=0, max_value=10))
    edges = []
    for _ in range(m):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        edge = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        edges.append(tuple(edge))
    H = Hypergraph(n, edges)
    marks = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), max_size=n, unique=True)
    )
    return H, set(marks)


class TestFullyMarked:
    @given(hypergraph_and_marks())
    @settings(max_examples=80, deadline=None)
    def test_matches_matvec(self, case):
        H, marks = case
        mask = np.zeros(H.universe, dtype=bool)
        mask[list(marks)] = True
        if H.num_edges:
            counts = H.incidence() @ mask.astype(np.int64)
            vec = np.flatnonzero(counts == H.edge_sizes()).tolist()
        else:
            vec = []
        assert vec == reference_fully_marked_edges(H, marks)


class TestBLRound:
    @given(hypergraph_and_marks())
    @settings(max_examples=80, deadline=None)
    def test_round_body_agrees(self, case):
        H, marks = case
        mask = np.zeros(H.universe, dtype=bool)
        mask[list(marks)] = True
        W_vec, added_vec, red_vec, _ = apply_bl_round(H, mask)
        W_ref, added_ref, red_ref = reference_bl_round(H, marks)
        assert set(added_vec.tolist()) == added_ref
        assert set(red_vec.tolist()) == red_ref
        assert W_vec == W_ref


class TestSupersetRemoval:
    @given(hypergraph_and_marks())
    @settings(max_examples=80, deadline=None)
    def test_pivot_matches_bruteforce(self, case):
        H, _ = case
        assert set(remove_superset_edges(H).edges) == set(
            reference_superset_removal(H).edges
        )
