"""Tests for component-parallel composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson
from repro.core.decompose import solve_by_components
from repro.generators import matching_hypergraph, uniform_hypergraph
from repro.hypergraph import Hypergraph, check_mis
from repro.pram import CountingMachine


def _disjoint_blocks() -> Hypergraph:
    """Three disconnected blocks of different shapes."""
    return Hypergraph(
        12,
        [(0, 1, 2), (1, 2, 3),          # block A
         (5, 6), (6, 7), (5, 7),        # block B (triangle)
         (9, 10, 11)],                  # block C (+ isolated 4, 8)
    )


class TestCorrectness:
    @pytest.mark.parametrize("algo", [beame_luby, karp_upfal_wigderson])
    def test_union_is_mis(self, algo):
        H = _disjoint_blocks()
        res = solve_by_components(H, algo, seed=0)
        check_mis(H, res.independent_set)

    def test_isolated_vertices_included(self):
        H = _disjoint_blocks()
        res = solve_by_components(H, beame_luby, seed=0)
        assert {4, 8} <= set(res.independent_set.tolist())

    def test_matches_whole_instance_semantics(self):
        """Component-wise greedy equals whole-instance greedy for a fixed
        per-vertex order (components don't interact)."""
        H = matching_hypergraph(4, 3)
        whole = greedy_mis(H, order=H.vertices.tolist())
        def algo(part, seed, machine=None):
            return greedy_mis(part, order=sorted(part.vertices.tolist()))
        parts = solve_by_components(H, algo, seed=0)
        assert np.array_equal(whole.independent_set, parts.independent_set)

    def test_empty_hypergraph(self):
        res = solve_by_components(Hypergraph(0), beame_luby, seed=0)
        assert res.size == 0

    def test_meta_counts_components(self):
        H = _disjoint_blocks()
        res = solve_by_components(H, beame_luby, seed=0)
        assert res.meta["components"] == 5  # 3 blocks + 2 isolated vertices
        assert res.algorithm == "components(bl)"


class TestPRAMComposition:
    def test_depth_is_max_not_sum(self):
        H = _disjoint_blocks()
        # Solo runs per component:
        from repro.hypergraph.components import connected_components
        depths, works = [], []
        from repro.util.rng import spawn_seeds
        seeds = spawn_seeds(0, len(connected_components(H)))
        for part, s in zip(connected_components(H), seeds):
            m = CountingMachine()
            beame_luby(part, s, machine=m)
            depths.append(m.depth)
            works.append(m.work)
        mach = CountingMachine()
        solve_by_components(H, beame_luby, seed=0, machine=mach)
        # composed depth = max + merge compact, far below the sum
        assert mach.depth >= max(depths)
        assert mach.depth < sum(depths) + 20
        assert mach.work >= sum(works)

    def test_deterministic(self):
        H = uniform_hypergraph(40, 15, 3, seed=0)
        a = solve_by_components(H, beame_luby, seed=5)
        b = solve_by_components(H, beame_luby, seed=5)
        assert np.array_equal(a.independent_set, b.independent_set)
