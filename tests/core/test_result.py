"""Tests for MISResult / RoundRecord."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MISResult, RoundRecord
from repro.hypergraph import Hypergraph, MaximalityViolation


class TestMISResult:
    def test_sorted_unique_members(self):
        res = MISResult(
            independent_set=np.array([3, 1, 3, 2]), algorithm="x", n=5, m=0
        )
        assert res.independent_set.tolist() == [1, 2, 3]
        assert res.size == 3

    def test_accepts_list(self):
        res = MISResult(independent_set=[2, 0], algorithm="x", n=3, m=0)
        assert res.independent_set.tolist() == [0, 2]

    def test_verify_delegates(self, triangle):
        res = MISResult(independent_set=[0], algorithm="x", n=3, m=3)
        res.verify(triangle)  # valid MIS
        bad = MISResult(independent_set=[], algorithm="x", n=3, m=3)
        with pytest.raises(MaximalityViolation):
            bad.verify(triangle)

    def test_rounds_in_phase(self):
        rounds = [
            RoundRecord(0, "sbl", 10, 5, 8, 4),
            RoundRecord(0, "bl", 8, 4, 6, 3),
            RoundRecord(1, "sbl", 6, 3, 4, 2),
        ]
        res = MISResult(independent_set=[], algorithm="sbl", n=10, m=5, rounds=rounds)
        assert len(res.rounds_in_phase("sbl")) == 2
        assert len(res.rounds_in_phase("bl")) == 1
        assert res.num_rounds == 3

    def test_summary_keys(self):
        res = MISResult(
            independent_set=[1],
            algorithm="bl",
            n=4,
            m=2,
            machine={"depth": 3, "work": 9, "max_processors": 2},
        )
        s = res.summary()
        assert s["algorithm"] == "bl"
        assert s["mis_size"] == 1
        assert s["depth"] == 3 and s["work"] == 9

    def test_summary_without_machine(self):
        s = MISResult(independent_set=[], algorithm="g", n=1, m=0).summary()
        assert "depth" not in s


class TestRoundRecord:
    def test_defaults(self):
        rec = RoundRecord(0, "bl", 5, 3, 4, 2)
        assert rec.marked == 0
        assert rec.extras == {}

    def test_extras_isolated_between_instances(self):
        a = RoundRecord(0, "bl", 5, 3, 4, 2)
        b = RoundRecord(1, "bl", 4, 2, 3, 1)
        a.extras["p"] = 0.5
        assert "p" not in b.extras
