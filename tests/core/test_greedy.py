"""Tests for the sequential greedy baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import greedy_mis
from repro.generators import (
    complete_uniform,
    matching_hypergraph,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph, check_mis


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        H = uniform_hypergraph(50, 100, 3, seed=seed)
        res = greedy_mis(H, seed=seed)
        check_mis(H, res.independent_set)

    def test_small_mixed(self, small_mixed):
        check_mis(small_mixed, greedy_mis(small_mixed, seed=0).independent_set)

    def test_edgeless(self, edgeless):
        assert greedy_mis(edgeless, seed=0).size == 6

    def test_singleton_edge_rejects_vertex(self):
        H = Hypergraph(3, [(1,)])
        res = greedy_mis(H, seed=0)
        assert 1 not in res.independent_set
        check_mis(H, res.independent_set)

    def test_complete_uniform_size(self):
        H = complete_uniform(8, 4)
        assert greedy_mis(H, seed=0).size == 3

    def test_matching_size(self):
        H = matching_hypergraph(4, 3)
        assert greedy_mis(H, seed=0).size == 8


class TestOrder:
    def test_explicit_order_deterministic(self, small_mixed):
        order = list(range(8))
        a = greedy_mis(small_mixed, order=order)
        b = greedy_mis(small_mixed, order=order)
        assert np.array_equal(a.independent_set, b.independent_set)

    def test_lexicographic_greedy_known(self):
        # scan 0,1,2: take 0, take 1 → edge (0,1)? build H to check precisely
        H = Hypergraph(4, [(0, 1), (1, 2, 3)])
        res = greedy_mis(H, order=[0, 1, 2, 3])
        # 0 in; 1 completes (0,1) → rejected; 2 in; 3 would complete (1,2,3)?
        # 1 not in I so no; 3 in.
        assert res.independent_set.tolist() == [0, 2, 3]

    def test_order_changes_result(self):
        H = Hypergraph(3, [(0, 1)])
        a = greedy_mis(H, order=[0, 1, 2])
        b = greedy_mis(H, order=[1, 0, 2])
        assert 0 in a.independent_set and 1 in b.independent_set

    def test_order_must_match_active_vertices(self, small_mixed):
        with pytest.raises(ValueError):
            greedy_mis(small_mixed, order=[0, 1, 2])

    def test_order_over_partial_vertices(self):
        H = Hypergraph(6, [(1, 2)], vertices=[1, 2, 4])
        res = greedy_mis(H, order=[4, 2, 1])
        check_mis(H, res.independent_set)

    def test_random_order_seeded(self, small_mixed):
        a = greedy_mis(small_mixed, seed=3)
        b = greedy_mis(small_mixed, seed=3)
        assert np.array_equal(a.independent_set, b.independent_set)


class TestTrace:
    def test_trace_record(self, small_mixed):
        res = greedy_mis(small_mixed, seed=0, trace=True)
        assert len(res.rounds) == 1
        rec = res.rounds[0]
        assert rec.added == res.size
        assert rec.added + rec.removed_red == small_mixed.num_vertices

    def test_no_trace_by_default(self, small_mixed):
        assert greedy_mis(small_mixed, seed=0).rounds == []
