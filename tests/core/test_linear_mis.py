"""Tests for the linear-hypergraph MIS specialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import beame_luby, is_linear, linear_hypergraph_mis
from repro.generators import (
    matching_hypergraph,
    partial_steiner_triples,
    random_linear_hypergraph,
    sparse_random_graph,
)
from repro.hypergraph import Hypergraph, check_mis


class TestIsLinear:
    def test_linear_cases(self):
        assert is_linear(Hypergraph(6, [(0, 1, 2), (2, 3, 4)]))
        assert is_linear(Hypergraph(4))
        assert is_linear(matching_hypergraph(3, 3))

    def test_nonlinear(self):
        assert not is_linear(Hypergraph(5, [(0, 1, 2), (0, 1, 3)]))

    def test_graphs_always_linear(self):
        assert is_linear(sparse_random_graph(30, 4.0, seed=0))

    def test_shared_single_vertex_is_fine(self):
        assert is_linear(Hypergraph(5, [(0, 1, 2), (0, 3, 4)]))


class TestLinearMis:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_linear(self, seed):
        H = random_linear_hypergraph(60, 40, 3, seed=seed)
        res = linear_hypergraph_mis(H, seed=seed)
        check_mis(H, res.independent_set)
        assert res.algorithm == "linear"

    def test_steiner(self):
        H = partial_steiner_triples(21, seed=0)
        res = linear_hypergraph_mis(H, seed=0)
        check_mis(H, res.independent_set)

    def test_rejects_nonlinear(self):
        H = Hypergraph(5, [(0, 1, 2), (0, 1, 3)])
        with pytest.raises(ValueError, match="not a linear"):
            linear_hypergraph_mis(H, seed=0)

    def test_edgeless(self, edgeless):
        res = linear_hypergraph_mis(edgeless, seed=0)
        assert res.size == 6

    def test_uses_larger_probability_than_bl(self):
        H = random_linear_hypergraph(60, 40, 3, seed=1)
        res = linear_hypergraph_mis(H, seed=1)
        from repro.core.bl import bl_marking_probability

        assert res.meta["p"] > bl_marking_probability(H)

    def test_typically_fewer_rounds_than_bl(self):
        H = random_linear_hypergraph(150, 120, 3, seed=2)
        lin = np.mean(
            [linear_hypergraph_mis(H, seed=s).num_rounds for s in range(3)]
        )
        bl = np.mean([beame_luby(H, seed=s).num_rounds for s in range(3)])
        assert lin < bl

    def test_deterministic(self):
        H = random_linear_hypergraph(50, 30, 3, seed=3)
        a = linear_hypergraph_mis(H, seed=5)
        b = linear_hypergraph_mis(H, seed=5)
        assert np.array_equal(a.independent_set, b.independent_set)
