"""Tests for Beame–Luby's permutation algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import permutation_bl
from repro.generators import (
    complete_uniform,
    matching_hypergraph,
    sunflower,
    tight_cycle,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph, check_mis
from repro.pram import CountingMachine


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        H = uniform_hypergraph(50, 100, 3, seed=seed)
        res = permutation_bl(H, seed=seed)
        check_mis(H, res.independent_set)

    def test_small_mixed(self, small_mixed):
        check_mis(small_mixed, permutation_bl(small_mixed, seed=0).independent_set)

    def test_edgeless(self, edgeless):
        assert permutation_bl(edgeless, seed=0).size == 6

    def test_complete_graph(self):
        H = complete_uniform(20, 2)
        res = permutation_bl(H, seed=0)
        check_mis(H, res.independent_set)
        assert res.size == 1

    def test_complete_uniform(self):
        H = complete_uniform(12, 3)
        res = permutation_bl(H, seed=0)
        check_mis(H, res.independent_set)
        assert res.size == 2

    def test_singleton_edges(self):
        H = Hypergraph(4, [(0,), (1, 2)])
        res = permutation_bl(H, seed=0)
        check_mis(H, res.independent_set)

    def test_matching(self):
        H = matching_hypergraph(5, 3)
        res = permutation_bl(H, seed=0)
        assert res.size == 10

    def test_sunflower(self):
        H = sunflower(3, 6, 2)
        check_mis(H, permutation_bl(H, seed=1).independent_set)

    def test_tight_cycle(self):
        H = tight_cycle(30, 3)
        check_mis(H, permutation_bl(H, seed=1).independent_set)


class TestRounds:
    def test_few_rounds_in_practice(self):
        """The conjectured-RNC behaviour: very few rounds on random inputs."""
        H = uniform_hypergraph(300, 600, 3, seed=0)
        res = permutation_bl(H, seed=0)
        assert res.num_rounds <= 10

    def test_batch_independence_per_round(self):
        """The added batch of each round must itself be independent."""
        H = uniform_hypergraph(60, 150, 3, seed=1)
        seen: list[int] = []
        res = permutation_bl(H, seed=1)
        for rec in res.rounds:
            assert rec.added >= 0
        check_mis(H, res.independent_set)

    def test_max_rounds_guard(self):
        H = uniform_hypergraph(30, 60, 3, seed=0)
        # max_rounds=0 exhausts the loop without ever finishing
        with pytest.raises(RuntimeError):
            permutation_bl(H, seed=0, max_rounds=0)

    def test_trace_disabled(self, small_mixed):
        assert permutation_bl(small_mixed, seed=0, trace=False).rounds == []


class TestDeterminism:
    def test_same_seed(self, small_mixed):
        a = permutation_bl(small_mixed, seed=2)
        b = permutation_bl(small_mixed, seed=2)
        assert np.array_equal(a.independent_set, b.independent_set)


class TestMachine:
    def test_accounting(self):
        H = uniform_hypergraph(40, 80, 3, seed=0)
        mach = CountingMachine()
        res = permutation_bl(H, seed=0, machine=mach)
        assert mach.depth > 0
        assert res.machine == mach.snapshot()
