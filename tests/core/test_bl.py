"""Tests for the Beame–Luby algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import beame_luby, bl_marking_probability
from repro.generators import (
    complete_uniform,
    matching_hypergraph,
    star_hypergraph,
    sunflower,
    tight_cycle,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph, check_mis
from repro.pram import CountingMachine


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_uniform(self, seed):
        H = uniform_hypergraph(40, 60, 3, seed=seed)
        res = beame_luby(H, seed=seed)
        check_mis(H, res.independent_set)

    def test_small_mixed(self, small_mixed):
        res = beame_luby(small_mixed, seed=0)
        check_mis(small_mixed, res.independent_set)

    def test_edgeless_takes_everything(self, edgeless):
        res = beame_luby(edgeless, seed=0)
        assert res.independent_set.tolist() == list(range(6))

    def test_single_edge_leaves_one_out(self, single_edge):
        res = beame_luby(single_edge, seed=1)
        check_mis(single_edge, res.independent_set)
        assert {0, 4} <= set(res.independent_set.tolist())

    def test_singleton_edges_excluded(self):
        H = Hypergraph(4, [(0,), (1,), (2, 3)])
        res = beame_luby(H, seed=0)
        check_mis(H, res.independent_set)
        assert 0 not in res.independent_set
        assert 1 not in res.independent_set

    def test_complete_uniform(self):
        H = complete_uniform(9, 3)
        res = beame_luby(H, seed=3)
        check_mis(H, res.independent_set)
        assert res.size == 2

    def test_matching(self):
        H = matching_hypergraph(6, 3)
        res = beame_luby(H, seed=2)
        check_mis(H, res.independent_set)
        assert res.size == 12

    def test_star(self):
        H = star_hypergraph(8, 3)
        res = beame_luby(H, seed=2)
        check_mis(H, res.independent_set)

    def test_sunflower(self):
        H = sunflower(3, 6, 2)
        res = beame_luby(H, seed=4)
        check_mis(H, res.independent_set)

    def test_tight_cycle(self):
        H = tight_cycle(30, 3)
        res = beame_luby(H, seed=5)
        check_mis(H, res.independent_set)

    def test_empty_hypergraph(self):
        res = beame_luby(Hypergraph(0), seed=0)
        assert res.size == 0

    def test_partial_vertex_set(self):
        H = Hypergraph(10, [(2, 3, 4)], vertices=[2, 3, 4, 5])
        res = beame_luby(H, seed=0)
        check_mis(H, res.independent_set)
        assert set(res.independent_set.tolist()) <= {2, 3, 4, 5}


class TestDeterminism:
    def test_same_seed_same_result(self, small_mixed):
        a = beame_luby(small_mixed, seed=11)
        b = beame_luby(small_mixed, seed=11)
        assert np.array_equal(a.independent_set, b.independent_set)
        assert a.num_rounds == b.num_rounds

    def test_trace_matches_commits(self):
        H = uniform_hypergraph(30, 40, 3, seed=0)
        res = beame_luby(H, seed=1)
        added = sum(r.added for r in res.rounds)
        assert added == res.size


class TestMarkingProbability:
    def test_formula(self):
        H = Hypergraph(5, [(0, 1), (0, 2), (0, 3)])
        # d = 2, Δ = 3 → p = 1/(2^3·3)
        assert bl_marking_probability(H) == pytest.approx(1.0 / 24.0)

    def test_edgeless_probability_one(self):
        assert bl_marking_probability(Hypergraph(4)) == 1.0

    def test_clipped_to_one(self):
        H = Hypergraph(3, [(0, 1)])
        assert 0 < bl_marking_probability(H) <= 1.0

    def test_p_recorded_in_trace(self):
        H = uniform_hypergraph(20, 30, 3, seed=0)
        res = beame_luby(H, seed=0)
        constrained = [r for r in res.rounds if r.m_before > 0]
        assert all(0 < r.extras["p"] <= 1 for r in constrained)

    def test_override(self, small_mixed):
        res = beame_luby(small_mixed, seed=0, marking_probability=0.5)
        check_mis(small_mixed, res.independent_set)
        assert res.meta["p_initial"] == 0.5

    def test_fixed_probability_mode(self):
        H = uniform_hypergraph(30, 40, 3, seed=0)
        res = beame_luby(H, seed=1, recompute_probability=False)
        check_mis(H, res.independent_set)
        constrained = [r for r in res.rounds if r.m_before > 0]
        ps = {r.extras["p"] for r in constrained}
        assert len(ps) == 1  # Algorithm 2 literal: p computed once


class TestTraceInvariants:
    def test_monotone_shrinkage(self):
        H = uniform_hypergraph(40, 60, 3, seed=2)
        res = beame_luby(H, seed=2)
        for r in res.rounds:
            assert r.n_after <= r.n_before
            assert r.m_after <= r.m_before
            assert r.unmarked <= r.marked
            assert r.added <= r.marked

    def test_dimension_never_grows(self):
        H = uniform_hypergraph(40, 60, 4, seed=3)
        res = beame_luby(H, seed=3)
        dims = [r.dimension for r in res.rounds if r.m_before > 0]
        assert all(a >= b for a, b in zip(dims, dims[1:]))

    def test_round_indices_sequential(self, small_mixed):
        res = beame_luby(small_mixed, seed=0)
        assert [r.index for r in res.rounds] == list(range(res.num_rounds))

    def test_trace_disabled(self, small_mixed):
        res = beame_luby(small_mixed, seed=0, trace=False)
        assert res.rounds == []
        check_mis(small_mixed, res.independent_set)


class TestMachineAccounting:
    def test_depth_work_positive(self):
        H = uniform_hypergraph(30, 40, 3, seed=0)
        mach = CountingMachine()
        beame_luby(H, seed=0, machine=mach)
        assert mach.depth > 0
        assert mach.work > 0

    def test_snapshot_attached(self):
        H = uniform_hypergraph(20, 20, 3, seed=0)
        mach = CountingMachine()
        res = beame_luby(H, seed=0, machine=mach)
        assert res.machine == mach.snapshot()

    def test_depth_scales_with_rounds(self):
        H = uniform_hypergraph(40, 80, 3, seed=1)
        mach = CountingMachine()
        res = beame_luby(H, seed=1, machine=mach)
        assert mach.depth >= res.num_rounds  # at least one step per round


class TestGuards:
    def test_max_rounds_exceeded_raises(self):
        H = uniform_hypergraph(40, 80, 3, seed=0)
        with pytest.raises(RuntimeError, match="terminate"):
            # p so small that no progress happens in 3 rounds w.h.p.
            beame_luby(H, seed=0, marking_probability=1e-12, max_rounds=3)

    def test_on_round_called_each_round(self, small_mixed):
        calls = []
        res = beame_luby(
            small_mixed, seed=0, on_round=lambda rec, b, a, m, add: calls.append(rec.index)
        )
        constrained_rounds = [r for r in res.rounds if r.m_before > 0]
        assert len(calls) == len(constrained_rounds)
