"""Tests for the SBL algorithm (the paper's contribution)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import SBLFailure, sbl
from repro.generators import (
    bounded_edges_instance,
    mixed_dimension_hypergraph,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph, check_mis
from repro.pram import CountingMachine
from repro.theory.parameters import sbl_parameters


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_mixed(self, seed):
        H = mixed_dimension_hypergraph(60, 120, [2, 3, 4], seed=seed)
        res = sbl(H, seed=seed, p_override=0.3, d_cap_override=4, floor_override=8)
        check_mis(H, res.independent_set)

    def test_bounded_regime_with_big_edges(self):
        H = bounded_edges_instance(256, seed=0, beta_fraction=5.0)
        res = sbl(H, seed=1, p_override=0.2, d_cap_override=4, floor_override=16)
        check_mis(H, res.independent_set)

    def test_small_mixed(self, small_mixed):
        res = sbl(small_mixed, seed=0)
        check_mis(small_mixed, res.independent_set)

    def test_edgeless(self, edgeless):
        res = sbl(edgeless, seed=0)
        assert res.independent_set.tolist() == list(range(6))

    def test_default_parameters_work(self):
        H = uniform_hypergraph(50, 60, 3, seed=0)
        res = sbl(H, seed=0)
        check_mis(H, res.independent_set)

    def test_greedy_finisher(self):
        H = mixed_dimension_hypergraph(60, 100, [2, 3, 4, 5], seed=3)
        res = sbl(
            H, seed=3, p_override=0.3, d_cap_override=4, floor_override=30,
            finisher="greedy",
        )
        check_mis(H, res.independent_set)
        assert res.meta["finisher"] == "greedy"

    def test_unknown_finisher_rejected(self, small_mixed):
        with pytest.raises(ValueError):
            sbl(small_mixed, finisher="quantum")


class TestDirectBLPath:
    def test_low_dimension_goes_straight_to_bl(self):
        H = uniform_hypergraph(30, 40, 3, seed=0)
        res = sbl(H, seed=0, d_cap_override=5)
        assert res.meta["direct_bl"] is True
        check_mis(H, res.independent_set)

    def test_high_dimension_samples(self):
        H = mixed_dimension_hypergraph(80, 60, [2, 3, 7], seed=0)
        res = sbl(H, seed=0, p_override=0.3, d_cap_override=4, floor_override=8)
        assert res.meta["direct_bl"] is False
        check_mis(H, res.independent_set)


class TestParameters:
    def test_defaults_from_formulas(self):
        H = uniform_hypergraph(100, 50, 3, seed=0)
        res = sbl(H, seed=0)
        prm = res.meta["params"]
        assert prm.n == 100
        assert prm == sbl_parameters(100)

    def test_invalid_p(self, small_mixed):
        with pytest.raises(ValueError):
            sbl(small_mixed, p_override=0.0)
        with pytest.raises(ValueError):
            sbl(small_mixed, p_override=1.5)

    def test_invalid_d_cap(self, small_mixed):
        with pytest.raises(ValueError):
            sbl(small_mixed, d_cap_override=0)

    def test_m_bound_flag(self):
        # tiny m: inside the n^β bound
        H = Hypergraph(64, [(0, 1), (2, 3, 4)])
        res = sbl(H, seed=0)
        assert res.meta["m_bound_ok"] is True

    def test_failure_cap(self):
        # d_cap=1 on a hypergraph of 2-edges: every sampled sub-hypergraph
        # that catches an edge fails; p=1 forces it every attempt.
        H = uniform_hypergraph(20, 40, 2, seed=0)
        with pytest.raises(SBLFailure):
            sbl(
                H, seed=0, p_override=1.0, d_cap_override=1,
                floor_override=2, max_failures_per_round=3,
            )


class TestParanoid:
    def test_paranoid_run_succeeds(self):
        H = mixed_dimension_hypergraph(60, 100, [2, 3, 5], seed=4)
        res = sbl(
            H, seed=4, p_override=0.3, d_cap_override=4, floor_override=8,
            paranoid=True,
        )
        check_mis(H, res.independent_set)

    def test_paranoid_catches_broken_inner_solver(self, monkeypatch):
        """Corrupt BL's output; paranoid mode must refuse to commit it."""
        import importlib

        # the package attribute `repro.core.sbl` is shadowed by the
        # function of the same name; fetch the real module
        sbl_module = importlib.import_module("repro.core.sbl")
        from repro.hypergraph.validate import (
            IndependenceViolation,
            MaximalityViolation,
        )

        real_bl = sbl_module.beame_luby

        def broken_bl(H, seed, **kw):
            res = real_bl(H, seed, **kw)
            if res.independent_set.size:
                res.independent_set = res.independent_set[:-1]  # drop a member
            return res

        monkeypatch.setattr(sbl_module, "beame_luby", broken_bl)
        H = mixed_dimension_hypergraph(60, 100, [2, 3, 5], seed=5)
        with pytest.raises((IndependenceViolation, MaximalityViolation)):
            sbl(
                H, seed=5, p_override=0.3, d_cap_override=4, floor_override=8,
                paranoid=True,
            )


class TestTrace:
    def test_phases_interleaved(self):
        H = mixed_dimension_hypergraph(80, 120, [2, 3, 6], seed=1)
        res = sbl(H, seed=1, p_override=0.3, d_cap_override=4, floor_override=16)
        phases = {r.phase for r in res.rounds}
        assert "sbl" in phases
        assert "bl" in phases

    def test_outer_round_extras(self):
        H = mixed_dimension_hypergraph(80, 120, [2, 3, 6], seed=2)
        res = sbl(H, seed=2, p_override=0.3, d_cap_override=4, floor_override=16)
        outer = res.rounds_in_phase("sbl")
        assert outer, "expected at least one outer round"
        for r in outer:
            assert r.extras["sampled_dim"] <= 4
            assert r.extras["p"] == 0.3
            assert r.marked == r.added + r.removed_red

    def test_colored_equals_sampled(self):
        """Every sampled vertex is permanently colored (blue or red)."""
        H = mixed_dimension_hypergraph(60, 80, [2, 3, 5], seed=3)
        res = sbl(H, seed=3, p_override=0.25, d_cap_override=3, floor_override=8)
        for r in res.rounds_in_phase("sbl"):
            assert r.n_before - r.n_after == r.marked

    def test_trace_disabled(self, small_mixed):
        res = sbl(small_mixed, seed=0, trace=False)
        assert res.rounds == []


class TestDeterminism:
    def test_same_seed_same_output(self):
        H = mixed_dimension_hypergraph(60, 90, [2, 3, 5], seed=0)
        kw = dict(p_override=0.3, d_cap_override=4, floor_override=8)
        a = sbl(H, seed=9, **kw)
        b = sbl(H, seed=9, **kw)
        assert np.array_equal(a.independent_set, b.independent_set)
        assert a.meta["outer_rounds"] == b.meta["outer_rounds"]

    def test_different_seeds_usually_differ(self):
        H = mixed_dimension_hypergraph(60, 90, [2, 3, 5], seed=0)
        kw = dict(p_override=0.3, d_cap_override=4, floor_override=8)
        outs = {
            tuple(sbl(H, seed=s, **kw).independent_set.tolist()) for s in range(4)
        }
        assert len(outs) > 1


class TestMachine:
    def test_accounting_covers_all_phases(self):
        H = mixed_dimension_hypergraph(80, 120, [2, 3, 6], seed=1)
        mach = CountingMachine()
        res = sbl(
            H, seed=1, machine=mach, p_override=0.3, d_cap_override=4,
            floor_override=16,
        )
        assert mach.depth > 0 and mach.work > 0
        assert res.machine == mach.snapshot()
