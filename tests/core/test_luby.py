"""Tests for Luby's graph-MIS algorithm (d = 2 specialisation)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import luby_mis
from repro.generators import complete_uniform, sparse_random_graph, star_hypergraph
from repro.hypergraph import Hypergraph, check_mis
from repro.pram import CountingMachine


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        G = sparse_random_graph(80, 5.0, seed=seed)
        res = luby_mis(G, seed=seed)
        check_mis(G, res.independent_set)

    def test_triangle(self, triangle):
        res = luby_mis(triangle, seed=0)
        check_mis(triangle, res.independent_set)
        assert res.size == 1

    def test_complete_graph(self):
        G = complete_uniform(25, 2)
        res = luby_mis(G, seed=0)
        assert res.size == 1

    def test_star(self):
        G = star_hypergraph(12, 2)
        res = luby_mis(G, seed=0)
        check_mis(G, res.independent_set)

    def test_edgeless(self, edgeless):
        res = luby_mis(edgeless, seed=0)
        assert res.size == 6
        assert res.num_rounds == 1

    def test_isolated_plus_edge(self):
        G = Hypergraph(4, [(0, 1)])
        res = luby_mis(G, seed=0)
        check_mis(G, res.independent_set)
        assert {2, 3} <= set(res.independent_set.tolist())

    def test_rejects_non_graph(self, small_mixed):
        with pytest.raises(ValueError, match="2-uniform"):
            luby_mis(small_mixed, seed=0)

    def test_path_graph(self):
        G = Hypergraph(6, [(i, i + 1) for i in range(5)])
        res = luby_mis(G, seed=1)
        check_mis(G, res.independent_set)


class TestRounds:
    def test_logarithmic_shape(self):
        G = sparse_random_graph(2000, 6.0, seed=0)
        res = luby_mis(G, seed=0)
        assert res.num_rounds <= 4 * math.log2(2000)

    def test_monotone_shrink(self):
        G = sparse_random_graph(200, 5.0, seed=1)
        res = luby_mis(G, seed=1)
        for r in res.rounds:
            assert r.n_after < r.n_before


class TestDeterminism:
    def test_same_seed(self):
        G = sparse_random_graph(100, 4.0, seed=0)
        a = luby_mis(G, seed=7)
        b = luby_mis(G, seed=7)
        assert np.array_equal(a.independent_set, b.independent_set)


class TestMachine:
    def test_accounting(self):
        G = sparse_random_graph(100, 4.0, seed=0)
        mach = CountingMachine()
        res = luby_mis(G, seed=0, machine=mach)
        assert mach.depth >= res.num_rounds
