#!/usr/bin/env python
"""Conflict-free job batching via hypergraph MIS.

Scenario: a cluster runs jobs that each need several shared resources
(GPUs, datasets, licence tokens).  Any set of jobs whose *combined* demand
for some resource exceeds its capacity cannot run in the same batch — for
a resource with capacity c and k consumers, every (c+1)-subset of its
consumers is a forbidden set, i.e. a hyperedge.  A **maximal independent
set** of the conflict hypergraph is exactly a maximal admissible batch.

This is the shape of workload the paper's introduction motivates: the MIS
primitive on a hypergraph whose edges come from resource constraints, with
edge sizes well above 3 (so graph-MIS algorithms don't apply).

Run with::

    python examples/job_batching.py
"""

from __future__ import annotations

import itertools

import numpy as np

from repro import Hypergraph, check_mis, greedy_mis, karp_upfal_wigderson, sbl
from repro.analysis.tables import render_table


def build_conflict_hypergraph(
    num_jobs: int, num_resources: int, seed: int
) -> tuple[Hypergraph, list[str]]:
    """Random jobs × resources demand matrix → conflict hypergraph."""
    rng = np.random.default_rng(seed)
    resources = [f"res{r}" for r in range(num_resources)]
    capacities = rng.integers(2, 4, size=num_resources)
    edges: list[tuple[int, ...]] = []
    info: list[str] = []
    for r in range(num_resources):
        consumers = np.flatnonzero(rng.random(num_jobs) < 0.07)
        cap = int(capacities[r])
        # Keep the demo's edge count sane: a resource with many consumers
        # contributes C(k, cap+1) forbidden sets, so trim to the heaviest
        # few consumers (real schedulers would shard such resources).
        if consumers.size > cap + 6:
            consumers = consumers[: cap + 6]
        if consumers.size > cap:
            # any (cap+1)-subset of consumers would oversubscribe resource r
            count = 0
            for subset in itertools.combinations(consumers.tolist(), cap + 1):
                edges.append(subset)
                count += 1
            info.append(
                f"{resources[r]}: capacity {cap}, {consumers.size} consumers "
                f"→ {count} forbidden sets"
            )
    return Hypergraph(num_jobs, edges), info


def main() -> None:
    H, info = build_conflict_hypergraph(num_jobs=80, num_resources=25, seed=7)
    print(f"conflict hypergraph: {H}")
    for line in info[:5]:
        print("  " + line)
    if len(info) > 5:
        print(f"  … and {len(info) - 5} more constrained resources")
    print()

    rows = []
    for name, run in [
        ("sbl", lambda: sbl(H, seed=1, p_override=0.3,
                            d_cap_override=max(H.dimension, 2), floor_override=16)),
        ("kuw", lambda: karp_upfal_wigderson(H, seed=1)),
        ("greedy", lambda: greedy_mis(H, seed=1)),
    ]:
        res = run()
        check_mis(H, res.independent_set)  # batch is admissible and maximal
        rows.append([name, res.size, res.num_rounds])
    print(render_table(["algorithm", "batch size", "rounds"], rows,
                       title="maximal admissible job batches"))
    print()
    res = greedy_mis(H, seed=1)
    batch = sorted(res.independent_set.tolist())
    print(f"example batch ({len(batch)} jobs): {batch[:20]}{' …' if len(batch) > 20 else ''}")
    print("every job outside the batch would oversubscribe some resource.")
    print()

    # Full schedule: iterate MIS until every job has a slot.  The
    # library's apps layer wraps exactly this pattern.
    from repro.apps.scheduling import Job, Resource, plan_batches
    from repro.apps.scheduling import verify_schedule

    rng = __import__("numpy").random.default_rng(7)
    resources = [Resource(f"r{i}", int(rng.integers(2, 4))) for i in range(12)]
    jobs = [
        Job(f"job{j}", tuple(r.name for r in resources if rng.random() < 0.12))
        for j in range(60)
    ]
    schedule = plan_batches(jobs, resources, seed=1)
    verify_schedule(schedule, jobs, resources)
    print(render_table(
        ["batch", "jobs"],
        [[t, len(b)] for t, b in enumerate(schedule.batches)],
        title=f"complete schedule: {len(jobs)} jobs in {schedule.num_batches} batches",
    ))


if __name__ == "__main__":
    main()
