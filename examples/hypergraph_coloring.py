#!/usr/bin/env python
"""Proper hypergraph coloring by iterated MIS.

The survey paragraph of the paper motivates fast parallel MIS as "a
primitive in numerous applications"; coloring is the classic one.  A
*proper* coloring leaves no edge monochromatic — each color class is an
independent set — so repeatedly extracting a maximal independent set
colors the hypergraph, and a parallel MIS (the paper's subject) makes
each extraction a parallel step.

This demo colors three different structures and shows the class counts,
then runs the same pipeline with a parallel extractor and compares PRAM
depth per extraction.

Run with::

    python examples/hypergraph_coloring.py
"""

from __future__ import annotations

from repro.apps.coloring import color_by_mis, is_proper_coloring
from repro.analysis.tables import render_table
from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson
from repro.generators import (
    complete_uniform,
    sparse_random_graph,
    uniform_hypergraph,
)


def main() -> None:
    instances = [
        ("random 3-uniform", uniform_hypergraph(200, 400, 3, seed=0)),
        ("sparse graph", sparse_random_graph(200, 5.0, seed=0)),
        ("complete K_12^(3)", complete_uniform(12, 3)),
    ]
    rows = []
    for name, H in instances:
        col = color_by_mis(H, seed=1)
        assert is_proper_coloring(H, col.colors)
        sizes = [len(c) for c in col.classes]
        rows.append([name, H.num_vertices, H.num_edges, col.num_colors,
                     max(sizes), min(sizes)])
    print(render_table(
        ["instance", "n", "m", "colors", "largest class", "smallest class"],
        rows,
        title="proper hypergraph colorings (no edge monochromatic)",
    ))
    print()

    # Same pipeline, parallel extractor: each color class is one parallel
    # MIS invocation.
    H = uniform_hypergraph(200, 400, 3, seed=0)
    rows = []
    for name, algo in [("greedy", greedy_mis), ("kuw", karp_upfal_wigderson),
                       ("bl", beame_luby)]:
        col = color_by_mis(H, seed=2, algorithm=algo)
        assert is_proper_coloring(H, col.colors)
        rows.append([name, col.num_colors])
    print(render_table(
        ["extractor", "colors"],
        rows,
        title="extractor choice barely moves the class count",
    ))


if __name__ == "__main__":
    main()
