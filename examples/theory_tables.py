#!/usr/bin/env python
"""Print the paper's parameter landscape and analysis inequalities.

Everything here is closed-form — no hypergraphs, no randomness:

* the §2.2 parameters (α, β, p, d, round bound, runtime bound) across
  thirty orders of magnitude of n,
* where SBL's ``n^{2/log⁽³⁾n}`` bound actually drops below KUW's ``√n``,
* the §3.1 claim inequality under Kelsen's original recurrence (fails)
  and the paper's d² recurrence (holds),
* the §4.1 necessity condition that blocks any speed-up from sharper
  concentration bounds.

Run with::

    python examples/theory_tables.py
"""

from __future__ import annotations

from repro.analysis import run_experiment
from repro.analysis.experiments import params_from_log2n
from repro.analysis.tables import render_kv
from repro.theory import F_paper, claim_inequality, original_f_claim_sides


def main() -> None:
    print(run_experiment("E9").to_markdown())
    print()

    # Zoom in on one astronomic n: the regime where Theorem 1 wins.
    prm = params_from_log2n(2.0**79)
    print(render_kv("n = 2^(2^79): the regime engages", {
        "alpha": prm["alpha"],
        "beta": prm["beta"],
        "d (dimension cap)": prm["d"],
        "log2 of m_max": prm["log2_m_max"],
        "log2 of SBL runtime bound": prm["log2_runtime_bound"],
        "log2 of sqrt(n)": prm["log2_sqrt_n"],
    }))
    print()

    # The recurrence fix, at a human-readable n.
    d = 4
    lhs, rhs, holds = claim_inequality(2**64, d, 2, lambda i: F_paper(i, d))
    _, _, orig = original_f_claim_sides(2**64, d)
    print(render_kv(f"claim inequality at n = 2^64, d = {d}", {
        "paper lhs (log2)": lhs,
        "rhs (log2)": rhs,
        "paper d² recurrence holds": holds,
        "Kelsen original recurrence holds": orig,
    }))
    print()

    print(run_experiment("E12").to_markdown())


if __name__ == "__main__":
    main()
