#!/usr/bin/env python
"""Streaming updates: maintain an MIS while edges arrive and depart.

Builds a many-component instance, streams churn batches through the
dynamic repair engine, and shows the three things that make it useful:

1. repair touches only the affected components (patch sizes vs n);
2. the maintained set is *bit-identical* to recompute-from-scratch;
3. the dispatcher flips from repair to recompute when the batch is huge.

Run with::

    python examples/streaming_updates.py
"""

import time

import numpy as np

from repro.dynamic import DynamicMIS
from repro.generators import churn_stream, sharded_hypergraph


def main() -> None:
    # 80 disjoint blocks of 16 vertices: the regime where locality pays.
    H = sharded_hypergraph(blocks=80, block_n=16, block_m=30, d=3, seed=0)
    print(f"start: {H.num_vertices} vertices, {H.num_edges} edges")

    # A deterministic churn workload: small batches, hot-region biased
    # (80% of events land in a 1%-of-the-universe window), with some
    # adversarial duplicate/superset injections mixed in.
    batches = churn_stream(
        H,
        steps=30,
        seed=1,
        batch_edges=4,
        arrival_fraction=0.5,
        hot_fraction=0.8,
        hot_window=0.01,
        adversarial_fraction=0.2,
    )

    engine = DynamicMIS(H, seed=7)  # strategy="auto": the crossover model
    patch_sizes = []
    t0 = time.perf_counter()
    for batch in batches:
        out = engine.apply(batch.add_edges, batch.remove_edges, strict=False)
        if out.strategy == "repair":
            patch_sizes.append(out.patch_vertices)
    elapsed = time.perf_counter() - t0

    print(f"applied {engine.steps} batches in {elapsed * 1e3:.1f} ms, "
          f"final MIS size {engine.independent_set.size}")
    if patch_sizes:
        print(f"repairs re-solved a median of {int(np.median(patch_sizes))} "
              f"of {engine.hypergraph.num_vertices} vertices per update")

    # The invariant: repair output equals full recompute, bit for bit.
    assert np.array_equal(engine.independent_set, engine.recompute_reference())
    assert engine.certify()
    print(f"certified; chain {engine.chain[:16]}…")

    # A huge batch (drop a third of the edges at once) flips the
    # dispatcher to recompute — repair's localization would cover most of
    # the instance anyway.
    current = engine.hypergraph
    drop = [current.edges[i] for i in range(0, current.num_edges, 3)]
    out = engine.apply(remove_edges=drop)
    print(f"bulk removal of {len(drop)} edges -> {out.strategy} "
          f"({out.reason})")


if __name__ == "__main__":
    main()
