#!/usr/bin/env python
"""PRAM scaling study: depth, work, Brent-simulated time, real process pools.

Three views of "parallel" for the same algorithms:

1. **EREW-PRAM accounting** — the model the paper's theorems live in:
   depth (parallel time with unlimited processors) and total work.
2. **Brent's theorem** — simulated wall-clock on P processors:
   ``T_P = work/P + depth``.
3. **Actual process-pool execution** — the marking step fanned out over
   worker processes (CPython's honest parallelism; see DESIGN.md §2 on the
   GIL substitution).

Run with::

    python examples/parallel_scaling.py
"""

from __future__ import annotations

import time

from repro import (
    CountingMachine,
    ProcessBackend,
    SerialBackend,
    beame_luby,
    karp_upfal_wigderson,
    permutation_bl,
    sbl,
)
from repro.analysis.tables import render_table
from repro.generators import uniform_hypergraph


def pram_view() -> None:
    rows = []
    for n in (200, 400, 800):
        H = uniform_hypergraph(n, 2 * n, 3, seed=0)
        for name, run in [
            ("bl", lambda h, m: beame_luby(h, seed=1, machine=m)),
            ("kuw", lambda h, m: karp_upfal_wigderson(h, seed=1, machine=m)),
            ("permutation", lambda h, m: permutation_bl(h, seed=1, machine=m)),
            ("sbl", lambda h, m: sbl(h, seed=1, machine=m, p_override=0.3,
                                     d_cap_override=3, floor_override=16)),
        ]:
            mach = CountingMachine()
            res = run(H, mach)
            res.verify(H)
            rows.append(
                [n, name, res.num_rounds, mach.depth, mach.work,
                 round(mach.brent_time(16)), round(mach.brent_time(1024))]
            )
    print(render_table(
        ["n", "algorithm", "rounds", "depth", "work", "T(16 cpu)", "T(1024 cpu)"],
        rows, title="EREW-PRAM accounting + Brent-simulated time",
    ))


def process_pool_view() -> None:
    """Wall-clock of the marking hot path, serial vs process pool.

    The per-round work at laptop sizes is far too small to amortise
    process-pool overheads — this demo makes the crossover visible instead
    of pretending a speedup.
    """
    n = 2_000_000
    p = 0.01
    rows = []
    serial = SerialBackend(chunk_size=1 << 18)
    t0 = time.perf_counter()
    serial.bernoulli(0, n, p)
    t_serial = time.perf_counter() - t0
    rows.append(["serial", f"{t_serial * 1e3:.1f} ms"])
    for workers in (2, 4):
        with ProcessBackend(workers=workers, chunk_size=1 << 18) as pool:
            pool.bernoulli(0, 1 << 18, p)  # warm the pool
            t0 = time.perf_counter()
            pool.bernoulli(0, n, p)
            t_pool = time.perf_counter() - t0
        rows.append([f"{workers} workers", f"{t_pool * 1e3:.1f} ms"])
    print()
    print(render_table(
        ["backend", f"bernoulli({n:,} draws)"], rows,
        title="real execution of the marking step",
    ))
    print("(results are bit-identical across backends for equal chunk sizes)")


def main() -> None:
    pram_view()
    process_pool_view()


if __name__ == "__main__":
    main()
