#!/usr/bin/env python
"""Watch Kelsen's potential v₂(H_s) collapse across BL stages (Lemma 5).

The whole §3.1 analysis is a fight to show that the universal threshold
``v₂(H_s)`` — the top of the ladder ``v_i = max(Δ_i, (log n)^{f(i)}·v_{i+1})``
built with the paper's d² recurrence — decays despite edge migration.
This demo runs BL with the potential tracker and renders the trajectory
as terminal sparklines, next to the q_d stage budget the proof allows.

Run with::

    python examples/potential_decay.py
"""

from __future__ import annotations

from repro.analysis.instrument import PotentialTracker
from repro.analysis.sparkline import trace_view, trajectory
from repro.analysis.tables import render_kv
from repro.core import beame_luby
from repro.generators import uniform_hypergraph
from repro.theory.recurrences import log2_q_j

def main() -> None:
    n, d = 240, 3
    H = uniform_hypergraph(n, 3 * n, d, seed=0)
    tracker = PotentialTracker()
    res = beame_luby(H, seed=1, on_round=tracker.on_round)
    res.verify(H)

    print(trace_view(res))
    print()
    v2 = tracker.v2_trajectory
    print(render_kv("Lemma 5 quantities", {
        "v2 at start": v2[0],
        "stages to halve v2": tracker.stages_to_halve(),
        "stages to zero": tracker.stages_to_zero(),
        "max single-stage growth": tracker.max_growth_ratio(),
        "log2 of the q_d stage budget": log2_q_j(d, d, n),
    }))
    print()
    print("the proof budgets (log n)^{F(d-1)(d-1)+2} ≈ 2^71 stages per")
    print("constant-factor drop; measured decay needs ~30 — the analysis is")
    print("astronomically conservative, but it is the only one known that")
    print("survives super-constant dimension (the paper's Theorem 2).")


if __name__ == "__main__":
    main()
