#!/usr/bin/env python
"""MIS on linear hypergraphs (partial Steiner systems).

Linear hypergraphs — any two edges share at most one vertex — are the
class Luczak and Szymanska proved to be in RNC (paper §1).  Partial
Steiner triple systems are the canonical dense examples; this demo builds
one, runs the linear-specialised solver against plain BL, and shows the
round-count gap that linearity buys.

Run with::

    python examples/linear_hypergraphs.py
"""

from __future__ import annotations

import numpy as np

from repro import beame_luby, check_mis, linear_hypergraph_mis
from repro.analysis.tables import render_table
from repro.core.linear_mis import is_linear
from repro.generators import partial_steiner_triples


def main() -> None:
    rows = []
    for n in (31, 63, 99):
        H = partial_steiner_triples(n, seed=0)
        assert is_linear(H)
        lin_rounds, bl_rounds, sizes = [], [], []
        for seed in range(5):
            res = linear_hypergraph_mis(H, seed=seed)
            check_mis(H, res.independent_set)
            lin_rounds.append(res.num_rounds)
            sizes.append(res.size)
            bl_rounds.append(beame_luby(H, seed=seed).num_rounds)
        rows.append([
            n, H.num_edges,
            float(np.mean(sizes)),
            float(np.mean(lin_rounds)),
            float(np.mean(bl_rounds)),
        ])
    print(render_table(
        ["n", "triples", "|I| (mean)", "linear rounds", "bl rounds"],
        rows,
        title="partial Steiner triple systems: linear-specialised vs plain BL",
    ))
    print()
    print("linearity lets the solver mark with p = 1/(2Δ) instead of "
          "BL's 1/(2^{d+1}Δ): same MIS guarantee, ~4× fewer rounds here.")


if __name__ == "__main__":
    main()
