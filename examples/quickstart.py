#!/usr/bin/env python
"""Quickstart: build a hypergraph, find a maximal independent set, verify it.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CountingMachine,
    Hypergraph,
    beame_luby,
    check_mis,
    greedy_mis,
    karp_upfal_wigderson,
    sbl,
)


def main() -> None:
    # A hypergraph is a ground set {0..n-1} plus a family of forbidden
    # vertex sets (the edges).  An independent set contains no edge; we
    # want one that cannot be extended.
    H = Hypergraph(
        10,
        [
            (0, 1, 2),      # these three can't all be chosen together
            (2, 3),
            (3, 4, 5, 6),
            (1, 5),
            (6, 7),
            (0, 4, 7),
            (7, 8, 9),
        ],
    )
    print(f"input: {H}")

    # The paper's SBL algorithm.  All algorithms take a seed and return an
    # MISResult with the set, a per-round trace and optional PRAM costs.
    machine = CountingMachine()  # accounts EREW-PRAM depth and work
    result = sbl(H, seed=42, machine=machine)
    check_mis(H, result.independent_set)  # raises with a witness if wrong

    print(f"SBL found an MIS of size {result.size}: "
          f"{sorted(result.independent_set.tolist())}")
    print(f"rounds: {result.num_rounds}, "
          f"PRAM depth: {machine.depth}, work: {machine.work}")

    # Compare against the other algorithms in the library.
    for name, fn in [
        ("Beame–Luby", beame_luby),
        ("Karp–Upfal–Wigderson", karp_upfal_wigderson),
        ("sequential greedy", greedy_mis),
    ]:
        res = fn(H, seed=42)
        check_mis(H, res.independent_set)
        print(f"{name:>22}: |I| = {res.size}, rounds = {res.num_rounds}")


if __name__ == "__main__":
    main()
