#!/usr/bin/env python
"""Certifying the EREW cost model with the step-level simulator.

The paper's results live on the EREW PRAM: no two processors may touch the
same memory cell in the same step.  The cost model (`CountingMachine`)
*charges* the textbook depths; this demo *executes* the underlying
programs on `EREWSimulator`, which raises on any concurrent access — so
the printed step counts are certified exclusive-read exclusive-write.

Also shows the violation machinery: the naive one-step broadcast (every
processor reads cell 0) is exactly what EREW forbids.

Run with::

    python examples/erew_simulator.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.pram import AccessViolation, EREWSimulator, Instruction
from repro.pram.programs import broadcast, compact, exclusive_prefix_sum, tree_reduce
from repro.util.itlog import log2_ceil


def certified_depths() -> None:
    rows = []
    for n in (8, 64, 256, 1024):
        sim = EREWSimulator(n)
        sim.alloc("b", [3.14] + [0.0] * (n - 1))
        steps_b = broadcast(sim, "b", n)

        sim2 = EREWSimulator(n)
        sim2.alloc("r", list(range(1, n + 1)))
        steps_r = tree_reduce(sim2, "r", n)
        assert sim2.memory("r")[0] == n * (n + 1) / 2

        sim3 = EREWSimulator(n)
        sim3.alloc("s", [1.0] * n)
        steps_s = exclusive_prefix_sum(sim3, "s", n)
        assert sim3.memory("s")[-1] == n - 1

        rows.append([n, log2_ceil(n), steps_b, steps_r, steps_s])
    print(render_table(
        ["n", "⌈log₂ n⌉", "broadcast steps", "reduce steps", "scan steps"],
        rows,
        title="certified EREW depths (simulator rejects any concurrent access)",
    ))


def show_violation() -> None:
    print()
    print("the naive depth-1 broadcast — all processors read cell 0 — is")
    print("precisely what EREW forbids:")
    sim = EREWSimulator(4)
    sim.alloc("x", [42.0])
    sim.alloc("y", 4)
    try:
        sim.step(Instruction("y", lambda p: p, "x", lambda p: 0))
    except AccessViolation as exc:
        print(f"  → {exc}")


def main() -> None:
    certified_depths()
    show_violation()
    certified_bl_round()


def certified_bl_round() -> None:
    """One full BL round core, executed exclusively."""
    import numpy as np

    from repro.generators import uniform_hypergraph
    from repro.pram.bl_program import run_bl_round_program

    print()
    H = uniform_hypergraph(60, 90, 3, seed=0)
    marked = np.random.default_rng(0).random(H.universe) < 0.3
    fully, survivors, steps = run_bl_round_program(H, marked)
    print(f"BL mark-resolution on {H}: {steps} certified EREW steps, "
          f"{int(fully.sum())} fully marked edges, "
          f"{int(survivors.sum())} survivors committed")


if __name__ == "__main__":
    main()
