"""A4: ablation — SBL finisher: KUW vs sequential greedy.

Measures one of the design decisions catalogued in DESIGN.md section 5.
"""

from repro.analysis.ablations import run_ablation


def test_a04_finisher(benchmark, capsys):
    res = benchmark.pedantic(
        run_ablation, args=("A4",), kwargs={"scale": "quick", "seed": 0},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(res.to_markdown())
    assert res.rows
