"""E2: Theorem 1 — SBL vs KUW EREW-PRAM depth.

Regenerates the depth comparison: the paper's headline claim is the
first o(sqrt(n))-time algorithm; this prints depth, work and the
normalised shape columns for both algorithms.
"""


def test_e02_sbl_vs_kuw(run_bench):
    res = run_bench("E2")
    assert res.extras["kuw_exponent"] < 0.7
