"""A6: ablation — fused incremental round cleanup vs full normalize.

Measures the design decision behind the normalize_after_trim fast path
(DESIGN.md section 5): restricting the superset scan to edges the round
actually changed.
"""

from repro.analysis.ablations import run_ablation


def test_a06_incremental_cleanup(benchmark, capsys):
    res = benchmark.pedantic(
        run_ablation, args=("A6",), kwargs={"scale": "quick", "seed": 0},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(res.to_markdown())
    assert res.extras["min_speedup"] > 1.2
