"""E14: Linear hypergraphs — the Luczak-Szymanska RNC class.

Regenerates the linear-specialisation vs BL round table.
"""


def test_e14_linear(run_bench):
    res = run_bench("E14")
    assert res.extras["exponent"] < 0.4
