"""M2 — campaign throughput: serial vs the parallel executor.

Times one reference campaign grid (uniform instances × {bl, kuw, greedy}
× repeats) end-to-end in each execution mode — in-process serial and
``ParallelRunner`` with 1, 2 and 4 workers — and reports the median and
IQR of the wall-clock per mode, plus derived cells/s and speedup-vs-serial
ratios.

Unlike the M1 kernel micro-benchmarks this is a *process-level* benchmark
(pools, shared memory, IPC), so it is a plain timing module rather than a
pytest-benchmark suite: pytest-benchmark's calibrated inner loops interact
badly with pool startup costs, and the thing being measured is exactly the
per-run overhead a calibrating harness would amortise away.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_m02_campaign_throughput.py

or through the recording/gating scripts (``scripts/bench_smoke.py --suite
m02`` writes ``BENCH_m02.json``; ``scripts/bench_gate.py`` compares a
fresh run against it).

Interpreting speedups: each parallel mode pays a fixed pool+arena setup
(amortised here by reusing one warm runner across the timed repeats) and
per-cell IPC.  Speedup > 1 therefore needs both multiple physical cores
and cells whose solve time dominates the ~ms dispatch cost.  On a
single-core machine the expected "speedup" is ≤ 1 — the numbers are still
useful as a regression fence on executor overhead, which is why the gate
compares per-machine baselines instead of asserting absolute scaling.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any

import numpy as np

from repro.analysis.campaign import AlgorithmSpec, Campaign, InstanceSpec
from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson
from repro.exec import ParallelRunner
from repro.generators import uniform_hypergraph

#: Worker counts the parallel modes sweep (serial is always measured).
DEFAULT_WORKER_COUNTS = (1, 2, 4)


def reference_campaign(repeats: int = 4) -> Campaign:
    """The fixed grid every mode runs: 2 instances × 3 algorithms × repeats."""
    return Campaign(
        instances=[
            InstanceSpec("u3-n60", uniform_hypergraph, {"n": 60, "m": 120, "d": 3}),
            InstanceSpec("u3-n90", uniform_hypergraph, {"n": 90, "m": 180, "d": 3}),
        ],
        algorithms=[
            AlgorithmSpec("bl", beame_luby),
            AlgorithmSpec("kuw", karp_upfal_wigderson),
            AlgorithmSpec("greedy", greedy_mis),
        ],
        repeats=repeats,
    )


def _cpu_model() -> str | None:
    """Best-effort CPU model string (``platform.processor`` is often empty)."""
    if platform.system() == "Linux":
        try:
            with open("/proc/cpuinfo", encoding="utf-8") as fp:
                for line in fp:
                    if line.lower().startswith("model name"):
                        return line.split(":", 1)[1].strip()
        except OSError:
            pass
    return platform.processor() or None


def _time_mode(campaign: Campaign, runner, *, seed: int, warmup: int, timed: int) -> list[int]:
    """Wall-clock samples (ns) for ``campaign.run`` in one execution mode."""
    for _ in range(warmup):
        campaign.run(seed=seed, parallel=runner)
    samples = []
    for _ in range(timed):
        t0 = time.perf_counter_ns()
        campaign.run(seed=seed, parallel=runner)
        samples.append(time.perf_counter_ns() - t0)
    return samples


def run_m02(
    *,
    repeats: int = 4,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    warmup: int = 1,
    timed: int = 5,
    seed: int = 0,
) -> dict[str, Any]:
    """Measure every mode; return the BENCH_m02 payload.

    One :class:`ParallelRunner` per worker count is created up front and
    reused across the warmup + timed repeats, so pool startup is paid once
    per mode (matching how a long campaign would use the executor) and the
    timed samples measure steady-state dispatch + solve throughput.
    """
    campaign = reference_campaign(repeats)
    cells = len(campaign.instances) * len(campaign.algorithms) * campaign.repeats
    modes: dict[str, list[int]] = {}
    modes["campaign_serial"] = _time_mode(
        campaign, None, seed=seed, warmup=warmup, timed=timed
    )
    reference = None
    for w in worker_counts:
        with ParallelRunner(w) as runner:
            records = campaign.run(seed=seed, parallel=runner)
            if reference is None:
                reference = campaign.run(seed=seed)
            if records != reference:
                raise RuntimeError(
                    f"parallel records diverged from serial at workers={w}"
                )
            modes[f"campaign_workers{w}"] = _time_mode(
                campaign, runner, seed=seed, warmup=max(warmup - 1, 0), timed=timed
            )

    medians = {name: int(np.median(s)) for name, s in modes.items()}
    iqrs = {
        name: int(np.percentile(s, 75) - np.percentile(s, 25))
        for name, s in modes.items()
    }
    serial = medians["campaign_serial"]
    return {
        "benchmark": "bench_m02_campaign_throughput.py",
        "unit": "ns",
        "stat": "median",
        "machine": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "grid": {
            "instances": [i.name for i in campaign.instances],
            "algorithms": [a.name for a in campaign.algorithms],
            "repeats": repeats,
            "cells": cells,
            "timed_samples": timed,
        },
        "medians_ns": dict(sorted(medians.items())),
        "iqr_ns": dict(sorted(iqrs.items())),
        "speedup_vs_serial": {
            name: round(serial / ns, 3)
            for name, ns in sorted(medians.items())
            if name != "campaign_serial"
        },
        "cells_per_s": {
            name: round(cells / (ns / 1e9), 1) for name, ns in sorted(medians.items())
        },
    }


def main() -> int:
    payload = run_m02()
    width = max(len(k) for k in payload["medians_ns"])
    for name, ns in payload["medians_ns"].items():
        iqr = payload["iqr_ns"][name]
        speed = payload["speedup_vs_serial"].get(name)
        extra = f"  {speed:5.2f}x vs serial" if speed is not None else ""
        print(f"{name:<{width}}  {ns / 1e6:10.3f} ms  (IQR {iqr / 1e6:7.3f} ms){extra}")
    print(f"\ncpu_count={payload['cpu_count']}  machine={payload['machine']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
