"""E8: KUW — rounds against the O(sqrt(n)) envelope.

Regenerates the KUW scaling table with the power-law fit.
"""


def test_e08_kuw_sqrt(run_bench):
    res = run_bench("E8")
    assert res.extras["within_envelope"]
