"""M1: micro-benchmarks of the solver kernels (wall-clock).

Unlike the E/A-series (one-shot table regenerations), these use
pytest-benchmark conventionally — many rounds, full statistics — on fixed
mid-size instances, so regressions in the hot paths (marking matvec,
cleanup, KUW prefix computation, greedy scan) show up as timing shifts.

The solver entries pin their execution backend with ``use_kernel`` so
each entry keeps measuring the same code path as the dispatcher evolves:
the historical ``bl``/``kuw``/``permutation``/``greedy`` entries are the
CSR path, ``bl_bitset`` is the dense engine (acceptance floor: ≥ 10×
the ``bl`` median), and ``bl_jit`` exists only where numba is installed
(the with-numba CI leg).

The widened dense envelope adds two fenced pairs beyond the old
``dimension ≤ 3`` / ``universe ≤ 2048`` ceiling: ``bl_wide`` /
``bl_wide_bitset`` (universe 4096, the big-universe scalar path) and
``bl_dim4`` / ``bl_dim4_bitset`` (dimension 4, the frontier engine) —
acceptance floor ≥ 3× for each dense entry over its CSR twin.  ``sbl``
runs under ``auto`` dispatch, so it measures the real routed path
including the dense engines its reduced instances now reach.
"""

import pytest

from repro.core import beame_luby, greedy_mis, karp_upfal_wigderson, permutation_bl
from repro.core import sbl as sbl_solver
from repro.generators import uniform_hypergraph
from repro.hypergraph import check_mis
from repro.hypergraph.degrees import degree_profile
from repro.hypergraph.ops import normalize
from repro.kernels import use_kernel
from repro.kernels.jit import HAVE_NUMBA

N, M, D = 400, 800, 3
#: Beyond the old dense ceiling: universe 4096 (was ≤ 2048) …
N_WIDE, M_WIDE = 4096, 8192
#: … and dimension 4 (was ≤ 3).
N_D4, M_D4, D4 = 400, 600, 4


@pytest.fixture(scope="module")
def instance():
    return uniform_hypergraph(N, M, D, seed=7)


@pytest.fixture(scope="module")
def wide_instance():
    return uniform_hypergraph(N_WIDE, M_WIDE, 3, seed=7)


@pytest.fixture(scope="module")
def dim4_instance():
    return uniform_hypergraph(N_D4, M_D4, D4, seed=7)


def _forced(kernel, fn, *args, **kwargs):
    with use_kernel(kernel):
        return fn(*args, **kwargs)


def test_kernel_greedy(benchmark, instance):
    res = benchmark(lambda: _forced("csr", greedy_mis, instance, seed=1))
    check_mis(instance, res.independent_set)


def test_kernel_kuw(benchmark, instance):
    res = benchmark(
        lambda: _forced("csr", karp_upfal_wigderson, instance, seed=1, trace=False)
    )
    check_mis(instance, res.independent_set)


def test_kernel_permutation(benchmark, instance):
    res = benchmark(
        lambda: _forced("csr", permutation_bl, instance, seed=1, trace=False)
    )
    check_mis(instance, res.independent_set)


def test_kernel_bl(benchmark, instance):
    res = benchmark(lambda: _forced("csr", beame_luby, instance, seed=1, trace=False))
    check_mis(instance, res.independent_set)


def test_kernel_bl_bitset(benchmark, instance):
    res = benchmark(
        lambda: _forced("bitset", beame_luby, instance, seed=1, trace=False)
    )
    check_mis(instance, res.independent_set)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_kernel_bl_jit(benchmark, instance):
    res = benchmark(lambda: _forced("jit", beame_luby, instance, seed=1, trace=False))
    check_mis(instance, res.independent_set)


def test_kernel_bl_wide(benchmark, wide_instance):
    res = benchmark(
        lambda: _forced("csr", beame_luby, wide_instance, seed=1, trace=False)
    )
    check_mis(wide_instance, res.independent_set)


def test_kernel_bl_wide_bitset(benchmark, wide_instance):
    res = benchmark(
        lambda: _forced("bitset", beame_luby, wide_instance, seed=1, trace=False)
    )
    check_mis(wide_instance, res.independent_set)


def test_kernel_bl_dim4(benchmark, dim4_instance):
    res = benchmark(
        lambda: _forced("csr", beame_luby, dim4_instance, seed=1, trace=False)
    )
    check_mis(dim4_instance, res.independent_set)


def test_kernel_bl_dim4_bitset(benchmark, dim4_instance):
    res = benchmark(
        lambda: _forced("bitset", beame_luby, dim4_instance, seed=1, trace=False)
    )
    check_mis(dim4_instance, res.independent_set)


def test_kernel_sbl(benchmark, instance):
    res = benchmark(lambda: _forced("auto", sbl_solver, instance, seed=1))
    check_mis(instance, res.independent_set)


def test_kernel_degree_profile(benchmark, instance):
    prof = benchmark(lambda: degree_profile(instance))
    assert prof.delta() > 0


def test_kernel_normalize(benchmark, instance):
    benchmark(lambda: normalize(instance))


def test_kernel_incidence_matvec(benchmark, instance):
    import numpy as np

    marked = np.zeros(instance.universe, dtype=bool)
    marked[::3] = True
    inc = instance.incidence()
    sizes = instance.edge_sizes()
    out = benchmark(lambda: np.flatnonzero((inc @ marked.astype(np.int64)) == sizes))
    assert out is not None
