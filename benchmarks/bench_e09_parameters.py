"""E9: Section 2.2 parameters across astronomic n.

Regenerates the parameter table showing where the asymptotic regime
(d >= 3, SBL beating sqrt(n)) actually engages.
"""


def test_e09_parameters(run_bench):
    res = run_bench("E9")
    assert res.rows[-1][6] is True
