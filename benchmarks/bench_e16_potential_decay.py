"""E16: Lemma 5 — decay of the universal threshold v2(H_s).

Regenerates the potential-trajectory table: v2 collapses to zero far
inside the q_d stage budget, and never grows beyond the Lemma 5 slack.
"""


def test_e16_potential_decay(run_bench):
    res = run_bench("E16")
    assert res.extras["growth_ok"]
