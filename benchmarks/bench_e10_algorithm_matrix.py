"""E10: Algorithm x family matrix.

Regenerates the cross-comparison of every algorithm on every workload
family (all outputs verified as MIS).
"""


def test_e10_algorithm_matrix(run_bench):
    res = run_bench("E10")
    assert len(res.rows) >= 25
