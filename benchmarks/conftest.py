"""Shared machinery for the benchmark suite.

Each ``bench_eNN_*.py`` regenerates one experiment table of DESIGN.md §4
under pytest-benchmark.  Experiments are macro-benchmarks (seconds, heavy
Monte-Carlo loops), so each is timed as a single round rather than being
re-run until statistically stable — the interesting output is the table
itself, printed after timing.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentResult, run_experiment


@pytest.fixture
def run_bench(benchmark, capsys):
    """Benchmark one experiment id and print its regenerated table."""

    def _run(experiment_id: str, scale: str = "quick", seed: int = 0) -> ExperimentResult:
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(result.to_markdown())
        return result

    return _run
