"""E12: Section 4.1 — necessity of F(j) >= F(j-1) j + 5.

Regenerates the necessity scan over candidate recurrences.
"""


def test_e12_f_necessity(run_bench):
    res = run_bench("E12")
    assert any(row[1] is False for row in res.rows)
