"""M4 — incremental MIS under edge streams: repair vs recompute.

Races the two strategies of :class:`repro.dynamic.DynamicMIS` over
deterministic churn workloads and times the dispatcher's behaviour at the
crossover:

* ``small_delta_repair`` / ``small_delta_recompute`` — the headline race:
  a sharded multi-component instance (n = 9600, m = 18000) under
  hot-region churn batches touching well under 1% of edges.  Two engines
  replay the *same* batch stream, one forced to repair, one forced to
  recompute; per-batch wall times are recorded and the payload carries
  the median speedup.  The acceptance bar is repair ≥ 5× faster.
* ``crossover_small`` / ``crossover_large`` — one ``strategy="auto"``
  engine fed first a small-delta batch and then a batch rewriting ~40% of
  the edge set; the payload records which strategy the dispatcher picked
  for each (small → repair, large → recompute is the expected flip).
* ``churn_step`` — sustained-churn throughput: an auto engine absorbs a
  long mixed arrival/departure stream; the entry is the per-update median
  and the payload also reports updates/s.

Every timed update runs with the certificate pass enabled — the numbers
are for *certified* maintenance, not trust-me mode.

Like M2/M3 this is a plain-timing module (the subject includes Python
orchestration, which a calibrating harness would distort).  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_m04_dynamic.py

or through the recording/gating scripts (``scripts/bench_smoke.py
--suite m04`` writes ``BENCH_m04.json``; ``scripts/bench_gate.py``
compares a fresh run against it).
"""

from __future__ import annotations

import os
import time
from typing import Any

import numpy as np

from bench_m02_campaign_throughput import _cpu_model
from repro.dynamic import DynamicMIS
from repro.generators import churn_stream, sharded_hypergraph

#: The small-delta race instance: 600 components of 16 vertices / 30
#: edges each — the dynamic workload's natural shape (per-shard
#: constraint sets), large enough that a full recompute clearly hurts.
BLOCKS, BLOCK_N, BLOCK_M, DIM = 600, 16, 30, 3
#: Hot-region churn: 8 events per batch (≈ 0.04% of edges), 80% confined
#: to a window of 1% of the universe, so repairs stay local.
BATCH_EVENTS = 8
HOT_FRACTION = 0.8
HOT_WINDOW = 0.01


def reference_instance(seed: int = 5):
    return sharded_hypergraph(BLOCKS, BLOCK_N, BLOCK_M, DIM, seed=seed)


def _replay_ns(engine: DynamicMIS, batches) -> list[int]:
    """Apply *batches* in order, returning per-batch wall time in ns."""
    times = []
    for batch in batches:
        t0 = time.perf_counter_ns()
        engine.apply(batch.add_edges, batch.remove_edges)
        times.append(time.perf_counter_ns() - t0)
    return times


def run_m04(
    *,
    warmup: int = 3,
    timed: int = 25,
    churn_steps: int = 40,
    seed: int = 5,
) -> dict[str, Any]:
    """Run every scenario; return the BENCH_m04 payload."""
    H = reference_instance(seed)
    samples: dict[str, list[int]] = {}

    # --- small-delta race: same stream, forced repair vs forced recompute
    batches = churn_stream(
        H,
        warmup + timed,
        seed=seed + 6,
        batch_edges=BATCH_EVENTS,
        hot_fraction=HOT_FRACTION,
        hot_window=HOT_WINDOW,
    )
    patch_sizes: list[int] = []
    delta_fractions: list[float] = []
    repair_engine = DynamicMIS(H, seed=seed, strategy="repair")
    repair_times = []
    for batch in batches:
        t0 = time.perf_counter_ns()
        out = repair_engine.apply(batch.add_edges, batch.remove_edges)
        repair_times.append(time.perf_counter_ns() - t0)
        patch_sizes.append(out.patch_vertices)
        delta_fractions.append(out.update.delta_fraction())
    samples["small_delta_repair"] = repair_times[warmup:]
    recompute_engine = DynamicMIS(H, seed=seed, strategy="recompute")
    samples["small_delta_recompute"] = _replay_ns(recompute_engine, batches)[warmup:]
    if not np.array_equal(
        repair_engine.independent_set, recompute_engine.independent_set
    ):
        raise RuntimeError("repair and recompute diverged on the same stream")

    # --- crossover: one auto engine, small batch then a ~40% rewrite
    auto = DynamicMIS(H, seed=seed, strategy="auto")
    small = batches[0]
    t0 = time.perf_counter_ns()
    out_small = auto.apply(small.add_edges, small.remove_edges)
    samples["crossover_small"] = [time.perf_counter_ns() - t0]
    H_now = auto.hypergraph
    rng = np.random.default_rng(seed)
    edges_now = H_now.edges
    drop = [edges_now[i] for i in rng.choice(len(edges_now), len(edges_now) // 3, replace=False)]
    fresh = churn_stream(
        H_now,
        1,
        seed=seed + 99,
        batch_edges=len(drop),
        arrival_fraction=1.0,
    )[0]
    t0 = time.perf_counter_ns()
    out_large = auto.apply(fresh.add_edges, drop)
    samples["crossover_large"] = [time.perf_counter_ns() - t0]
    decisions = {
        "crossover_small": {
            "strategy": out_small.strategy,
            "delta_fraction": round(out_small.update.delta_fraction(), 6),
            "reason": out_small.reason,
        },
        "crossover_large": {
            "strategy": out_large.strategy,
            "delta_fraction": round(out_large.update.delta_fraction(), 6),
            "reason": out_large.reason,
        },
    }
    if out_small.strategy != "repair":
        raise RuntimeError(
            f"dispatcher picked {out_small.strategy!r} for a small delta "
            f"({decisions['crossover_small']['delta_fraction']}) — expected repair"
        )
    if out_large.strategy != "recompute":
        raise RuntimeError(
            f"dispatcher picked {out_large.strategy!r} for a large delta "
            f"({decisions['crossover_large']['delta_fraction']}) — expected recompute"
        )

    # --- sustained churn throughput (auto strategy, mixed events)
    churn = churn_stream(
        H,
        churn_steps,
        seed=seed + 17,
        batch_edges=4,
        arrival_fraction=0.55,
        hot_fraction=0.5,
        hot_window=HOT_WINDOW,
        adversarial_fraction=0.1,
    )
    engine = DynamicMIS(H, seed=seed, strategy="auto")
    churn_times = _replay_ns(engine, churn)
    samples["churn_step"] = churn_times
    engine.certify()

    medians = {name: int(np.median(s)) for name, s in samples.items()}
    iqrs = {
        name: int(np.percentile(s, 75) - np.percentile(s, 25))
        for name, s in samples.items()
    }
    speedup = medians["small_delta_recompute"] / medians["small_delta_repair"]
    return {
        "benchmark": "bench_m04_dynamic.py",
        "unit": "ns",
        "stat": "median",
        "machine": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "instance": {
            "blocks": BLOCKS,
            "block_n": BLOCK_N,
            "block_m": BLOCK_M,
            "dimension": DIM,
            "num_vertices": H.num_vertices,
            "num_edges": H.num_edges,
        },
        "stream": {
            "batch_events": BATCH_EVENTS,
            "hot_fraction": HOT_FRACTION,
            "hot_window": HOT_WINDOW,
            "timed_batches": timed,
            "median_delta_fraction": round(float(np.median(delta_fractions)), 6),
            "median_patch_vertices": int(np.median(patch_sizes)),
        },
        "medians_ns": dict(sorted(medians.items())),
        "iqr_ns": dict(sorted(iqrs.items())),
        "small_delta_speedup": round(float(speedup), 2),
        "churn_updates_per_s": round(1e9 * len(churn_times) / sum(churn_times), 1),
        "decisions": decisions,
    }


def main() -> int:
    payload = run_m04()
    width = max(len(k) for k in payload["medians_ns"])
    for name, ns in sorted(payload["medians_ns"].items()):
        iqr = payload["iqr_ns"][name]
        print(f"{name:<{width}}  {ns / 1e6:10.3f} ms  (IQR {iqr / 1e6:7.3f} ms)")
    print(
        f"\nsmall-delta speedup: {payload['small_delta_speedup']}x  "
        f"(median patch {payload['stream']['median_patch_vertices']} vertices, "
        f"delta {payload['stream']['median_delta_fraction']:.4%})"
    )
    for name, d in payload["decisions"].items():
        print(f"{name}: {d['strategy']}  ({d['reason']})")
    print(
        f"churn throughput: {payload['churn_updates_per_s']} certified updates/s"
    )
    print(f"cpu_count={payload['cpu_count']}  machine={payload['machine']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
