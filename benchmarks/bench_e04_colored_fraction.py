"""E4: Claim (1) of section 2.2 — per-round colored fraction.

Regenerates the per-round sampling concentration summary against the
Chernoff failure bound exp(-p n_i / 8).
"""


def test_e04_colored_fraction(run_bench):
    res = run_bench("E4")
    assert res.extras["failure_rate"] <= res.extras["bound"] + 0.05
