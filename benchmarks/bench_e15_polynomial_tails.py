"""E15: Theorem 3 setting — migration polynomial S vs D and the tails.

Regenerates the sampled-S table: the migration polynomial never exceeds
the Kim-Vu threshold (let alone Kelsen's), and the gap between the two
factors grows with the polynomial degree k-j (the section 4 improvement).
"""


def test_e15_polynomial_tails(run_bench):
    res = run_bench("E15")
    assert res.extras["never_exceeded"]
