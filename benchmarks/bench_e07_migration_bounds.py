"""E7: Corollaries 2 and 4 — migration vs concentration bounds.

Regenerates the measured per-stage degree-migration table against
Kelsen's and the Kim-Vu bounds (the section 4 improvement).
"""


def test_e07_migration_bounds(run_bench):
    res = run_bench("E7")
    assert res.extras["holds"]
