"""E13: Section 2.1 — correctness invariant and failure injection.

Regenerates the validator-coverage table (every injected violation
must be caught).
"""


def test_e13_invariants(run_bench):
    res = run_bench("E13")
    assert res.extras["caught_all"]
