"""E1: Theorem 1 — SBL correctness and the round bound r = 2 log n / p.

Regenerates the round-count table: SBL outer rounds vs the paper's
w.h.p. bound on the bounded-m workload family.
"""


def test_e01_sbl_rounds(run_bench):
    res = run_bench("E1")
    assert res.extras["all_within"]
