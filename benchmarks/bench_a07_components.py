"""A7: ablation — component-parallel composition of KUW.

Measures the depth win of running KUW per connected component (max over
components) versus on the whole fragmented instance.
"""

from repro.analysis.ablations import run_ablation


def test_a07_components(benchmark, capsys):
    res = benchmark.pedantic(
        run_ablation, args=("A7",), kwargs={"scale": "quick", "seed": 0},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(res.to_markdown())
    assert res.extras["min_speedup"] > 1.0
