"""E17: section 1 — the permutation algorithm's conjectured-RNC scaling.

Regenerates the round-scaling table across random and adversarial
families; flat growth supports the Beame-Luby RNC conjecture.
"""


def test_e17_permutation_conjecture(run_bench):
    res = run_bench("E17")
    assert res.extras["worst_exponent"] < 0.3
