"""E5: Claim (2) of section 2.2 — Pr[dim(H') > d] vs the union bound.

Regenerates the sampled-dimension failure table against m p^{d+1}.
"""


def test_e05_sampled_dimension(run_bench):
    res = run_bench("E5")
    assert res.extras["all_within"]
