"""M3 — solve-service throughput: requests/s and tail latency per path.

Spins up one in-process :class:`~repro.service.server.ServerThread` and
drives it with the async load generator over the unix socket, timing the
three request paths a deployed service actually serves:

* ``service_unique``   — every request is a fresh ``(instance, algorithm,
  seed)`` cell: the full parse → batch → solve → respond pipeline.
* ``service_coalesce`` — few unique cells, many concurrent duplicates:
  the coalescing path (duplicates that arrive after their cell resolves
  hit the result cache instead — both paths skip the solver, which is
  the property being measured).
* ``service_cached``   — every request repeats an already-cached key:
  pure cache-hit servicing, the protocol/transport floor.

Each scenario is timed as whole-load wall clock plus per-request latency
percentiles (p50/p99, measured client-side).  Seeds are rotated per timed
sample so ``unique``/``coalesce`` never accidentally hit the cache warmed
by a previous sample.

Like M2 this is a process-level plain-timing module, not a
pytest-benchmark suite: the subject is the service loop itself (socket
I/O, event-loop scheduling, micro-batching), which a calibrating harness
would distort.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_m03_service.py

or through the recording/gating scripts (``scripts/bench_smoke.py
--suite m03`` writes ``BENCH_m03.json``; ``scripts/bench_gate.py``
compares a fresh run against it).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from pathlib import Path
from typing import Any

import numpy as np

from bench_m02_campaign_throughput import _cpu_model
from repro.generators import uniform_hypergraph
from repro.service import LoadReport, ServerConfig, ServerThread, encode_instance, run_load

#: Requests per timed load; duplicates per unique cell in the coalesce
#: scenario.  48 = 8 connections × 6 requests, small enough for CI.
DEFAULT_REQUESTS = 48
DEFAULT_DUPLICATES = 8
DEFAULT_CONNECTIONS = 8


def reference_instances() -> list:
    """The fixed instances every scenario solves (mirrors the M2 grid)."""
    return [
        uniform_hypergraph(60, 120, 3, seed=11),
        uniform_hypergraph(90, 180, 3, seed=12),
    ]


def _docs_unique(instances, *, requests: int, seed_base: int) -> list[dict]:
    """*requests* distinct cells: alternate instances, unique seeds."""
    return [
        {
            "op": "solve",
            "algorithm": "bl",
            "seed": seed_base + i,
            "instance": encode_instance(instances[i % len(instances)]),
            "id": f"u{i}",
        }
        for i in range(requests)
    ]


def _docs_coalesce(
    instances, *, requests: int, duplicates: int, seed_base: int
) -> list[dict]:
    """``requests/duplicates`` unique cells, each requested *duplicates* times.

    The load generator deals docs round-robin across connections, so the
    copies of one cell land on *different* connections and arrive
    concurrently — which is what lets the server coalesce them.
    """
    unique = max(1, requests // duplicates)
    docs = []
    for i in range(requests):
        u = i % unique
        docs.append(
            {
                "op": "solve",
                "algorithm": "bl",
                "seed": seed_base + u,
                "instance": encode_instance(instances[u % len(instances)]),
                "id": f"c{u}-{i}",
            }
        )
    return docs


def _run_load(socket_path: str, docs, *, connections: int) -> LoadReport:
    return asyncio.run(run_load(socket_path, docs, connections=connections))


def run_m03(
    *,
    requests: int = DEFAULT_REQUESTS,
    duplicates: int = DEFAULT_DUPLICATES,
    connections: int = DEFAULT_CONNECTIONS,
    warmup: int = 1,
    timed: int = 5,
    seed: int = 0,
) -> dict[str, Any]:
    """Measure every request path; return the BENCH_m03 payload.

    One warm server (in-process solves, 2 ms batch window) survives all
    scenarios and samples, so socket setup and interpreter warmup are paid
    once and the timed samples measure steady-state service throughput.
    """
    instances = reference_instances()
    scenarios: dict[str, list[int]] = {}  # wall ns per timed sample
    p50s: dict[str, list[float]] = {}
    p99s: dict[str, list[float]] = {}
    rates: dict[str, list[float]] = {}
    counters: dict[str, dict[str, int]] = {}
    # Rotate seeds per sample so unique/coalesce always miss the cache.
    next_seed = seed

    with tempfile.TemporaryDirectory() as tmp:
        sock = str(Path(tmp) / "bench_m03.sock")
        config = ServerConfig(
            socket_path=sock,
            workers=0,
            batch_window_ms=2.0,
            max_batch=64,
            queue_limit=4 * requests,
            cache_size=4096,
        )
        with ServerThread(config):

            def measure(name: str, make_docs, samples: int) -> None:
                for _ in range(samples):
                    nonlocal next_seed
                    docs = make_docs(next_seed)
                    next_seed += requests
                    t0 = time.perf_counter_ns()
                    report = _run_load(sock, docs, connections=connections)
                    wall = time.perf_counter_ns() - t0
                    if report.ok != report.total:
                        raise RuntimeError(
                            f"{name}: {report.total - report.ok}/{report.total} "
                            f"requests failed"
                        )
                    scenarios.setdefault(name, []).append(wall)
                    p50s.setdefault(name, []).append(report.percentile_ns(0.50))
                    p99s.setdefault(name, []).append(report.percentile_ns(0.99))
                    rates.setdefault(name, []).append(report.requests_per_s)
                    counters[name] = {
                        "ok": report.ok,
                        "coalesced": report.coalesced,
                        "cached": report.cached,
                    }

            # unique: all-fresh cells each sample.
            unique_docs = lambda s: _docs_unique(  # noqa: E731
                instances, requests=requests, seed_base=s
            )
            measure("service_unique", unique_docs, warmup + timed)
            scenarios["service_unique"] = scenarios["service_unique"][warmup:]

            # coalesce: fresh cells + concurrent duplicates each sample.
            coalesce_docs = lambda s: _docs_coalesce(  # noqa: E731
                instances, requests=requests, duplicates=duplicates, seed_base=s
            )
            measure("service_coalesce", coalesce_docs, warmup + timed)
            scenarios["service_coalesce"] = scenarios["service_coalesce"][warmup:]
            dup = counters["service_coalesce"]
            if dup["coalesced"] + dup["cached"] == 0:
                raise RuntimeError(
                    "coalesce scenario produced no coalesced/cached responses — "
                    "duplicates are being solved separately"
                )

            # cached: one priming load on fixed seeds, then pure repeats.
            fixed = next_seed
            cached_docs = lambda _s: _docs_coalesce(  # noqa: E731
                instances, requests=requests, duplicates=duplicates, seed_base=fixed
            )
            measure("service_cached", cached_docs, 1 + timed)  # prime + timed
            scenarios["service_cached"] = scenarios["service_cached"][1:]
            if counters["service_cached"]["cached"] != requests:
                raise RuntimeError(
                    f"cached scenario expected {requests} cache hits, got "
                    f"{counters['service_cached']['cached']}"
                )

    medians = {name: int(np.median(s)) for name, s in scenarios.items()}
    for name in list(scenarios):
        medians[f"{name}_p50"] = int(np.median(p50s[name][-timed:]))
        medians[f"{name}_p99"] = int(np.median(p99s[name][-timed:]))
    iqrs = {
        name: int(np.percentile(s, 75) - np.percentile(s, 25))
        for name, s in scenarios.items()
    }
    for name in list(scenarios):
        iqrs[f"{name}_p50"] = int(
            np.percentile(p50s[name][-timed:], 75) - np.percentile(p50s[name][-timed:], 25)
        )
        iqrs[f"{name}_p99"] = int(
            np.percentile(p99s[name][-timed:], 75) - np.percentile(p99s[name][-timed:], 25)
        )
    return {
        "benchmark": "bench_m03_service.py",
        "unit": "ns",
        "stat": "median",
        "machine": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "load": {
            "requests": requests,
            "duplicates": duplicates,
            "connections": connections,
            "timed_samples": timed,
            "batch_window_ms": 2.0,
        },
        "medians_ns": dict(sorted(medians.items())),
        "iqr_ns": dict(sorted(iqrs.items())),
        "requests_per_s": {
            name: round(float(np.median(r[-timed:])), 1)
            for name, r in sorted(rates.items())
        },
        "counters": {name: counters[name] for name in sorted(counters)},
    }


def main() -> int:
    payload = run_m03()
    width = max(len(k) for k in payload["medians_ns"])
    for name, ns in sorted(payload["medians_ns"].items()):
        iqr = payload["iqr_ns"][name]
        print(f"{name:<{width}}  {ns / 1e6:10.3f} ms  (IQR {iqr / 1e6:7.3f} ms)")
    print()
    for name, rate in payload["requests_per_s"].items():
        print(f"{name:<{width}}  {rate:10.1f} req/s  {payload['counters'][name]}")
    print(f"\ncpu_count={payload['cpu_count']}  machine={payload['machine']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
