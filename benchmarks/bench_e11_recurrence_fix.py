"""E11: Section 3.1 — the d^2 recurrence fix.

Regenerates the claim-inequality table: Kelsen's original F fails at
super-constant d, the paper's d^2 variant holds.
"""


def test_e11_recurrence_fix(run_bench):
    res = run_bench("E11")
    assert all(res.extras["paper_ok"].values())
