"""E6: Lemma 2 — Pr[E_X | C_X] < 1/2.

Regenerates the Monte-Carlo estimate of the conditional unmark
probability at the BL marking probability.
"""


def test_e06_unmark_probability(run_bench):
    res = run_bench("E6")
    assert res.extras["all_below"]
