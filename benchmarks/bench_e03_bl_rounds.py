"""E3: Theorem 2 — BL round counts are polylog for small dimension.

Regenerates the BL rounds-vs-n table across dimensions.
"""


def test_e03_bl_rounds(run_bench):
    res = run_bench("E3")
    assert all(row[4] < 4.0 for row in res.rows)
