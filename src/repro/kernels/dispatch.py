"""Shape-based kernel dispatch for the MIS solvers.

Every solver entry point (``beame_luby``, ``karp_upfal_wigderson``,
``permutation_bl``, ``greedy_mis``) asks this module which execution
backend to run — callers never pick one by hand.  The decision uses cheap
instance features only (universe, dimension, n, m, density; in the spirit
of the A5 cost-model ablation: features you can read off the store headers
without touching the payload), plus hard blockers from the call site
(instrumentation hooks that are defined in terms of the CSR
representation).

The contract the dispatcher relies on — and the differential fuzz subjects
enforce — is that **all backends are bit-identical per seed**, so this
choice can never change a result, a trace record, or a regression corpus
replay; only wall-clock.

Every decision is counted in the metrics registry:

* ``kernels/dispatch/<backend>`` — which backend ran;
* ``kernels/dispatch_reason/<reason>`` — why (low-cardinality labels);

both visible in ``repro trace summary``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import current_kernel
from repro.kernels.bl_dense import DENSE_MAX_DIMENSION, DENSE_MAX_UNIVERSE
from repro.kernels.jit import HAVE_NUMBA
from repro.obs import metrics as obs_metrics

__all__ = ["ShapeFeatures", "KernelDecision", "dense_capable", "select_backend"]


@dataclass(frozen=True)
class ShapeFeatures:
    """The cheap features the dispatcher (and its obs trail) looks at."""

    n: int
    m: int
    universe: int
    dimension: int
    density: float  # m / max(n, 1)

    @classmethod
    def of(cls, H: Hypergraph) -> "ShapeFeatures":
        n = H.num_vertices
        m = H.num_edges
        return cls(
            n=n,
            m=m,
            universe=H.universe,
            dimension=H.dimension,
            density=m / max(n, 1),
        )


@dataclass(frozen=True)
class KernelDecision:
    """Outcome of one dispatch: the backend to run and the (counted) reason."""

    backend: str  # "csr" | "bitset" | "jit"
    reason: str

    @property
    def dense(self) -> bool:
        return self.backend != "csr"


def dense_capable(H: Hypergraph) -> bool:
    """Can the dense engine represent this instance at all?

    The dense state is quadratic in the universe (pair-key tables) and its
    cleanup logic enumerates vertex pairs per edge, so it is gated to
    dimension ≤ 3 (the post-normalisation regime of the paper's algorithms)
    and a universe small enough that the tables stay within a few MB.
    """
    return H.dimension <= DENSE_MAX_DIMENSION and H.universe <= DENSE_MAX_UNIVERSE


def select_backend(
    H: Hypergraph,
    *,
    requested: str | None = None,
    blockers: tuple[str, ...] = (),
) -> KernelDecision:
    """Choose the backend for one solve and count the decision.

    Parameters
    ----------
    H:
        The instance (only shape features are read).
    requested:
        Explicit kernel name; defaults to :func:`repro.kernels.current_kernel`
        (``use_kernel`` override, else ``REPRO_KERNEL``, else ``auto``).
    blockers:
        Call-site conditions that force CSR regardless of the request —
        e.g. an ``on_round`` hook (its signature hands out CSR hypergraph
        successors) or an enabled tracer (per-round spans are emitted from
        the CSR loop).  Low-cardinality labels; the first one is counted.
    """
    req = _validated(requested) if requested is not None else current_kernel()
    if req == "csr":
        decision = KernelDecision("csr", "forced:csr")
    elif blockers:
        decision = KernelDecision("csr", f"blocked:{blockers[0]}")
    elif not dense_capable(H):
        reason = "auto:shape-sparse" if req == "auto" else "unsupported-shape"
        decision = KernelDecision("csr", reason)
    elif req == "jit":
        if HAVE_NUMBA:
            decision = KernelDecision("jit", "forced:jit")
        else:
            decision = KernelDecision("bitset", "fallback:jit-unavailable")
    elif req == "bitset":
        decision = KernelDecision("bitset", "forced:bitset")
    else:
        decision = KernelDecision("bitset", "auto:shape-dense")
    obs_metrics.inc(f"kernels/dispatch/{decision.backend}")
    obs_metrics.inc(f"kernels/dispatch_reason/{decision.reason}")
    return decision


def _validated(name: str) -> str:
    from repro.kernels import _validate

    return _validate(name)
