"""Shape-based kernel dispatch for the MIS solvers.

Every solver entry point (``beame_luby``, ``karp_upfal_wigderson``,
``permutation_bl``, ``greedy_mis``) asks this module which execution
backend to run — callers never pick one by hand.  The decision uses cheap
instance features only (universe, dimension, n, m, density; in the spirit
of the A5 cost-model ablation: features you can read off the store headers
without touching the payload), plus hard blockers from the call site
(instrumentation hooks that are defined in terms of the CSR
representation).

In ``auto`` mode the choice between CSR and the bitset engines is made by
a **measured cost model** when a calibration file exists
(:mod:`repro.kernels.costmodel`; produced by
``scripts/kernel_calibrate.py``, ignored unless its
``provenance.machine_id`` matches this machine): the instance's shape
bucket looks up which backend actually measured faster here.  Without a
usable calibration — or for a bucket the probe did not cover — the static
envelope below decides, exactly as before.

The contract the dispatcher relies on — and the differential fuzz subjects
enforce — is that **all backends are bit-identical per seed**, so this
choice can never change a result, a trace record, or a regression corpus
replay; only wall-clock.

Every decision is counted in the metrics registry:

* ``kernels/dispatch/<backend>`` — which backend ran;
* ``kernels/dispatch_reason/<reason>`` — why (low-cardinality labels);
* ``kernels/dispatch_mode/<cost-model|static>`` — whether a measured
  calibration or the static thresholds made an ``auto`` dense choice;
* ``kernels/dispatch_shape/<bucket>/<backend>`` — chosen backend per
  shape bucket;

all visible in ``repro trace summary`` and the OpenMetrics export, so
calibration drift shows up in heartbeat output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import current_kernel
from repro.kernels.bl_dense import BLOCK_MAX_DIMENSION, BLOCK_MAX_UNIVERSE
from repro.kernels.costmodel import (
    CostCalibration,
    calibration_path,
    preferred_backend,
    shape_bucket,
    usable_calibration,
)
from repro.kernels.jit import HAVE_NUMBA
from repro.obs import metrics as obs_metrics

__all__ = [
    "DENSE_MAX_DIMENSION",
    "DENSE_MAX_UNIVERSE",
    "ShapeFeatures",
    "KernelDecision",
    "dense_capable",
    "select_backend",
    "invalidate_calibration_cache",
]

#: The dense envelope: what *some* dense engine can represent.  The
#: engines divide it between themselves — the scalar engine covers
#: dimension ≤ 3 (bespoke degree/pair histograms), the frontier engine
#: dimension 4+ (generic lists + the shared Δ tracker) — and both keep
#: per-vertex state O(universe), so the bound is set by acceptable
#: allocation, not table blow-up.  The numba block engine keeps its own
#: tighter bounds (``BLOCK_MAX_*`` in :mod:`repro.kernels.bl_dense`): its
#: pair tables are dense U² arrays.
DENSE_MAX_DIMENSION = 8
DENSE_MAX_UNIVERSE = 65536


@dataclass(frozen=True)
class ShapeFeatures:
    """The cheap features the dispatcher (and its obs trail) looks at."""

    n: int
    m: int
    universe: int
    dimension: int
    density: float  # m / max(n, 1)

    @classmethod
    def of(cls, H: Hypergraph) -> "ShapeFeatures":
        n = H.num_vertices
        m = H.num_edges
        return cls(
            n=n,
            m=m,
            universe=H.universe,
            dimension=H.dimension,
            density=m / max(n, 1),
        )


@dataclass(frozen=True)
class KernelDecision:
    """Outcome of one dispatch: the backend to run and the (counted) reason."""

    backend: str  # "csr" | "bitset" | "jit"
    reason: str

    @property
    def dense(self) -> bool:
        return self.backend != "csr"


def dense_capable(H: Hypergraph) -> bool:
    """Can a dense engine represent this instance at all?

    The frontier engines keep per-vertex incidence lists and dict-keyed
    degree state — O(universe + total edge size), no U² tables — so the
    envelope extends to dimension ≤ 8 and universes up to 64k.  Beyond it
    the CSR reference loop is the only representation.
    """
    return H.dimension <= DENSE_MAX_DIMENSION and H.universe <= DENSE_MAX_UNIVERSE


#: One-slot cache for the usable-calibration lookup, keyed by resolved
#: path: dispatch runs on every solve and must not re-read/validate the
#: JSON each time.  ``None`` is cached too (missing/invalid/mismatched).
_CAL_CACHE: dict[str, CostCalibration | None] = {}


def invalidate_calibration_cache() -> None:
    """Drop the cached calibration (tests; after rewriting the file)."""
    _CAL_CACHE.clear()


def _active_calibration() -> CostCalibration | None:
    path = calibration_path()
    key = str(path)
    if key not in _CAL_CACHE:
        if len(_CAL_CACHE) > 8:  # env churn in long-lived test processes
            _CAL_CACHE.clear()
        _CAL_CACHE[key] = usable_calibration(path)
    return _CAL_CACHE[key]


def select_backend(
    H: Hypergraph,
    *,
    requested: str | None = None,
    blockers: tuple[str, ...] = (),
) -> KernelDecision:
    """Choose the backend for one solve and count the decision.

    Parameters
    ----------
    H:
        The instance (only shape features are read).
    requested:
        Explicit kernel name; defaults to :func:`repro.kernels.current_kernel`
        (``use_kernel`` override, else ``REPRO_KERNEL``, else ``auto``).
    blockers:
        Call-site conditions that force CSR regardless of the request —
        e.g. an ``on_round`` hook (its signature hands out CSR hypergraph
        successors) or an explicit execution backend.  Low-cardinality
        labels; the first one is counted.
    """
    req = _validated(requested) if requested is not None else current_kernel()
    mode: str | None = None
    if req == "csr":
        decision = KernelDecision("csr", "forced:csr")
    elif blockers:
        decision = KernelDecision("csr", f"blocked:{blockers[0]}")
    elif not dense_capable(H):
        reason = "auto:shape-sparse" if req == "auto" else "unsupported-shape"
        decision = KernelDecision("csr", reason)
    elif req == "jit":
        if not HAVE_NUMBA:
            decision = KernelDecision("bitset", "fallback:jit-unavailable")
        elif (
            H.dimension <= BLOCK_MAX_DIMENSION and H.universe <= BLOCK_MAX_UNIVERSE
        ):
            decision = KernelDecision("jit", "forced:jit")
        else:
            # In-envelope but beyond the block engine's U² tables: degrade
            # to the scalar/frontier engines rather than all the way to CSR.
            decision = KernelDecision("bitset", "fallback:jit-shape")
    elif req == "bitset":
        decision = KernelDecision("bitset", "forced:bitset")
    else:
        cal = _active_calibration()
        pick = preferred_backend(cal, ShapeFeatures.of(H)) if cal is not None else None
        if pick is not None:
            mode = "cost-model"
            decision = KernelDecision(pick, f"cost-model:{pick}")
        else:
            mode = "static"
            decision = KernelDecision("bitset", "auto:shape-dense")
    obs_metrics.inc(f"kernels/dispatch/{decision.backend}")
    obs_metrics.inc(f"kernels/dispatch_reason/{decision.reason}")
    if mode is not None:
        obs_metrics.inc(f"kernels/dispatch_mode/{mode}")
    bucket = shape_bucket(H.dimension, H.universe)
    obs_metrics.inc(f"kernels/dispatch_shape/{bucket}/{decision.backend}")
    return decision


def _validated(name: str) -> str:
    from repro.kernels import _validate

    return _validate(name)
