"""Mixed-dimension frontier Beame–Luby engine (dimensions above three).

The scalar engine (:mod:`repro.kernels.bl_scalar`) hard-codes the
dimension-3 cleanup algebra — 2-row pair keys, 3-row pair multiplicities,
one shrink class per round — so instances of dimension 4+ used to fall
back to the CSR reference loop.  This engine generalises the same
frontier idea to arbitrary (small) dimension: edges live as sorted
per-row vertex lists banked behind static per-vertex incidence lists, a
round touches only the rows incident to the marked set, and the cleanup
is the *exact* fixed point :func:`repro.hypergraph.ops.normalize_after_trim`
computes — trim, duplicate-row collapse, two-directional containment
restricted to the changed rows, then a single singleton/red pass.

Where the scalar engine maintains the Δ maxima with bespoke degree/pair
histograms (valid only for d ≤ 3), this engine reuses the CSR path's own
:class:`~repro.hypergraph.degrees.DeltaTracker`, feeding it the same
``(removed_edges, added_edges)`` diff the CSR loop derives from the store
masks.  The tracker is shared code, so the Δ floats — and therefore the
marking probabilities — are identical by construction, not by re-derived
arithmetic.

Bit-identity
------------
Same contract as the other engines: identical coins
(:class:`~repro.kernels.rng.RoundRngPlan`), identical per-round records,
machine charges, solver counters and metadata, pinned by
``tests/kernels`` and the ``repro.qa`` differential subjects.  With an
enabled tracer the engine emits the same per-round ``bl/round`` spans as
the CSR loop and stamps ``extras["wall_ns"]``.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.degrees import DeltaTracker
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.ops import normalize
from repro.kernels.rng import RoundRngPlan
from repro.obs import metrics as obs_metrics
from repro.pram.machine import Machine, NullMachine
from repro.util.rng import SeedLike

__all__ = ["beame_luby_frontier"]


def beame_luby_frontier(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    recompute_probability: bool,
    marking_probability: float | None,
    max_rounds: int,
    trace: bool,
    trc=None,
) -> MISResult:
    """Run BL on the mixed-dimension frontier engine.  See module docstring.

    The caller (the dispatcher inside :func:`repro.core.bl.beame_luby`)
    guarantees the shape is within the dense envelope with
    ``H.dimension > 3`` (the engine itself is dimension-generic), no
    ``on_round`` hook and no explicit execution backend.
    """
    from repro.core.bl import _charge_round  # deferred: core.bl imports us

    tr_on = trc is not None and trc.enabled

    U = H.universe
    # Upfront cleanup — the same normal form the CSR loop establishes.
    W, pre_red = normalize(H)

    # -- frontier state -------------------------------------------------
    # edges[i]: sorted vertex list of row i, or None once the row dies.
    # adj[v]: static incidence list (row ids); rows that die or drop v are
    # filtered at query time — removed vertices are never queried again.
    edges: list[list[int] | None] = [list(e) for e in W.edges]
    adj: list[list[int]] = [[] for _ in range(U)]
    for i, ed in enumerate(edges):
        for v in ed:
            adj[v].append(i)
    active: list[int] = W.vertices.tolist()
    m_alive = len(edges)
    total_size = 0
    size_hist = [0] * (W.dimension + 1)
    for ed in edges:
        sz = len(ed)
        size_hist[sz] += 1
        total_size += sz
    dim_max = W.dimension

    # The Δ maxima are carried across rounds by the same restriction-based
    # tracker the CSR loop uses, fed the same edge diffs; built lazily on
    # the first edged round (the hypergraph is still W at that point).
    W0: Hypergraph | None = W
    tracker: DeltaTracker | None = None

    plan: RoundRngPlan | None = None
    independent: list[int] = []
    records: list[RoundRecord] = []
    p_fixed: float | None = marking_probability
    p_initial: float | None = None

    charge = None if type(mach) is NullMachine else _charge_round
    edged_rounds = 0
    draws_total = 0
    committed_total = 0
    retractions_total = 0
    edgeless_commit = False

    for round_index in range(max_rounds):
        n = len(active)
        if n == 0:
            break
        if m_alive == 0:
            rspan = (
                trc.span(
                    "bl/round", machine=mach, round=round_index, n=n, m=0
                ).__enter__()
                if tr_on
                else None
            )
            independent.extend(active)
            if charge is not None:
                mach.map(n)
            committed_total += n
            edgeless_commit = True
            if rspan is not None:
                rspan.set(n_after=0, m_after=0, added=n)
                rspan.__exit__(None, None, None)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n,
                    m_before=0,
                    n_after=0,
                    m_after=0,
                    marked=n,
                    added=n,
                    dimension=0,
                )
                if rspan is not None:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            break

        while dim_max > 0 and size_hist[dim_max] == 0:
            dim_max -= 1
        d = dim_max
        if tracker is None:
            tracker = DeltaTracker.from_hypergraph(W0)
            W0 = None
        delta = tracker.delta()
        if p_fixed is not None:
            p = p_fixed
        else:
            p = 1.0 if delta <= 0 else min(1.0, 1.0 / (2 ** (d + 1) * delta))
            if not recompute_probability:
                p_fixed = p
        if p_initial is None:
            p_initial = p

        m_before = m_alive
        total = total_size
        rspan = (
            trc.span(
                "bl/round", machine=mach, round=round_index, n=n, m=m_before, dim=d
            ).__enter__()
            if tr_on
            else None
        )

        # (2) mark — the exact SerialBackend.bernoulli draw for one chunk.
        edged_rounds += 1
        draws_total += n
        if plan is None:
            plan = RoundRngPlan(seed)
        coin = plan.generator(round_index).random(n) < p
        hits = coin.nonzero()[0]
        if hits.size:
            marked = [active[j] for j in hits.tolist()]
        else:
            marked = []
        marked_count = len(marked)

        # (3) retract fully marked edges.
        if marked_count:
            mset = set(marked)
            retracted: set[int] | None = None
            for v in marked:
                for e in adj[v]:
                    ed = edges[e]
                    if ed is None:
                        continue
                    full = True
                    for u in ed:
                        if u not in mset:
                            full = False
                            break
                    if full:
                        if retracted is None:
                            retracted = set()
                        retracted.update(ed)
            if retracted is None:
                added = marked
            else:
                added = [v for v in marked if v not in retracted]
        else:
            added = marked
        added_count = len(added)
        unmarked_count = marked_count - added_count

        if added_count == 0:
            # No survivors: a normal hypergraph is unchanged (same object
            # on the CSR path); only the trace and charges advance.
            if charge is not None:
                charge(mach, n, m_before, total, max(d, 1))
            retractions_total += unmarked_count
            if rspan is not None:
                rspan.set(
                    n_after=n,
                    m_after=m_before,
                    added=0,
                    unmarked=unmarked_count,
                    p=p,
                )
                rspan.__exit__(None, None, None)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n,
                    m_before=m_before,
                    n_after=n,
                    m_after=m_before,
                    marked=marked_count,
                    unmarked=unmarked_count,
                    added=0,
                    removed_red=0,
                    dimension=d,
                    extras={"p": p, "delta": delta},
                )
                if rspan is not None:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            continue

        independent.extend(added)
        added_set = set(added)

        # (4)–(5) commit + fused cleanup, mirroring normalize_after_trim.
        # Changed rows = alive rows still containing an added vertex; keep
        # their pre-trim vertex lists for the diff below.
        old_of: dict[int, list[int]] = {}
        for v in added:
            for e in adj[v]:
                ed = edges[e]
                if ed is not None and e not in old_of and v in ed:
                    old_of[e] = ed

        removed_edges: list[tuple[int, ...]] = []
        added_edges: list[tuple[int, ...]] = []
        red_list: list[int] = []
        dead: set[int] = set()
        pivots: list[int] = []
        pivot_present: list[bool] = []
        if old_of:
            # Trim + duplicate collapse.  Every changed row keeps ≥ 1
            # vertex (a row losing all vertices would have been fully
            # marked and retracted above).  A row trimming onto an
            # identical tuple collapses into it: onto an earlier changed
            # row this round, or onto an unchanged row — which then counts
            # as a changed pivot itself (EdgeStore.trim's dedup groups OR
            # their changed flags and keep the present bit).
            claimed: dict[tuple[int, ...], int] = {}
            for e in sorted(old_of):
                old = old_of[e]
                removed_edges.append(tuple(old))
                new = [u for u in old if u not in added_set]
                t = tuple(new)
                pivot = claimed.get(t)
                if pivot is not None:
                    edges[e] = None
                    continue
                dup = -1
                ln = len(new)
                for i in adj[new[0]]:
                    if i == e:
                        continue
                    ed2 = edges[i]
                    if (
                        ed2 is not None
                        and i not in old_of
                        and len(ed2) == ln
                        and ed2 == new
                    ):
                        dup = i
                        break
                if dup >= 0:
                    edges[e] = None
                    claimed[t] = dup
                    pivots.append(dup)
                    pivot_present.append(True)
                else:
                    edges[e] = new
                    claimed[t] = e
                    pivots.append(e)
                    pivot_present.append(False)

            # Containment, both directions, restricted to the changed
            # pivots — computed on the pre-drop state (all kills are
            # simultaneous, exactly the restricted Gram scan of
            # normalize_after_trim).  For pivot j, walking the incidence
            # lists of its vertices counts |e_j ∩ e_i| for every alive row
            # i sharing a vertex.
            for j in pivots:
                ej = edges[j]
                lj = len(ej)
                cnt: dict[int, int] = {}
                for v in ej:
                    for i in adj[v]:
                        if i == j:
                            continue
                        ei = edges[i]
                        if ei is not None and v in ei:
                            cnt[i] = cnt.get(i, 0) + 1
                for i, c in cnt.items():
                    li = len(edges[i])
                    if c == lj and li > lj:
                        dead.add(i)  # row i swallows changed pivot j
                    elif c == li and lj > li:
                        dead.add(j)  # changed pivot j swallows row i

            # Single singleton pass on the survivors: rows that shrank to
            # singletons colour their vertex red; every surviving row
            # touching a red vertex is vacuous (any *larger* red-touching
            # row is already dead — it properly contained the singleton).
            for j in pivots:
                if j in dead:
                    continue
                ej = edges[j]
                if len(ej) == 1:
                    red_list.append(ej[0])
            if red_list:
                for r in red_list:
                    for i in adj[r]:
                        ei = edges[i]
                        if ei is not None and i not in dead and r in ei:
                            dead.add(i)
        red_count = len(red_list)

        # Exact edge diff (same bookkeeping as the trim masks): removed =
        # old tuples of every changed row, plus the current tuples of dead
        # rows whose tuple pre-existed (unchanged rows, incl. absorbing
        # pivots); added = surviving changed pivots with a new tuple.
        for i in dead:
            if i not in old_of:
                removed_edges.append(tuple(edges[i]))
        for j, present in zip(pivots, pivot_present):
            if not present and j not in dead:
                added_edges.append(tuple(edges[j]))
        if removed_edges:
            tracker.remove_edges(removed_edges)
        if added_edges:
            tracker.add_edges(added_edges)

        # Size histogram / totals: changed rows leave at their old size;
        # surviving changed pivots re-enter at the trimmed size; dead rows
        # outside the changed set leave at their current size.
        if old_of:
            for old in old_of.values():
                sz = len(old)
                size_hist[sz] -= 1
                total_size -= sz
            changed_pivots = 0
            for j, present in zip(pivots, pivot_present):
                if present:
                    continue
                changed_pivots += 1
                if j not in dead:
                    sz = len(edges[j])
                    size_hist[sz] += 1
                    total_size += sz
            for i in dead:
                if i not in old_of:
                    sz = len(edges[i])
                    size_hist[sz] -= 1
                    total_size -= sz
            m_alive -= (len(old_of) - changed_pivots) + len(dead)
            for i in dead:
                edges[i] = None

        if red_list:
            removals = sorted(added_set.union(red_list))
        else:
            removals = added
        for v in removals:
            del active[bisect_left(active, v)]

        if charge is not None:
            charge(mach, n, m_before, total, max(d, 1))
        committed_total += added_count
        retractions_total += unmarked_count
        if rspan is not None:
            rspan.set(
                n_after=len(active),
                m_after=m_alive,
                added=added_count,
                unmarked=unmarked_count,
                p=p,
            )
            rspan.__exit__(None, None, None)
        if trace:
            record = RoundRecord(
                index=round_index,
                phase="bl",
                n_before=n,
                m_before=m_before,
                n_after=len(active),
                m_after=m_alive,
                marked=marked_count,
                unmarked=unmarked_count,
                added=added_count,
                removed_red=red_count,
                dimension=d,
                extras={"p": p, "delta": delta},
            )
            if rspan is not None:
                record.extras["wall_ns"] = rspan.wall_ns
            records.append(record)
    else:
        raise RuntimeError(
            f"BL failed to terminate within {max_rounds} rounds "
            f"(n={H.num_vertices}, m={H.num_edges}, dim={H.dimension})"
        )

    # Flush the counters the CSR path would have created, same totals.
    inc = obs_metrics.inc
    if edged_rounds:
        inc("backend/bernoulli_calls", edged_rounds)
        inc("backend/bernoulli_draws", draws_total)
        inc("solver/unmark_retractions", retractions_total)
    if edged_rounds or edgeless_commit:
        inc("solver/vertices_committed", committed_total)

    return MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="bl",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={
            "p_initial": p_initial if p_initial is not None else 1.0,
            "recompute_probability": recompute_probability,
            "prenormalized_red": int(pre_red.size),
        },
    )
