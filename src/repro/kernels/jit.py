"""Optional numba-compiled inner kernels (import-guarded).

The dense engine's per-round inner loops are three tiny "stamp gather"
reductions over the ``(m, 3)`` incidence block.  NumPy runs them as a
fancy-index gather plus a row reduction (two temporaries); numba fuses
them into one pass with early exit.  The compiled and NumPy variants are
exact integer computations over the same inputs, so they are
interchangeable bit for bit — which is what lets ``jit`` degrade to
``bitset`` when numba is absent without changing any result.

numba is **optional**: this module must import cleanly without it
(``HAVE_NUMBA`` is the guard the dispatcher checks).  Nothing outside
``repro.kernels`` may import numba directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_NUMBA", "NUMPY_KERNELS", "JIT_KERNELS", "row_kernels"]

try:  # pragma: no cover - exercised by the with-numba CI leg
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - any import failure means "no numba"
    njit = None
    HAVE_NUMBA = False


class _NumpyRowKernels:
    """Pure-NumPy row-stamp reductions (always available)."""

    name = "numpy"

    @staticmethod
    def row_all(block: np.ndarray, stamps: np.ndarray, stamp: int) -> np.ndarray:
        """Per row: are all slots stamped?  (Pad slot must be pre-stamped.)"""
        return (stamps[block] == stamp).all(axis=1)

    @staticmethod
    def row_hits(block: np.ndarray, stamps: np.ndarray, stamp: int) -> np.ndarray:
        """Per slot: is the slot's vertex stamped?  (Full boolean matrix.)"""
        return stamps[block] == stamp

    @staticmethod
    def row_any(block: np.ndarray, stamps: np.ndarray, stamp: int) -> np.ndarray:
        """Per row: is any slot stamped?"""
        return (stamps[block] == stamp).any(axis=1)


NUMPY_KERNELS = _NumpyRowKernels()

JIT_KERNELS = None

if HAVE_NUMBA:  # pragma: no cover - exercised by the with-numba CI leg

    @njit(cache=True)
    def _jit_row_all(block, stamps, stamp):
        m, k = block.shape
        out = np.empty(m, dtype=np.bool_)
        for i in range(m):
            ok = True
            for j in range(k):
                if stamps[block[i, j]] != stamp:
                    ok = False
                    break
            out[i] = ok
        return out

    @njit(cache=True)
    def _jit_row_hits(block, stamps, stamp):
        m, k = block.shape
        out = np.empty((m, k), dtype=np.bool_)
        for i in range(m):
            for j in range(k):
                out[i, j] = stamps[block[i, j]] == stamp
        return out

    @njit(cache=True)
    def _jit_row_any(block, stamps, stamp):
        m, k = block.shape
        out = np.empty(m, dtype=np.bool_)
        for i in range(m):
            hit = False
            for j in range(k):
                if stamps[block[i, j]] == stamp:
                    hit = True
                    break
            out[i] = hit
        return out

    class _JitRowKernels:
        """numba-fused row-stamp reductions."""

        name = "jit"
        row_all = staticmethod(_jit_row_all)
        row_hits = staticmethod(_jit_row_hits)
        row_any = staticmethod(_jit_row_any)

    JIT_KERNELS = _JitRowKernels()


def row_kernels(jit: bool):
    """The row-kernel namespace for a backend choice.

    ``jit=True`` requires ``HAVE_NUMBA`` (the dispatcher never asks
    otherwise); ``jit=False`` is the portable NumPy implementation.
    """
    if jit:
        if JIT_KERNELS is None:
            raise RuntimeError("numba is not available; jit kernels cannot be used")
        return JIT_KERNELS
    return NUMPY_KERNELS
