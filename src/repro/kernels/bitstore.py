"""Dense edge representation: packed bitset rows + padded incidence block.

:class:`BitEdgeStore` is the second physical layout for a hypergraph's
edge set, complementing the CSR :class:`~repro.hypergraph.edgestore.EdgeStore`.
It holds two views of the same edges:

* ``rows`` — one packed ``uint64`` bitset row per edge over the (fixed)
  universe, so subset tests, trims and unions are word-parallel;
* ``block`` — the *packed incidence block*: an ``(m, dim)`` integer matrix
  whose row *i* lists the vertices of edge *i* in ascending order, padded
  with the sentinel ``universe``.  For the small dimensions the paper's
  algorithms live in (``d ≤ 3`` after normalisation) a gather over this
  block replaces a ragged ``np.add.reduceat`` over CSR — one contiguous
  fancy-index instead of a segmented reduction, which is what the
  shape-dispatched solvers exploit.

The primitives here are exactly the round-body operations of the solvers
(per-edge marked counts, fully-marked detection, trim, singleton
collection, containment witnesses); each is differentially pinned against
its CSR counterpart in ``tests/kernels`` and via the ``repro.qa`` fuzz
subjects.

Padding convention: every lookup that gathers a per-vertex value through
``block`` must supply the value the sentinel column should contribute
(identity of the reduction): 0 for sums of indicator values, ``True`` for
universally-quantified tests, and so on.  The helpers take an explicit
``pad`` argument to keep that choice visible at the call site.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.edgestore import EdgeStore

__all__ = ["BitEdgeStore", "pack_mask", "unpack_words"]

#: Word size of the packed rows.
WORD_BITS = 64


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into little-endian ``uint64`` words."""
    packed = np.packbits(mask.astype(np.uint8, copy=False), bitorder="little")
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, universe: int) -> np.ndarray:
    """Inverse of :func:`pack_mask` (truncates to *universe* bits)."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:universe].astype(bool)


class BitEdgeStore:
    """Dense (bitset + incidence-block) view of a canonical edge store.

    Parameters
    ----------
    universe:
        Ground-set size; every row spans ``ceil(universe / 64)`` words.
    block:
        ``(m, dim)`` vertex matrix padded with ``universe`` (adopted, not
        copied).
    sizes:
        Per-edge sizes aligned with *block*.
    """

    __slots__ = ("universe", "block", "sizes", "_rows")

    def __init__(self, universe: int, block: np.ndarray, sizes: np.ndarray):
        self.universe = int(universe)
        self.block = block
        self.sizes = sizes
        self._rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: EdgeStore, universe: int) -> "BitEdgeStore":
        """Build the dense view from a canonical CSR store."""
        sizes = store.sizes().astype(np.intp, copy=True)
        m = sizes.size
        dim = int(sizes.max()) if m else 0
        block = np.full((m, max(dim, 1)), universe, dtype=np.intp)
        if m:
            rows = np.repeat(np.arange(m, dtype=np.intp), sizes)
            cols = np.arange(store.indices.size, dtype=np.intp) - np.repeat(
                store.indptr[:-1], sizes
            )
            block[rows, cols] = store.indices
        return cls(universe, block, sizes)

    def to_store(self) -> EdgeStore:
        """Rebuild a canonical CSR store (tests / interop; not a hot path)."""
        m = self.sizes.size
        edges = [
            tuple(int(v) for v in self.block[i] if v < self.universe)
            for i in range(m)
        ]
        return EdgeStore.from_iterable(edges)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.sizes.size)

    @property
    def dimension(self) -> int:
        return int(self.sizes.max()) if self.sizes.size else 0

    @property
    def words(self) -> int:
        """Words per packed row."""
        return (self.universe + WORD_BITS - 1) // WORD_BITS

    @property
    def rows(self) -> np.ndarray:
        """Packed ``(m, words)`` bitset rows (built lazily, then cached)."""
        if self._rows is None:
            m = self.num_edges
            w = max(self.words, 1)
            rows = np.zeros((m, w), dtype=np.uint64)
            if m:
                valid = self.block < self.universe
                eids = np.broadcast_to(
                    np.arange(m, dtype=np.intp)[:, None], self.block.shape
                )[valid]
                verts = self.block[valid]
                flat = rows.view(np.uint64).reshape(m, w)
                np.bitwise_or.at(
                    flat,
                    (eids, verts // WORD_BITS),
                    np.uint64(1) << (verts % WORD_BITS).astype(np.uint64),
                )
            self._rows = rows
        return self._rows

    # ------------------------------------------------------------------
    # round-body primitives (each pinned against the CSR equivalent)
    # ------------------------------------------------------------------
    def gather(self, values: np.ndarray, pad) -> np.ndarray:
        """Per-slot gather of a per-vertex array through the block.

        *values* has length ``universe``; *pad* is the value the sentinel
        column contributes (the identity of whatever reduction follows).
        """
        ext = np.empty(self.universe + 1, dtype=values.dtype)
        ext[: self.universe] = values
        ext[self.universe] = pad
        return ext[self.block]

    def edge_mark_counts(self, marked: np.ndarray) -> np.ndarray:
        """Per-edge count of marked vertices — dense twin of
        ``SerialBackend.edge_mark_counts`` (``incidence @ marked``)."""
        return self.gather(marked, False).sum(axis=1).astype(np.int64)

    def fully_marked(self, marked: np.ndarray) -> np.ndarray:
        """Edges entirely inside the marked set (pad counts as marked)."""
        return self.gather(marked, True).all(axis=1)

    def union_of(self, edge_mask: np.ndarray) -> np.ndarray:
        """Union of the selected edges, as a boolean vertex mask."""
        out = np.zeros(self.universe + 1, dtype=bool)
        out[self.block[edge_mask].ravel()] = True
        return out[: self.universe]

    def touching(self, vertex_mask: np.ndarray) -> np.ndarray:
        """Edges with at least one endpoint in *vertex_mask*."""
        return self.gather(vertex_mask, False).any(axis=1)

    def trim(self, vertex_mask: np.ndarray) -> "BitEdgeStore":
        """Remove the masked vertices from every edge (no dedup; the
        engines own the dedup/cleanup policy).  Raises like the CSR trim
        if an edge would become empty."""
        hit = self.gather(vertex_mask, False)
        new_sizes = self.sizes - hit.sum(axis=1)
        if (new_sizes == 0).any():
            bad = int(np.flatnonzero(new_sizes == 0)[0])
            edge = tuple(int(v) for v in self.block[bad] if v < self.universe)
            raise ValueError(
                f"edge {edge} became empty: the removed set contains a full edge"
            )
        block = np.where(hit, self.universe, self.block)
        block = np.sort(block, axis=1)  # kept vertices stay ascending; pads sink right
        return BitEdgeStore(self.universe, block, new_sizes.astype(np.intp))

    def singleton_vertices(self) -> np.ndarray:
        """Sorted unique vertices carried by singleton edges."""
        single = self.sizes == 1
        if not single.any():
            return np.empty(0, dtype=np.intp)
        return np.unique(self.block[single, 0])

    def superset_mask(self) -> np.ndarray:
        """Edges that properly contain another edge (word-parallel scan).

        Quadratic in ``m`` over packed words — meant for the small dense
        instances the dispatcher routes here, and as the differential
        subject for the CSR Gram-product scan.
        """
        m = self.num_edges
        drop = np.zeros(m, dtype=bool)
        if m <= 1:
            return drop
        rows = self.rows
        sizes = self.sizes
        for j in range(m):
            smaller = sizes < sizes[j]
            if not smaller.any():
                continue
            contained = ~np.bitwise_and(rows, ~rows[j]).any(axis=1)
            if (contained & smaller).any():
                drop[j] = True
        return drop
