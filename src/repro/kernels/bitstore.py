"""Dense edge representation: packed bitset rows + padded incidence block.

:class:`BitEdgeStore` is the second physical layout for a hypergraph's
edge set, complementing the CSR :class:`~repro.hypergraph.edgestore.EdgeStore`.
It holds two views of the same edges:

* ``rows`` — one packed ``uint64`` bitset row per edge over the (fixed)
  universe, so subset tests, trims and unions are word-parallel;
* ``block`` — the *packed incidence block*: an ``(m, dim)`` integer matrix
  whose row *i* lists the vertices of edge *i* in ascending order, padded
  with the sentinel ``universe``.  For the small dimensions the paper's
  algorithms live in (``d ≤ 3`` after normalisation) a gather over this
  block replaces a ragged ``np.add.reduceat`` over CSR — one contiguous
  fancy-index instead of a segmented reduction, which is what the
  shape-dispatched solvers exploit.

The primitives here are exactly the round-body operations of the solvers
(per-edge marked counts, fully-marked detection, trim, singleton
collection, containment witnesses); each is differentially pinned against
its CSR counterpart in ``tests/kernels`` and via the ``repro.qa`` fuzz
subjects.

Padding convention: every lookup that gathers a per-vertex value through
``block`` must supply the value the sentinel column should contribute
(identity of the reduction): 0 for sums of indicator values, ``True`` for
universally-quantified tests, and so on.  The helpers take an explicit
``pad`` argument to keep that choice visible at the call site.

Stripe tiling: packed rows additionally come in a *tiled* layout that
splits the universe into ``STRIPE_WORDS``-word stripes (4096 bits each)
and materialises only the stripes that carry at least one vertex of any
edge.  Big-universe instances — the ones the dispatcher newly routes
dense — tend to occupy a handful of stripes of a wide vertex space, so
word-parallel scans over the tiled rows (:meth:`BitEdgeStore.superset_mask`)
do work proportional to the **live** stripes, not ``ceil(universe / 64)``.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.edgestore import EdgeStore

__all__ = ["BitEdgeStore", "pack_mask", "unpack_words", "STRIPE_WORDS", "STRIPE_BITS"]

#: Word size of the packed rows.
WORD_BITS = 64

#: Words per stripe of the tiled row layout.
STRIPE_WORDS = 64

#: Bits per stripe (4096): the tiling granularity over the universe.
STRIPE_BITS = WORD_BITS * STRIPE_WORDS


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into little-endian ``uint64`` words."""
    packed = np.packbits(mask.astype(np.uint8, copy=False), bitorder="little")
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, universe: int) -> np.ndarray:
    """Inverse of :func:`pack_mask` (truncates to *universe* bits)."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:universe].astype(bool)


def _stripe_spans(live: np.ndarray, words: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-live-stripe ``(start_word, width)``, clipping the last stripe."""
    starts = live * STRIPE_WORDS
    widths = np.minimum(starts + STRIPE_WORDS, words) - starts
    return starts, widths


class BitEdgeStore:
    """Dense (bitset + incidence-block) view of a canonical edge store.

    Parameters
    ----------
    universe:
        Ground-set size; every row spans ``ceil(universe / 64)`` words.
    block:
        ``(m, dim)`` vertex matrix padded with ``universe`` (adopted, not
        copied).
    sizes:
        Per-edge sizes aligned with *block*.
    """

    __slots__ = ("universe", "block", "sizes", "_rows", "_tiles")

    def __init__(self, universe: int, block: np.ndarray, sizes: np.ndarray):
        self.universe = int(universe)
        self.block = block
        self.sizes = sizes
        self._rows: np.ndarray | None = None
        self._tiles: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: EdgeStore, universe: int) -> "BitEdgeStore":
        """Build the dense view from a canonical CSR store."""
        sizes = store.sizes().astype(np.intp, copy=True)
        m = sizes.size
        dim = int(sizes.max()) if m else 0
        block = np.full((m, max(dim, 1)), universe, dtype=np.intp)
        if m:
            rows = np.repeat(np.arange(m, dtype=np.intp), sizes)
            cols = np.arange(store.indices.size, dtype=np.intp) - np.repeat(
                store.indptr[:-1], sizes
            )
            block[rows, cols] = store.indices
        return cls(universe, block, sizes)

    def to_store(self) -> EdgeStore:
        """Rebuild a canonical CSR store (tests / interop; not a hot path)."""
        m = self.sizes.size
        edges = [
            tuple(int(v) for v in self.block[i] if v < self.universe)
            for i in range(m)
        ]
        return EdgeStore.from_iterable(edges)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.sizes.size)

    @property
    def dimension(self) -> int:
        return int(self.sizes.max()) if self.sizes.size else 0

    @property
    def words(self) -> int:
        """Words per packed row."""
        return (self.universe + WORD_BITS - 1) // WORD_BITS

    @property
    def rows(self) -> np.ndarray:
        """Packed ``(m, words)`` bitset rows (built lazily, then cached)."""
        if self._rows is None:
            m = self.num_edges
            w = max(self.words, 1)
            rows = np.zeros((m, w), dtype=np.uint64)
            if m:
                valid = self.block < self.universe
                eids = np.broadcast_to(
                    np.arange(m, dtype=np.intp)[:, None], self.block.shape
                )[valid]
                verts = self.block[valid]
                flat = rows.view(np.uint64).reshape(m, w)
                np.bitwise_or.at(
                    flat,
                    (eids, verts // WORD_BITS),
                    np.uint64(1) << (verts % WORD_BITS).astype(np.uint64),
                )
            self._rows = rows
        return self._rows

    @property
    def stripes(self) -> int:
        """Stripes covering the universe (``STRIPE_BITS`` bits each)."""
        return (self.universe + STRIPE_BITS - 1) // STRIPE_BITS

    @property
    def live_stripes(self) -> np.ndarray:
        """Ascending ids of the stripes that carry at least one vertex."""
        return self.tiled[0]

    @property
    def tiled(self) -> tuple[np.ndarray, np.ndarray]:
        """Stripe-tiled packed rows: ``(live, tiles)``.

        ``live`` lists the occupied stripe ids in ascending order; ``tiles``
        is the ``(m, total_width)`` ``uint64`` matrix holding only those
        stripes' words, concatenated in stripe order (the last stripe is
        clipped to the universe, so a single-stripe instance tiles to
        exactly its plain packed width).  Dead stripes are absent
        entirely: scans over ``tiles`` cost ``O(m · live_words)`` rather
        than ``O(m · ceil(universe / 64))``.
        """
        if self._tiles is None:
            m = self.num_edges
            w = max(self.words, 1)
            valid = self.block < self.universe
            verts = self.block[valid]
            if verts.size == 0:
                live = np.empty(0, dtype=np.intp)
                tiles = np.zeros((m, 0), dtype=np.uint64)
            else:
                live = np.unique(verts // STRIPE_BITS).astype(np.intp)
                _, widths = _stripe_spans(live, w)
                offsets = np.concatenate(
                    [np.zeros(1, dtype=np.intp), np.cumsum(widths)]
                )
                tiles = np.zeros((m, int(offsets[-1])), dtype=np.uint64)
                eids = np.broadcast_to(
                    np.arange(m, dtype=np.intp)[:, None], self.block.shape
                )[valid]
                rank = np.searchsorted(live, verts // STRIPE_BITS)
                cols = offsets[rank] + (verts % STRIPE_BITS) // WORD_BITS
                np.bitwise_or.at(
                    tiles,
                    (eids, cols),
                    np.uint64(1) << (verts % WORD_BITS).astype(np.uint64),
                )
            self._tiles = (live, tiles)
        return self._tiles

    def pack_frontier(self, mask: np.ndarray) -> np.ndarray:
        """Pack a universe-length boolean mask into the tiled layout.

        Bits falling in dead stripes are dropped — no edge has a vertex
        there, so every per-edge test against the result is unchanged at
        the tiled width.
        """
        live, _ = self.tiled
        if live.size == 0:
            return np.zeros(0, dtype=np.uint64)
        w = max(self.words, 1)
        full = np.zeros(w, dtype=np.uint64)
        packed = pack_mask(mask)
        full[: packed.size] = packed
        starts, widths = _stripe_spans(live, w)
        return np.concatenate(
            [full[s : s + d] for s, d in zip(starts.tolist(), widths.tolist())]
        )

    def unpack_frontier(self, words: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack_frontier`; dead stripes come back empty."""
        live, _ = self.tiled
        w = max(self.words, 1)
        full = np.zeros(w, dtype=np.uint64)
        starts, widths = _stripe_spans(live, w)
        off = 0
        for s, d in zip(starts.tolist(), widths.tolist()):
            full[s : s + d] = words[off : off + d]
            off += d
        return unpack_words(full, self.universe)

    # ------------------------------------------------------------------
    # round-body primitives (each pinned against the CSR equivalent)
    # ------------------------------------------------------------------
    def gather(self, values: np.ndarray, pad) -> np.ndarray:
        """Per-slot gather of a per-vertex array through the block.

        *values* has length ``universe``; *pad* is the value the sentinel
        column contributes (the identity of whatever reduction follows).
        """
        ext = np.empty(self.universe + 1, dtype=values.dtype)
        ext[: self.universe] = values
        ext[self.universe] = pad
        return ext[self.block]

    def edge_mark_counts(self, marked: np.ndarray) -> np.ndarray:
        """Per-edge count of marked vertices — dense twin of
        ``SerialBackend.edge_mark_counts`` (``incidence @ marked``)."""
        return self.gather(marked, False).sum(axis=1).astype(np.int64)

    def fully_marked(self, marked: np.ndarray) -> np.ndarray:
        """Edges entirely inside the marked set (pad counts as marked)."""
        return self.gather(marked, True).all(axis=1)

    def union_of(self, edge_mask: np.ndarray) -> np.ndarray:
        """Union of the selected edges, as a boolean vertex mask."""
        out = np.zeros(self.universe + 1, dtype=bool)
        out[self.block[edge_mask].ravel()] = True
        return out[: self.universe]

    def touching(self, vertex_mask: np.ndarray) -> np.ndarray:
        """Edges with at least one endpoint in *vertex_mask*."""
        return self.gather(vertex_mask, False).any(axis=1)

    def trim(self, vertex_mask: np.ndarray) -> "BitEdgeStore":
        """Remove the masked vertices from every edge (no dedup; the
        engines own the dedup/cleanup policy).  Raises like the CSR trim
        if an edge would become empty."""
        hit = self.gather(vertex_mask, False)
        new_sizes = self.sizes - hit.sum(axis=1)
        if (new_sizes == 0).any():
            bad = int(np.flatnonzero(new_sizes == 0)[0])
            edge = tuple(int(v) for v in self.block[bad] if v < self.universe)
            raise ValueError(
                f"edge {edge} became empty: the removed set contains a full edge"
            )
        block = np.where(hit, self.universe, self.block)
        block = np.sort(block, axis=1)  # kept vertices stay ascending; pads sink right
        return BitEdgeStore(self.universe, block, new_sizes.astype(np.intp))

    def singleton_vertices(self) -> np.ndarray:
        """Sorted unique vertices carried by singleton edges."""
        single = self.sizes == 1
        if not single.any():
            return np.empty(0, dtype=np.intp)
        return np.unique(self.block[single, 0])

    def superset_mask(self) -> np.ndarray:
        """Edges that properly contain another edge (word-parallel scan).

        Quadratic in ``m`` over the **tiled** packed rows — per-pair cost
        is proportional to the live stripes of the universe, which is
        what lets the scan stay cheap on the wide-universe instances the
        dispatcher now routes dense.  Differential subject for the CSR
        Gram-product scan.
        """
        m = self.num_edges
        drop = np.zeros(m, dtype=bool)
        if m <= 1:
            return drop
        _, rows = self.tiled
        sizes = self.sizes
        for j in range(m):
            smaller = sizes < sizes[j]
            if not smaller.any():
                continue
            contained = ~np.bitwise_and(rows, ~rows[j]).any(axis=1)
            if (contained & smaller).any():
                drop[j] = True
        return drop
