"""Shape-dispatched execution kernels for the solver hot loops.

``repro.kernels`` is the second execution path of the solvers: a dense
(bitset / incidence-block) engine for small-universe, low-dimension
instances, with optional numba-compiled inner kernels.  The CSR path in
``repro.core`` remains the general-case implementation; the dispatcher
(:mod:`repro.kernels.dispatch`) chooses per solve, and every engine is
bit-identical per seed — the backend is an execution detail, never an
algorithmic one.

Backend selection
-----------------
The requested kernel comes from, in priority order:

1. an active :func:`use_kernel` context (tests, benchmarks);
2. the ``REPRO_KERNEL`` environment variable;
3. the default, ``auto``.

Values: ``auto`` (shape-based choice between ``csr`` and ``bitset``),
``csr`` (always the CSR path), ``bitset`` (dense engine where capable),
``jit`` (dense engine with numba inner kernels; silently degrades to
``bitset`` when numba is absent).  ``auto`` never selects ``jit`` — an
optional dependency must be asked for, so a run's execution stack does not
depend on what happens to be installed (results are identical either way,
but benchmarks and traces should not drift silently).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["VALID_KERNELS", "DEFAULT_KERNEL", "current_kernel", "use_kernel"]

#: Recognised values of ``REPRO_KERNEL`` / :func:`use_kernel`.
VALID_KERNELS = ("auto", "csr", "bitset", "jit")

DEFAULT_KERNEL = "auto"

_override: list[str] = []


def _validate(name: str) -> str:
    norm = name.strip().lower()
    if norm not in VALID_KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}: expected one of {', '.join(VALID_KERNELS)}"
        )
    return norm


def current_kernel() -> str:
    """The kernel requested for this solve (see module docstring)."""
    if _override:
        return _override[-1]
    env = os.environ.get("REPRO_KERNEL")
    if env is None or not env.strip():
        return DEFAULT_KERNEL
    return _validate(env)


@contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Force a kernel within a ``with`` block (overrides ``REPRO_KERNEL``)."""
    norm = _validate(name)
    _override.append(norm)
    try:
        yield norm
    finally:
        _override.pop()
