"""Measured csr-vs-bitset cost model for the kernel dispatcher.

The static shape thresholds in :mod:`repro.kernels.dispatch` encode *one*
machine's crossover points.  This module replaces them — when a
calibration exists — with measured ones: ``scripts/kernel_calibrate.py``
times the CSR and bitset engines on one representative instance per
*shape bucket* (dimension band × universe band) and persists the medians
to ``KERNEL_CALIBRATION.json`` at the repo root (same benchfile-style
schema discipline as the ``BENCH_*.json`` baselines, see
:mod:`repro.exec.benchfile`).  ``select_backend`` then picks whichever
backend measured faster for the instance's bucket, and falls back to the
static thresholds for buckets the probe did not cover.

Wall-clock medians are only meaningful on the machine that produced them,
so every calibration must carry
:func:`repro.util.hostid.machine_identity` in its provenance and is
**ignored** on mismatch — the same rule ``scripts/bench_gate.py`` already
enforces for the bench baselines.  A missing, invalid or cross-machine
calibration file silently (but countedly) reverts dispatch to the static
thresholds; it can never break a solve.

Override the calibration location with ``REPRO_KERNEL_CALIBRATION`` (CI
points it at a committed fixture to pin the honoring behaviour).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.util.hostid import machine_identity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dispatch imports us)
    from repro.kernels.dispatch import ShapeFeatures

__all__ = [
    "CalibrationSchemaError",
    "CostCalibration",
    "DEFAULT_CALIBRATION_PATH",
    "ENV_CALIBRATION",
    "calibration_path",
    "load_calibration",
    "usable_calibration",
    "shape_bucket",
    "preferred_backend",
]

#: Environment variable overriding the calibration file location.
ENV_CALIBRATION = "REPRO_KERNEL_CALIBRATION"

#: Default location, next to the BENCH_*.json baselines at the repo root.
DEFAULT_CALIBRATION_PATH = Path(__file__).resolve().parents[3] / "KERNEL_CALIBRATION.json"

#: Universe band upper bounds (inclusive), smallest first; shapes above the
#: last bound land in the open top band.
_UNIVERSE_BANDS: tuple[tuple[int, str], ...] = (
    (1024, "u1k"),
    (2048, "u2k"),
    (4096, "u4k"),
    (8192, "u8k"),
)
_UNIVERSE_TOP = "u8kplus"

#: The two backends the probe races; the cost model never proposes jit
#: (an explicit ``REPRO_KERNEL=jit`` request is the only way in).
_BACKENDS = ("csr", "bitset")


class CalibrationSchemaError(ValueError):
    """A calibration file exists but does not match the expected schema."""


@dataclass(frozen=True)
class CostCalibration:
    """A loaded, schema-validated calibration file."""

    path: Path
    buckets: Mapping[str, Mapping[str, float]]  # bucket -> backend -> median ns
    provenance: Mapping[str, object]
    raw: Mapping[str, object]

    @property
    def machine_id(self) -> str:
        return str(self.provenance["machine_id"])


def shape_bucket(dimension: int, universe: int) -> str:
    """The calibration bucket for an instance shape, e.g. ``"d3-u2k"``.

    Buckets are a dimension band (``d2`` | ``d3`` | ``d4plus``) crossed
    with a universe band (``u1k`` ≤ 1024 < ``u2k`` ≤ 2048 < ``u4k`` ≤ 4096
    < ``u8k`` ≤ 8192 < ``u8kplus``).  Low-cardinality by construction —
    3 × 5 possible labels — so the per-bucket dispatch counters stay
    bounded.
    """
    if dimension <= 2:
        dim_band = "d2"
    elif dimension == 3:
        dim_band = "d3"
    else:
        dim_band = "d4plus"
    for bound, label in _UNIVERSE_BANDS:
        if universe <= bound:
            return f"{dim_band}-{label}"
    return f"{dim_band}-{_UNIVERSE_TOP}"


def calibration_path() -> Path:
    """The calibration file location (env override, else the repo default)."""
    override = os.environ.get(ENV_CALIBRATION)
    return Path(override) if override else DEFAULT_CALIBRATION_PATH


def _numeric(value: object, *, path: Path, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CalibrationSchemaError(f"{path}: {where} must be a number, got {value!r}")
    out = float(value)
    if out < 0:
        raise CalibrationSchemaError(f"{path}: {where} must be non-negative, got {out}")
    return out


def load_calibration(path: Path) -> CostCalibration:
    """Load and schema-validate one calibration file.

    Raises ``FileNotFoundError`` if absent and
    :class:`CalibrationSchemaError` on any shape violation — including a
    missing ``provenance.machine_id``, which is mandatory: a calibration
    that cannot prove where it was measured must never steer dispatch.
    """
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CalibrationSchemaError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise CalibrationSchemaError(f"{path}: top level must be an object")
    if doc.get("schema") != 1:
        raise CalibrationSchemaError(
            f"{path}: unsupported schema {doc.get('schema')!r} (expected 1)"
        )
    provenance = doc.get("provenance")
    if not isinstance(provenance, dict) or not isinstance(
        provenance.get("machine_id"), str
    ):
        raise CalibrationSchemaError(
            f"{path}: provenance.machine_id (a string) is required"
        )
    buckets_doc = doc.get("buckets")
    if not isinstance(buckets_doc, dict) or not buckets_doc:
        raise CalibrationSchemaError(f"{path}: buckets must be a non-empty object")
    buckets: dict[str, dict[str, float]] = {}
    for bucket, entry in buckets_doc.items():
        if not isinstance(entry, dict):
            raise CalibrationSchemaError(
                f"{path}: buckets[{bucket!r}] must be an object"
            )
        timings: dict[str, float] = {}
        for backend in _BACKENDS:
            if backend not in entry:
                raise CalibrationSchemaError(
                    f"{path}: buckets[{bucket!r}] is missing {backend!r}"
                )
            timings[backend] = _numeric(
                entry[backend], path=path, where=f"buckets[{bucket!r}][{backend!r}]"
            )
        buckets[str(bucket)] = timings
    return CostCalibration(path=path, buckets=buckets, provenance=provenance, raw=doc)


def usable_calibration(
    path: Path | None = None, *, machine_id: str | None = None
) -> CostCalibration | None:
    """The calibration dispatch may act on, or ``None`` with the reason counted.

    ``None`` (static-threshold fallback) when the file is missing, fails
    schema validation, or was measured on a different machine.  The
    *machine_id* parameter exists for the cross-machine unit tests; real
    callers use the ambient :func:`machine_identity`.
    """
    from repro.obs import metrics as obs_metrics

    p = path if path is not None else calibration_path()
    try:
        cal = load_calibration(p)
    except FileNotFoundError:
        obs_metrics.inc("kernels/calibration/missing")
        return None
    except CalibrationSchemaError:
        obs_metrics.inc("kernels/calibration/invalid")
        return None
    current = machine_id if machine_id is not None else machine_identity()
    if cal.machine_id != current:
        obs_metrics.inc("kernels/calibration/machine-mismatch")
        return None
    obs_metrics.inc("kernels/calibration/loaded")
    return cal


def preferred_backend(
    cal: CostCalibration, features: "ShapeFeatures"
) -> str | None:
    """The measured-faster backend for this shape, or ``None`` if uncovered.

    ``None`` means the calibration has no entry for the instance's bucket
    and dispatch should fall back to the static thresholds.
    """
    entry = cal.buckets.get(shape_bucket(features.dimension, features.universe))
    if entry is None:
        return None
    return "bitset" if entry["bitset"] <= entry["csr"] else "csr"
