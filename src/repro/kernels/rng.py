"""Bit-exact vectorised replication of the per-round RNG handshake.

Every marking round of :func:`repro.core.bl.beame_luby` draws its coins
through the chain

.. code-block:: text

    root = SeedSequence(entropy)             # once per solve
    gen_i = default_rng(root.spawn(1)[0])    # stream(): one per round
    e4 = gen_i.integers(0, 2**63 - 1, 4)     # spawn_seeds(gen_i, 1)
    child = SeedSequence(e4).spawn(1)[0]
    default_rng(child).random(n) < p         # SerialBackend.bernoulli

which costs ~60 µs per round in object construction alone — more than the
whole dense round body is allowed to spend.  The chain is a pure function
of ``(root entropy, round index)``, independent of the algorithm state, so
this module precomputes the final PCG64 ``(state, inc)`` pair for a block
of future rounds in one vectorised pass: SeedSequence's entropy-pool hash,
PCG64's ``srandom`` seeding and the Lemire bounded-integer draws are
replayed on uint32-limb NumPy arrays across all rounds of the block.  The
per-round cost collapses to one state injection into a single reused
:class:`numpy.random.PCG64` plus the C-level ``random(n)`` fill.

Bit-identity is the contract, not an optimisation target: the dense
kernels must produce the same coins as the CSR path for every seed, so
the replication is property-tested against the NumPy objects themselves
(``tests/kernels/test_rng_plan.py``).  The astronomically rare
non-uniform cases — a Lemire rejection (p ≈ 2⁻⁶³ per draw) or a spawned
entropy word below 2³² (p ≈ 2⁻³¹ per word) — fall back to an exact
scalar replay of the affected round.

The SeedSequence hash and PCG64 seeding algorithms are stable public
contracts of NumPy (stream compatibility is guaranteed across versions),
which is what makes this replication safe to pin.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, _entropy, stream

__all__ = ["RoundRngPlan"]

# SeedSequence pool-hash constants (imneme's seed_seq_fe, as adopted by NumPy).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_XSHIFT = 16
_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF
_POOL = 4

# PCG64's 128-bit LCG multiplier, low-to-high 32-bit limbs.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_PCG_MULT_LIMBS = [(_PCG_MULT >> (32 * k)) & _M32 for k in range(4)]
_M128 = (1 << 128) - 1


def _int_to_u32s(v: int) -> list[int]:
    """NumPy's ``_int_to_uint32_array``: little-endian 32-bit words, ≥ 1 word."""
    if v == 0:
        return [0]
    out = []
    while v:
        out.append(v & _M32)
        v >>= 32
    return out


# ---------------------------------------------------------------------------
# Scalar (Python-int) reference chain — exact, used for rare fallback rounds
# and as the oracle in the property tests.
# ---------------------------------------------------------------------------

def _mix_entropy(words: list[int]) -> list[int]:
    hc = _INIT_A

    def h(value: int) -> int:
        nonlocal hc
        value = (value ^ hc) & _M32
        hc = (hc * _MULT_A) & _M32
        value = (value * hc) & _M32
        return value ^ (value >> _XSHIFT)

    def mix(x: int, y: int) -> int:
        r = (_MIX_L * x - _MIX_R * y) & _M32
        return r ^ (r >> _XSHIFT)

    pool = [h(words[i] if i < len(words) else 0) for i in range(_POOL)]
    for s in range(_POOL):
        for d in range(_POOL):
            if s != d:
                pool[d] = mix(pool[d], h(pool[s]))
    for s in range(_POOL, len(words)):
        for d in range(_POOL):
            pool[d] = mix(pool[d], h(words[s]))
    return pool


def _generate_state4(pool: list[int]) -> list[int]:
    hc = _INIT_B
    out32 = []
    for i in range(8):
        data = pool[i % _POOL]
        data = (data ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        data = (data * hc) & _M32
        data ^= data >> _XSHIFT
        out32.append(data)
    return [out32[2 * i] | (out32[2 * i + 1] << 32) for i in range(4)]


def _srandom(val4: list[int]) -> tuple[int, int]:
    """PCG64 seeding: ``generate_state(4, uint64)`` → (state, inc)."""
    initstate = (val4[0] << 64) | val4[1]
    initseq = (val4[2] << 64) | val4[3]
    inc = ((initseq << 1) | 1) & _M128
    state = (((inc + initstate) & _M128) * _PCG_MULT + inc) & _M128
    return state, inc


def _next64(state: int, inc: int) -> tuple[int, int]:
    state = (state * _PCG_MULT + inc) & _M128
    x = (state >> 64) ^ (state & _M64)
    rot = state >> 122
    return state, ((x >> rot) | (x << ((64 - rot) & 63))) & _M64


def _scalar_round_state(run_words: list[int], index: int) -> tuple[int, int]:
    """Exact (state, inc) for round *index*, all in Python ints."""
    v1 = _generate_state4(_mix_entropy(run_words + _int_to_u32s(index)))
    s1, inc1 = _srandom(v1)
    # Lemire draws of integers(0, 2**63 - 1, size=4): rng_excl = 2**63 - 1,
    # rejection threshold (2**64 - rng_excl) % rng_excl = 2.
    excl = (1 << 63) - 1
    ent4 = []
    while len(ent4) < 4:
        s1, r = _next64(s1, inc1)
        m = r * excl
        if (m & _M64) < excl and (m & _M64) < 2:
            continue
        ent4.append(m >> 64)
    words2: list[int] = []
    for v in ent4:
        words2.extend(_int_to_u32s(v))
    if len(words2) < _POOL:
        words2 = words2 + [0] * (_POOL - len(words2))
    v2 = _generate_state4(_mix_entropy(words2 + [0]))  # spawn_key (0,)
    return _srandom(v2)


# ---------------------------------------------------------------------------
# Vectorised batch seeding
# ---------------------------------------------------------------------------

def _vec_hash(v: np.ndarray, hc: int) -> tuple[np.ndarray, int]:
    """One pool-hash step on a uint64 vector of 32-bit values."""
    v = (v ^ hc) * ((hc * _MULT_A) & _M32) & _M32
    v ^= v >> _XSHIFT
    return v, (hc * _MULT_A) & _M32


def _vec_mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    r = (_MIX_L * x - _MIX_R * y) & _M32
    return r ^ (r >> _XSHIFT)


def _vec_hash_rows(rows: np.ndarray, hc: int, mult: int) -> tuple[np.ndarray, int]:
    """Stacked pool-hash: row *k* hashed with the *k*-th constant of the
    ``hc`` chain (``hc``, ``hc·mult``, ``hc·mult²``, …).  The chain is
    data-independent, so a run of consecutive hashes collapses into one
    2-D elementwise pass."""
    k = rows.shape[0]
    hcs = np.empty((k, 1), dtype=np.uint64)
    cur = hc
    for i in range(k):
        hcs[i, 0] = cur
        cur = (cur * mult) & _M32
    h = ((rows ^ hcs) * ((hcs * mult) & _M32)) & _M32
    h ^= h >> _XSHIFT
    return h, cur


def _vec_mul128_const(l: list[np.ndarray]) -> list[np.ndarray]:
    """(4-limb vector) × PCG multiplier, low 128 bits, 32-bit limbs."""
    c = _PCG_MULT_LIMBS
    # Column sums of 32-bit product halves never overflow uint64.
    p = {}
    for i in range(4):
        for j in range(4 - i):
            p[(i, j)] = l[i] * c[j]
    out = []
    carry = None
    for k in range(4):
        col = None
        for i in range(k + 1):
            lo = p[(i, k - i)] & _M32
            col = lo if col is None else col + lo
        for i in range(k):
            hi = p[(i, k - 1 - i)] >> 32
            col = col + hi
        if carry is not None:
            col = col + carry
        out.append(col & _M32)
        carry = col >> 32
    return out


def _vec_add128(a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
    out = []
    carry = None
    for k in range(4):
        s = a[k] + b[k] if carry is None else a[k] + b[k] + carry
        out.append(s & _M32)
        carry = s >> 32
    return out


def _vec_srandom(val: list[np.ndarray]) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Vectorised PCG64 seeding from 8 uint32-limb vectors (4 uint64 words).

    *val* holds the ``generate_state(4, uint64)`` output as 8 little-endian
    32-bit limbs: initstate = limbs 0–3, initseq = limbs 4–7 (each pair of
    32-bit limbs forming one uint64 word, words ordered high-first within
    the 128-bit value, as in ``PCG_128BIT_CONSTANT(seed[0], seed[1])``).
    """
    # generate_state words: val[0],val[1] = initstate high u64 (lo32, hi32),
    # val[2],val[3] = initstate low u64; val[4..7] likewise for initseq.
    initstate = [val[2], val[3], val[0], val[1]]
    initseq = [val[6], val[7], val[4], val[5]]
    inc = [
        ((initseq[0] << 1) | 1) & _M32,
        ((initseq[1] << 1) | (initseq[0] >> 31)) & _M32,
        ((initseq[2] << 1) | (initseq[1] >> 31)) & _M32,
        ((initseq[3] << 1) | (initseq[2] >> 31)) & _M32,
    ]
    state = _vec_mul128_const(_vec_add128(inc, initstate))
    state = _vec_add128(state, inc)
    return state, inc


def _vec_next64(state: list[np.ndarray], inc: list[np.ndarray]) -> tuple[list[np.ndarray], np.ndarray]:
    state = _vec_add128(_vec_mul128_const(state), inc)
    lo = state[0] | (state[1] << 32)
    hi = state[2] | (state[3] << 32)
    x = lo ^ hi
    rot = state[3] >> 26
    out = ((x >> rot) | (x << ((64 - rot) & np.uint64(63)))) & _M64
    return state, out


def _vec_pool_mix(words: list[np.ndarray], hc: int) -> tuple[list[np.ndarray], int]:
    """Vectorised mix_entropy over per-round word vectors (uniform length).

    The initial pool fill and each extra entropy word hash 4 rows with
    consecutive chain constants — both collapse to one stacked pass
    (:func:`_vec_hash_rows`); only the in-pool mixing round is inherently
    sequential (each step reads the evolving pool)."""
    count = words[0].shape[0]
    first = np.zeros((_POOL, count), dtype=np.uint64)
    for i in range(min(_POOL, len(words))):
        first[i] = words[i]
    pool, hc = _vec_hash_rows(first, hc, _MULT_A)
    for s in range(_POOL):
        for d in range(_POOL):
            if s != d:
                h, hc = _vec_hash(pool[s], hc)
                pool[d] = _vec_mix(pool[d], h)
    for s in range(_POOL, len(words)):
        hs, hc = _vec_hash_rows(
            np.broadcast_to(words[s], (_POOL, count)), hc, _MULT_A
        )
        pool = _vec_mix(pool, hs)
    return [pool[i] for i in range(_POOL)], hc


def _vec_generate_state(pool: list[np.ndarray]) -> list[np.ndarray]:
    rows = np.stack([pool[i % _POOL] for i in range(8)])
    data, _ = _vec_hash_rows(rows, _INIT_B, _MULT_B)
    return [data[i] for i in range(8)]


#: Shared per-entropy state cache.  The (state, inc) sequence is a pure
#: function of the run entropy words, so solves that share a seed — a
#: differential replay across backends, benchmark repetitions, a fuzz
#: shrink loop — reuse the batch precompute instead of repeating it.  The
#: cached list is extended in place by whichever plan needs more rounds.
_STATE_CACHE: dict[tuple[tuple[int, ...], int], list[tuple[int, int]]] = {}
_STATE_CACHE_MAX = 16


class RoundRngPlan:
    """Per-round PCG64 states for BL's coin stream, precomputed in blocks.

    ``generator(i)`` returns a :class:`numpy.random.Generator` positioned
    exactly where ``default_rng(spawn_seeds(next(stream(seed)), 1)[0])``
    would be on round *i* — same seed, same round, same bits.  The
    generator object is reused across rounds (only its bit-generator state
    is replaced), so callers must draw from it before requesting the next
    round's generator.
    """

    def __init__(self, seed: SeedLike, block: int = 128):
        root = _stream_root(seed)
        # A caller-supplied SeedSequence is consumed statefully by stream()
        # (one spawn per round); keep a handle so the fast path can mirror
        # that side effect and a re-solve from the same object stays
        # bit-identical with the CSR path.
        self._root = root if isinstance(seed, np.random.SeedSequence) else None
        if getattr(root, "pool_size", _POOL) != _POOL:
            # Non-default entropy pool: the replicated hash constants do not
            # apply — run the exact object chain one round at a time.
            self._exact_stream = stream(root)
            self._exact_next = 0
            return
        self._exact_stream = None
        entropy = root.entropy
        items = list(entropy) if isinstance(entropy, (list, tuple, np.ndarray)) else [entropy]
        words: list[int] = []
        for item in items:
            words.extend(_int_to_u32s(int(item)))
        if len(words) < _POOL:
            # spawn keys are always present for round children; NumPy then
            # zero-pads the run entropy to the pool size.
            words = words + [0] * (_POOL - len(words))
        # The round child's spawn key is root.spawn_key + (round index,):
        # the root's own key words precede the per-round word, and the
        # per-round index starts at the root's current spawn counter.
        for part in root.spawn_key:
            words.extend(_int_to_u32s(int(part)))
        self._offset = int(root.n_children_spawned)
        self._run_words = words
        self._block = max(16, int(block))
        key = (tuple(words), self._offset)
        states = _STATE_CACHE.get(key)
        if states is None:
            if len(_STATE_CACHE) >= _STATE_CACHE_MAX:
                _STATE_CACHE.clear()
            states = []
            _STATE_CACHE[key] = states
        self._states = states
        self._bg = np.random.PCG64()
        self._gen = np.random.Generator(self._bg)
        self._state_template = {
            "bit_generator": "PCG64",
            "state": {"state": 0, "inc": 0},
            "has_uint32": 0,
            "uinteger": 0,
        }

    # -- batch precompute -------------------------------------------------
    def _extend(self, upto: int) -> None:
        while len(self._states) <= upto:
            start = len(self._states)
            count = self._block
            self._states.extend(self._batch(start, count))

    def _batch(self, start: int, count: int) -> list[tuple[int, int]]:
        base = self._offset + start
        idx = np.arange(base, base + count, dtype=np.uint64)
        if base + count >= 1 << 32:  # round index no longer one u32 word
            return [_scalar_round_state(self._run_words, base + i) for i in range(count)]
        # Level 1: child_i = SeedSequence(entropy, spawn_key=(i,)).
        words1 = [np.full(count, w, dtype=np.uint64) for w in self._run_words] + [idx]
        pool1, _ = _vec_pool_mix(words1, _INIT_A)
        val1 = _vec_generate_state(pool1)
        s1, inc1 = _vec_srandom(val1)
        # integers(0, 2**63 - 1, size=4) via Lemire; rejection is ~2⁻⁶³.
        excl = np.uint64((1 << 63) - 1)
        ent = []
        bad = np.zeros(count, dtype=bool)
        for _ in range(4):
            s1, r = _vec_next64(s1, inc1)
            lo = ((r << np.uint64(63)) - r) & _M64
            bad |= lo < 2  # leftover < threshold ⊆ leftover < rng_excl
            borrow = ((r & np.uint64(1)) << np.uint64(63)) < r
            ent.append((r >> np.uint64(1)) - borrow.astype(np.uint64))
        # Level 2: SeedSequence([e0..e3]).spawn(1)[0] — words are the two
        # 32-bit halves of each value; a sub-2³² value shortens the word
        # list, which the uniform layout can't express (scalar fallback).
        for e in ent:
            bad |= e < np.uint64(1 << 32)
        words2 = []
        for e in ent:
            words2.append(e & _M32)
            words2.append(e >> np.uint64(32))
        words2.append(np.zeros(count, dtype=np.uint64))  # spawn_key (0,)
        pool2, _ = _vec_pool_mix(words2, _INIT_A)
        val2 = _vec_generate_state(pool2)
        s2, inc2 = _vec_srandom(val2)
        out = []
        for i in range(count):
            if bad[i]:
                out.append(_scalar_round_state(self._run_words, base + i))
                continue
            state = int(s2[0][i]) | (int(s2[1][i]) << 32) | (int(s2[2][i]) << 64) | (int(s2[3][i]) << 96)
            inc = int(inc2[0][i]) | (int(inc2[1][i]) << 32) | (int(inc2[2][i]) << 64) | (int(inc2[3][i]) << 96)
            out.append((state, inc))
        return out

    # -- per-round access -------------------------------------------------
    def generator(self, index: int) -> np.random.Generator:
        """The round-*index* generator (reused object; draw before advancing)."""
        if self._exact_stream is not None:
            if index != self._exact_next:
                raise ValueError(
                    f"exact-mode plan requires sequential rounds: got {index}, "
                    f"expected {self._exact_next}"
                )
            self._exact_next += 1
            gen = next(self._exact_stream)
            entropy = gen.integers(0, 2**63 - 1, size=4).tolist()
            child = np.random.SeedSequence(entropy).spawn(1)[0]
            return np.random.default_rng(child)
        if self._root is not None:
            self._root.spawn(1)  # mirror stream()'s per-round consumption
        if index >= len(self._states):
            self._extend(index)
        state, inc = self._states[index]
        tmpl = self._state_template
        tmpl["state"]["state"] = state
        tmpl["state"]["inc"] = inc
        self._bg.state = tmpl
        return self._gen


def _stream_root(seed: SeedLike) -> np.random.SeedSequence:
    """The root SeedSequence exactly as :func:`repro.util.rng.stream` builds it."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        entropy = seed.integers(0, 2**63 - 1, size=4).tolist()
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(_entropy(seed))
