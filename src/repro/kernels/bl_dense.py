"""Dense Beame–Luby engine for small-universe, low-dimension instances.

This is the ``bitset`` execution path behind :func:`repro.core.bl.beame_luby`
(selected by :mod:`repro.kernels.dispatch`): the same algorithm, the same
random bits, the same per-round records — produced from a dense state
instead of per-round CSR hypergraph successors.

Why it is fast
--------------
The CSR path rebuilds an immutable :class:`~repro.hypergraph.hypergraph.Hypergraph`
every round: trim → lex-sort/dedup → restricted Gram containment →
singleton pass → store diff → Δ-tracker update, each a chain of
segmented-array operations whose constant cost dwarfs the actual work once
``m`` collapses (the median BL round on the BENCH_m01 instance touches
< 100 edges).  For dimension ≤ 3 the whole round body reduces to a handful
of gathers over the packed incidence block of a :class:`~repro.kernels.bitstore.BitEdgeStore`:

* fully-marked detection is one gather + row-AND (the sentinel column
  participates as "marked", so 2-rows and 3-rows share one test);
* the trim is a masked write + row sort (removed slots sink to the pad);
* dedup and containment collapse to pair-key lookups: after a trim, only
  rows that *shrank* can equal or be contained in another row, and a
  shrunken row has ≤ 2 vertices — so one stamp array over pair keys
  replaces the Gram product;
* the Δ maxima reduce to three integers — the max vertex degree among
  2-rows, among 3-rows, and the max pair multiplicity among 3-rows —
  maintained incrementally (pair multiplicities via a histogram with a
  cached max; vertex degrees are cheap enough to ``max()`` per round).

Bit-identity
------------
The round randomness is reproduced exactly by
:class:`~repro.kernels.rng.RoundRngPlan` (the vectorised replication of
``stream → spawn_seeds → default_rng``), and every count that feeds a
:class:`~repro.core.result.RoundRecord` or the marking probability is
maintained with the same integer semantics as the CSR cleanup
(:func:`~repro.hypergraph.ops.normalize_after_trim`) and the
:class:`~repro.hypergraph.degrees.DeltaTracker`.  The equivalence is pinned
by ``tests/kernels`` and the ``repro.qa`` differential subjects; the
solver-observable counters (``solver/*``, ``backend/*``) are incremented
identically.  (The CSR-internal ``edgestore/*`` counters do not apply to
this path and are intentionally not simulated.)
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.bitstore import BitEdgeStore
from repro.kernels.jit import NUMPY_KERNELS
from repro.kernels.rng import RoundRngPlan
from repro.obs import metrics as obs_metrics
from repro.pram.machine import Machine, NullMachine
from repro.util.rng import SeedLike

__all__ = ["beame_luby_dense", "BLOCK_MAX_DIMENSION", "BLOCK_MAX_UNIVERSE"]

#: Capability bounds of *this* block engine (the jit carrier): its pair
#: tables are dense ``U²`` arrays, so it is gated to small universes.  The
#: overall dense envelope — what :func:`repro.kernels.dispatch.dense_capable`
#: advertises — is wider: the scalar engine (d ≤ 3) and the frontier engine
#: (d > 3) key pairs through dicts and scale to much larger universes.
BLOCK_MAX_DIMENSION = 3
BLOCK_MAX_UNIVERSE = 2048


def _dense_normalize(
    H: Hypergraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Upfront cleanup matching :func:`repro.hypergraph.ops.normalize` for d ≤ 3.

    Returns ``(block, sizes, active, red)`` where *block* is the ``(m, 3)``
    padded incidence block of the surviving edges, *active* the surviving
    vertex ids and *red* the (sorted) vertices removed by singleton
    cleanup.  For dimension ≤ 3 one pass reaches the fixed point: proper
    containment is either "touches a singleton's vertex" (subsumed by the
    red discard) or "3-row contains a 2-row's pair", and dropping edges
    creates no new singletons or containments.
    """
    U = H.universe
    store = H.store
    sizes = store.sizes().astype(np.intp, copy=True)
    m = sizes.size
    block = np.full((m, 3), U, dtype=np.intp)
    if m:
        rows = np.repeat(np.arange(m, dtype=np.intp), sizes)
        cols = np.arange(store.indices.size, dtype=np.intp) - np.repeat(
            store.indptr[:-1], sizes
        )
        block[rows, cols] = store.indices

    active = np.asarray(H.vertices, dtype=np.intp)
    if m == 0:
        return block, sizes, active.copy(), np.empty(0, dtype=np.intp)

    dead = np.zeros(m, dtype=bool)
    singles = sizes == 1
    if singles.any():
        red = np.unique(block[singles, 0])
        red_ext = np.zeros(U + 1, dtype=bool)
        red_ext[red] = True
        dead |= red_ext[block].any(axis=1)
        active = active[~red_ext[active]]
    else:
        red = np.empty(0, dtype=np.intp)

    two = sizes == 2
    three = sizes == 3
    if two.any() and three.any():
        b2 = block[two]
        b3 = block[three]
        k01 = b3[:, 0] * U + b3[:, 1]
        k02 = b3[:, 0] * U + b3[:, 2]
        k12 = b3[:, 1] * U + b3[:, 2]
        if U <= BLOCK_MAX_UNIVERSE:
            pair_seen = np.zeros(U * U, dtype=np.int8)
            pair_seen[b2[:, 0] * U + b2[:, 1]] = 1
            sup = (pair_seen[k01] | pair_seen[k02] | pair_seen[k12]).astype(bool)
        else:
            # Large universes (scalar-engine shapes): the U² stamp table
            # would not fit, so the same membership test runs over sorted
            # pair keys.  Identical drop set, memory O(#pairs).
            k2 = np.unique(b2[:, 0] * U + b2[:, 1])
            sup = np.isin(k01, k2) | np.isin(k02, k2) | np.isin(k12, k2)
        idx3 = np.flatnonzero(three)
        dead[idx3[sup]] = True

    keep = ~dead
    return block[keep], sizes[keep], active, red


def beame_luby_dense(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    recompute_probability: bool,
    marking_probability: float | None,
    max_rounds: int,
    trace: bool,
    kern=NUMPY_KERNELS,
    trc=None,
) -> MISResult:
    """Run BL on the dense engine.  See module docstring for the contract.

    *kern* is the row-kernel namespace from :func:`repro.kernels.jit.row_kernels`
    — the NumPy implementation by default, the numba-fused one for the
    ``jit`` backend; both compute identical integers.

    The caller (the dispatcher inside :func:`repro.core.bl.beame_luby`)
    guarantees ``H.dimension ≤ 3``, ``H.universe ≤ BLOCK_MAX_UNIVERSE``,
    no ``on_round`` hook and no explicit execution backend; everything
    else (seed handling, machine charging, trace records, metadata)
    matches the CSR path bit for bit.  With an enabled tracer *trc* the
    engine emits the same per-round ``bl/round`` spans as the CSR loop
    and stamps ``extras["wall_ns"]`` on every round record.
    """
    from repro.core.bl import _charge_round  # deferred: core.bl imports us

    tr_on = trc is not None and trc.enabled

    U = H.universe
    b, s, active, pre_red = _dense_normalize(H)
    m_alive = s.size
    num3 = int((s == 3).sum())

    # -- incremental Δ state -------------------------------------------
    # deg2/deg3: vertex degrees among 2-/3-rows (slot U absorbs nothing —
    # pads never reach these updates).  pair3: multiplicity of each vertex
    # pair among 3-rows, with a histogram over multiplicities and a cached
    # max.  exists2: 1 iff an alive 2-row carries the pair (dedup oracle).
    deg2 = np.zeros(U + 1, dtype=np.int64)
    deg3 = np.zeros(U + 1, dtype=np.int64)
    pair3 = np.zeros(U * U, dtype=np.int32)
    p3hist = np.zeros(m_alive + 2, dtype=np.int64)
    p3max = 0
    exists2 = np.zeros(U * U, dtype=np.int8)
    if m_alive:
        two = s == 2
        if two.any():
            b2 = np.asarray(b[two, :2])
            np.add.at(deg2, b2.ravel(), 1)
            exists2[b2[:, 0] * U + b2[:, 1]] = 1
        if num3:
            b3 = np.asarray(b[s == 3])
            np.add.at(deg3, b3.ravel(), 1)
            keys = np.concatenate(
                [
                    b3[:, 0] * U + b3[:, 1],
                    b3[:, 0] * U + b3[:, 2],
                    b3[:, 1] * U + b3[:, 2],
                ]
            )
            np.add.at(pair3, keys, 1)
            uk = np.unique(keys)
            np.add.at(p3hist, pair3[uk], 1)
            p3max = int(pair3[uk].max())

    # -- per-round scratch ---------------------------------------------
    mst = np.zeros(U + 1, dtype=np.int64)  # marked stamps (slot U = pad ≡ marked)
    ust = np.zeros(U + 1, dtype=np.int64)  # unmarked-vertex stamps
    ast = np.zeros(U + 1, dtype=np.int64)  # added/removed stamps
    rst = np.zeros(U + 1, dtype=np.int64)  # red stamps
    qst = np.zeros(U * U, dtype=np.int64)  # containment query-pair stamps
    stamp = 0

    plan: RoundRngPlan | None = None
    independent: list[int] = []
    records: list[RoundRecord] = []
    p_fixed: float | None = marking_probability
    p_initial: float | None = None

    # Observable side effects are accumulated locally and flushed once:
    # per-solve totals (and which counters exist at all) match the CSR
    # path exactly, without a registry lookup in every round.  Charging is
    # skipped entirely for the exact NullMachine (every charge is a no-op).
    charge = None if type(mach) is NullMachine else _charge_round
    edged_rounds = 0
    draws_total = 0
    committed_total = 0
    retractions_total = 0
    edgeless_commit = False

    # Local bindings for the hot loop.
    flatnonzero = np.flatnonzero
    subtract_at = np.subtract.at
    add_at = np.add.at
    npwhere = np.where
    row_all = kern.row_all
    row_hits = kern.row_hits
    row_any = kern.row_any
    #: column index pairs (01, 02, 12) of a 3-row — one fancy-index builds
    #: all three pair keys at once.
    PI = np.array([0, 0, 1], dtype=np.intp)
    PJ = np.array([1, 2, 2], dtype=np.intp)

    for round_index in range(max_rounds):
        n = int(active.size)
        if n == 0:
            break
        if m_alive == 0:
            rspan = (
                trc.span(
                    "bl/round", machine=mach, round=round_index, n=n, m=0
                ).__enter__()
                if tr_on
                else None
            )
            independent.extend(active.tolist())
            if charge is not None:
                mach.map(n)
            committed_total += n
            edgeless_commit = True
            if rspan is not None:
                rspan.set(n_after=0, m_after=0, added=n)
                rspan.__exit__(None, None, None)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n,
                    m_before=0,
                    n_after=0,
                    m_after=0,
                    marked=n,
                    added=n,
                    dimension=0,
                )
                if rspan is not None:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            break

        # Δ(H) from the three maintained maxima (same floats as DeltaTracker).
        delta = 0.0
        c21 = int(deg2.max())
        if c21:
            delta = c21 ** 1.0
        if num3:
            v = int(deg3.max()) ** 0.5
            if v > delta:
                delta = v
            v = p3max ** 1.0
            if v > delta:
                delta = v
        d = 3 if num3 else 2
        if p_fixed is not None:
            p = p_fixed
        else:
            p = 1.0 if delta <= 0 else min(1.0, 1.0 / (2 ** (d + 1) * delta))
            if not recompute_probability:
                p_fixed = p
        if p_initial is None:
            p_initial = p

        m_before = m_alive
        total = 3 * num3 + 2 * (m_alive - num3)
        rspan = (
            trc.span(
                "bl/round", machine=mach, round=round_index, n=n, m=m_before, dim=d
            ).__enter__()
            if tr_on
            else None
        )

        # (2) mark — the exact SerialBackend.bernoulli draw for one chunk.
        edged_rounds += 1
        draws_total += n
        if plan is None:
            plan = RoundRngPlan(seed)
        coin = plan.generator(round_index).random(n) < p
        marked = active[coin]
        marked_count = int(marked.size)

        # (3) retract fully marked edges.
        stamp += 1
        if marked_count:
            mst[marked] = stamp
            mst[U] = stamp
            fully = row_all(b, mst, stamp)
            if fully.any():
                ust[b[fully].ravel()] = stamp
                added = marked[ust[marked] != stamp]
            else:
                added = marked
        else:
            added = marked  # empty: no edge can be fully marked
        added_count = int(added.size)
        unmarked_count = marked_count - added_count

        if added_count == 0:
            # No survivors: a normal hypergraph is unchanged (same object
            # on the CSR path); only the trace and charges advance.
            if charge is not None:
                charge(mach, n, m_before, total, max(d, 1))
            retractions_total += unmarked_count
            if rspan is not None:
                rspan.set(
                    n_after=n,
                    m_after=m_before,
                    added=0,
                    unmarked=unmarked_count,
                    p=p,
                )
                rspan.__exit__(None, None, None)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n,
                    m_before=m_before,
                    n_after=n,
                    m_after=m_before,
                    marked=marked_count,
                    unmarked=unmarked_count,
                    added=0,
                    removed_red=0,
                    dimension=d,
                    extras={"p": p, "delta": delta},
                )
                if rspan is not None:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            continue

        independent.extend(added.tolist())

        # (4)–(5) commit + fused cleanup, mirroring normalize_after_trim.
        ast[added] = stamp
        rem = row_hits(b, ast, stamp)
        changed = rem.any(axis=1)
        cidx = flatnonzero(changed)
        red_count = 0
        red_verts = None
        if cidx.size:
            dead = np.zeros(m_alive, dtype=bool)
            cvert = b[cidx]  # advanced indexing: already a copy
            cold = s[cidx]
            remc = rem[cidx]
            newsize = cold - remc.sum(axis=1)
            cw = npwhere(remc, U, cvert)
            cw.sort(axis=1)
            b[cidx] = cw
            s[cidx] = newsize

            # Rows that shrank to singletons colour their vertex red; every
            # edge touching a red vertex is vacuous (normalize_after_trim's
            # single singleton pass).
            is1 = newsize == 1
            if is1.any():
                red_verts = cw[is1, 0]
                rst[red_verts] = stamp
                red_count = len(set(red_verts.tolist()))
                dead |= row_any(b, rst, stamp)

            # 2-rows that shrank stop carrying their old pair (they are
            # singletons now — cleared before the dedup check below).
            o2 = cold == 2
            if o2.any():
                ov = cvert[o2]
                exists2[ov[:, 0] * U + ov[:, 1]] = 0
                subtract_at(deg2, ov[:, :2].ravel(), 1)

            # 3-rows that shrank to 2-rows: dedup against the surviving
            # pairs (a collision kills the newcomer; the survivor counts as
            # changed, so its supersets fall below either way).  The key
            # sets here are a handful of elements — Python sets beat a
            # vectorised unique at this size.
            have_q = False
            isn2 = (newsize == 2) & (cold == 3)
            if isn2.any():
                rows2 = cidx[isn2]
                w2 = cw[isn2]
                kn = (w2[:, 0] * U + w2[:, 1]).tolist()
                qst[kn] = stamp
                have_q = True
                surv: set[int] = set()
                losers = []
                for j, k in enumerate(kn):
                    if exists2[k] or k in surv:
                        losers.append(j)
                    else:
                        surv.add(k)
                if losers:
                    dead[rows2[losers]] = True

            # Containment: an unchanged pair-superset of any changed 2-row
            # is redundant.  Unchanged 3-rows are exactly the rows still of
            # size 3 (every changed row shrank below 3).
            s3 = s == 3
            if have_q:
                i3 = flatnonzero(s3)
                if i3.size:
                    b3 = b[i3]
                    hitq = (qst[b3[:, PI] * U + b3[:, PJ]] == stamp).any(axis=1)
                    dead[i3[hitq]] = True

            # Δ bookkeeping for every row leaving the 3-row class (shrunk
            # or dropped) and every 2-row entering or leaving it.
            c3 = cold == 3
            lost3 = cvert[c3]
            d3u = dead & s3
            dead3 = int(d3u.sum())
            if dead3:
                lost3 = np.concatenate([lost3, b[d3u]])
            if lost3.size:
                subtract_at(deg3, lost3.ravel(), 1)
                keys = (lost3[:, PI] * U + lost3[:, PJ]).ravel()
                ukk, cnts = np.unique(keys, return_counts=True)
                old = pair3[ukk]
                new = old - cnts.astype(np.int32)
                add_at(p3hist, old, -1)
                pos = new > 0
                if pos.any():
                    add_at(p3hist, new[pos], 1)
                pair3[ukk] = new
                while p3max > 0 and p3hist[p3max] == 0:
                    p3max -= 1

            d2u = dead & (s == 2) & ~changed
            if d2u.any():
                v2 = b[d2u, :2]
                exists2[v2[:, 0] * U + v2[:, 1]] = 0
                subtract_at(deg2, v2.ravel(), 1)

            if have_q:
                born2 = isn2 & ~dead[cidx]
                if born2.any():
                    bv = cw[born2, :2]
                    exists2[bv[:, 0] * U + bv[:, 1]] = 1
                    add_at(deg2, bv.ravel(), 1)

            if dead.any():
                keep = ~dead
                b = b[keep]
                s = s[keep]
                m_alive = int(s.size)
                num3 = int(s3.sum()) - dead3
            else:
                num3 = int(s3.sum())

        if red_verts is not None:
            ast[red_verts] = stamp
        active = active[ast[active] != stamp]

        if charge is not None:
            charge(mach, n, m_before, total, max(d, 1))
        committed_total += added_count
        retractions_total += unmarked_count
        if rspan is not None:
            rspan.set(
                n_after=int(active.size),
                m_after=m_alive,
                added=added_count,
                unmarked=unmarked_count,
                p=p,
            )
            rspan.__exit__(None, None, None)
        if trace:
            record = RoundRecord(
                index=round_index,
                phase="bl",
                n_before=n,
                m_before=m_before,
                n_after=int(active.size),
                m_after=m_alive,
                marked=marked_count,
                unmarked=unmarked_count,
                added=added_count,
                removed_red=red_count,
                dimension=d,
                extras={"p": p, "delta": delta},
            )
            if rspan is not None:
                record.extras["wall_ns"] = rspan.wall_ns
            records.append(record)
    else:
        raise RuntimeError(
            f"BL failed to terminate within {max_rounds} rounds "
            f"(n={H.num_vertices}, m={H.num_edges}, dim={H.dimension})"
        )

    # Flush the counters the CSR path would have created, same totals.
    inc = obs_metrics.inc
    if edged_rounds:
        inc("backend/bernoulli_calls", edged_rounds)
        inc("backend/bernoulli_draws", draws_total)
        inc("solver/unmark_retractions", retractions_total)
    if edged_rounds or edgeless_commit:
        inc("solver/vertices_committed", committed_total)

    return MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="bl",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={
            "p_initial": p_initial if p_initial is not None else 1.0,
            "recompute_probability": recompute_probability,
            "prenormalized_red": int(pre_red.size),
        },
    )
