"""Scalar-frontier Beame–Luby engine — the ``bitset`` backend's round body.

This is the fastest exact BL engine for small-universe, low-dimension
instances.  It shares the upfront packed-incidence-block normalisation
with :mod:`repro.kernels.bl_dense` and the same
:class:`~repro.kernels.rng.RoundRngPlan` coin stream, but runs the round
body on scalar adjacency lists instead of vectorised array passes.

Why scalar beats vectorised here
--------------------------------
Profiling the BENCH_m01 instance (n=400, m=800, d=3) shows the dense
engine's cost is *call dispatch*, not element work: a BL round marks very
few vertices (p ≈ 1/(2^{d+1}Δ); observed mean < 2, max 9 marked per
round), so each round touches only the handful of edges incident to the
marked set — but the vectorised round body still pays ~40 NumPy-call
overheads on arrays whose median size is < 100.  The scalar body walks
exactly the touched edges via per-vertex incidence lists: a few dozen
dict/set operations per round, with NumPy kept only where it is genuinely
vectorised work (the per-round coin draw, which must be the exact
``Generator.random(n)`` fill anyway).

Bit-identity
------------
Same contract as the dense engine (see :mod:`repro.kernels.bl_dense`):
identical coins (``RoundRngPlan``), identical per-round records, machine
charges, solver counters and metadata.  The cleanup phases run in the
same logical order as ``normalize_after_trim`` — trim, singleton/red
pass, stale-pair clear, shrunken-row dedup, containment, Δ bookkeeping —
and every count (``Δ`` maxima, ``num3``, ``m_alive``) is maintained with
the same integer semantics, so the two engines (and the CSR path) are
interchangeable bit for bit.  The equivalence is pinned by
``tests/kernels`` and the ``repro.qa`` differential subjects.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.bl_dense import _dense_normalize
from repro.kernels.rng import RoundRngPlan
from repro.obs import metrics as obs_metrics
from repro.pram.machine import Machine, NullMachine
from repro.util.rng import SeedLike

__all__ = ["beame_luby_scalar"]


def beame_luby_scalar(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    recompute_probability: bool,
    marking_probability: float | None,
    max_rounds: int,
    trace: bool,
    trc=None,
) -> MISResult:
    """Run BL on the scalar-frontier engine.  See module docstring.

    The caller (the dispatcher inside :func:`repro.core.bl.beame_luby`)
    guarantees ``H.dimension ≤ 3``, ``H.universe`` within the dense
    envelope, no ``on_round`` hook and no explicit execution backend;
    everything observable matches the CSR path bit for bit.  With an
    enabled tracer *trc* the engine emits the same per-round ``bl/round``
    spans as the CSR loop and stamps ``extras["wall_ns"]``.
    """
    from repro.core.bl import _charge_round  # deferred: core.bl imports us

    tr_on = trc is not None and trc.enabled

    U = H.universe
    b, s, active_arr, pre_red = _dense_normalize(H)
    m0 = int(s.size)
    m_alive = m0
    num3 = int((s == 3).sum())

    # -- scalar state ---------------------------------------------------
    # edges[i]: sorted vertex list of row i, or None once the row dies.
    # adj[v]: static incidence list (row ids); rows that die or drop v are
    # filtered at query time — removed vertices are never queried again.
    sizes_l = s.tolist()
    edges: list[list[int] | None] = [
        row[:sz] for row, sz in zip(b.tolist(), sizes_l)
    ]
    adj: list[list[int]] = [[] for _ in range(U)]
    for i, ed in enumerate(edges):
        for v in ed:
            adj[v].append(i)
    active: list[int] = active_arr.tolist()

    # -- incremental Δ state (same integers as the dense engine) --------
    # Vertex degrees among 2-/3-rows and pair multiplicities among 3-rows,
    # each with a multiplicity histogram and a cached max that is walked
    # down lazily (degrees among 3-rows and pair counts only decrease;
    # deg2 increments bump the cache directly).
    deg2_arr = np.zeros(U + 1, dtype=np.int64)
    deg3_arr = np.zeros(U + 1, dtype=np.int64)
    pair3: dict[int, int] = {}
    p3hist = [0] * (m0 + 2)
    p3max = 0
    exists2: set[int] = set()
    if m_alive:
        two = s == 2
        if two.any():
            b2 = np.asarray(b[two, :2])
            np.add.at(deg2_arr, b2.ravel(), 1)
            exists2 = set((b2[:, 0] * U + b2[:, 1]).tolist())
        if num3:
            b3 = np.asarray(b[s == 3])
            np.add.at(deg3_arr, b3.ravel(), 1)
            keys = np.concatenate(
                [
                    b3[:, 0] * U + b3[:, 1],
                    b3[:, 0] * U + b3[:, 2],
                    b3[:, 1] * U + b3[:, 2],
                ]
            )
            uk, cnt = np.unique(keys, return_counts=True)
            pair3 = dict(zip(uk.tolist(), cnt.tolist()))
            p3hist = np.bincount(cnt, minlength=m0 + 2).tolist()
            p3max = int(cnt.max())
    deg2 = deg2_arr.tolist()
    deg3 = deg3_arr.tolist()
    d2hist = np.bincount(deg2_arr, minlength=m0 + 2).tolist()
    d3hist = np.bincount(deg3_arr, minlength=m0 + 2).tolist()
    deg2max = int(deg2_arr.max()) if m_alive else 0
    deg3max = int(deg3_arr.max()) if m_alive else 0

    plan: RoundRngPlan | None = None
    independent: list[int] = []
    records: list[RoundRecord] = []
    p_fixed: float | None = marking_probability
    p_initial: float | None = None

    charge = None if type(mach) is NullMachine else _charge_round
    edged_rounds = 0
    draws_total = 0
    committed_total = 0
    retractions_total = 0
    edgeless_commit = False

    for round_index in range(max_rounds):
        n = len(active)
        if n == 0:
            break
        if m_alive == 0:
            rspan = (
                trc.span(
                    "bl/round", machine=mach, round=round_index, n=n, m=0
                ).__enter__()
                if tr_on
                else None
            )
            independent.extend(active)
            if charge is not None:
                mach.map(n)
            committed_total += n
            edgeless_commit = True
            if rspan is not None:
                rspan.set(n_after=0, m_after=0, added=n)
                rspan.__exit__(None, None, None)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n,
                    m_before=0,
                    n_after=0,
                    m_after=0,
                    marked=n,
                    added=n,
                    dimension=0,
                )
                if rspan is not None:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            break

        # Δ(H) from the three maintained maxima (same floats as DeltaTracker).
        while deg2max > 0 and d2hist[deg2max] == 0:
            deg2max -= 1
        while deg3max > 0 and d3hist[deg3max] == 0:
            deg3max -= 1
        while p3max > 0 and p3hist[p3max] == 0:
            p3max -= 1
        delta = 0.0
        if deg2max:
            delta = deg2max ** 1.0
        if num3:
            v = deg3max ** 0.5
            if v > delta:
                delta = v
            v = p3max ** 1.0
            if v > delta:
                delta = v
        d = 3 if num3 else 2
        if p_fixed is not None:
            p = p_fixed
        else:
            p = 1.0 if delta <= 0 else min(1.0, 1.0 / (2 ** (d + 1) * delta))
            if not recompute_probability:
                p_fixed = p
        if p_initial is None:
            p_initial = p

        m_before = m_alive
        total = 3 * num3 + 2 * (m_alive - num3)
        rspan = (
            trc.span(
                "bl/round", machine=mach, round=round_index, n=n, m=m_before, dim=d
            ).__enter__()
            if tr_on
            else None
        )

        # (2) mark — the exact SerialBackend.bernoulli draw for one chunk.
        edged_rounds += 1
        draws_total += n
        if plan is None:
            plan = RoundRngPlan(seed)
        coin = plan.generator(round_index).random(n) < p
        hits = coin.nonzero()[0]
        if hits.size:
            marked = [active[j] for j in hits.tolist()]
        else:
            marked = []
        marked_count = len(marked)

        # (3) retract fully marked edges.
        if marked_count:
            mset = set(marked)
            retracted: set[int] | None = None
            for v in marked:
                for e in adj[v]:
                    ed = edges[e]
                    if ed is None:
                        continue
                    full = True
                    for u in ed:
                        if u not in mset:
                            full = False
                            break
                    if full:
                        if retracted is None:
                            retracted = set()
                        retracted.update(ed)
            if retracted is None:
                added = marked
            else:
                added = [v for v in marked if v not in retracted]
        else:
            added = marked
        added_count = len(added)
        unmarked_count = marked_count - added_count

        if added_count == 0:
            # No survivors: a normal hypergraph is unchanged (same object
            # on the CSR path); only the trace and charges advance.
            if charge is not None:
                charge(mach, n, m_before, total, max(d, 1))
            retractions_total += unmarked_count
            if rspan is not None:
                rspan.set(
                    n_after=n,
                    m_after=m_before,
                    added=0,
                    unmarked=unmarked_count,
                    p=p,
                )
                rspan.__exit__(None, None, None)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n,
                    m_before=m_before,
                    n_after=n,
                    m_after=m_before,
                    marked=marked_count,
                    unmarked=unmarked_count,
                    added=0,
                    removed_red=0,
                    dimension=d,
                    extras={"p": p, "delta": delta},
                )
                if rspan is not None:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            continue

        independent.extend(added)
        added_set = set(added)

        # (4)–(5) commit + fused cleanup, mirroring normalize_after_trim.
        # Changed rows = alive rows still containing an added vertex; keep
        # their pre-trim vertex lists for the Δ bookkeeping below.
        old_of: dict[int, list[int]] = {}
        for v in added:
            for e in adj[v]:
                ed = edges[e]
                if ed is not None and e not in old_of and v in ed:
                    old_of[e] = ed

        red_set: set[int] | None = None
        red_count = 0
        dead_set: set[int] = set()
        new2: list[tuple[int, int]] = []  # (row, pair key), ascending row id
        old2_pairs: list[list[int]] = []
        lost3: list[list[int]] = []  # pre-trim triples leaving the 3-class
        changed_old3 = 0
        if old_of:
            # Trim (rows processed in ascending id order, like the block
            # engine's cidx).  Every changed row keeps ≥ 1 vertex: a row
            # losing all vertices would have been fully marked and
            # retracted above.
            for e in sorted(old_of):
                old = old_of[e]
                new = [u for u in old if u not in added_set]
                edges[e] = new
                if len(old) == 3:
                    changed_old3 += 1
                    lost3.append(old)
                    if len(new) == 2:
                        new2.append((e, new[0] * U + new[1]))
                    else:
                        if red_set is None:
                            red_set = set()
                        red_set.add(new[0])
                else:
                    old2_pairs.append(old)
                    if red_set is None:
                        red_set = set()
                    red_set.add(new[0])

            # Rows that shrank to singletons colour their vertex red; every
            # edge touching a red vertex is vacuous (normalize_after_trim's
            # single singleton pass; the singleton row kills itself).
            if red_set is not None:
                red_count = len(red_set)
                for r in red_set:
                    for e in adj[r]:
                        ed = edges[e]
                        if ed is not None and r in ed:
                            dead_set.add(e)

            # 2-rows that shrank stop carrying their old pair (they are
            # singletons now — cleared before the dedup check below).
            for pair in old2_pairs:
                for v in pair:
                    o = deg2[v]
                    deg2[v] = o - 1
                    d2hist[o] -= 1
                    if o > 1:
                        d2hist[o - 1] += 1
                exists2.discard(pair[0] * U + pair[1])

            # 3-rows that shrank to 2-rows: dedup against the surviving
            # pairs (a collision kills the newcomer; the survivor counts as
            # changed, so its supersets fall below either way).
            Q: set[int] | None = None
            if new2:
                Q = set()
                surv: set[int] = set()
                for e, k in new2:
                    Q.add(k)
                    if k in exists2 or k in surv:
                        dead_set.add(e)
                    else:
                        surv.add(k)

            # Containment: an unchanged pair-superset of any changed 2-row
            # is redundant.  Unchanged 3-rows are exactly the rows still of
            # size 3 (every changed row shrank below 3).
            if Q is not None:
                for k in Q:
                    u, w = divmod(k, U)
                    for e in adj[u]:
                        ed = edges[e]
                        if ed is not None and len(ed) == 3 and u in ed and w in ed:
                            dead_set.add(e)

            # Δ bookkeeping for every row leaving the 3-row class (shrunk
            # or dropped) and every 2-row entering or leaving it.
            dead3_unchanged = 0
            for e in dead_set:
                if e in old_of:
                    continue
                ed = edges[e]
                if len(ed) == 3:
                    dead3_unchanged += 1
                    lost3.append(ed)
                else:
                    for v in ed:
                        o = deg2[v]
                        deg2[v] = o - 1
                        d2hist[o] -= 1
                        if o > 1:
                            d2hist[o - 1] += 1
                    exists2.discard(ed[0] * U + ed[1])
            # Unrolled over the three vertices / pair keys of each lost
            # triple: this is the hottest scalar path (every changed or
            # dropped 3-row pays it) and the loop overhead is measurable.
            for a, b2v, c in lost3:
                o = deg3[a]
                deg3[a] = o - 1
                d3hist[o] -= 1
                if o > 1:
                    d3hist[o - 1] += 1
                o = deg3[b2v]
                deg3[b2v] = o - 1
                d3hist[o] -= 1
                if o > 1:
                    d3hist[o - 1] += 1
                o = deg3[c]
                deg3[c] = o - 1
                d3hist[o] -= 1
                if o > 1:
                    d3hist[o - 1] += 1
                aU = a * U
                k = aU + b2v
                o = pair3[k]
                if o == 1:
                    del pair3[k]
                else:
                    pair3[k] = o - 1
                p3hist[o] -= 1
                if o > 1:
                    p3hist[o - 1] += 1
                k = aU + c
                o = pair3[k]
                if o == 1:
                    del pair3[k]
                else:
                    pair3[k] = o - 1
                p3hist[o] -= 1
                if o > 1:
                    p3hist[o - 1] += 1
                k = b2v * U + c
                o = pair3[k]
                if o == 1:
                    del pair3[k]
                else:
                    pair3[k] = o - 1
                p3hist[o] -= 1
                if o > 1:
                    p3hist[o - 1] += 1
            if new2:
                for e, k in new2:
                    if e not in dead_set:
                        exists2.add(k)
                        for v in edges[e]:
                            o = deg2[v]
                            deg2[v] = o + 1
                            if o:
                                d2hist[o] -= 1
                            no = o + 1
                            d2hist[no] += 1
                            if no > deg2max:
                                deg2max = no

            for e in dead_set:
                edges[e] = None
            m_alive -= len(dead_set)
            num3 -= changed_old3 + dead3_unchanged

        if red_set is not None:
            removals = sorted(added_set | red_set)
        else:
            removals = added
        for v in removals:
            del active[bisect_left(active, v)]

        if charge is not None:
            charge(mach, n, m_before, total, max(d, 1))
        committed_total += added_count
        retractions_total += unmarked_count
        if rspan is not None:
            rspan.set(
                n_after=len(active),
                m_after=m_alive,
                added=added_count,
                unmarked=unmarked_count,
                p=p,
            )
            rspan.__exit__(None, None, None)
        if trace:
            record = RoundRecord(
                index=round_index,
                phase="bl",
                n_before=n,
                m_before=m_before,
                n_after=len(active),
                m_after=m_alive,
                marked=marked_count,
                unmarked=unmarked_count,
                added=added_count,
                removed_red=red_count,
                dimension=d,
                extras={"p": p, "delta": delta},
            )
            if rspan is not None:
                record.extras["wall_ns"] = rspan.wall_ns
            records.append(record)
    else:
        raise RuntimeError(
            f"BL failed to terminate within {max_rounds} rounds "
            f"(n={H.num_vertices}, m={H.num_edges}, dim={H.dimension})"
        )

    # Flush the counters the CSR path would have created, same totals.
    inc = obs_metrics.inc
    if edged_rounds:
        inc("backend/bernoulli_calls", edged_rounds)
        inc("backend/bernoulli_draws", draws_total)
        inc("solver/unmark_retractions", retractions_total)
    if edged_rounds or edgeless_commit:
        inc("solver/vertices_committed", committed_total)

    return MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="bl",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={
            "p_initial": p_initial if p_initial is not None else 1.0,
            "recompute_probability": recompute_probability,
            "prenormalized_red": int(pre_red.size),
        },
    )
