"""OpenMetrics / Prometheus text-format export of metrics snapshots.

:func:`render_openmetrics` turns a :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` into the OpenMetrics text
exposition format, so a campaign heartbeat can drop a scrape-ready
textfile next to its telemetry stream (node-exporter textfile collector,
``curl``-able solve server, CI smoke checks)::

    # TYPE repro_solver_vertices_committed counter
    repro_solver_vertices_committed_total 155
    # TYPE repro_exec_cells_per_s gauge
    repro_exec_cells_per_s 431.7
    # EOF

Mapping rules (the snapshot's three kinds):

* **counters** → ``counter`` families, sample name suffixed ``_total``;
* **gauges** → ``gauge`` families (``None``-valued gauges are skipped);
* **histograms** → a ``summary`` family carrying ``_count``/``_sum``
  plus two gauge families ``<name>_min``/``<name>_max`` (the snapshot
  keeps exact min/max instead of quantiles).

Metric names are sanitised (``/`` and every other non-``[a-zA-Z0-9_:]``
byte becomes ``_``) and prefixed (default ``repro``).

:func:`parse_openmetrics` is the deliberately minimal reader used by the
round-trip tests and the CI smoke step: families, labels and values come
back; exotic features (exemplars, native histograms) are out of scope
and unparseable lines raise.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["render_openmetrics", "parse_openmetrics", "OpenMetricsDoc", "metric_name"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>\S+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str, *, prefix: str = "repro") -> str:
    """Sanitise a registry metric name into an OpenMetrics family name."""
    base = _NAME_OK.sub("_", name)
    if prefix:
        base = f"{_NAME_OK.sub('_', prefix)}_{base}"
    if not re.match(r"[a-zA-Z_:]", base):
        base = f"_{base}"
    return base


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_openmetrics(
    snapshot: Mapping[str, Any],
    *,
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render a metrics snapshot as OpenMetrics text (ends with ``# EOF``).

    *labels* are attached to every sample — the heartbeat stamps e.g.
    ``{"command": "campaign"}`` so multiple runs can share a scrape
    target without name collisions.
    """
    lab = _labels_text(labels)
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        base = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base}_total{lab} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        base = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base}{lab} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        base = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count{lab} {_fmt(hist['count'])}")
        lines.append(f"{base}_sum{lab} {_fmt(hist['sum'])}")
        for bound in ("min", "max"):
            if hist.get(bound) is not None:
                lines.append(f"# TYPE {base}_{bound} gauge")
                lines.append(f"{base}_{bound}{lab} {_fmt(hist[bound])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


@dataclass
class OpenMetricsDoc:
    """Parsed exposition text: family types plus flat samples."""

    families: dict[str, str] = field(default_factory=dict)
    #: ``(sample_name, ((label, value), ...))`` → value
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = field(
        default_factory=dict
    )

    def value(self, name: str, **labels: str) -> float:
        """The value of one sample (KeyError if absent)."""
        return self.samples[(name, tuple(sorted(labels.items())))]

    def names(self) -> set[str]:
        return {name for name, _ in self.samples}


def parse_openmetrics(text: str) -> OpenMetricsDoc:
    """Parse OpenMetrics text; raises ``ValueError`` on malformed input.

    Checks what the round-trip needs: every sample line parses (name,
    optional labels, float value), ``# TYPE`` metadata is collected, and
    the stream is terminated by ``# EOF``.
    """
    doc = OpenMetricsDoc()
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                doc.families[parts[2]] = parts[3]
            continue  # HELP/UNIT/comments: ignored
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        labels: dict[str, str] = {}
        if m.group("labels"):
            consumed = 0
            for lm in _LABEL.finditer(m.group("labels")):
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                consumed += 1
            if consumed == 0:
                raise ValueError(f"line {lineno}: unparseable labels: {line!r}")
        try:
            value = float(m.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value: {line!r}") from exc
        doc.samples[(m.group("name"), tuple(sorted(labels.items())))] = value
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return doc
