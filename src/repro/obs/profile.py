"""Span-scoped sampling profiler and flame-graph rendering.

:class:`SamplingProfiler` is a background-thread stack sampler: at a
configurable rate it snapshots the target thread's Python stack via
``sys._current_frames()`` and tags each sample with the id of the span
that was open on the attached tracer at that instant.  The target thread
runs completely unmodified — no ``sys.settrace``, no decorators — so
profiling changes neither results nor (beyond the GIL contention of a
~100 Hz sampler) timings, and when no profiler is constructed the cost
is exactly zero.

On :meth:`~SamplingProfiler.stop` the samples are aggregated into one
``profile`` event on the tracer's stream::

    {"type": "profile", "hz": 97, "samples": 412, "duration_ns": ...,
     "frames": [["solve", "repro/core/bl.py", 88], ...],
     "stacks": [{"f": [0, 3, 7], "n": 40, "span": 5}, ...]}

``frames`` is the interned frame table (name, file, first line);
``stacks`` maps root-first frame-index paths to sample counts, each
carrying the innermost open span id (absent when sampled outside any
span).  ``repro trace flame`` renders this as folded-stack text
(:func:`render_flame`) or speedscope-compatible JSON
(:func:`write_speedscope`, load it at https://speedscope.app).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, Union

__all__ = [
    "SamplingProfiler",
    "folded_stacks",
    "render_flame",
    "write_speedscope",
]

#: Frames deeper than this are truncated (guards against runaway recursion).
MAX_STACK_DEPTH = 128


def _shorten(filename: str) -> str:
    """Last two path components — enough to disambiguate, short enough to read."""
    parts = Path(filename).parts
    return "/".join(parts[-2:]) if len(parts) >= 2 else filename


class SamplingProfiler:
    """Background-thread stack sampler attached to (at most) one tracer.

    Parameters
    ----------
    hz:
        Target sampling rate (samples per second).  ~100 Hz resolves
        phases of a few milliseconds; the sampler thread sleeps between
        samples, so oversampling only burns its own CPU.
    tracer:
        The tracer whose ``current_span_id`` tags each sample and whose
        sink receives the final ``profile`` event.  ``None`` collects
        samples without span attribution or emission (tests, ad-hoc use).
    thread_id:
        The thread to sample; defaults to the calling thread of
        :meth:`start` (the solver thread).
    """

    def __init__(
        self,
        hz: float = 97.0,
        *,
        tracer: Any = None,
        thread_id: int | None = None,
    ):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive: {hz}")
        self.hz = float(hz)
        self.tracer = tracer
        self._thread_id = thread_id
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._counts: dict[tuple[int | None, tuple], int] = {}
        self.samples = 0
        self.duration_ns = 0
        self._t0 = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent start is an error; stop first)."""
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if self._thread_id is None:
            self._thread_id = threading.get_ident()
        self._stop_event.clear()
        self._t0 = time.perf_counter_ns()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, Any]:
        """Stop sampling; emit and return the aggregated ``profile`` event."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
            self.duration_ns = time.perf_counter_ns() - self._t0
        event = self._aggregate()
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.emit("profile", **{k: v for k, v in event.items() if k != "type"})
        return event

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling (profiler thread) --------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop_event.wait(interval):
            self._sample()

    def _sample(self) -> None:
        frame = sys._current_frames().get(self._thread_id)
        if frame is None:
            return
        stack = []
        f = frame
        while f is not None and len(stack) < MAX_STACK_DEPTH:
            code = f.f_code
            stack.append((code.co_name, _shorten(code.co_filename), code.co_firstlineno))
            f = f.f_back
        stack.reverse()
        span_id = None
        if self.tracer is not None:
            span_id = self.tracer.current_span_id
        key = (span_id, tuple(stack))
        self._counts[key] = self._counts.get(key, 0) + 1
        self.samples += 1

    # -- aggregation ------------------------------------------------------
    def _aggregate(self) -> dict[str, Any]:
        frames: dict[tuple, int] = {}
        stacks: list[dict[str, Any]] = []
        for (span_id, stack), count in sorted(
            self._counts.items(), key=lambda kv: -kv[1]
        ):
            indices = []
            for fr in stack:
                idx = frames.get(fr)
                if idx is None:
                    idx = len(frames)
                    frames[fr] = idx
                indices.append(idx)
            entry: dict[str, Any] = {"f": indices, "n": count}
            if span_id is not None:
                entry["span"] = span_id
            stacks.append(entry)
        return {
            "type": "profile",
            "hz": self.hz,
            "samples": self.samples,
            "duration_ns": self.duration_ns,
            "frames": [list(fr) for fr in frames],
            "stacks": stacks,
        }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def _merge_profiles(profiles: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge several profile events (re-interning frames) into one."""
    if not profiles:
        raise ValueError("no profile events in stream (run with --profile HZ)")
    if len(profiles) == 1:
        return profiles[0]
    frames: dict[tuple, int] = {}
    counts: dict[tuple, dict[str, Any]] = {}
    samples = 0
    duration = 0
    for prof in profiles:
        samples += prof.get("samples", 0)
        duration += prof.get("duration_ns", 0)
        table = [tuple(fr) for fr in prof["frames"]]
        for st in prof["stacks"]:
            stack = tuple(table[i] for i in st["f"])
            indices = []
            for fr in stack:
                idx = frames.get(fr)
                if idx is None:
                    idx = len(frames)
                    frames[fr] = idx
                indices.append(idx)
            key = (st.get("span"), tuple(indices))
            entry = counts.get(key)
            if entry is None:
                entry = {"f": indices, "n": 0}
                if st.get("span") is not None:
                    entry["span"] = st["span"]
                counts[key] = entry
            entry["n"] += st["n"]
    return {
        "type": "profile",
        "hz": profiles[0].get("hz"),
        "samples": samples,
        "duration_ns": duration,
        "frames": [list(fr) for fr in frames],
        "stacks": sorted(counts.values(), key=lambda e: -e["n"]),
    }


def folded_stacks(profile: dict[str, Any]) -> dict[str, int]:
    """Collapse a profile event to folded-stack counts (`a;b;c` → n).

    The classic flamegraph.pl / speedscope import format: one line per
    distinct stack, frames root-first joined by ``;``.  Span attribution
    is dropped here — stacks that differ only by span merge.
    """
    frames = profile["frames"]
    folded: dict[str, int] = {}
    for st in profile["stacks"]:
        key = ";".join(frames[i][0] for i in st["f"])
        folded[key] = folded.get(key, 0) + st["n"]
    return folded


def render_flame(path: Union[str, Path], *, limit: int = 40) -> str:
    """Folded-stack text view of the profile events in a telemetry file.

    Shows total samples, the hottest *leaf* frames (where time was
    actually spent), the span attribution (samples per span name, via the
    stream's span events), and the top folded stacks.
    """
    from repro.obs.inspector import load_trace

    doc = load_trace(path)
    profile = _merge_profiles(doc.profiles)
    frames = profile["frames"]
    total = max(1, profile["samples"])
    lines = [
        f"profile: {profile['samples']} samples @ {profile['hz']:g} Hz "
        f"({profile.get('duration_ns', 0) / 1e9:.2f} s)"
    ]

    # hottest leaf frames
    leaf: dict[int, int] = {}
    for st in profile["stacks"]:
        if st["f"]:
            leaf[st["f"][-1]] = leaf.get(st["f"][-1], 0) + st["n"]
    lines.append("")
    lines.append("hot frames (leaf samples):")
    for idx, count in sorted(leaf.items(), key=lambda kv: -kv[1])[:limit]:
        name, filename, lineno = frames[idx]
        lines.append(
            f"  {count:>6}  {count / total * 100:5.1f}%  {name}  ({filename}:{lineno})"
        )

    # span attribution
    span_names = {s.span_id: s.name for s in doc.spans}
    by_span: dict[str, int] = {}
    for st in profile["stacks"]:
        label = span_names.get(st.get("span"), "(no span)")
        by_span[label] = by_span.get(label, 0) + st["n"]
    lines.append("")
    lines.append("samples by span:")
    for label, count in sorted(by_span.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {count:>6}  {count / total * 100:5.1f}%  {label}")

    # folded stacks (importable into any flamegraph tool)
    lines.append("")
    lines.append("folded stacks:")
    folded = folded_stacks(profile)
    for stack, count in sorted(folded.items(), key=lambda kv: -kv[1])[:limit]:
        lines.append(f"  {stack} {count}")
    return "\n".join(lines)


def write_speedscope(path: Union[str, Path], out: Union[str, Path]) -> int:
    """Convert a telemetry file's profile events to speedscope JSON.

    Returns the number of samples written.  The output loads directly at
    https://www.speedscope.app (an evented "sampled" profile, weights in
    seconds derived from the sampling rate).
    """
    from repro.obs.inspector import load_trace

    doc = load_trace(path)
    profile = _merge_profiles(doc.profiles)
    hz = float(profile.get("hz") or 100.0)
    frames = [
        {"name": name, "file": filename, "line": lineno}
        for name, filename, lineno in profile["frames"]
    ]
    samples = [st["f"] for st in profile["stacks"]]
    weights = [st["n"] / hz for st in profile["stacks"]]
    doc_out = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": str(path),
                "unit": "seconds",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro.obs.profile",
    }
    Path(out).write_text(json.dumps(doc_out) + "\n", encoding="utf-8")
    return profile["samples"]
