"""Named metrics: counters, gauges, histograms, and their registry.

Call sites name a metric and bump it; the registry owns the namespace::

    from repro.obs import metrics
    metrics.inc("edgestore/trim_calls")
    metrics.observe("solver/round_wall_ns", 12_345)

A **process-global default registry** makes instrumentation free to
sprinkle anywhere (no plumbing through ten layers), and
:func:`isolated_registry` gives a run its own registry so concurrent or
consecutive runs don't bleed into each other's numbers::

    with metrics.isolated_registry() as reg:
        run_solver(...)
        snapshot = reg.snapshot()

Metric updates are a dict lookup plus an integer add — cheap enough for
per-round call sites, which is the granularity everything here targets
(never per-vertex or per-edge-position).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "isolated_registry",
    "inc",
    "set_gauge",
    "observe",
]

Number = Union[int, float]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number | None = None

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values: count / sum / min / max.

    Deliberately bucket-free — the full per-round series already lives in
    the span stream; the histogram is the cheap aggregate for rollups.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Number | None = None
        self.max: Number | None = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """One namespace of metrics; a name is bound to one kind forever."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view, grouped by kind, names sorted (for JSONL flushes)."""
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, histograms pool (count/sum/min/max combine exactly),
        gauges take the incoming value (last write wins, matching their
        single-registry semantics).  This is how the parallel executor
        re-aggregates per-worker registries into the parent's: merging the
        snapshots of N disjoint runs yields the same counters and
        histograms as running all N against one registry.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, h in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += h["count"]
            hist.total += h["sum"]
            for bound in ("min", "max"):
                incoming = h.get(bound)
                if incoming is None:
                    continue
                current = getattr(hist, bound)
                pick = min if bound == "min" else max
                setattr(hist, bound, incoming if current is None else pick(current, incoming))

    def reset(self) -> None:
        self._metrics.clear()


#: Stack of active registries; the top is what unqualified call sites hit.
_registry_stack: list[MetricsRegistry] = [MetricsRegistry()]


def default_registry() -> MetricsRegistry:
    """The registry unqualified call sites (``inc``/``observe``) write to."""
    return _registry_stack[-1]


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the bottom-of-stack process-global registry; returns the old one."""
    old = _registry_stack[0]
    _registry_stack[0] = registry
    return old


@contextmanager
def isolated_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Route all default-registry writes to a fresh registry for the block.

    Nestable; the previous default is restored on exit no matter how the
    block ends.
    """
    reg = registry if registry is not None else MetricsRegistry()
    _registry_stack.append(reg)
    try:
        yield reg
    finally:
        _registry_stack.pop()


def inc(name: str, amount: Number = 1) -> None:
    """Bump a counter in the current default registry."""
    default_registry().counter(name).inc(amount)


def set_gauge(name: str, value: Number) -> None:
    """Set a gauge in the current default registry."""
    default_registry().gauge(name).set(value)


def observe(name: str, value: Number) -> None:
    """Record one histogram observation in the current default registry."""
    default_registry().histogram(name).observe(value)
