"""repro.obs — runtime telemetry: spans, metrics, JSONL event streams.

The observability layer the experiment and service surfaces share:

* :mod:`repro.obs.tracer` — nested **spans** (`solver → phase → round`)
  capturing wall-time (``perf_counter_ns``), thread CPU time, GC pauses,
  optional allocation peaks, PRAM depth/work deltas from a
  :class:`~repro.pram.machine.CountingMachine`, and n/m shrinkage.  A
  disabled tracer is a shared no-op object, so instrumented hot paths cost
  nothing when telemetry is off.
* :mod:`repro.obs.metrics` — a named counter/gauge/histogram **registry**
  with a process-global default and per-run isolation.
* :mod:`repro.obs.events` — the versioned **JSONL sink**: every span close
  and metric flush appends one JSON line, so long campaigns stream
  telemetry instead of buffering it.
* :mod:`repro.obs.profile` — span-scoped **sampling profiler** plus the
  ``repro trace flame`` / speedscope renderers.
* :mod:`repro.obs.export` — **OpenMetrics** text rendering (and a minimal
  parser) for registry snapshots.
* :mod:`repro.obs.heartbeat` — periodic campaign **liveness** gauges
  (progress, throughput, ETA, worker utilization).
* :mod:`repro.obs.inspector` — offline span-tree reconstruction and the
  ``repro trace summary|compare|diff`` renderers.

Everything here depends only on the standard library and NumPy — the
solvers import :mod:`repro.obs` but never the other way around.
"""

from repro.obs.events import EVENT_VERSION, JsonlSink, MemorySink, read_events
from repro.obs.export import parse_openmetrics, render_openmetrics
from repro.obs.heartbeat import Heartbeat
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    isolated_registry,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    gc_watch,
    use_tracer,
)

__all__ = [
    "EVENT_VERSION",
    "JsonlSink",
    "MemorySink",
    "read_events",
    "render_openmetrics",
    "parse_openmetrics",
    "Heartbeat",
    "SamplingProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "isolated_registry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "gc_watch",
]
