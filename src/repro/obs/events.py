"""Versioned JSONL event stream.

One event per line, every line carrying ``"v": EVENT_VERSION``, so a
long-running campaign streams its telemetry to disk as it happens — a
crash loses at most the current line, and a reader can tail the file
while the run is still going.

Payload values are encoded losslessly for the types the solvers actually
emit: Python scalars pass through, NumPy scalars collapse to their Python
equivalents, and NumPy arrays are tagged with their dtype so
:func:`read_events` reconstructs them bit-for-bit::

    {"__ndarray__": {"dtype": "int64", "data": [1, 2, 3]}}

Anything else falls back to ``repr`` (events are diagnostics, not a
round-trip store for arbitrary objects — :mod:`repro.analysis.traces`
owns the full-fidelity result format).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO, Union

import numpy as np

__all__ = [
    "EVENT_VERSION",
    "JsonlSink",
    "MemorySink",
    "read_events",
    "iter_events",
    "to_jsonable",
    "from_jsonable",
]

#: Bump on any backwards-incompatible change to the event schema.
EVENT_VERSION = 1


def to_jsonable(value: Any) -> Any:
    """Encode *value* into JSON-native types (NumPy-aware, lossless arrays)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": {"dtype": str(value.dtype), "data": value.tolist()}}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return repr(value)


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable` (reconstructs tagged ndarrays with dtype)."""
    if isinstance(value, dict):
        if set(value) == {"__ndarray__"}:
            spec = value["__ndarray__"]
            return np.asarray(spec["data"], dtype=np.dtype(spec["dtype"]))
        return {k: from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    return value


class JsonlSink:
    """Append-per-event JSONL writer.

    Parameters
    ----------
    target:
        A path (the file is created/truncated and owned by the sink) or an
        open text file object (borrowed; :meth:`close` leaves it open).

    Every :meth:`emit` writes one line and flushes, so the stream on disk
    is always a valid prefix of the run's telemetry.  Emission is
    lock-serialised: a heartbeat thread can flush metrics events while
    the run thread emits spans without interleaving bytes mid-line.
    """

    def __init__(self, target: Union[str, Path, TextIO]):
        if isinstance(target, (str, Path)):
            self._fp: TextIO | None = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fp = target
            self._owns = False
        self._lock = threading.Lock()
        self.events_emitted = 0

    def emit(self, event: dict[str, Any]) -> None:
        """Append one versioned event line (raises if the sink is closed)."""
        doc = {"v": EVENT_VERSION, **to_jsonable(event)}
        line = json.dumps(doc, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fp is None:
                raise RuntimeError("sink already closed")
            self._fp.write(line)
            self._fp.flush()
            self.events_emitted += 1

    def close(self) -> None:
        """Close the underlying file if owned (idempotent)."""
        if self._fp is not None and self._owns:
            self._fp.close()
        self._fp = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySink:
    """In-memory sink collecting encoded events in a list.

    Used where a telemetry stream must be carried as a value instead of a
    file — chiefly worker processes of the parallel executor, which hand
    their span events back to the parent with each result.  Events are
    stored already :func:`to_jsonable`-encoded (version tag excluded), so
    the list pickles cheaply and re-emitting through a real sink adds the
    version exactly once.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self.events_emitted = 0

    def emit(self, event: dict[str, Any]) -> None:
        """Append one encoded event."""
        self.events.append(to_jsonable(event))
        self.events_emitted += 1

    def close(self) -> None:
        """No-op (the list remains readable)."""

    def __enter__(self) -> "MemorySink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_events(
    fp_or_path: Union[str, Path, TextIO],
    *,
    errors: str = "raise",
    on_bad_line: Callable[[int, str], None] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield decoded events from a JSONL stream, rejecting unknown versions.

    ``errors="skip"`` tolerates damaged streams — the truncated last line
    of a crashed run, a foreign version tag — by skipping bad lines
    instead of raising; each skip calls ``on_bad_line(lineno, reason)``
    so the caller can count and surface what was dropped.
    """
    if errors not in ("raise", "skip"):
        raise ValueError(f"errors must be 'raise' or 'skip': {errors!r}")
    if isinstance(fp_or_path, (str, Path)):
        fp: TextIO = open(fp_or_path, "r", encoding="utf-8")
        owns = True
    else:
        fp = fp_or_path
        owns = False
    try:
        for lineno, line in enumerate(fp, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
                if not isinstance(doc, dict):
                    raise ValueError(f"event is not an object: {doc!r:.60}")
                version = doc.get("v")
                if version != EVENT_VERSION:
                    raise ValueError(
                        f"unsupported event version {version!r} "
                        f"(this reader supports {EVENT_VERSION})"
                    )
            except ValueError as exc:
                if errors == "skip":
                    if on_bad_line is not None:
                        on_bad_line(lineno, str(exc))
                    continue
                raise ValueError(f"line {lineno}: {exc}") from None
            yield from_jsonable(doc)
    finally:
        if owns:
            fp.close()


def read_events(
    fp_or_path: Union[str, Path, TextIO],
    *,
    errors: str = "raise",
    on_bad_line: Callable[[int, str], None] | None = None,
) -> list[dict[str, Any]]:
    """All events of a JSONL stream as a list (see :func:`iter_events`)."""
    return list(iter_events(fp_or_path, errors=errors, on_bad_line=on_bad_line))
