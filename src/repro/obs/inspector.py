"""Offline inspection of telemetry streams — ``repro trace summary|compare|diff``.

Rebuilds the span tree from a JSONL telemetry file (spans are emitted on
*close*, children before parents, each carrying its parent id) and renders

* a **span tree** with sibling spans of the same name collapsed into one
  row (``bl/round ×41``) carrying count / wall / CPU / PRAM rollups,
* a flat **per-phase rollup table** including the resource attribution
  (CPU time, GC pauses, allocation peaks) captured by the tracer, and
* **sparklines** of per-round wall-times (via
  :mod:`repro.analysis.sparkline`) so hot rounds are visible at a glance.

``compare`` renders two streams side by side with wall-time deltas; the
structural ``diff`` (:func:`render_diff`) goes further for regression
forensics: span groups are keyed by their *path* in the tree
(``sbl/solve>bl/solve>bl/round``), so the same span name in different
phases stays separate, and groups are ranked by wall/CPU delta — the top
row names the culprit phase of a perf regression.

Loading is tolerant of damaged streams (the truncated last line a crashed
worker leaves behind): bad lines are skipped and counted, and the
renderers surface the count instead of refusing the whole file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

from repro.analysis.sparkline import trajectory
from repro.analysis.tables import render_table
from repro.obs.events import read_events

__all__ = [
    "SpanNode",
    "TraceDoc",
    "TraceError",
    "load_trace",
    "render_summary",
    "render_compare",
    "render_diff",
]


class TraceError(ValueError):
    """A trace operation cannot produce a meaningful result (clean CLI error)."""


@dataclass
class SpanNode:
    """One span event, linked into the reconstructed tree."""

    span_id: int
    name: str
    wall_ns: int
    parent_id: int | None = None
    cpu_ns: int | None = None
    pram: dict[str, int] | None = None
    gc_pauses: dict[str, int] | None = None
    mem: dict[str, int] | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)


@dataclass
class TraceDoc:
    """A parsed telemetry stream: run preamble, span forest, metric flushes."""

    run: dict[str, Any] | None
    spans: list[SpanNode]
    roots: list[SpanNode]
    metrics: dict[str, Any] | None
    profiles: list[dict[str, Any]] = field(default_factory=list)
    #: ``(lineno, reason)`` for every line skipped by the tolerant reader.
    skipped: list[tuple[int, str]] = field(default_factory=list)


def load_trace(path: Union[str, Path]) -> TraceDoc:
    """Parse a telemetry JSONL file and rebuild the span tree.

    Damaged lines (truncated JSON, unknown versions) are skipped and
    recorded in ``doc.skipped`` rather than raising — a crashed worker's
    partial flush should not make its own post-mortem unreadable.
    """
    run: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    spans: list[SpanNode] = []
    profiles: list[dict[str, Any]] = []
    skipped: list[tuple[int, str]] = []
    events = read_events(
        path, errors="skip", on_bad_line=lambda n, why: skipped.append((n, why))
    )
    for event in events:
        kind = event.get("type")
        if kind == "span":
            spans.append(
                SpanNode(
                    span_id=event["id"],
                    name=event["name"],
                    wall_ns=event["wall_ns"],
                    parent_id=event.get("parent"),
                    cpu_ns=event.get("cpu_ns"),
                    pram=event.get("pram"),
                    gc_pauses=event.get("gc"),
                    mem=event.get("mem"),
                    attrs=event.get("attrs", {}),
                )
            )
        elif kind == "run" and run is None:
            run = event
        elif kind == "metrics":
            metrics = event.get("metrics")  # last flush wins
        elif kind == "profile":
            profiles.append(event)
    by_id = {s.span_id: s for s in spans}
    roots: list[SpanNode] = []
    for s in spans:
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is None:
            roots.append(s)
        else:
            parent.children.append(s)
    # Children accumulated in close order (deepest first); restore open order.
    for s in spans:
        s.children.sort(key=lambda c: c.span_id)
    roots.sort(key=lambda s: s.span_id)
    return TraceDoc(
        run=run, spans=spans, roots=roots, metrics=metrics,
        profiles=profiles, skipped=skipped,
    )


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


@dataclass
class _Group:
    """Same-named sibling spans merged into one tree row."""

    name: str
    spans: list[SpanNode]

    @property
    def count(self) -> int:
        return len(self.spans)

    @property
    def wall_ns(self) -> int:
        return sum(s.wall_ns for s in self.spans)

    @property
    def cpu_ns(self) -> int | None:
        cpus = [s.cpu_ns for s in self.spans if s.cpu_ns is not None]
        return sum(cpus) if cpus else None

    def pram_totals(self) -> tuple[int, int] | None:
        prams = [s.pram for s in self.spans if s.pram is not None]
        if not prams:
            return None
        return sum(p["depth"] for p in prams), sum(p["work"] for p in prams)

    def gc_totals(self) -> tuple[int, int] | None:
        pauses = [s.gc_pauses for s in self.spans if s.gc_pauses is not None]
        if not pauses:
            return None
        return sum(p["count"] for p in pauses), sum(p["pause_ns"] for p in pauses)

    def mem_peak(self) -> int | None:
        peaks = [s.mem["peak"] for s in self.spans if s.mem is not None]
        return max(peaks) if peaks else None


def _group_by_name(spans: list[SpanNode]) -> list[_Group]:
    order: dict[str, _Group] = {}
    for s in spans:
        g = order.get(s.name)
        if g is None:
            order[s.name] = _Group(s.name, [s])
        else:
            g.spans.append(s)
    return list(order.values())


def _render_tree(groups: list[_Group], lines: list[str], indent: int) -> None:
    for g in groups:
        pram = g.pram_totals()
        pram_txt = f"  depth {pram[0]}  work {pram[1]}" if pram else ""
        cpu = g.cpu_ns
        cpu_txt = f"  cpu {_fmt_ms(cpu)}" if cpu is not None else ""
        label = f"{'  ' * indent}{g.name}"
        lines.append(
            f"{label:<34} ×{g.count:<5} {_fmt_ms(g.wall_ns):>10} ms{cpu_txt}{pram_txt}"
        )
        _render_tree(
            _group_by_name([c for s in g.spans for c in s.children]), lines, indent + 1
        )


def _flat_rollup(spans: list[SpanNode]) -> list[_Group]:
    return _group_by_name(spans)


def _skip_warning(doc: TraceDoc) -> str | None:
    if not doc.skipped:
        return None
    first = doc.skipped[0]
    return (
        f"warning: skipped {len(doc.skipped)} unparseable line(s) "
        f"(first: line {first[0]}: {first[1]})"
    )


def render_summary(path: Union[str, Path], *, width: int = 60) -> str:
    """Human-readable summary of one telemetry stream."""
    doc = load_trace(path)
    lines: list[str] = []
    warn = _skip_warning(doc)
    if warn:
        lines.append(warn)
    if doc.run is not None:
        bits = [
            f"{k}={doc.run[k]}"
            for k in ("command", "algorithm", "instance", "seed", "n", "m")
            if k in doc.run
        ]
        lines.append(f"run: {'  '.join(bits)}")
    if not doc.spans:
        lines.append("no spans recorded")
        return "\n".join(lines)

    lines.append("")
    lines.append("span tree (siblings collapsed by name):")
    _render_tree(_group_by_name(doc.roots), lines, 1)

    rollup = _flat_rollup(doc.spans)
    has_gc = any(g.gc_totals() for g in rollup)
    has_mem = any(g.mem_peak() is not None for g in rollup)
    headers = ["span", "count", "total ms", "cpu ms", "mean ms", "pram depth", "pram work"]
    if has_gc:
        headers.append("gc ms")
    if has_mem:
        headers.append("peak KiB")
    rows = []
    for g in sorted(rollup, key=lambda g: -g.wall_ns):
        pram = g.pram_totals()
        cpu = g.cpu_ns
        row = [
            g.name,
            g.count,
            _fmt_ms(g.wall_ns),
            _fmt_ms(cpu) if cpu is not None else "—",
            _fmt_ms(g.wall_ns / g.count),
            pram[0] if pram else "—",
            pram[1] if pram else "—",
        ]
        if has_gc:
            gc = g.gc_totals()
            row.append(_fmt_ms(gc[1]) if gc else "—")
        if has_mem:
            peak = g.mem_peak()
            row.append(f"{peak / 1024:.1f}" if peak is not None else "—")
        rows.append(row)
    lines.append("")
    lines.append(render_table(headers, rows, title="per-phase rollup"))

    spark_rows = [
        trajectory(g.name, [s.wall_ns / 1e6 for s in g.spans], width=width)
        for g in rollup
        if g.count >= 2
    ]
    if spark_rows:
        lines.append("")
        lines.append("per-span wall-time trajectories (ms):")
        lines.extend(spark_rows)

    if doc.profiles:
        n = sum(p.get("samples", 0) for p in doc.profiles)
        lines.append("")
        lines.append(
            f"{len(doc.profiles)} profile event(s), {n} samples — "
            f"render with 'repro trace flame'"
        )

    if doc.metrics:
        counters = doc.metrics.get("counters", {})
        shape: dict[tuple[str, str], Any] = {}
        for key, value in counters.items():
            if key.startswith("kernels/dispatch_shape/"):
                _, bucket, backend = key.rsplit("/", 2)
                shape[(bucket, backend)] = value
        if shape:
            # Decision provenance: cost-model picks vs static-envelope
            # fallbacks — drift here is how a stale calibration shows up.
            modes = {
                k.rsplit("/", 1)[1]: v
                for k, v in counters.items()
                if k.startswith("kernels/dispatch_mode/")
            }
            title = "kernel dispatch (backend x shape bucket)"
            if modes:
                title += "  |  " + "  ".join(
                    f"{k}: {v}" for k, v in sorted(modes.items())
                )
            lines.append("")
            lines.append(
                render_table(
                    ["shape bucket", "backend", "decisions"],
                    [[b, be, v] for (b, be), v in sorted(shape.items())],
                    title=title,
                )
            )
        repair: dict[tuple[str, str], Any] = {}
        for key, value in counters.items():
            if key.startswith("dynamic/decision/"):
                _, cell, strategy = key.rsplit("/", 2)
                repair[(cell, strategy)] = value
        if repair:
            # Repair-vs-recompute provenance: which delta band each
            # decision landed in, and whether the measured crossover or
            # the static fallback made the call.
            modes = {
                k.rsplit("/", 1)[1]: v
                for k, v in counters.items()
                if k.startswith("dynamic/decision_mode/")
            }
            title = "repair decisions (strategy x shape:delta band)"
            if modes:
                title += "  |  " + "  ".join(
                    f"{k}: {v}" for k, v in sorted(modes.items())
                )
            lines.append("")
            lines.append(
                render_table(
                    ["shape:delta band", "strategy", "decisions"],
                    [[c, s, v] for (c, s), v in sorted(repair.items())],
                    title=title,
                )
            )
        if counters:
            lines.append("")
            lines.append(
                render_table(
                    ["counter", "value"],
                    [[k, v] for k, v in counters.items()],
                    title="counters",
                )
            )
    return "\n".join(lines)


def render_compare(path_a: Union[str, Path], path_b: Union[str, Path]) -> str:
    """Side-by-side per-phase wall-time comparison of two telemetry streams.

    Raises :class:`TraceError` when the two streams share no span names —
    comparing disjoint traces produces only noise, and the CLI turns this
    into a clean nonzero exit instead of a misleading table.
    """
    a = {g.name: g for g in _flat_rollup(load_trace(path_a).spans)}
    b = {g.name: g for g in _flat_rollup(load_trace(path_b).spans)}
    if not set(a) & set(b):
        raise TraceError(
            f"traces share no span names (A has {sorted(a) or 'none'}, "
            f"B has {sorted(b) or 'none'}) — nothing comparable"
        )
    names = sorted(set(a) | set(b), key=lambda n: -(a[n].wall_ns if n in a else 0))
    rows = []
    for name in names:
        ga, gb = a.get(name), b.get(name)
        wa = ga.wall_ns if ga else 0
        wb = gb.wall_ns if gb else 0
        delta = f"{(wb - wa) / wa * 100:+.1f}%" if wa else "—"
        rows.append(
            [
                name,
                ga.count if ga else 0,
                gb.count if gb else 0,
                _fmt_ms(wa),
                _fmt_ms(wb),
                delta,
            ]
        )
    return render_table(
        ["span", "count A", "count B", "ms A", "ms B", "Δ wall"],
        rows,
        title=f"trace compare: A={path_a}  B={path_b}",
    )


# ---------------------------------------------------------------------------
# structural diff (regression forensics)
# ---------------------------------------------------------------------------
def _path_groups(roots: list[SpanNode]) -> dict[str, dict[str, Any]]:
    """Aggregate spans by tree path (``parent>child>…``, names collapsed).

    ``self_ns`` is the group's wall time exclusive of its children — the
    ranking metric for the diff, since inclusive deltas propagate to every
    ancestor and would let the root eclipse the actual culprit phase.
    """
    acc: dict[str, dict[str, Any]] = {}

    def walk(nodes: list[SpanNode], prefix: str) -> None:
        for g in _group_by_name(nodes):
            path = f"{prefix}>{g.name}" if prefix else g.name
            entry = acc.setdefault(
                path, {"count": 0, "wall_ns": 0, "self_ns": 0, "cpu_ns": 0}
            )
            children = [c for s in g.spans for c in s.children]
            entry["count"] += g.count
            entry["wall_ns"] += g.wall_ns
            entry["self_ns"] += g.wall_ns - sum(c.wall_ns for c in children)
            entry["cpu_ns"] += g.cpu_ns or 0
            walk(children, path)

    walk(roots, "")
    return acc


def render_diff(
    path_a: Union[str, Path], path_b: Union[str, Path], *, top: int = 0
) -> str:
    """Structural span-tree diff of two traces, ranked by self-time delta.

    Span groups are keyed by their full path in the tree, so ``bl/round``
    under ``sbl/outer_round`` and ``bl/round`` under a direct ``bl/solve``
    are distinct rows.  Rows sort by Δself (wall time exclusive of
    children) descending — the top row is the phase that itself regressed
    hardest from A to B, not merely an ancestor of one (negative deltas
    are improvements).  Groups present on only one side count the other
    side as zero.  ``top`` limits the table to the N largest absolute
    deltas.

    Raises :class:`TraceError` when the traces share no span paths.
    """
    doc_a, doc_b = load_trace(path_a), load_trace(path_b)
    ga, gb = _path_groups(doc_a.roots), _path_groups(doc_b.roots)
    if not set(ga) & set(gb):
        raise TraceError(
            "traces share no span paths — the runs have disjoint structure; "
            "use 'trace summary' on each instead"
        )

    def dself(p: str) -> int:
        return gb.get(p, {}).get("self_ns", 0) - ga.get(p, {}).get("self_ns", 0)

    paths = sorted(set(ga) | set(gb), key=lambda p: -dself(p))
    if top > 0:
        paths = sorted(paths, key=lambda p: -abs(dself(p)))[:top]
        paths = sorted(paths, key=lambda p: -dself(p))
    rows = []
    empty = {"count": 0, "wall_ns": 0, "self_ns": 0, "cpu_ns": 0}
    for path in paths:
        ea = ga.get(path, empty)
        eb = gb.get(path, empty)
        dwall = eb["wall_ns"] - ea["wall_ns"]
        dcpu = eb["cpu_ns"] - ea["cpu_ns"]
        ratio = f"{eb['wall_ns'] / ea['wall_ns']:.2f}x" if ea["wall_ns"] else "new"
        rows.append(
            [
                path,
                f"{ea['count']}→{eb['count']}",
                _fmt_ms(ea["wall_ns"]),
                _fmt_ms(eb["wall_ns"]),
                f"{dwall / 1e6:+.3f}",
                f"{dself(path) / 1e6:+.3f}",
                f"{dcpu / 1e6:+.3f}",
                ratio,
            ]
        )
    title = f"trace diff (ranked by Δself): A={path_a}  B={path_b}"
    table = render_table(
        ["span path", "count", "ms A", "ms B", "Δwall ms", "Δself ms", "Δcpu ms", "ratio"],
        rows,
        title=title,
    )
    lines = [table]
    for doc, label in ((doc_a, "A"), (doc_b, "B")):
        warn = _skip_warning(doc)
        if warn:
            lines.append(f"[{label}] {warn}")
    return "\n".join(lines)
