"""Offline inspection of telemetry streams — ``repro trace summary|compare``.

Rebuilds the span tree from a JSONL telemetry file (spans are emitted on
*close*, children before parents, each carrying its parent id) and renders

* a **span tree** with sibling spans of the same name collapsed into one
  row (``bl/round ×41``) carrying count / total wall-time / PRAM rollups,
* a flat **per-phase rollup table**, and
* **sparklines** of per-round wall-times (via
  :mod:`repro.analysis.sparkline`) so hot rounds are visible at a glance.

``compare`` renders two streams side by side with wall-time deltas —
the before/after view for perf work on the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

from repro.analysis.sparkline import trajectory
from repro.analysis.tables import render_table
from repro.obs.events import read_events

__all__ = ["SpanNode", "TraceDoc", "load_trace", "render_summary", "render_compare"]


@dataclass
class SpanNode:
    """One span event, linked into the reconstructed tree."""

    span_id: int
    name: str
    wall_ns: int
    parent_id: int | None = None
    pram: dict[str, int] | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)


@dataclass
class TraceDoc:
    """A parsed telemetry stream: run preamble, span forest, metric flushes."""

    run: dict[str, Any] | None
    spans: list[SpanNode]
    roots: list[SpanNode]
    metrics: dict[str, Any] | None


def load_trace(path: Union[str, Path]) -> TraceDoc:
    """Parse a telemetry JSONL file and rebuild the span tree."""
    run: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    spans: list[SpanNode] = []
    for event in read_events(path):
        kind = event.get("type")
        if kind == "span":
            spans.append(
                SpanNode(
                    span_id=event["id"],
                    name=event["name"],
                    wall_ns=event["wall_ns"],
                    parent_id=event.get("parent"),
                    pram=event.get("pram"),
                    attrs=event.get("attrs", {}),
                )
            )
        elif kind == "run" and run is None:
            run = event
        elif kind == "metrics":
            metrics = event.get("metrics")  # last flush wins
    by_id = {s.span_id: s for s in spans}
    roots: list[SpanNode] = []
    for s in spans:
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is None:
            roots.append(s)
        else:
            parent.children.append(s)
    # Children accumulated in close order (deepest first); restore open order.
    for s in spans:
        s.children.sort(key=lambda c: c.span_id)
    roots.sort(key=lambda s: s.span_id)
    return TraceDoc(run=run, spans=spans, roots=roots, metrics=metrics)


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


@dataclass
class _Group:
    """Same-named sibling spans merged into one tree row."""

    name: str
    spans: list[SpanNode]

    @property
    def count(self) -> int:
        return len(self.spans)

    @property
    def wall_ns(self) -> int:
        return sum(s.wall_ns for s in self.spans)

    def pram_totals(self) -> tuple[int, int] | None:
        prams = [s.pram for s in self.spans if s.pram is not None]
        if not prams:
            return None
        return sum(p["depth"] for p in prams), sum(p["work"] for p in prams)


def _group_by_name(spans: list[SpanNode]) -> list[_Group]:
    order: dict[str, _Group] = {}
    for s in spans:
        g = order.get(s.name)
        if g is None:
            order[s.name] = _Group(s.name, [s])
        else:
            g.spans.append(s)
    return list(order.values())


def _render_tree(groups: list[_Group], lines: list[str], indent: int) -> None:
    for g in groups:
        pram = g.pram_totals()
        pram_txt = f"  depth {pram[0]}  work {pram[1]}" if pram else ""
        label = f"{'  ' * indent}{g.name}"
        lines.append(f"{label:<34} ×{g.count:<5} {_fmt_ms(g.wall_ns):>10} ms{pram_txt}")
        _render_tree(
            _group_by_name([c for s in g.spans for c in s.children]), lines, indent + 1
        )


def _flat_rollup(spans: list[SpanNode]) -> list[_Group]:
    return _group_by_name(spans)


def render_summary(path: Union[str, Path], *, width: int = 60) -> str:
    """Human-readable summary of one telemetry stream."""
    doc = load_trace(path)
    lines: list[str] = []
    if doc.run is not None:
        bits = [
            f"{k}={doc.run[k]}"
            for k in ("command", "algorithm", "instance", "seed", "n", "m")
            if k in doc.run
        ]
        lines.append(f"run: {'  '.join(bits)}")
    if not doc.spans:
        lines.append("no spans recorded")
        return "\n".join(lines)

    lines.append("")
    lines.append("span tree (siblings collapsed by name):")
    _render_tree(_group_by_name(doc.roots), lines, 1)

    rollup = _flat_rollup(doc.spans)
    rows = []
    for g in sorted(rollup, key=lambda g: -g.wall_ns):
        pram = g.pram_totals()
        rows.append(
            [
                g.name,
                g.count,
                _fmt_ms(g.wall_ns),
                _fmt_ms(g.wall_ns / g.count),
                pram[0] if pram else "—",
                pram[1] if pram else "—",
            ]
        )
    lines.append("")
    lines.append(
        render_table(
            ["span", "count", "total ms", "mean ms", "pram depth", "pram work"],
            rows,
            title="per-phase rollup",
        )
    )

    spark_rows = [
        trajectory(g.name, [s.wall_ns / 1e6 for s in g.spans], width=width)
        for g in rollup
        if g.count >= 2
    ]
    if spark_rows:
        lines.append("")
        lines.append("per-span wall-time trajectories (ms):")
        lines.extend(spark_rows)

    if doc.metrics:
        counters = doc.metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append(
                render_table(
                    ["counter", "value"],
                    [[k, v] for k, v in counters.items()],
                    title="counters",
                )
            )
    return "\n".join(lines)


def render_compare(path_a: Union[str, Path], path_b: Union[str, Path]) -> str:
    """Side-by-side per-phase wall-time comparison of two telemetry streams."""
    a = {g.name: g for g in _flat_rollup(load_trace(path_a).spans)}
    b = {g.name: g for g in _flat_rollup(load_trace(path_b).spans)}
    names = sorted(set(a) | set(b), key=lambda n: -(a[n].wall_ns if n in a else 0))
    rows = []
    for name in names:
        ga, gb = a.get(name), b.get(name)
        wa = ga.wall_ns if ga else 0
        wb = gb.wall_ns if gb else 0
        delta = f"{(wb - wa) / wa * 100:+.1f}%" if wa else "—"
        rows.append(
            [
                name,
                ga.count if ga else 0,
                gb.count if gb else 0,
                _fmt_ms(wa),
                _fmt_ms(wb),
                delta,
            ]
        )
    return render_table(
        ["span", "count A", "count B", "ms A", "ms B", "Δ wall"],
        rows,
        title=f"trace compare: A={path_a}  B={path_b}",
    )
