"""Span tracing for solver runs.

A span is one timed region of a run — ``sbl/solve``, ``sbl/outer_round``,
``bl/round`` — opened as a context manager::

    with tracer.span("sbl/outer_round", machine=mach, round=i, n=n0, m=m0) as sp:
        ...
        sp.set(n_after=n1, m_after=m1)

On close the span captures

* **wall-time** via ``time.perf_counter_ns``,
* **CPU time** via ``time.thread_time_ns`` — the thread's actual
  compute, so a span that waited (GC, page faults, a sleeping worker)
  shows ``cpu_ns`` well under ``wall_ns``,
* **GC pauses** that fired inside the span (count and pause nanoseconds,
  accumulated by a process-wide ``gc.callbacks`` hook that is installed
  only while an enabled tracer exists),
* **allocation deltas** (net bytes and peak-above-entry) when the tracer
  was built with ``track_memory=True`` — backed by :mod:`tracemalloc`,
  with child peaks folded into their parents so a parent's peak is never
  below a child's,
* **PRAM depth/work deltas** read off the *machine*'s ``depth``/``work``
  attributes (a :class:`~repro.pram.machine.CountingMachine`; a
  :class:`~repro.pram.machine.NullMachine` contributes nothing), and
* the free-form attributes (n/m shrinkage, round index, probabilities),

and emits exactly one JSONL event through the tracer's sink.  Spans nest:
the tracer keeps an open-span stack, so parent links reproduce the
solver → phase → round structure without the call sites threading ids.

**The disabled path costs nothing.**  :data:`NULL_TRACER` returns one
shared no-op span whose ``__enter__``/``__exit__``/``set`` do nothing —
no allocation, no clock read — which is what preserves the vectorised
kernel wins when telemetry is off (guard with ``tracer.enabled`` before
computing anything expensive purely for telemetry).  The GC hook and
tracemalloc are likewise only ever touched by enabled tracers.

Solvers resolve their tracer as ``tracer if tracer is not None else
current_tracer()``: an *ambient* tracer installed with
:func:`use_tracer` reaches every solver call in the block — this is how
``--telemetry`` instruments experiment runners without changing their
signatures.
"""

from __future__ import annotations

import gc
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.events import JsonlSink
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "gc_watch",
]


class _GcWatch:
    """Process-wide GC pause accumulator (one ``gc.callbacks`` hook).

    Installed refcounted by enabled tracers; spans read the running
    totals at open/close and record the deltas.  The callback itself is
    two attribute writes per collection — negligible next to the
    collection it measures — and is removed again when the last tracer
    holding it closes.
    """

    __slots__ = ("collections", "pause_ns", "_refs", "_t0")

    def __init__(self) -> None:
        self.collections = 0
        self.pause_ns = 0
        self._refs = 0
        self._t0 = 0

    def _callback(self, phase: str, info: dict[str, Any]) -> None:
        if phase == "start":
            self._t0 = time.perf_counter_ns()
        else:
            self.collections += 1
            self.pause_ns += time.perf_counter_ns() - self._t0

    def acquire(self) -> None:
        if self._refs == 0 and self._callback not in gc.callbacks:
            gc.callbacks.append(self._callback)
        self._refs += 1

    def release(self) -> None:
        self._refs = max(0, self._refs - 1)
        if self._refs == 0 and self._callback in gc.callbacks:
            gc.callbacks.remove(self._callback)


#: The module-level GC watcher enabled tracers share.
gc_watch = _GcWatch()


class Span:
    """One open telemetry region (created by :meth:`Tracer.span`).

    After ``__exit__`` the measured ``wall_ns``, ``cpu_ns`` and, when
    present, ``pram`` (``{"depth": …, "work": …}``), ``gc_pauses``
    (``{"count": …, "pause_ns": …}``) and ``mem`` (``{"net": …,
    "peak": …}`` bytes) are available on the object.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "wall_ns",
        "cpu_ns",
        "pram",
        "gc_pauses",
        "mem",
        "_tracer",
        "_machine",
        "_t0",
        "_cpu0",
        "_gc0",
        "_mem0",
        "_peak",
        "_depth0",
        "_work0",
    )

    def __init__(self, tracer: "Tracer", name: str, machine: Any, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self._machine = machine
        self.span_id: int = -1
        self.parent_id: int | None = None
        self.wall_ns: int = 0
        self.cpu_ns: int = 0
        self.pram: dict[str, int] | None = None
        self.gc_pauses: dict[str, int] | None = None
        self.mem: dict[str, int] | None = None
        self._t0 = 0
        self._cpu0 = 0
        self._gc0 = (0, 0)
        self._mem0: int | None = None
        self._peak: int = 0
        self._depth0: int | None = None
        self._work0: int | None = None

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        machine = self._machine
        depth = getattr(machine, "depth", None)
        if depth is not None:
            self._depth0 = depth
            self._work0 = machine.work
        if self._tracer.track_memory and tracemalloc.is_tracing():
            cur, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            self._mem0 = cur
            self._peak = cur
        self._gc0 = (gc_watch.collections, gc_watch.pause_ns)
        self._cpu0 = time.thread_time_ns()
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_ns = self._tracer._clock() - self._t0
        self.cpu_ns = time.thread_time_ns() - self._cpu0
        gc_count = gc_watch.collections - self._gc0[0]
        if gc_count:
            self.gc_pauses = {
                "count": gc_count,
                "pause_ns": gc_watch.pause_ns - self._gc0[1],
            }
        if self._depth0 is not None:
            machine = self._machine
            self.pram = {
                "depth": machine.depth - self._depth0,
                "work": machine.work - self._work0,
            }
        peak = None
        if self._mem0 is not None and tracemalloc.is_tracing():
            cur, peak = tracemalloc.get_traced_memory()
            peak = max(self._peak, peak)
            self.mem = {"net": cur - self._mem0, "peak": max(0, peak - self._mem0)}
            tracemalloc.reset_peak()
        self._tracer._close(self)
        if peak is not None:
            # after the pop: fold this span's absolute peak into its parent
            self._tracer._fold_peak(peak)


class _NullSpan:
    """The shared do-nothing span (see :data:`NULL_TRACER`)."""

    __slots__ = ()

    name = "null"
    attrs: dict[str, Any] = {}
    span_id = -1
    parent_id = None
    wall_ns = 0
    cpu_ns = 0
    pram = None
    gc_pauses = None
    mem = None

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every span is the shared no-op span.

    ``enabled`` is ``False`` so call sites can skip telemetry-only
    computation entirely.
    """

    enabled = False
    track_memory = False

    def span(self, name: str, *, machine: Any = None, **attrs: Any) -> _NullSpan:  # noqa: D102
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        wall_ns: int,
        *,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> int:  # noqa: D102
        return -1

    def flush_metrics(self, registry: MetricsRegistry | None = None) -> None:  # noqa: D102
        pass

    def close(self) -> None:  # noqa: D102
        pass


#: The process-wide disabled tracer (a singleton; identity-comparable).
NULL_TRACER = NullTracer()


class Tracer:
    """Emitting tracer: each span close appends one event to *sink*.

    Parameters
    ----------
    sink:
        The sink events stream to — a :class:`~repro.obs.events.JsonlSink`
        (file-backed) or :class:`~repro.obs.events.MemorySink` (in-memory,
        used by executor workers).
    registry:
        Metrics registry :meth:`flush_metrics` snapshots (defaults to the
        ambient default registry at flush time).
    track_memory:
        Opt in to per-span allocation tracking.  Starts :mod:`tracemalloc`
        if it is not already tracing (and stops it again on :meth:`close`
        if this tracer started it).  Tracing multiplies allocation cost,
        so this is off by default and never touched when disabled.
    clock:
        Nanosecond clock (injectable for tests).
    """

    enabled = True

    def __init__(
        self,
        sink: JsonlSink,
        *,
        registry: MetricsRegistry | None = None,
        track_memory: bool = False,
        clock=time.perf_counter_ns,
    ):
        self.sink = sink
        self.registry = registry
        self.track_memory = bool(track_memory)
        self._clock = clock
        self._stack: list[Span] = []
        self._next_id = 1
        self._id_lock = threading.Lock()
        self._owns_tracemalloc = False
        if self.track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        gc_watch.acquire()
        self._watching_gc = True

    def span(self, name: str, *, machine: Any = None, **attrs: Any) -> Span:
        """Open a new span; use as a context manager."""
        return Span(self, name, machine, attrs)

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span (``None`` outside any span)."""
        stack = self._stack
        return stack[-1].span_id if stack else None

    def reserve_ids(self, count: int) -> int:
        """Reserve *count* span ids; returns the offset to add to ``1…count``.

        Used when splicing a foreign event stream (a worker's spans, whose
        ids start at 1) into this tracer's stream: remapping foreign id
        ``i`` to ``reserve_ids(max_foreign_id) + i`` keeps ids unique
        without coordinating id allocation across processes.
        """
        with self._id_lock:
            base = self._next_id - 1
            self._next_id += max(0, int(count))
        return base

    def record_span(
        self,
        name: str,
        wall_ns: int,
        *,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> int:
        """Emit a completed span measured by the caller; returns its id.

        The context-manager form assumes strict LIFO nesting on one
        thread, which the asyncio solve service cannot provide: its
        request lifetimes interleave freely on the event loop.  The
        service measures each request's wall-time itself and records the
        finished span here — id allocation is lock-guarded so event-loop
        requests and dispatch-thread spans never collide, and ``parent_id``
        (typically the long-lived root span of the run) keeps the offline
        tree connected.
        """
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        event: dict[str, Any] = {
            "type": "span",
            "id": span_id,
            "name": name,
            "wall_ns": int(wall_ns),
            "cpu_ns": 0,
        }
        if parent_id is not None:
            event["parent"] = parent_id
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)
        return span_id

    # -- internal span lifecycle ----------------------------------------
    def _open(self, span: Span) -> None:
        with self._id_lock:
            span.span_id = self._next_id
            self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)

    def _fold_peak(self, peak: int) -> None:
        """Fold a closing child's absolute peak into its parent span."""
        for parent in reversed(self._stack):
            if parent._mem0 is not None:
                parent._peak = max(parent._peak, peak)
                return

    def _close(self, span: Span) -> None:
        # Robust to exceptions unwinding several spans at once: pop back
        # to (and including) this span rather than assuming perfect LIFO.
        while self._stack:
            if self._stack.pop() is span:
                break
        event: dict[str, Any] = {
            "type": "span",
            "id": span.span_id,
            "name": span.name,
            "wall_ns": span.wall_ns,
            "cpu_ns": span.cpu_ns,
        }
        if span.parent_id is not None:
            event["parent"] = span.parent_id
        if span.pram is not None:
            event["pram"] = span.pram
        if span.gc_pauses is not None:
            event["gc"] = span.gc_pauses
        if span.mem is not None:
            event["mem"] = span.mem
        if span.attrs:
            event["attrs"] = span.attrs
        self.sink.emit(event)

    # -- auxiliary events ------------------------------------------------
    def emit(self, type: str, **payload: Any) -> None:
        """Emit a non-span event (e.g. run preamble) through the sink."""
        self.sink.emit({"type": type, **payload})

    def flush_metrics(self, registry: MetricsRegistry | None = None) -> None:
        """Append one ``metrics`` event with a registry snapshot."""
        reg = registry or self.registry or default_registry()
        self.sink.emit({"type": "metrics", "metrics": reg.snapshot()})

    def close(self) -> None:
        """Close the underlying sink and release resource hooks (idempotent)."""
        if self._watching_gc:
            gc_watch.release()
            self._watching_gc = False
        if self._owns_tracemalloc:
            tracemalloc.stop()
            self._owns_tracemalloc = False
        self.sink.close()


#: The ambient tracer solvers fall back to when none is passed explicitly.
_current: NullTracer | Tracer = NULL_TRACER


def current_tracer() -> NullTracer | Tracer:
    """The ambient tracer (``NULL_TRACER`` unless :func:`use_tracer` is active)."""
    return _current


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as the ambient tracer for the block (nestable)."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
