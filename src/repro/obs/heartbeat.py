"""Campaign liveness: a periodic flush of progress gauges.

Long campaigns and fuzz runs used to be black boxes until they returned.
:class:`Heartbeat` is a daemon thread that, every ``interval`` seconds,
reads the executor's progress counters off a metrics registry
(``exec/cells_scheduled``/``exec/cells_done``/``exec/cell_wall_ns`` and
their ``tasks`` twins, maintained by
:class:`~repro.exec.runner.ParallelRunner` and the serial campaign loop),
derives the liveness gauges

* ``exec/cells_done`` / ``exec/cells_total`` — progress through the grid,
* ``exec/cells_per_s`` — throughput over the last beat,
* ``exec/eta_s`` — remaining cells at that throughput,
* ``exec/worker_utilization`` — fraction of worker·seconds spent inside
  cells (from the cell wall-time counter; 1.0 = all workers busy),

and publishes them twice over: a ``metrics`` event on the telemetry
stream (so the JSONL file shows in-flight snapshots, not just the final
one) and, optionally, an OpenMetrics textfile rewritten atomically each
beat — the scrape surface for Prometheus' textfile collector or a quick
``watch cat``.

The beat body is pure reads plus a few gauge writes; with no heartbeat
constructed nothing runs and nothing is paid.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Union

from repro.obs.export import render_openmetrics
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["Heartbeat"]


class Heartbeat:
    """Periodic progress-gauge flusher (daemon thread; use as context manager).

    Parameters
    ----------
    interval:
        Seconds between beats (> 0).
    registry:
        The registry to read counters from and write gauges to (defaults
        to the ambient default registry *at construction*, so it composes
        with ``isolated_registry``).
    tracer:
        When given (and enabled), each beat appends one ``metrics`` event
        to its stream.
    textfile:
        When given, each beat atomically rewrites this path with the
        OpenMetrics rendering of the registry snapshot.
    labels:
        Extra labels stamped on every exported sample.
    extra:
        Optional callable returning ``{gauge_name: value}``; invoked at
        the top of every beat and each pair written as a gauge before the
        snapshot is published.  This is how a subsystem with its own
        derived liveness numbers (the solve service's queue depth, batch
        occupancy, cache hit rate and latency percentiles) rides the
        existing heartbeat/OpenMetrics path instead of growing a second
        exporter.  Exceptions from the hook are swallowed — liveness
        reporting must never take down the run it reports on.
    """

    def __init__(
        self,
        interval: float,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Any = None,
        textfile: Union[str, Path, None] = None,
        labels: dict[str, str] | None = None,
        extra: Callable[[], Mapping[str, float]] | None = None,
        clock=time.monotonic,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive: {interval}")
        self.interval = float(interval)
        self.registry = registry if registry is not None else default_registry()
        self.tracer = tracer
        self.textfile = Path(textfile) if textfile is not None else None
        self.labels = labels
        self.extra = extra
        self.beats = 0
        self._clock = clock
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_t: float | None = None
        self._last_done = 0
        self._last_busy_ns = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "Heartbeat":
        if self._thread is not None:
            raise RuntimeError("heartbeat already running")
        self._stop_event.clear()
        self._last_t = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and emit one final beat (totals, not rates)."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
        self.beat()

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.beat()

    # -- one beat ---------------------------------------------------------
    def _counter(self, name: str) -> float:
        return self.registry.counter(name).value

    def beat(self) -> dict[str, float]:
        """Compute and publish the liveness gauges; returns them as a dict."""
        if self.extra is not None:
            try:
                for name, value in self.extra().items():
                    self.registry.gauge(name).set(float(value))
            except Exception:  # noqa: BLE001 - liveness must not kill the run
                self.registry.counter("obs/heartbeat_extra_errors").inc()
        now = self._clock()
        dt = max(1e-9, now - (self._last_t if self._last_t is not None else now))
        done = self._counter("exec/cells_done") + self._counter("exec/tasks_done")
        total = self._counter("exec/cells_scheduled") + self._counter(
            "exec/tasks_scheduled"
        )
        busy_ns = self._counter("exec/cell_wall_ns") + self._counter(
            "exec/task_wall_ns"
        )
        workers = self.registry.gauge("exec/workers").value or 1

        rate = (done - self._last_done) / dt
        remaining = max(0.0, total - done)
        eta = remaining / rate if rate > 0 else float("inf") if remaining else 0.0
        utilization = min(
            1.0, (busy_ns - self._last_busy_ns) / 1e9 / (dt * max(1, workers))
        )

        gauges = {
            "exec/cells_total": float(total),
            "exec/cells_per_s": round(rate, 3),
            "exec/eta_s": round(eta, 3) if eta != float("inf") else -1.0,
            "exec/worker_utilization": round(max(0.0, utilization), 4),
        }
        for name, value in gauges.items():
            self.registry.gauge(name).set(value)
        self.registry.counter("obs/heartbeats").inc()
        self.beats += 1
        self._last_t, self._last_done, self._last_busy_ns = now, done, busy_ns

        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.flush_metrics(self.registry)
        if self.textfile is not None:
            self.write_textfile()
        return gauges

    def write_textfile(self) -> None:
        """Atomically rewrite the OpenMetrics textfile (tmp + rename)."""
        assert self.textfile is not None
        text = render_openmetrics(self.registry.snapshot(), labels=self.labels)
        tmp = self.textfile.with_name(self.textfile.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.textfile)
