"""Ablation studies A1–A7 for the design decisions of DESIGN.md §5.

Unlike the E-series (which reproduce paper claims), the A-series measures
the engineering choices of this implementation:

* **A1** — vectorised incidence-matvec marking kernel vs the pure-Python
  per-edge reference.
* **A2** — min-degree-pivot superset removal vs the O(m²) brute force.
* **A3** — per-round (adaptive) recomputation of the BL marking
  probability vs Algorithm 2's literal fixed-p.
* **A4** — SBL's end-game: KUW (paper's choice) vs sequential greedy
  ("time linear in the number of vertices").
* **A5** — EREW vs CREW cost model: what the exclusive-read restriction
  costs the same algorithm.
* **A6** — fused incremental round cleanup vs full trim+normalize.
* **A7** — component-parallel composition vs whole-instance runs.

Each runner returns an :class:`~repro.analysis.experiments.ExperimentResult`
so the benches print them the same way.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from repro.analysis.experiments import ExperimentResult, _scales
from repro.core import beame_luby, sbl
from repro.core.reference import (
    reference_fully_marked_edges,
    reference_superset_removal,
)
from repro.generators import mixed_dimension_hypergraph, uniform_hypergraph
from repro.hypergraph import check_mis, remove_superset_edges
from repro.pram import CostModel, CountingMachine
from repro.util.rng import spawn_seeds

__all__ = ["ABLATIONS", "run_ablation"]


def _time_best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def a01_marking_kernel(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Fully-marked-edge detection: sparse matvec vs per-edge Python loop."""
    sizes = _scales(scale, [(500, 1500), (2000, 6000)], [(500, 1500), (2000, 6000), (8000, 24000)])
    rows = []
    for i, (n, m) in enumerate(sizes):
        seeds = spawn_seeds((seed, 100 + i), 2)
        H = uniform_hypergraph(n, m, 3, seed=seeds[0])
        rng = np.random.default_rng(seeds[1])
        mask = rng.random(n) < 0.3
        marks = set(np.flatnonzero(mask).tolist())
        inc = H.incidence()
        sizes_arr = H.edge_sizes()
        t_vec = _time_best_of(lambda: np.flatnonzero((inc @ mask.astype(np.int64)) == sizes_arr))
        t_ref = _time_best_of(lambda: reference_fully_marked_edges(H, marks))
        # sanity: same answer
        vec = np.flatnonzero((inc @ mask.astype(np.int64)) == sizes_arr).tolist()
        assert vec == reference_fully_marked_edges(H, marks)
        rows.append([n, m, t_ref * 1e3, t_vec * 1e3, t_ref / max(t_vec, 1e-12)])
    return ExperimentResult(
        experiment_id="A1",
        title="Ablation — marking kernel: CSR matvec vs per-edge loop",
        headers=["n", "m", "reference (ms)", "vectorised (ms)", "speedup"],
        rows=rows,
        notes=["identical outputs verified on every measured input."],
        extras={"min_speedup": min(r[4] for r in rows)},
    )


def a02_superset_pivot(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Superset removal: min-degree pivot vs O(m²) brute force."""
    ms = _scales(scale, [200, 600], [200, 600, 1500])
    rows = []
    for i, m in enumerate(ms):
        seeds = spawn_seeds((seed, 200 + i), 1)
        H = mixed_dimension_hypergraph(m, m, [2, 3, 4, 5], seed=seeds[0])
        t_pivot = _time_best_of(lambda: remove_superset_edges(H))
        t_ref = _time_best_of(lambda: reference_superset_removal(H))
        assert set(remove_superset_edges(H).edges) == set(
            reference_superset_removal(H).edges
        )
        rows.append(
            [H.num_vertices, H.num_edges, t_ref * 1e3, t_pivot * 1e3,
             t_ref / max(t_pivot, 1e-12)]
        )
    return ExperimentResult(
        experiment_id="A2",
        title="Ablation — superset removal: min-degree pivot vs brute force",
        headers=["n", "m", "brute force (ms)", "pivot (ms)", "speedup"],
        rows=rows,
        notes=["identical minimal edge sets verified on every measured input."],
        extras={"min_speedup": min(r[4] for r in rows)},
    )


def a03_probability_policy(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """BL marking probability: adaptive per-round vs Algorithm-2-literal fixed."""
    ns = _scales(scale, [100, 200], [100, 200, 400])
    repeats = _scales(scale, 4, 10)
    rows = []
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 300 + i), 2 * repeats + 1)
        H = mixed_dimension_hypergraph(n, 2 * n, [2, 3, 4], seed=seeds[0])
        adaptive, fixed = [], []
        for k in range(repeats):
            r1 = beame_luby(H, seeds[1 + 2 * k], recompute_probability=True)
            check_mis(H, r1.independent_set)
            adaptive.append(r1.num_rounds)
            r2 = beame_luby(H, seeds[2 + 2 * k], recompute_probability=False)
            check_mis(H, r2.independent_set)
            fixed.append(r2.num_rounds)
        rows.append(
            [n, H.num_edges, float(np.mean(adaptive)), float(np.mean(fixed)),
             float(np.mean(fixed)) / float(np.mean(adaptive))]
        )
    return ExperimentResult(
        experiment_id="A3",
        title="Ablation — BL probability policy: adaptive vs fixed (paper-literal)",
        headers=["n", "m", "adaptive rounds", "fixed-p rounds", "fixed/adaptive"],
        rows=rows,
        notes=[
            "Algorithm 2 computes p once; recomputing from the shrinking "
            "hypergraph raises p as Δ falls and saves rounds — the analysis "
            "(which is per-stage anyway) covers both.",
        ],
    )


def a04_finisher(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """SBL end-game: KUW vs sequential greedy, PRAM depth at the floor."""
    ns = _scales(scale, [256, 512], [256, 512, 1024])
    rows = []
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 400 + i), 3)
        H = mixed_dimension_hypergraph(n, 2 * n, [2, 3, 6], seed=seeds[0])
        out = {}
        for finisher in ("kuw", "greedy"):
            mach = CountingMachine()
            res = sbl(
                H, seeds[1], machine=mach, p_override=0.25, d_cap_override=4,
                floor_override=max(32, n // 4), finisher=finisher,
            )
            check_mis(H, res.independent_set)
            out[finisher] = mach.depth
        rows.append([n, out["kuw"], out["greedy"], out["greedy"] / max(out["kuw"], 1)])
    return ExperimentResult(
        experiment_id="A4",
        title="Ablation — SBL finisher: KUW vs sequential greedy",
        headers=["n", "depth (kuw)", "depth (greedy)", "greedy/kuw"],
        rows=rows,
        notes=[
            "the sequential tail pays depth linear in the floor size, which "
            "is why the paper calls KUW instead of the linear-time algorithm "
            "whenever the floor is ω(polylog).",
        ],
    )


def a05_cost_model(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """EREW vs CREW: what exclusive reads cost the same BL run."""
    ns = _scales(scale, [100, 200], [100, 200, 400])
    rows = []
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 500 + i), 2)
        H = uniform_hypergraph(n, 2 * n, 3, seed=seeds[0])
        depths = {}
        for model in (CostModel.EREW, CostModel.CREW):
            mach = CountingMachine(model=model)
            # broadcast-heavy accounting: charge one broadcast per round on
            # top of the algorithm's own charges
            res = beame_luby(H, seeds[1], machine=mach)
            for _ in range(res.num_rounds):
                mach.broadcast(n)
            depths[model.value] = mach.depth
        rows.append(
            [n, depths["erew"], depths["crew"],
             depths["erew"] / max(depths["crew"], 1)]
        )
    return ExperimentResult(
        experiment_id="A5",
        title="Ablation — cost model: EREW vs CREW broadcast depth",
        headers=["n", "EREW depth", "CREW depth", "EREW/CREW"],
        rows=rows,
        notes=[
            "the paper states its results for EREW; the log-factor broadcast "
            "penalty is visible but does not change any asymptotic claim.",
        ],
    )


def a06_incremental_cleanup(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Fused incremental cleanup vs full trim+normalize, per BL round.

    Rounds leave the hypergraph normal, so only trimmed edges can create
    superset pairs; the fused path scans just those.  Measured on whole BL
    runs (the differential test guarantees identical results).
    """
    import numpy as np

    from repro.core.bl import apply_bl_round
    from repro.hypergraph.ops import normalize, trim_vertices
    from repro.util.rng import as_generator

    sizes = _scales(scale, [(200, 400), (400, 800)], [(200, 400), (400, 800), (800, 1600)])
    rows = []
    for i, (n, m) in enumerate(sizes):
        seeds = spawn_seeds((seed, 600 + i), 2)
        H, _ = normalize(uniform_hypergraph(n, m, 3, seed=seeds[0]))
        rng = as_generator(seeds[1])
        markings = [rng.random(H.universe) < 0.05 for _ in range(20)]

        def run(assume_normal: bool) -> float:
            best = math.inf
            for _ in range(3):
                t0 = time.perf_counter()
                W = H
                for mask in markings:
                    W2, added, red, _ = apply_bl_round(
                        W, mask & W.vertex_mask(), assume_normal=assume_normal
                    )
                    W = W2
                    if W.num_edges == 0:
                        break
                best = min(best, time.perf_counter() - t0)
            return best

        t_full = run(False)
        t_fused = run(True)
        rows.append([n, m, t_full * 1e3, t_fused * 1e3, t_full / max(t_fused, 1e-12)])
    return ExperimentResult(
        experiment_id="A6",
        title="Ablation — round cleanup: fused incremental vs full normalize",
        headers=["n", "m", "full (ms)", "fused (ms)", "speedup"],
        rows=rows,
        notes=[
            "both paths produce identical hypergraphs (property-tested); "
            "the fused path is what beame_luby uses after its one upfront "
            "normalisation.",
        ],
        extras={"min_speedup": min(r[4] for r in rows)},
    )


def a07_component_decomposition(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Whole-instance BL vs component-parallel composition on fragmented inputs.

    MIS decomposes over connected components and components run side by
    side on a PRAM, so composed depth = max over components instead of
    the whole-instance round structure.  Sparse hypergraphs fragment
    heavily, making this a real win the paper leaves implicit.
    """
    from repro.core import karp_upfal_wigderson
    from repro.core.decompose import solve_by_components
    from repro.hypergraph.components import num_components

    ns = _scales(scale, [300, 600], [300, 600, 1200])
    rows = []
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 700 + i), 3)
        # sub-critical density → many components
        H = uniform_hypergraph(n, n // 3, 3, seed=seeds[0])
        parts = num_components(H)
        mach_whole = CountingMachine()
        res_w = karp_upfal_wigderson(H, seeds[1], machine=mach_whole)
        check_mis(H, res_w.independent_set)
        mach_comp = CountingMachine()
        res_c = solve_by_components(
            H, karp_upfal_wigderson, seeds[2], machine=mach_comp
        )
        check_mis(H, res_c.independent_set)
        rows.append(
            [n, H.num_edges, parts, mach_whole.depth, mach_comp.depth,
             mach_whole.depth / max(mach_comp.depth, 1)]
        )
    return ExperimentResult(
        experiment_id="A7",
        title="Ablation — whole-instance KUW vs component-parallel composition",
        headers=["n", "m", "components", "whole depth", "composed depth", "speedup"],
        rows=rows,
        notes=[
            "composed depth is the max over per-component runs (plus a merge "
            "compact); it wins for KUW because KUW's round count grows with "
            "the instance (√n-ish), so max over fragments ≪ whole.",
            "for BL the same experiment shows ≈1× (measured): BL's global "
            "marking already advances every component in the same round, so "
            "the whole-instance run is implicitly component-parallel.",
        ],
        extras={"min_speedup": min(r[5] for r in rows)},
    )


#: Registry used by the A-series benches.
ABLATIONS: dict[str, Callable[..., ExperimentResult]] = {
    "A1": a01_marking_kernel,
    "A2": a02_superset_pivot,
    "A3": a03_probability_policy,
    "A4": a04_finisher,
    "A5": a05_cost_model,
    "A6": a06_incremental_cleanup,
    "A7": a07_component_decomposition,
}


def run_ablation(ablation_id: str, scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Run one ablation by id (``"A1"`` … ``"A5"``)."""
    try:
        fn = ABLATIONS[ablation_id.upper()]
    except KeyError:
        raise ValueError(
            f"unknown ablation {ablation_id!r}; known: {sorted(ABLATIONS)}"
        ) from None
    return fn(scale=scale, seed=seed)
