"""Terminal sparklines and trajectory rendering for round traces.

The library ships no plotting dependency; for quick visual inspection of
round trajectories (active vertices, Kelsen's v₂ potential, per-round
colored counts) these helpers render compact Unicode block sparklines and
labelled multi-row trajectory views.  Used by the examples and handy in a
REPL::

    >>> from repro.analysis.sparkline import sparkline
    >>> sparkline([0, 1, 2, 4, 8, 4, 2, 1, 0])
    '▁▂▃▅█▅▃▂▁'
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.core.result import MISResult

__all__ = ["sparkline", "trajectory", "trace_view"]

BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], *, log: bool = False) -> str:
    """Render values as a Unicode block sparkline.

    Parameters
    ----------
    values:
        Numbers (NaN/inf rejected).  An empty input gives ``""``.
    log:
        Scale by ``log1p`` first (for decaying quantities like v₂).
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    for v in vals:
        if math.isnan(v) or math.isinf(v):
            raise ValueError(f"non-finite value in sparkline: {v}")
    if log:
        lo = min(vals)
        vals = [math.log1p(v - lo) for v in vals]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return BLOCKS[0] * len(vals)
    span = hi - lo
    return "".join(BLOCKS[min(int((v - lo) / span * 8), 7)] for v in vals)


def trajectory(
    label: str, values: Sequence[float], *, width: int = 60, log: bool = False
) -> str:
    """One labelled sparkline row, down-sampled to *width* points.

    Down-sampling keeps the first and last values and the per-bucket max,
    so spikes stay visible.
    """
    vals = [float(v) for v in values]
    if len(vals) > width and width > 2:
        bucket = len(vals) / width
        sampled = []
        for b in range(width):
            lo = int(b * bucket)
            hi = max(int((b + 1) * bucket), lo + 1)
            sampled.append(max(vals[lo:hi]))
        sampled[0], sampled[-1] = vals[0], vals[-1]
        vals = sampled
    spark = sparkline(vals, log=log)
    tail = f"{values[0]:.4g} → {values[-1]:.4g}" if len(values) else "—"
    return f"{label:>16} {spark}  [{tail}]"


def trace_view(result: MISResult, *, width: int = 60) -> str:
    """Multi-row trajectory view of an algorithm trace.

    Shows active vertices, active edges and per-round commitments; adds a
    v₂ row when the trace carries potential extras (from
    :class:`~repro.analysis.instrument.PotentialTracker`).
    """
    rounds = result.rounds
    if not rounds:
        return f"{result.algorithm}: no trace recorded"
    lines = [
        f"{result.algorithm}: {result.num_rounds} rounds, |I| = {result.size}",
        trajectory("active vertices", [r.n_before for r in rounds], width=width),
        trajectory("active edges", [r.m_before for r in rounds], width=width),
        trajectory("added/round", [r.added for r in rounds], width=width),
    ]
    v2 = [r.extras["v2"] for r in rounds if "v2" in r.extras]
    if v2:
        lines.append(trajectory("v2 potential", v2, width=width, log=True))
    return "\n".join(lines)
