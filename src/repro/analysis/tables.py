"""Minimal table rendering (GitHub-markdown compatible).

The benchmark harness prints every regenerated table through these
helpers so the console output can be pasted into EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_cell", "render_table", "render_kv"]


def format_cell(value: Any, floatfmt: str = ".4g") -> str:
    """Render one cell: floats via *floatfmt*, None as '—', others via str."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render a GitHub-markdown table with aligned columns.

    Examples
    --------
    >>> print(render_table(["n", "rounds"], [[8, 3], [16, 4]]))
    | n  | rounds |
    |----|--------|
    | 8  | 3      |
    | 16 | 4      |
    """
    str_rows = [[format_cell(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    return "\n".join(lines)


def render_kv(title: str, mapping: Mapping[str, Any], *, floatfmt: str = ".4g") -> str:
    """Render a key/value block as a two-column table."""
    return render_table(
        ["key", "value"],
        [[k, format_cell(v, floatfmt)] for k, v in mapping.items()],
        title=title,
    )
