"""Measurement campaigns: algorithm × instance grids with CSV export.

A *campaign* is the batch layer the experiments are built on when you want
raw data instead of a finished table: it sweeps a grid of instance
specifications and algorithms, runs each cell over several seeds, verifies
every output, and collects one flat record per run — ready for CSV
export or downstream aggregation.

Example
-------
>>> from repro.analysis.campaign import Campaign, InstanceSpec, AlgorithmSpec
>>> from repro.generators import uniform_hypergraph
>>> from repro.core import beame_luby, karp_upfal_wigderson
>>> camp = Campaign(
...     instances=[InstanceSpec("u3", uniform_hypergraph, {"n": 40, "m": 60, "d": 3})],
...     algorithms=[AlgorithmSpec("bl", beame_luby), AlgorithmSpec("kuw", karp_upfal_wigderson)],
...     repeats=2,
... )
>>> records = camp.run(seed=0)
>>> sorted({r.algorithm for r in records})
['bl', 'kuw']
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence, TextIO, Union

import numpy as np

from repro.core.result import MISResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validate import check_mis
from repro.pram.machine import CountingMachine
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["InstanceSpec", "AlgorithmSpec", "RunRecord", "Campaign", "write_csv"]


@dataclass(frozen=True)
class InstanceSpec:
    """A named instance generator call: ``generator(seed=…, **params)``."""

    name: str
    generator: Callable[..., Hypergraph]
    params: Mapping[str, Any] = field(default_factory=dict)

    def build(self, seed: SeedLike) -> Hypergraph:
        """Instantiate the hypergraph."""
        return self.generator(seed=seed, **self.params)


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named algorithm call: ``fn(H, seed, machine=…, **options)``."""

    name: str
    fn: Callable[..., MISResult]
    options: Mapping[str, Any] = field(default_factory=dict)

    def run(self, H: Hypergraph, seed: SeedLike, machine: CountingMachine) -> MISResult:
        """Execute on one instance."""
        return self.fn(H, seed, machine=machine, **self.options)


@dataclass(frozen=True)
class RunRecord:
    """One verified run: the flat record campaigns accumulate."""

    instance: str
    algorithm: str
    repeat: int
    n: int
    m: int
    dimension: int
    mis_size: int
    rounds: int
    depth: int
    work: int

    FIELDS = (
        "instance", "algorithm", "repeat", "n", "m", "dimension",
        "mis_size", "rounds", "depth", "work",
    )

    def as_row(self) -> list[Any]:
        """Values in :data:`FIELDS` order."""
        return [getattr(self, f) for f in self.FIELDS]


@dataclass
class Campaign:
    """A grid of instance specs × algorithm specs × repeats.

    Attributes
    ----------
    instances, algorithms:
        The grid axes.
    repeats:
        Seeds per cell (instance randomness and algorithm randomness are
        drawn from independent child streams of the campaign seed).
    verify:
        Check every output with :func:`check_mis` (on by default — a
        campaign that silently collects invalid outputs is worse than a
        crash).
    """

    instances: Sequence[InstanceSpec]
    algorithms: Sequence[AlgorithmSpec]
    repeats: int = 3
    verify: bool = True

    def run(
        self,
        seed: SeedLike = 0,
        *,
        parallel: "Union[None, int, Any]" = None,
    ) -> list[RunRecord]:
        """Execute the full grid; returns one record per (cell, repeat).

        Parameters
        ----------
        seed:
            Campaign seed.  Instance randomness and the per-cell algorithm
            seeds all derive from it, and the derivation is identical for
            every execution mode — so the records are **bit-identical**
            whether the grid runs serially or on any number of workers.
        parallel:
            ``None`` (default) runs in-process.  An ``int`` runs the grid
            on that many worker processes via
            :class:`repro.exec.ParallelRunner` (instances travel through
            shared memory, one block per distinct instance).  An existing
            ``ParallelRunner`` is borrowed, letting several campaigns
            share one warm pool.
        """
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1: {self.repeats}")
        if not self.instances or not self.algorithms:
            raise ValueError("campaign needs at least one instance and one algorithm")
        if parallel is None:
            return self._run_serial(seed)
        from repro.exec import ParallelRunner

        if isinstance(parallel, ParallelRunner):
            return self._run_parallel(seed, parallel)
        with ParallelRunner(int(parallel)) as runner:
            return self._run_parallel(seed, runner)

    def _grid(self, seed: SeedLike):
        """Yield one ``(ispec, H, aspec, rep, cell_seed)`` tuple per run.

        The single source of the seed-tree shape: both execution modes
        iterate this generator, which is what makes their records agree.
        """
        inst_seeds = spawn_seeds((seed, "instances"), len(self.instances))
        for ispec, iseed in zip(self.instances, inst_seeds):
            H = ispec.build(iseed)
            algo_seeds = spawn_seeds(
                (seed, "runs", ispec.name), len(self.algorithms) * self.repeats
            )
            si = 0
            for aspec in self.algorithms:
                for rep in range(self.repeats):
                    yield ispec, H, aspec, rep, algo_seeds[si]
                    si += 1

    def _run_serial(self, seed: SeedLike) -> list[RunRecord]:
        from repro.obs.metrics import default_registry

        # Maintain the same progress counters the parallel runner keeps, so
        # a heartbeat reports liveness identically in both execution modes.
        registry = default_registry()
        total = len(self.instances) * len(self.algorithms) * self.repeats
        registry.counter("exec/cells_scheduled").inc(total)
        registry.gauge("exec/workers").set(1)
        records: list[RunRecord] = []
        for ispec, H, aspec, rep, cell_seed in self._grid(seed):
            machine = CountingMachine()
            t0 = time.perf_counter_ns()
            res = aspec.run(H, cell_seed, machine)
            registry.counter("exec/cell_wall_ns").inc(time.perf_counter_ns() - t0)
            registry.counter("exec/cells_done").inc()
            if self.verify:
                check_mis(H, res.independent_set)
            records.append(
                RunRecord(
                    instance=ispec.name,
                    algorithm=aspec.name,
                    repeat=rep,
                    n=H.num_vertices,
                    m=H.num_edges,
                    dimension=H.dimension,
                    mis_size=res.size,
                    rounds=res.num_rounds,
                    depth=machine.depth,
                    work=machine.work,
                )
            )
        return records

    def _run_parallel(self, seed: SeedLike, runner: Any) -> list[RunRecord]:
        from repro.exec import Cell

        cells = []
        stubs = []  # (ispec, H, aspec, rep) aligned with cells
        for ispec, H, aspec, rep, cell_seed in self._grid(seed):
            cells.append(
                Cell(
                    instance=H,
                    fn=aspec.fn,
                    seed=cell_seed,
                    options=dict(aspec.options),
                    verify=self.verify,
                    label=f"{ispec.name}/{aspec.name}/{rep}",
                )
            )
            stubs.append((ispec, H, aspec, rep))
        results = runner.run_cells(cells)
        return [
            RunRecord(
                instance=ispec.name,
                algorithm=aspec.name,
                repeat=rep,
                n=H.num_vertices,
                m=H.num_edges,
                dimension=H.dimension,
                mis_size=r.mis_size,
                rounds=r.num_rounds,
                depth=r.depth,
                work=r.work,
            )
            for (ispec, H, aspec, rep), r in zip(stubs, results)
        ]

    def summarize(self, records: Sequence[RunRecord]) -> list[dict[str, Any]]:
        """Per-cell means over repeats: one dict per (instance, algorithm)."""
        cells: dict[tuple[str, str], list[RunRecord]] = {}
        for r in records:
            cells.setdefault((r.instance, r.algorithm), []).append(r)
        out = []
        for (inst, algo), rs in sorted(cells.items()):
            out.append(
                {
                    "instance": inst,
                    "algorithm": algo,
                    "runs": len(rs),
                    "mis_size": float(np.mean([r.mis_size for r in rs])),
                    "rounds": float(np.mean([r.rounds for r in rs])),
                    "depth": float(np.mean([r.depth for r in rs])),
                    "work": float(np.mean([r.work for r in rs])),
                }
            )
        return out


def write_csv(records: Sequence[RunRecord], fp: Union[TextIO, str, Path]) -> None:
    """Write records as CSV (header + one row per run)."""
    if isinstance(fp, (str, Path)):
        with open(fp, "w", newline="") as f:
            write_csv(records, f)
        return
    writer = csv.writer(fp)
    writer.writerow(RunRecord.FIELDS)
    for r in records:
        writer.writerow(r.as_row())
