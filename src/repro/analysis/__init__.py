"""Experiment harness.

* :mod:`repro.analysis.tables` — plain-text / markdown table rendering
  (no third-party dependency).
* :mod:`repro.analysis.instrument` — per-round instrumentation hooks
  (degree-migration tracking, colored-fraction extraction) and trace
  aggregation helpers (power-law fits).
* :mod:`repro.analysis.experiments` — one runner per experiment id
  E1–E17 of DESIGN.md; each returns an
  :class:`~repro.analysis.experiments.ExperimentResult` that the
  benchmarks print and EXPERIMENTS.md records.
* :mod:`repro.analysis.ablations` — the A1–A6 design-decision studies.
* :mod:`repro.analysis.campaign` — algorithm × instance grid runner with
  verified outputs and CSV export.
* :mod:`repro.analysis.traces` — MISResult (de)serialisation.
"""

from repro.analysis.ablations import ABLATIONS, run_ablation
from repro.analysis.campaign import AlgorithmSpec, Campaign, InstanceSpec, write_csv
from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.analysis.instrument import (
    MigrationTracker,
    colored_fractions,
    fit_power_law,
)
from repro.analysis.tables import render_kv, render_table

__all__ = [
    "ABLATIONS",
    "run_ablation",
    "Campaign",
    "InstanceSpec",
    "AlgorithmSpec",
    "write_csv",
    "render_table",
    "render_kv",
    "MigrationTracker",
    "colored_fractions",
    "fit_power_law",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
]
