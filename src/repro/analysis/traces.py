"""MISResult / trace (de)serialisation.

Long experiment runs are expensive; persisting the full
:class:`~repro.core.result.MISResult` — set, per-round trace, PRAM
snapshot, metadata — lets analyses re-read measurements instead of
re-running algorithms.  Format: a single JSON document, versioned so
readers can reject incompatible files rather than mis-parse them.

Dataclass metadata values (e.g. the :class:`SBLParameters` dataclass SBL
stores in ``meta``) are serialised field-by-field under a
``{"__dataclass__": <name>, "fields": {...}}`` tag (format version 2) and
reconstructed on load when the name is in :data:`DATACLASS_REGISTRY`;
unknown dataclass names come back as the plain ``fields`` dict.  Version-1
files (which rendered dataclasses through ``repr``) are still readable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, TextIO, Union

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.theory.parameters import SBLParameters

__all__ = [
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
    "DATACLASS_REGISTRY",
]

FORMAT_VERSION = 2

#: Dataclass types reconstructed by name on load.  Extend when new
#: dataclasses start appearing in ``MISResult.meta``.
DATACLASS_REGISTRY: dict[str, type] = {
    "SBLParameters": SBLParameters,
}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": _jsonable(dataclasses.asdict(value)),
        }
    return repr(value)


def _reconstruct(value: Any) -> Any:
    """Inverse of :func:`_jsonable` for the tagged-dataclass encoding."""
    if isinstance(value, dict):
        if "__dataclass__" in value and "fields" in value:
            fields = {str(k): _reconstruct(v) for k, v in value["fields"].items()}
            cls = DATACLASS_REGISTRY.get(value["__dataclass__"])
            if cls is not None:
                try:
                    return cls(**fields)
                except TypeError:
                    # Field set drifted since the file was written; degrade
                    # to the plain dict rather than failing the whole load.
                    return fields
            return fields
        return {k: _reconstruct(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_reconstruct(v) for v in value]
    return value


def result_to_json(result: MISResult) -> str:
    """Serialise to a JSON string."""
    doc = {
        "format_version": FORMAT_VERSION,
        "algorithm": result.algorithm,
        "n": result.n,
        "m": result.m,
        "independent_set": result.independent_set.tolist(),
        "machine": _jsonable(result.machine) if result.machine is not None else None,
        "meta": _jsonable(result.meta),
        "rounds": [
            {
                "index": r.index,
                "phase": r.phase,
                "n_before": r.n_before,
                "m_before": r.m_before,
                "n_after": r.n_after,
                "m_after": r.m_after,
                "marked": r.marked,
                "unmarked": r.unmarked,
                "added": r.added,
                "removed_red": r.removed_red,
                "dimension": r.dimension,
                "extras": _jsonable(r.extras),
            }
            for r in result.rounds
        ],
    }
    return json.dumps(doc)


def result_from_json(text: str) -> MISResult:
    """Parse a document produced by :func:`result_to_json`."""
    doc = json.loads(text)
    version = doc.get("format_version")
    if version not in (1, FORMAT_VERSION):
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(this reader supports 1..{FORMAT_VERSION})"
        )
    rounds = [
        RoundRecord(
            index=r["index"],
            phase=r["phase"],
            n_before=r["n_before"],
            m_before=r["m_before"],
            n_after=r["n_after"],
            m_after=r["m_after"],
            marked=r["marked"],
            unmarked=r["unmarked"],
            added=r["added"],
            removed_red=r["removed_red"],
            dimension=r["dimension"],
            extras=_reconstruct(r["extras"]),
        )
        for r in doc["rounds"]
    ]
    return MISResult(
        independent_set=np.asarray(doc["independent_set"], dtype=np.intp),
        algorithm=doc["algorithm"],
        n=doc["n"],
        m=doc["m"],
        rounds=rounds,
        machine=doc["machine"],
        meta=_reconstruct(doc["meta"]),
    )


def save_result(result: MISResult, fp: Union[TextIO, str, Path]) -> None:
    """Write a result to a file object or path."""
    text = result_to_json(result)
    if isinstance(fp, (str, Path)):
        Path(fp).write_text(text)
    else:
        fp.write(text)


def load_result(fp: Union[TextIO, str, Path]) -> MISResult:
    """Read a result from a file object or path."""
    if isinstance(fp, (str, Path)):
        return result_from_json(Path(fp).read_text())
    return result_from_json(fp.read())
