"""Experiment runners E1–E17 (see DESIGN.md §4).

Each runner reproduces one quantitative claim of the paper and returns an
:class:`ExperimentResult` — a table plus notes — that the corresponding
benchmark prints and EXPERIMENTS.md records.  Runners take a ``scale``
(``"quick"`` for CI/benchmarks, ``"full"`` for the report) and a top-level
``seed``; given both, results are fully deterministic.

The paper is a theory paper with no empirical tables, so "reproducing the
evaluation" means checking each theorem/lemma's *quantitative shape*
empirically: measured round counts against predicted bounds, measured
migration against both concentration bounds, failure rates against the
event bounds A/B/C, and the recurrence inequalities at the parameter values
the paper chooses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.analysis.instrument import MigrationTracker, colored_fractions, fit_power_law
from repro.analysis.tables import render_table
from repro.core import (
    beame_luby,
    greedy_mis,
    karp_upfal_wigderson,
    linear_hypergraph_mis,
    luby_mis,
    permutation_bl,
    sbl,
)
from repro.core.bl import bl_marking_probability
from repro.generators import (
    bounded_edges_instance,
    mixed_dimension_hypergraph,
    random_linear_hypergraph,
    sparse_random_graph,
    sunflower,
    tight_cycle,
    uniform_hypergraph,
)
from repro.hypergraph import Hypergraph, check_mis
from repro.hypergraph.degrees import degree_profile
from repro.hypergraph.validate import (
    IndependenceViolation,
    MaximalityViolation,
    find_maximality_witness,
)
from repro.pram import CountingMachine
from repro.theory import (
    F_original,
    F_paper,
    claim_inequality,
    f_necessity_holds,
    kelsen_migration_log_terms,
    kimvu_migration_log_terms,
    migration_bound,
    original_f_claim_sides,
)
from repro.theory.parameters import (
    chernoff_round_failure,
    oversize_edge_bound,
    round_bound,
)
from repro.util.rng import spawn_seeds

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """One regenerated table.

    Attributes
    ----------
    experiment_id:
        ``"E1"`` … ``"E17"`` (or ``"A1"`` … ``"A6"`` for ablations).
    title:
        Human-readable claim description.
    headers, rows:
        The table.
    notes:
        Free-form conclusions (fits, pass/fail verdicts).
    extras:
        Machine-readable aggregates for tests.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def to_markdown(self) -> str:
        """Render the table + notes as markdown."""
        parts = [
            f"### {self.experiment_id} — {self.title}",
            "",
            render_table(self.headers, self.rows),
        ]
        if self.notes:
            parts.append("")
            parts.extend(f"* {note}" for note in self.notes)
        return "\n".join(parts)


def _scales(scale: str, quick, full):
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ValueError(f"unknown scale: {scale!r}")


def _solver_trials(H, fn, seeds, *, options=None, verify=True):
    """Run ``fn(H, seed, **options)`` once per seed; return the outcomes.

    The repeated-trial primitive of the experiment runners.  Outcomes are
    :class:`repro.exec.CellResult` objects (``num_rounds``, ``mis_size``,
    ``meta``, ``independent_set``) in seed order.  When an ambient
    :func:`repro.exec.use_runner` block is active the trials fan out over
    its worker pool; otherwise they run in-process.  Either way each trial
    consumes exactly its own seed, so the outcomes are identical.
    """
    from repro.exec import Cell, CellResult, current_runner

    opts = dict(options or {})
    runner = current_runner()
    if runner is not None:
        cells = [
            Cell(instance=H, fn=fn, seed=s, options=opts, verify=verify)
            for s in seeds
        ]
        return runner.run_cells(cells)
    out = []
    for i, s in enumerate(seeds):
        res = fn(H, s, **opts)
        if verify:
            check_mis(H, res.independent_set)
        out.append(
            CellResult(
                index=i,
                label="",
                mis_size=res.size,
                num_rounds=res.num_rounds,
                depth=res.machine.get("depth", 0) if res.machine else 0,
                work=res.machine.get("work", 0) if res.machine else 0,
                wall_ns=0,
                independent_set=res.independent_set,
                machine=dict(res.machine) if res.machine else {},
                meta=res.meta,
            )
        )
    return out


# ---------------------------------------------------------------------------
# E1 — Theorem 1: SBL correctness and round bound
# ---------------------------------------------------------------------------
def e01_sbl_rounds(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """SBL finds an MIS; outer rounds stay below ``r = 2·log n / p``."""
    ns = _scales(scale, [256, 512, 1024], [256, 512, 1024, 2048, 4096])
    repeats = _scales(scale, 3, 10)
    rows = []
    all_within = True
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, i), repeats + 1)
        H = bounded_edges_instance(n, seed=seeds[0], beta_fraction=5.0)
        p = n ** (-1.0 / 3.0)
        floor = math.ceil(p**-2.0)
        bound = round_bound(n, p)
        trials = _solver_trials(
            H, sbl, seeds[1:],
            options={"p_override": p, "d_cap_override": 4, "floor_override": floor},
        )
        rounds = [t.meta["outer_rounds"] for t in trials]
        mean_rounds = float(np.mean(rounds))
        within = max(rounds) <= bound
        all_within &= within
        rows.append([n, H.num_edges, p, floor, mean_rounds, max(rounds), bound, within])
    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 1 — SBL correctness and round bound r = 2·log n/p",
        headers=["n", "m", "p", "floor", "rounds(mean)", "rounds(max)", "bound r", "within"],
        rows=rows,
        notes=[
            f"all runs verified as MIS; round bound respected: {all_within}",
            "p is swept as n^(-1/3) and m ≈ n^0.7 (the paper's asymptotic p and "
            "β degenerate at feasible n; §2.1 correctness is parameter-free).",
        ],
        extras={"all_within": all_within},
    )


# ---------------------------------------------------------------------------
# E2 — Theorem 1: SBL depth vs KUW depth
# ---------------------------------------------------------------------------
def e02_sbl_vs_kuw(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """PRAM depth of SBL vs KUW on the bounded-m family (who wins, where)."""
    ns = _scales(scale, [256, 512, 1024, 2048], [256, 512, 1024, 2048, 4096, 8192])
    rows = []
    sbl_depths, kuw_depths = [], []
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 200 + i), 3)
        H = bounded_edges_instance(n, seed=seeds[0], beta_fraction=5.0)
        p = n ** (-1.0 / 3.0)
        m_sbl = CountingMachine()
        res_s = sbl(
            H, seeds[1], machine=m_sbl, p_override=p, d_cap_override=4,
            floor_override=math.ceil(p**-2.0),
        )
        check_mis(H, res_s.independent_set)
        m_kuw = CountingMachine()
        res_k = karp_upfal_wigderson(H, seeds[2], machine=m_kuw)
        check_mis(H, res_k.independent_set)
        sbl_depths.append(m_sbl.depth)
        kuw_depths.append(m_kuw.depth)
        rows.append(
            [n, H.num_edges, m_sbl.depth, m_kuw.depth,
             m_sbl.depth / max(m_kuw.depth, 1),
             m_sbl.depth / (n ** (1.0 / 3.0) * math.log2(n) ** 2),
             m_kuw.depth / (math.sqrt(n) * math.log2(n))]
        )
    a_s, _ = fit_power_law(ns, sbl_depths)
    a_k, _ = fit_power_law(ns, kuw_depths)
    return ExperimentResult(
        experiment_id="E2",
        title="Theorem 1 — SBL vs KUW PRAM depth (bounded-m regime)",
        headers=[
            "n", "m", "sbl depth", "kuw depth", "ratio",
            "sbl/(n^⅓·log²n)", "kuw/(√n·log n)",
        ],
        rows=rows,
        notes=[
            f"depth-growth exponents (raw power-law fit): SBL ≈ n^{a_s:.2f}, "
            f"KUW ≈ n^{a_k:.2f}; over this small range the fits conflate "
            "polylog factors — the normalised columns are the shape check.",
            "with the practical p = n^(-1/3) the predicted SBL depth is "
            "Θ̃(n^{1/3}) (outer rounds ≈ log(n)/p) vs KUW's O(√n)·polylog; "
            "at feasible n KUW is still competitive — SBL's win, like the "
            "paper's n^{o(1)} bound, is asymptotic (see E9 for where the "
            "crossover engages).",
        ],
        extras={"sbl_exponent": a_s, "kuw_exponent": a_k},
    )


# ---------------------------------------------------------------------------
# E3 — Theorem 2: BL round counts are polylog for bounded dimension
# ---------------------------------------------------------------------------
def e03_bl_rounds(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """BL rounds vs n for d ∈ {2, 3, 4}: growth must be polylog, not n^ε."""
    ns = _scales(scale, [64, 128, 256, 512], [64, 128, 256, 512, 1024, 2048])
    ds = _scales(scale, [2, 3], [2, 3, 4])
    repeats = _scales(scale, 3, 8)
    rows = []
    exponents = {}
    for d in ds:
        means = []
        for i, n in enumerate(ns):
            seeds = spawn_seeds((seed, d * 1000 + i), repeats + 1)
            H = uniform_hypergraph(n, 2 * n, d, seed=seeds[0])
            rounds = [t.num_rounds for t in _solver_trials(H, beame_luby, seeds[1:])]
            mean_r = float(np.mean(rounds))
            means.append(mean_r)
            rows.append([d, n, 2 * n, mean_r, mean_r / math.log2(n) ** 2])
        a, _ = fit_power_law(ns, means)
        exponents[d] = a
    notes = [
        "rounds / log²n stays bounded (in fact slightly decreasing) — "
        "Theorem 2's polylog shape.",
    ] + [
        f"d={d}: raw fit rounds ≈ n^{a:.2f}; note log²n itself fits "
        f"≈ n^0.33 over this range, so the flat normalised column is the "
        "meaningful check"
        for d, a in exponents.items()
    ]
    return ExperimentResult(
        experiment_id="E3",
        title="Theorem 2 — BL terminates in polylog rounds for small dimension",
        headers=["d", "n", "m", "rounds(mean)", "rounds/log²n"],
        rows=rows,
        notes=notes,
        extras={"exponents": exponents},
    )


# ---------------------------------------------------------------------------
# E4 — §2.2 claim (1): per-round colored fraction
# ---------------------------------------------------------------------------
def e04_colored_fraction(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Each SBL round colours ≥ p·nᵢ/2 vertices with the Chernoff rate."""
    n = _scales(scale, 2048, 8192)
    repeats = _scales(scale, 5, 20)
    p = 0.1
    seeds = spawn_seeds((seed, 4), repeats + 1)
    H = bounded_edges_instance(n, seed=seeds[0], beta_fraction=5.0)
    ratios = []
    failures = 0
    total_rounds = 0
    worst_bound = 0.0
    for s in seeds[1:]:
        res = sbl(H, s, p_override=p, d_cap_override=4, floor_override=max(64, math.ceil(p**-2)))
        for n_before, colored, ratio in colored_fractions(res):
            ratios.append(ratio)
            total_rounds += 1
            if colored < p * n_before / 2.0:
                failures += 1
            worst_bound = max(worst_bound, chernoff_round_failure(p, n_before))
    ratios_arr = np.asarray(ratios)
    rows = [
        ["rounds observed", total_rounds],
        ["min colored/(p·nᵢ)", float(ratios_arr.min())],
        ["mean colored/(p·nᵢ)", float(ratios_arr.mean())],
        ["rounds below p·nᵢ/2", failures],
        ["empirical failure rate", failures / max(total_rounds, 1)],
        ["Chernoff bound per round (worst nᵢ)", worst_bound],
    ]
    return ExperimentResult(
        experiment_id="E4",
        title="§2.2 claim (1) — per-round colored fraction ≥ p·nᵢ/2 w.h.p.",
        headers=["quantity", "value"],
        rows=rows,
        notes=[
            "colored vertices per round concentrate at p·nᵢ (ratio ≈ 1); "
            "the ≥ 1/2·p·nᵢ event failing matches the Chernoff rate e^{-p·nᵢ/8}.",
        ],
        extras={"failure_rate": failures / max(total_rounds, 1), "bound": worst_bound},
    )


# ---------------------------------------------------------------------------
# E5 — §2.2 claim (2): sampled sub-hypergraph dimension
# ---------------------------------------------------------------------------
def e05_sampled_dimension(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Pr[dim(H′) > d] under vertex sampling vs the m·p^{d+1} bound."""
    n = _scales(scale, 512, 1024)
    trials = _scales(scale, 300, 2000)
    d_cap = 4
    rows = []
    ok = True
    for pi, p in enumerate([0.2, 0.3, 0.45]):
        seeds = spawn_seeds((seed, 5000 + pi), trials + 1)
        H = mixed_dimension_hypergraph(
            n, 4 * n, dims=[3, 4, 5, 6, 7], seed=seeds[0]
        )
        rng_master = np.random.default_rng(seeds[1])
        oversized = 0
        for _ in range(trials):
            mask = rng_master.random(n) < p
            sampled = np.flatnonzero(mask)
            Hp = H.induced(sampled)
            if Hp.dimension > d_cap:
                oversized += 1
        rate = oversized / trials
        bound = min(1.0, oversize_edge_bound(1.0, H.num_edges, p, d_cap))
        ok &= rate <= bound + 3.0 * math.sqrt(bound * (1 - bound) / trials) + 1e-9
        rows.append([p, d_cap, H.num_edges, trials, rate, bound, rate <= bound])
    return ExperimentResult(
        experiment_id="E5",
        title="§2.2 claim (2) — Pr[dim(H′) > d] ≤ m·p^{d+1} per round",
        headers=["p", "d cap", "m", "trials", "empirical rate", "bound m·p^{d+1}", "within"],
        rows=rows,
        notes=["the union bound m·p^{d+1} dominates the measured rate at every p."],
        extras={"all_within": ok},
    )


# ---------------------------------------------------------------------------
# E6 — Lemma 2: Pr[E_X | C_X] < 1/2
# ---------------------------------------------------------------------------
def e06_unmark_probability(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Conditioned on X fully marked, X survives with probability > 1/2."""
    n = _scales(scale, 128, 256)
    trials = _scales(scale, 400, 4000)
    d = 3
    seeds = spawn_seeds((seed, 6), 4)
    H = uniform_hypergraph(n, 3 * n, d, seed=seeds[0])
    p = bl_marking_probability(H)
    incidence = H.incidence()
    sizes = H.edge_sizes()
    rng = np.random.default_rng(seeds[1])
    pick = np.random.default_rng(seeds[2])
    rows = []
    all_below = True
    for x_size in (1, 2):
        unmarked_events = 0
        for _ in range(trials):
            # Random X ⊆ some edge with |X| = x_size (so degrees are non-trivial);
            # no sub-edge of X exists since H is d-uniform with d > x_size.
            e = H.edges[int(pick.integers(0, H.num_edges))]
            x = pick.choice(len(e), size=x_size, replace=False)
            X = [e[int(i)] for i in x]
            marked = rng.random(H.universe) < p
            marked[~H.vertex_mask()] = False
            for v in X:
                marked[v] = True  # condition on C_X
            counts = incidence @ marked.astype(np.int64)
            fully = np.flatnonzero(counts == sizes)
            # E_X: some fully marked edge touches X.
            hit = False
            Xset = set(X)
            for idx in fully.tolist():
                if Xset & set(H.edges[idx]):
                    hit = True
                    break
            unmarked_events += hit
        rate = unmarked_events / trials
        all_below &= rate < 0.5
        rows.append([x_size, p, trials, rate, 0.5, rate < 0.5])
    return ExperimentResult(
        experiment_id="E6",
        title="Lemma 2 — Pr[E_X | C_X] < 1/2 at p = 1/(2^{d+1}Δ)",
        headers=["|X|", "p", "trials", "Pr[E_X|C_X] est.", "bound", "below"],
        rows=rows,
        notes=["a marked set survives the unmarking step with probability > 1/2."],
        extras={"all_below": all_below},
    )


# ---------------------------------------------------------------------------
# E7 — Theorem 3 / Corollaries 2 & 4: migration bounds
# ---------------------------------------------------------------------------
def e07_migration_bounds(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Measured per-stage d_j increase vs Kelsen and Kim–Vu migration bounds."""
    n = _scales(scale, 72, 140)
    repeats = _scales(scale, 2, 5)
    seeds = spawn_seeds((seed, 7), repeats + 1)
    H = mixed_dimension_hypergraph(n, 2 * n, dims=[2, 3, 4, 5], seed=seeds[0])
    tracker = MigrationTracker()
    for s in seeds[1:]:
        res = beame_luby(H, s, on_round=tracker.on_round)
        check_mis(H, res.independent_set)
    # Evaluate bounds against the worst Δ_k profile seen.
    worst_deltas: dict[int, float] = {}
    for hist in tracker.delta_history:
        for k, v in hist.items():
            worst_deltas[k] = max(worst_deltas.get(k, 0.0), v)
    rows = []
    holds = True
    for j in sorted(tracker.max_increase_by_j):
        if not any(k > j for k in worst_deltas):
            continue
        measured = tracker.max_increase_by_j[j]
        kv = migration_bound(n, j, worst_deltas, variant="kimvu")
        kel_terms = kelsen_migration_log_terms(n, j, worst_deltas)
        kv_terms = kimvu_migration_log_terms(n, j, worst_deltas)
        kel_log2 = max(kel_terms.values())
        kv_log2 = max(kv_terms.values())
        holds &= measured <= kv
        rows.append([j, measured, kv, kv_log2, kel_log2, measured <= kv])
    return ExperimentResult(
        experiment_id="E7",
        title="Corollaries 2 & 4 — per-stage migration vs concentration bounds",
        headers=[
            "j", "measured max Δd_j", "Kim–Vu bound", "log₂ KV term",
            "log₂ Kelsen term", "within KV",
        ],
        rows=rows,
        notes=[
            "both bounds hold with orders of magnitude to spare; the Kim–Vu "
            "exponent 2(k−j) is far below Kelsen's 2^{k−j+1} (§4's improvement).",
        ],
        extras={"holds": holds},
    )


# ---------------------------------------------------------------------------
# E8 — KUW O(√n) round shape
# ---------------------------------------------------------------------------
def e08_kuw_sqrt(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """KUW round counts stay below the O(√n) envelope across families."""
    ns = _scales(scale, [128, 256, 512, 1024], [128, 256, 512, 1024, 2048, 4096])
    repeats = _scales(scale, 3, 8)
    rows = []
    means = []
    ok = True
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 8000 + i), repeats + 1)
        H = uniform_hypergraph(n, 3 * n, 3, seed=seeds[0])
        rounds = [
            t.num_rounds for t in _solver_trials(H, karp_upfal_wigderson, seeds[1:])
        ]
        mean_r = float(np.mean(rounds))
        means.append(mean_r)
        envelope = math.sqrt(n)
        ok &= max(rounds) <= envelope * max(math.log2(n), 1)
        rows.append([n, 3 * n, mean_r, max(rounds), envelope, mean_r / envelope])
    a, _ = fit_power_law(ns, means)
    return ExperimentResult(
        experiment_id="E8",
        title="KUW — rounds vs the O(√n) envelope",
        headers=["n", "m", "rounds(mean)", "rounds(max)", "√n", "rounds/√n"],
        rows=rows,
        notes=[
            f"round growth ≈ n^{a:.2f} (power-law fit) — comfortably inside the "
            "O(√n) guarantee (exponent 0.5).",
        ],
        extras={"exponent": a, "within_envelope": ok},
    )


# ---------------------------------------------------------------------------
# E9 — §2.2 parameter table and the analysis inequalities
# ---------------------------------------------------------------------------
def params_from_log2n(log2n: float) -> dict[str, float]:
    """§2.2 parameter formulas evaluated from ``log₂ n`` (overflow-free).

    Lets the table reach the astronomic n where the asymptotic regime
    actually engages (e.g. ``n = 2^65536``).
    """
    if log2n <= 4:
        raise ValueError(f"need log2n > 4: {log2n}")
    log2_2 = math.log2(log2n)          # log⁽²⁾n
    log3 = math.log2(log2_2) if log2_2 > 1 else 1.0  # log⁽³⁾n (clamped)
    log3 = max(log3, 1.0)
    alpha = 1.0 / log3
    beta = log2_2 / (8.0 * log3 * log3)
    d = log2_2 / (4.0 * log3)
    return {
        "log2n": log2n,
        "log2_2": log2_2,
        "log3": log3,
        "alpha": alpha,
        "beta": beta,
        "d": d,
        "log2_m_max": beta * log2n,
        "log2_runtime_bound": (2.0 / log3) * log2n,
        "log2_sqrt_n": log2n / 2.0,
    }


def e09_parameters(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """The paper's parameters across 30 orders of magnitude of n."""
    log2ns = _scales(
        scale,
        [10.0, 20.0, 64.0, 4096.0, 65536.0, 2.0**20, 2.0**79, 2.0**100],
        [10.0, 20.0, 64.0, 256.0, 1024.0, 4096.0, 65536.0, 2.0**20, 2.0**40,
         2.0**79, 2.0**100, 2.0**200],
    )
    rows = []
    for e in log2ns:
        prm = params_from_log2n(e)
        d_int = max(2, int(prm["d"]))
        # d(d+1) ≤ log⁽²⁾n·(d²−8): evaluate from logs (n may be astronomic).
        dim_ok = d_int * (d_int + 1) <= prm["log2_2"] * (d_int**2 - 8)
        beats_sqrt = prm["log2_runtime_bound"] < prm["log2_sqrt_n"]
        rows.append(
            [f"2^{e:g}", prm["alpha"], prm["beta"], prm["d"],
             prm["log2_runtime_bound"], prm["log2_sqrt_n"], beats_sqrt, dim_ok]
        )
    return ExperimentResult(
        experiment_id="E9",
        title="§2.2 parameters — where the asymptotic regime engages",
        headers=[
            "n", "α", "β", "d formula", "log₂ runtime bound",
            "log₂ √n", "SBL beats √n", "d(d+1) ≤ log²n·(d²−8)",
        ],
        rows=rows,
        notes=[
            "the formula dimension d exceeds 3 only around n ≈ 2^(2^79) — the "
            "paper's regime is deeply asymptotic, which is why the "
            "implementation exposes practical overrides.",
            "SBL's runtime bound n^{2/log³n} drops below √n once log³n > 4, "
            "i.e. n > 2^(2^16).",
        ],
    )


# ---------------------------------------------------------------------------
# E10 — algorithm × family matrix
# ---------------------------------------------------------------------------
def e10_algorithm_matrix(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """All algorithms on all families: MIS size, rounds, PRAM depth/work."""
    n = _scales(scale, 200, 600)
    families: list[tuple[str, Hypergraph]] = []
    seeds = spawn_seeds((seed, 10), 8)
    families.append(("uniform-3", uniform_hypergraph(n, 2 * n, 3, seed=seeds[0])))
    families.append(
        ("mixed-2..5", mixed_dimension_hypergraph(n, 2 * n, [2, 3, 4, 5], seed=seeds[1]))
    )
    families.append(("graph", sparse_random_graph(n, 4.0, seed=seeds[2])))
    families.append(
        ("linear-3", random_linear_hypergraph(n, n, 3, seed=seeds[3]))
    )
    families.append(("sunflower", sunflower(4, max(8, n // 20), 3)))
    families.append(("tight-cycle", tight_cycle(n, 4)))
    algos: list[tuple[str, Callable[..., Any]]] = [
        ("greedy", greedy_mis),
        ("bl", beame_luby),
        ("permutation", permutation_bl),
        ("kuw", karp_upfal_wigderson),
        ("sbl", lambda h, s, machine=None: sbl(
            h, s, machine=machine, p_override=0.3, d_cap_override=max(h.dimension, 2),
            floor_override=16,
        )),
    ]
    rows = []
    run_seeds = spawn_seeds((seed, 11), len(families) * (len(algos) + 2))
    si = 0
    for fname, H in families:
        for aname, fn in algos:
            mach = CountingMachine()
            try:
                res = fn(H, run_seeds[si], machine=mach)
            except TypeError:
                res = fn(H, run_seeds[si])
            si += 1
            check_mis(H, res.independent_set)
            rows.append(
                [fname, aname, H.num_vertices, H.num_edges, res.size,
                 res.num_rounds, mach.depth, mach.work]
            )
        if all(len(e) == 2 for e in H.edges) and H.num_edges:
            mach = CountingMachine()
            res = luby_mis(H, run_seeds[si], machine=mach)
            check_mis(H, res.independent_set)
            rows.append(
                [fname, "luby", H.num_vertices, H.num_edges, res.size,
                 res.num_rounds, mach.depth, mach.work]
            )
        si += 1
        # The oracle-model KUW (queries only, no structural access): work
        # column reports oracle queries, depth the parallel batches.
        from repro.core.oracle import IndependenceOracle, kuw_oracle

        oracle = IndependenceOracle(H)
        res = kuw_oracle(oracle, run_seeds[si])
        si += 1
        check_mis(H, res.independent_set)
        rows.append(
            [fname, "kuw-oracle", H.num_vertices, H.num_edges, res.size,
             res.num_rounds, oracle.batches, oracle.queries]
        )
    return ExperimentResult(
        experiment_id="E10",
        title="Algorithm × family matrix (all outputs verified as MIS)",
        headers=["family", "algorithm", "n", "m", "|I|", "rounds", "depth", "work"],
        rows=rows,
        notes=[
            "every cell passed check_mis; rounds/depth show the survey's "
            "hierarchy (graphs easy, general hypergraphs via KUW/SBL, BL "
            "cheap only at small dimension).",
            "kuw-oracle rows: depth = parallel oracle batches, work = total "
            "independence queries (the paper's 'harder model' for KUW).",
        ],
    )


# ---------------------------------------------------------------------------
# E11 — §3.1: the recurrence fix
# ---------------------------------------------------------------------------
def e11_recurrence_fix(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Kelsen's original F fails the claim inequality at super-constant d;
    the paper's d² variant satisfies it (for large n)."""
    ds = _scales(scale, [3, 4, 5], [3, 4, 5, 6, 8])
    log2ns = [64, 4096, 65536]
    rows = []
    paper_ok_somewhere = {}
    for d in ds:
        for e in log2ns:
            Fp = lambda i, _d=d: F_paper(i, _d)
            lhs, rhs, holds = claim_inequality(0.0, d, 2, Fp, logn=float(e))
            _, _, o_holds = original_f_claim_sides(0.0, d, logn=float(e))
            paper_ok_somewhere[d] = paper_ok_somewhere.get(d, False) or holds
            rows.append([d, f"2^{e}", lhs, rhs, holds, o_holds])
    return ExperimentResult(
        experiment_id="E11",
        title="§3.1 — claim inequality: original F fails, d²-variant holds",
        headers=[
            "d", "n", "paper lhs (log₂)", "rhs (log₂)", "paper F holds",
            "original F holds",
        ],
        rows=rows,
        notes=[
            "with Kelsen's original recurrence the k=j+1 exponent is −1 and "
            "the claim needs 2^{d(d+1)} ≤ 2 — false for every d ≥ 1.",
            "the paper's d² recurrence restores the inequality once n is "
            "large enough for (log n)^{d²−7} to beat 2^{d(d+1)}.",
        ],
        extras={"paper_ok": paper_ok_somewhere},
    )


# ---------------------------------------------------------------------------
# E12 — §4.1: F(j) ≥ F(j−1)·j + 5 is necessary
# ---------------------------------------------------------------------------
def e12_f_necessity(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Scan candidate recurrences against the §4.1 necessity condition."""
    j_top = _scales(scale, 8, 12)
    candidates: list[tuple[str, Callable[[int], float]]] = [
        ("F(j)=j·F(j−1)+4", lambda j: _affine_F(j, 4)),
        ("F(j)=j·F(j−1)+5", lambda j: _affine_F(j, 5)),
        ("F(j)=j·F(j−1)+7 (Kelsen)", F_original),
        ("F(j)=j·F(j−1)+d², d=4", lambda j: F_paper(j, 4)),
        ("F(j)=j³ (polynomial)", lambda j: j**3),
        ("F(j)=2^j (geometric)", lambda j: 2.0**j),
    ]
    rows = []
    for name, F in candidates:
        first_fail = None
        for j in range(2, j_top + 1):
            if not f_necessity_holds(F, j):
                first_fail = j
                break
        rows.append([name, first_fail is None, first_fail])
    return ExperimentResult(
        experiment_id="E12",
        title="§4.1 — necessity of F(j) ≥ F(j−1)·j + 5 (why Kim–Vu can't help)",
        headers=["candidate F", "satisfies necessity", "first failing j"],
        rows=rows,
        notes=[
            "every sub-factorial F (polynomial, geometric, additive constant "
            "< 5) violates the condition, so the stage count "
            "(log n)^{F(d−1)(d−1)} stays super-factorial in d regardless of "
            "the sharper concentration bound — the paper's §4.1 conclusion.",
        ],
    )


def _affine_F(j: int, c: int) -> int:
    val = 0
    for k in range(2, j + 1):
        val = k * val + c
    return val


# ---------------------------------------------------------------------------
# E13 — §2.1: correctness invariant + failure injection
# ---------------------------------------------------------------------------
def e13_invariants(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Validators catch every injected corruption of an SBL result."""
    repeats = _scales(scale, 10, 50)
    n = 300
    caught_ind = caught_max = 0
    seeds = spawn_seeds((seed, 13), repeats + 1)
    H = mixed_dimension_hypergraph(n, 2 * n, [2, 3, 4], seed=seeds[0])
    rng = np.random.default_rng((seed, 1313))
    for s in seeds[1:]:
        res = sbl(H, s, p_override=0.3, d_cap_override=4, floor_override=16)
        check_mis(H, res.independent_set)  # the §2.1 invariant, end-to-end
        I = set(res.independent_set.tolist())
        # Injection (a): force a vertex in, completing some edge.
        outsider = find_maximality_witness(H, res.independent_set)
        # An MIS has no maximality witness, so pick the missing vertex of a
        # nearly complete edge instead.
        broken = None
        for e in H.edges:
            missing = [v for v in e if v not in I]
            if len(missing) == 1:
                broken = sorted(I | {missing[0]})
                break
        if broken is not None:
            try:
                check_mis(H, broken)
            except IndependenceViolation:
                caught_ind += 1
        # Injection (b): drop a random member — the dropped vertex itself
        # becomes addable.
        drop = int(rng.choice(res.independent_set))
        try:
            check_mis(H, sorted(I - {drop}))
        except MaximalityViolation:
            caught_max += 1
        except IndependenceViolation:  # pragma: no cover - cannot happen
            pass
        assert outsider is None
    rows = [
        ["runs", repeats],
        ["valid results accepted", repeats],
        ["independence injections caught", caught_ind],
        ["maximality injections caught", caught_max],
    ]
    return ExperimentResult(
        experiment_id="E13",
        title="§2.1 — invariant validation and failure injection",
        headers=["quantity", "value"],
        rows=rows,
        notes=["every injected violation was caught with a concrete witness."],
        extras={
            "caught_all": caught_ind == repeats and caught_max == repeats,
        },
    )


# ---------------------------------------------------------------------------
# E14 — linear hypergraphs (RNC class)
# ---------------------------------------------------------------------------
def e14_linear(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Round counts of the linear-hypergraph specialisation vs plain BL."""
    ns = _scales(scale, [100, 200, 400], [100, 200, 400, 800, 1600])
    repeats = _scales(scale, 3, 8)
    rows = []
    lin_means = []
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 14000 + i), 2 * repeats + 1)
        H = random_linear_hypergraph(n, n, 3, seed=seeds[0])
        lin_rounds, bl_rounds = [], []
        for k in range(repeats):
            res_l = linear_hypergraph_mis(H, seeds[1 + 2 * k])
            check_mis(H, res_l.independent_set)
            lin_rounds.append(res_l.num_rounds)
            res_b = beame_luby(H, seeds[2 + 2 * k])
            check_mis(H, res_b.independent_set)
            bl_rounds.append(res_b.num_rounds)
        lin_mean = float(np.mean(lin_rounds))
        lin_means.append(lin_mean)
        rows.append(
            [n, H.num_edges, lin_mean, float(np.mean(bl_rounds)),
             lin_mean / math.log2(n) ** 2]
        )
    a, _ = fit_power_law(ns, lin_means)
    return ExperimentResult(
        experiment_id="E14",
        title="Linear hypergraphs — specialised marking vs plain BL",
        headers=["n", "m", "linear rounds", "bl rounds", "linear/log²n"],
        rows=rows,
        notes=[
            f"linear-specialised rounds ≈ n^{a:.2f} (≈0 ⇒ polylog), with the "
            "larger marking probability beating BL's 2^{d+1} safety factor — "
            "the Luczak–Szymanska RNC phenomenon.",
        ],
        extras={"exponent": a},
    )


# ---------------------------------------------------------------------------
# E15 — Theorem 3 setting: the migration polynomial S vs D and the tails
# ---------------------------------------------------------------------------
def e15_polynomial_tails(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Sample S(H′, w′, p) and compare its tail against Kelsen and Kim–Vu."""
    import math as _math

    from repro.theory.concentration import kelsen_tail, kim_vu_threshold_factor
    from repro.theory.polynomial import D_value, migration_polynomial, sample_S

    n = _scales(scale, 60, 120)
    trials = _scales(scale, 800, 5000)
    seeds = spawn_seeds((seed, 15), 3)
    # Sunflower block embedded in a random 4-uniform background: the
    # sunflower core maximises migration weight.
    core = sunflower(2, 12, 2)
    H = Hypergraph(
        max(n, core.universe),
        list(core.edges)
        + list(uniform_hypergraph(n, 2 * n, 4, seed=seeds[0]).edges)
        + list(uniform_hypergraph(n, n, 5, seed=seeds[2]).edges),
    )
    prof = degree_profile(H)
    d = H.dimension
    p = min(1.0, 1.0 / (2 ** (d + 1) * prof.delta()))
    logn = _math.log2(max(H.num_vertices, 4))
    lam = logn**2
    rows = []
    never_exceeded = True
    for X, j, k in [((0, 1), 1, 2), ((0,), 1, 3), ((0,), 2, 3), ((0,), 1, 4)]:
        W = migration_polynomial(H, X, j, k)
        if W.num_edges == 0:
            continue
        D = D_value(W, p)
        draws = sample_S(W, p, trials=trials, seed=seeds[1])
        kv_factor = kim_vu_threshold_factor(k - j, lam)
        log2_kelsen_factor, _ = kelsen_tail(
            max(H.num_vertices, 3), max(W.num_edges, 1), max(W.dimension, 1), lam
        )
        exceed_kv = float((draws > kv_factor * D).mean()) if D > 0 else 0.0
        never_exceeded &= exceed_kv == 0.0
        rows.append(
            [f"X={X}", j, k, W.num_edges, D, float(draws.max()),
             float(draws.max()) / D if D > 0 else 0.0,
             _math.log2(kv_factor), log2_kelsen_factor, exceed_kv]
        )
    return ExperimentResult(
        experiment_id="E15",
        title="Theorem 3 setting — migration polynomial S vs D and the tails",
        headers=[
            "X", "j", "k", "|E(H′)|", "D(H′,w′,p)", "max S (sampled)",
            "max S / D", "log₂ KV factor", "log₂ Kelsen factor", "Pr[S > KV·D]",
        ],
        rows=rows,
        notes=[
            "sampled S never approaches either threshold: max S/D stays "
            "single-digit while both bound factors are astronomically larger "
            "(they must hold for *all* weighted hypergraphs, w.h.p., union-"
            "bounded over all X and all stages).",
            "the Kim–Vu factor is far below Kelsen's — §4's improvement — "
            "yet §4.1 shows even it cannot shorten the final runtime.",
        ],
        extras={"never_exceeded": never_exceeded},
    )


# ---------------------------------------------------------------------------
# E16 — Lemma 5: decay of the universal threshold v₂(H_s)
# ---------------------------------------------------------------------------
def e16_potential_decay(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Track Kelsen's v₂ potential across BL stages (Lemma 5 / §3.1)."""
    from repro.analysis.instrument import PotentialTracker
    from repro.theory.recurrences import lambda_n, log2_q_j

    ns = _scales(scale, [80, 160], [80, 160, 320, 640])
    repeats = _scales(scale, 3, 6)
    d = 3
    rows = []
    growth_ok = True
    for i, n in enumerate(ns):
        seeds = spawn_seeds((seed, 16000 + i), repeats + 1)
        H = uniform_hypergraph(n, 3 * n, d, seed=seeds[0])
        halves, zeros, growths, v2s = [], [], [], []
        for s in seeds[1:]:
            tracker = PotentialTracker()
            res = beame_luby(H, s, on_round=tracker.on_round)
            check_mis(H, res.independent_set)
            v2s.append(tracker.v2_trajectory[0])
            if tracker.stages_to_halve() is not None:
                halves.append(tracker.stages_to_halve())
            if tracker.stages_to_zero() is not None:
                zeros.append(tracker.stages_to_zero())
            growths.append(tracker.max_growth_ratio())
        lam = lambda_n(n)
        max_growth = max(growths)
        # Lemma 5's slack is (1 + λ(n))-shaped; allow the constant-factor
        # headroom the proof carries (1 + 3λ/2).
        growth_ok &= max_growth <= 1.0 + 3.0 * lam
        rows.append(
            [n, v2s[0], float(np.mean(halves)) if halves else None,
             float(np.mean(zeros)) if zeros else None,
             max_growth, 1.0 + lam, log2_q_j(d, d, n)]
        )
    return ExperimentResult(
        experiment_id="E16",
        title="Lemma 5 — decay of the universal threshold v₂(H_s)",
        headers=[
            "n", "v₂(H₀)", "stages to halve", "stages to zero",
            "max growth ratio", "1+λ(n)", "log₂ q_d (bound)",
        ],
        rows=rows,
        notes=[
            "v₂ collapses to 0 within tens of stages — astronomically faster "
            "than the worst-case q_d window the proof budgets (shown in "
            "log₂) — and never grows by more than the Lemma 5 slack.",
        ],
        extras={"growth_ok": growth_ok},
    )


# ---------------------------------------------------------------------------
# E17 — §1: the permutation algorithm's conjectured-RNC behaviour
# ---------------------------------------------------------------------------
def e17_permutation_conjecture(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    """Round scaling of Beame–Luby's permutation algorithm across families.

    The paper's §1: Beame and Luby conjectured this algorithm works in RNC
    for the general problem (Shachnai–Srinivasan 2004 made partial
    progress); a refutation would need a family with super-polylog rounds.
    We sweep adversarial and random families looking for one — and, as the
    conjecture predicts, find flat round counts everywhere.
    """
    ns = _scales(scale, [128, 256, 512], [128, 256, 512, 1024, 2048])
    repeats = _scales(scale, 3, 8)
    rows = []
    worst_exponent = -math.inf
    families = [
        ("uniform-3", lambda n, s: uniform_hypergraph(n, 3 * n, 3, seed=s)),
        ("mixed-2..5", lambda n, s: mixed_dimension_hypergraph(n, 3 * n, [2, 3, 4, 5], seed=s)),
        ("tight-cycle-4", lambda n, s: tight_cycle(n, 4)),
        ("sunflower", lambda n, s: sunflower(3, n // 4, 3)),
    ]
    for fname, make in families:
        means = []
        for i, n in enumerate(ns):
            seeds = spawn_seeds((seed, 17000, fname, i), repeats + 1)
            H = make(n, seeds[0])
            rounds = [
                t.num_rounds for t in _solver_trials(H, permutation_bl, seeds[1:])
            ]
            means.append(float(np.mean(rounds)))
            rows.append([fname, n, H.num_edges, means[-1], max(rounds)])
        a, _ = fit_power_law(ns, means)
        worst_exponent = max(worst_exponent, a)
    return ExperimentResult(
        experiment_id="E17",
        title="§1 — permutation algorithm: conjectured-RNC round scaling",
        headers=["family", "n", "m", "rounds(mean)", "rounds(max)"],
        rows=rows,
        notes=[
            f"worst round-growth exponent over all families: n^{worst_exponent:.2f} "
            "— flat, consistent with the RNC conjecture.",
            "round counts of 2–5 across two orders of magnitude of n make "
            "this empirically the strongest algorithm in the suite (cf. "
            "E10), matching why Beame–Luby found the conjecture appealing.",
        ],
        extras={"worst_exponent": worst_exponent},
    )


#: Registry used by benchmarks, the report generator and ``run_experiment``.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "E1": e01_sbl_rounds,
    "E2": e02_sbl_vs_kuw,
    "E3": e03_bl_rounds,
    "E4": e04_colored_fraction,
    "E5": e05_sampled_dimension,
    "E6": e06_unmark_probability,
    "E7": e07_migration_bounds,
    "E8": e08_kuw_sqrt,
    "E9": e09_parameters,
    "E10": e10_algorithm_matrix,
    "E11": e11_recurrence_fix,
    "E12": e12_f_necessity,
    "E13": e13_invariants,
    "E14": e14_linear,
    "E15": e15_polynomial_tails,
    "E16": e16_potential_decay,
    "E17": e17_permutation_conjecture,
}


def run_experiment(
    experiment_id: str,
    scale: str = "quick",
    seed: int = 0,
    workers: int | None = None,
) -> ExperimentResult:
    """Run one experiment by id (``"E1"`` … ``"E17"``).

    With ``workers`` set, an ambient :class:`repro.exec.ParallelRunner`
    is installed for the duration, so runners built on the
    ``_solver_trials`` primitive fan their repeated trials out across
    worker processes.  Results are identical to ``workers=None`` — the
    trial seeds are derived before dispatch and consumed one-per-trial in
    both modes.
    """
    try:
        fn = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    if workers is None:
        return fn(scale=scale, seed=seed)
    from repro.exec import ParallelRunner, use_runner

    with ParallelRunner(int(workers)) as runner, use_runner(runner):
        return fn(scale=scale, seed=seed)
