"""Per-round instrumentation and trace aggregation.

* :class:`MigrationTracker` — a BL ``on_round`` hook measuring the actual
  per-stage increase of the normalised degrees ``d_j(x, H)`` caused by
  higher-dimensional edges shrinking (the quantity Corollaries 2 and 4
  bound).
* :func:`colored_fractions` — per-outer-round sampled fractions from an
  SBL trace (claim (1) of §2.2).
* :func:`fit_power_law` — least-squares exponent fit ``y ≈ c·x^a`` used by
  the scaling experiments (E2, E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.degrees import DegreeProfile, degree_profile
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["MigrationTracker", "PotentialTracker", "colored_fractions", "fit_power_law"]


@dataclass
class MigrationTracker:
    """Track per-stage increases of ``d_j(x, H)`` across BL rounds.

    Pass the instance's :meth:`on_round` as ``beame_luby(..., on_round=…)``.
    After the run, :attr:`max_increase_by_j` maps ``j`` to the largest
    single-stage increase of ``d_j(x, ·)`` observed over any set ``x``
    (the paper's migration quantity), and :attr:`delta_history` records
    ``{edge size k: Δ_k(H_s)}`` per stage for the bound evaluation.
    """

    max_increase_by_j: dict[int, float] = field(default_factory=dict)
    delta_history: list[dict[int, float]] = field(default_factory=list)
    _prev_profile: DegreeProfile | None = None

    def on_round(
        self,
        record: RoundRecord,
        before: Hypergraph,
        after: Hypergraph,
        marked_mask: np.ndarray,
        added: np.ndarray,
    ) -> None:
        """BL round hook: diff the degree profiles of H_s and H_{s+1}."""
        prof_before = (
            self._prev_profile
            if self._prev_profile is not None
            else degree_profile(before)
        )
        self.delta_history.append(dict(prof_before.delta_by_size))
        prof_after = degree_profile(after)
        # d_j(x, ·) increase: same x, same *distance* j = i − |x|.  An edge
        # of size i_old containing x that shrinks (outside x) to size i_new
        # migrates from j_old = i_old − |x| to j_new = i_new − |x|.
        before_counts: dict[tuple[tuple[int, ...], int], int] = {}
        for (x, i), c in prof_before.counts.items():
            before_counts[(x, i - len(x))] = c
        increases: dict[int, float] = {}
        for (x, i), c_new in prof_after.counts.items():
            j = i - len(x)
            c_old = before_counts.get((x, j), 0)
            if c_new > c_old:
                inc = c_new ** (1.0 / j) - c_old ** (1.0 / j)
                if inc > increases.get(j, 0.0):
                    increases[j] = inc
        for j, inc in increases.items():
            if inc > self.max_increase_by_j.get(j, 0.0):
                self.max_increase_by_j[j] = inc
        record.extras["dj_increase"] = increases
        self._prev_profile = prof_after


@dataclass
class PotentialTracker:
    """Track Kelsen's universal threshold ``v₂(H_s)`` across BL stages.

    Lemma 5 (Lemma 4 in Kelsen) asserts that across any polylog window the
    potential only grows by a ``(1 + o(1))`` factor, and the full argument
    drives ``v₂`` to 0 within ``O(log n · q_d)`` stages.  The tracker
    records the trajectory using the paper's d²-recurrence (``f``/``F``
    fixed from the *initial* dimension) so experiment E16 can report decay
    speed and the largest single-stage growth ratio.
    """

    v2_trajectory: list[float] = field(default_factory=list)
    _f = None
    _F = None
    _log_n: float | None = None

    def on_round(
        self,
        record: RoundRecord,
        before: Hypergraph,
        after: Hypergraph,
        marked_mask: np.ndarray,
        added: np.ndarray,
    ) -> None:
        """BL round hook: record v₂ of the hypergraph entering the round."""
        from repro.hypergraph.degrees import kelsen_potentials
        from repro.theory.recurrences import F_paper, f_paper

        if self._f is None:
            d0 = max(before.dimension, 2)
            self._f = lambda i, _d=d0: f_paper(i, _d)
            self._F = lambda i, _d=d0: F_paper(i, _d)
            self._log_n = max(np.log2(max(before.num_vertices, 4)), 1.0)
        if not self.v2_trajectory:
            self.v2_trajectory.append(
                kelsen_potentials(before, self._f, self._F, log_n=self._log_n).v2()
            )
        self.v2_trajectory.append(
            kelsen_potentials(after, self._f, self._F, log_n=self._log_n).v2()
        )
        record.extras["v2"] = self.v2_trajectory[-1]

    def stages_to_halve(self) -> int | None:
        """First stage where v₂ drops to half its initial value (None if never)."""
        if not self.v2_trajectory or self.v2_trajectory[0] <= 0:
            return None
        half = self.v2_trajectory[0] / 2.0
        for s, v in enumerate(self.v2_trajectory):
            if v <= half:
                return s
        return None

    def stages_to_zero(self) -> int | None:
        """First stage where v₂ reaches 0 (None if never)."""
        for s, v in enumerate(self.v2_trajectory):
            if v <= 0:
                return s
        return None

    def max_growth_ratio(self) -> float:
        """Largest single-stage ratio ``v₂(H_{s+1}) / v₂(H_s)`` (1.0 if no growth)."""
        best = 1.0
        for a, b in zip(self.v2_trajectory, self.v2_trajectory[1:]):
            if a > 0 and b / a > best:
                best = b / a
        return best


def colored_fractions(result: MISResult, phase: str = "sbl") -> list[tuple[int, int, float]]:
    """Per-round ``(n_before, colored, colored / (p·n_before))`` for a phase.

    "Colored" means permanently decided this round — blue (added) plus red
    (removed) — i.e. the sampled set ``V′``, which claim (1) of §2.2 lower
    bounds by ``p·nᵢ/2`` w.h.p.
    """
    out = []
    for rec in result.rounds:
        if rec.phase != phase:
            continue
        p = rec.extras.get("p")
        if p is None or rec.n_before == 0:
            continue
        colored = rec.marked
        out.append((rec.n_before, colored, colored / (p * rec.n_before)))
    return out


def fit_power_law(xs, ys) -> tuple[float, float]:
    """Least-squares fit of ``y ≈ c·x^a`` in log-log space.

    Returns ``(a, c)``.  Requires at least two strictly positive points.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    keep = (x > 0) & (y > 0)
    x, y = x[keep], y[keep]
    if x.size < 2:
        raise ValueError("need at least two positive points for a power-law fit")
    a, logc = np.polyfit(np.log(x), np.log(y), 1)
    return float(a), float(np.exp(logc))
