"""Command-line interface.

The subcommands mirror the library's workflow::

    python -m repro generate uniform --n 200 --m 400 --d 3 -o inst.txt
    python -m repro info inst.txt
    python -m repro solve inst.txt --algorithm sbl --seed 7 --costs
    python -m repro check inst.txt --set 1,4,9,12
    python -m repro experiment E3 --scale quick
    python -m repro campaign --sizes 100,200 --workers 4 --csv runs.csv
    python -m repro stream --steps 50 --batch 4 --hot 0.8 --telemetry run.jsonl
    python -m repro trace summary run.jsonl
    python -m repro fuzz run --budget 60s --seed 0
    python -m repro fuzz replay tests/regressions
    python -m repro fuzz shrink inst.txt --seed 0 -o tests/regressions
    python -m repro serve --socket repro.sock --workers auto --heartbeat 5
    python -m repro client solve inst.txt --algorithm bl --seed 7

``solve`` prints a JSON document (set, rounds, optional PRAM costs) so it
composes with shell pipelines; everything else prints human-readable text.
``solve`` and ``experiment`` accept ``--telemetry PATH`` to stream a
versioned JSONL span/metric event log (see docs/observability.md), which
``trace summary`` / ``trace compare`` / ``trace diff`` / ``trace flame``
render.  ``--profile HZ`` adds sampling-profiler events to the stream;
``--heartbeat SEC`` and ``--metrics-out PATH`` publish campaign liveness
gauges as OpenMetrics text.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Iterator, Sequence

from repro.analysis import run_experiment
from repro.analysis.ablations import run_ablation
from repro.analysis.tables import render_kv
from repro.exec.workers import resolve_workers
from repro.core import (
    beame_luby,
    greedy_mis,
    karp_upfal_wigderson,
    linear_hypergraph_mis,
    luby_mis,
    permutation_bl,
    sbl,
)
from repro.generators import (
    bounded_edges_instance,
    mixed_dimension_hypergraph,
    random_linear_hypergraph,
    sparse_random_graph,
    uniform_hypergraph,
)
from repro.hypergraph import check_mis
from repro.hypergraph.degrees import degree_profile
from repro.hypergraph.hio import dump, load
from repro.hypergraph.validate import (
    IndependenceViolation,
    MaximalityViolation,
)
from repro.pram import CountingMachine

__all__ = ["main"]

ALGORITHMS: dict[str, Callable] = {
    "sbl": sbl,
    "bl": beame_luby,
    "kuw": karp_upfal_wigderson,
    "greedy": greedy_mis,
    "permutation": permutation_bl,
    "luby": luby_mis,
    "linear": linear_hypergraph_mis,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "uniform":
        H = uniform_hypergraph(args.n, args.m, args.d, seed=args.seed)
    elif args.family == "mixed":
        dims = [int(x) for x in args.dims.split(",")]
        H = mixed_dimension_hypergraph(args.n, args.m, dims, seed=args.seed)
    elif args.family == "graph":
        H = sparse_random_graph(args.n, args.avg_degree, seed=args.seed)
    elif args.family == "linear":
        H = random_linear_hypergraph(args.n, args.m, args.d, seed=args.seed)
    elif args.family == "bounded":
        H = bounded_edges_instance(args.n, seed=args.seed, beta_fraction=args.beta_fraction)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.family)
    if args.output == "-":
        dump(H, sys.stdout)
    else:
        dump(H, args.output)
        print(f"wrote {H} to {args.output}", file=sys.stderr)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    H = load(args.instance)
    info = {
        "vertices": H.num_vertices,
        "edges": H.num_edges,
        "dimension": H.dimension,
        "min edge size": H.min_edge_size,
        "total edge size": H.total_edge_size,
        "max vertex degree": H.max_degree(),
    }
    if H.num_edges and H.dimension <= 12:
        prof = degree_profile(H)
        info["max normalised degree Δ"] = round(prof.delta(), 4)
    print(render_kv(str(args.instance), info))
    return 0


@contextlib.contextmanager
def _telemetry(
    path: str,
    *,
    profile_hz: float = 0.0,
    heartbeat: float = 0.0,
    metrics_out: str = "",
    track_memory: bool = False,
    extra_gauges: Callable[[], dict] | None = None,
    **run_attrs,
) -> Iterator[None]:
    """Activate the observability stack for the enclosed run.

    With *path*, opens a :class:`~repro.obs.events.JsonlSink` there, emits
    a ``run`` preamble event carrying *run_attrs*, and installs the tracer
    ambiently (so library code picks it up via ``current_tracer()``)
    inside an isolated metrics registry; on exit the metrics snapshot is
    flushed and the sink closed.  ``track_memory`` opts the tracer into
    per-span allocation peaks.

    *profile_hz* > 0 runs a :class:`~repro.obs.profile.SamplingProfiler`
    over the run, its samples landing as a ``profile`` event on the
    stream.  *heartbeat* > 0 starts a liveness thread flushing progress
    gauges every beat; *extra_gauges* (a callable returning name→value)
    is polled on each beat so long-running commands — ``serve`` — can
    publish their own gauges through the same textfile.  *metrics_out*
    writes an OpenMetrics textfile — each beat when a heartbeat runs,
    once at exit otherwise — and works with or without a telemetry
    *path*.

    With none of these requested this is a complete no-op.
    """
    if not path and not metrics_out:
        yield
        return
    from repro.obs import (
        NULL_TRACER,
        Heartbeat,
        JsonlSink,
        SamplingProfiler,
        Tracer,
        isolated_registry,
        use_tracer,
    )
    from repro.obs.export import render_openmetrics

    with isolated_registry() as registry:
        if path:
            tracer = Tracer(JsonlSink(path), track_memory=track_memory)
        else:
            tracer = NULL_TRACER  # no event stream: metrics-only run
        profiler = None
        if profile_hz > 0:
            if not path:
                print(
                    "--profile needs --telemetry PATH (samples land on the "
                    "event stream); ignoring",
                    file=sys.stderr,
                )
            else:
                profiler = SamplingProfiler(profile_hz, tracer=tracer)
        labels = (
            {"command": str(run_attrs["command"])} if "command" in run_attrs else None
        )
        beat = None
        if heartbeat > 0:
            beat = Heartbeat(
                heartbeat,
                registry=registry,
                tracer=tracer,
                textfile=metrics_out or None,
                labels=labels,
                extra=extra_gauges,
            )
        try:
            if tracer.enabled:
                tracer.emit("run", **run_attrs)
            if profiler is not None:
                profiler.start()
            if beat is not None:
                beat.start()
            with use_tracer(tracer):
                yield
        finally:
            if beat is not None:
                beat.stop()  # final beat rewrites the textfile
            if profiler is not None and profiler.running:
                profiler.stop()  # emits the profile event before close
            if tracer.enabled:
                tracer.flush_metrics()
            tracer.close()
            if metrics_out and beat is None:
                from pathlib import Path

                if extra_gauges is not None:
                    with contextlib.suppress(Exception):
                        for name, value in extra_gauges().items():
                            registry.gauge(name).set(float(value))
                Path(metrics_out).write_text(
                    render_openmetrics(registry.snapshot(), labels=labels),
                    encoding="utf-8",
                )
    if path:
        print(f"telemetry written to {path}", file=sys.stderr)
    if metrics_out:
        print(f"metrics written to {metrics_out}", file=sys.stderr)


def _cmd_solve(args: argparse.Namespace) -> int:
    H = load(args.instance)
    # Validate the spec (so 'auto' and bad values behave uniformly across
    # subcommands), but a single solve has no grid to fan out: in-process.
    resolve_workers(args.workers)
    fn = ALGORITHMS[args.algorithm]
    # Telemetry implies a cost accountant: spans record depth/work deltas.
    machine = CountingMachine() if (args.costs or args.telemetry) else None
    kwargs = {}
    if machine is not None:
        kwargs["machine"] = machine
    with _telemetry(
        args.telemetry,
        profile_hz=args.profile,
        track_memory=args.track_memory,
        command="solve",
        instance=str(args.instance),
        algorithm=args.algorithm,
        seed=args.seed,
        n=H.num_vertices,
        m=H.num_edges,
        dim=H.dimension,
    ):
        res = fn(H, seed=args.seed, **kwargs)
    check_mis(H, res.independent_set)
    doc = {
        "algorithm": res.algorithm,
        "n": res.n,
        "m": res.m,
        "mis_size": res.size,
        "rounds": res.num_rounds,
        "independent_set": res.independent_set.tolist(),
    }
    if args.costs and machine is not None:
        doc["pram"] = machine.snapshot()
    if args.save_trace:
        from repro.analysis.traces import save_result

        save_result(res, args.save_trace)
        print(f"trace written to {args.save_trace}", file=sys.stderr)
    json.dump(doc, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        AlgorithmSpec,
        Campaign,
        InstanceSpec,
        write_csv,
    )
    from repro.analysis.tables import render_table
    from repro.generators import uniform_hypergraph as _uniform

    algo_names = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    for a in algo_names:
        if a not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {a!r}; known: {sorted(ALGORITHMS)}")
    ns = [int(x) for x in args.sizes.split(",") if x.strip()]
    camp = Campaign(
        instances=[
            InstanceSpec(
                f"uniform-{args.d}-n{n}",
                _uniform,
                {"n": n, "m": args.edge_factor * n, "d": args.d},
            )
            for n in ns
        ],
        algorithms=[AlgorithmSpec(a, ALGORITHMS[a]) for a in algo_names],
        repeats=args.repeats,
    )
    workers = resolve_workers(args.workers)
    with _telemetry(
        args.telemetry,
        profile_hz=args.profile,
        heartbeat=args.heartbeat,
        metrics_out=args.metrics_out,
        command="campaign",
        sizes=ns,
        algorithms=algo_names,
        repeats=args.repeats,
        seed=args.seed,
        workers=workers or 0,
    ):
        records = camp.run(seed=args.seed, parallel=workers)
    if args.csv:
        write_csv(records, args.csv)
        print(f"wrote {len(records)} runs to {args.csv}", file=sys.stderr)
    summary = camp.summarize(records)
    print(
        render_table(
            ["instance", "algorithm", "runs", "|I| (mean)", "rounds", "depth", "work"],
            [
                [c["instance"], c["algorithm"], c["runs"], c["mis_size"],
                 c["rounds"], c["depth"], c["work"]]
                for c in summary
            ],
            title="campaign summary",
        )
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.dynamic import DynamicMIS
    from repro.generators import churn_stream, sharded_hypergraph

    if args.instance:
        H = load(args.instance)
    else:
        H = sharded_hypergraph(
            args.blocks, args.block_n, args.block_m, args.d, seed=args.seed
        )
    batches = churn_stream(
        H,
        args.steps,
        seed=args.seed,
        batch_edges=args.batch,
        arrival_fraction=args.arrival,
        hot_fraction=args.hot,
        hot_window=args.hot_window,
        adversarial_fraction=args.adversarial,
    )
    strategies: Counter[str] = Counter()
    with _telemetry(
        args.telemetry,
        heartbeat=args.heartbeat,
        metrics_out=args.metrics_out,
        command="stream",
        n=H.num_vertices,
        m=H.num_edges,
        dim=H.dimension,
        steps=args.steps,
        strategy=args.strategy,
        seed=args.seed,
    ):
        engine = DynamicMIS(H, seed=args.seed, strategy=args.strategy)
        for batch in batches:
            out = engine.apply(batch.add_edges, batch.remove_edges)
            strategies[out.strategy] += 1
        certified = engine.certify()
    final = engine.hypergraph
    doc = {
        "steps": engine.steps,
        "strategy": args.strategy,
        "n": final.num_vertices,
        "m": final.num_edges,
        "mis_size": int(engine.independent_set.size),
        "repairs": strategies["repair"],
        "recomputes": strategies["recompute"],
        "noops": strategies["noop"],
        "certified": certified,
        "chain": engine.chain,
    }
    json.dump(doc, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    H = load(args.instance)
    members = [int(x) for x in args.set.split(",")] if args.set else []
    try:
        check_mis(H, members)
    except IndependenceViolation as exc:
        print(f"NOT independent: {exc}")
        return 1
    except MaximalityViolation as exc:
        print(f"independent but NOT maximal: {exc}")
        return 2
    print(f"valid maximal independent set of size {len(set(members))}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    eid = args.experiment_id.upper()
    with _telemetry(
        args.telemetry,
        profile_hz=args.profile,
        heartbeat=args.heartbeat,
        metrics_out=args.metrics_out,
        command="experiment",
        experiment=eid,
        scale=args.scale,
        seed=args.seed,
    ):
        workers = resolve_workers(args.workers)
        if eid.startswith("A"):
            res = run_ablation(eid, scale=args.scale, seed=args.seed)
        else:
            res = run_experiment(eid, scale=args.scale, seed=args.seed, workers=workers)
    print(res.to_markdown())
    return 0


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.qa import parse_budget, run_fuzz

    budget = parse_budget(args.budget)
    workers = resolve_workers(args.workers)
    solvers = (
        [s.strip() for s in args.solvers.split(",") if s.strip()]
        if args.solvers
        else None
    )
    with _telemetry(
        args.telemetry,
        heartbeat=args.heartbeat,
        metrics_out=args.metrics_out,
        command="fuzz-run",
        budget=str(budget),
        seed=args.seed,
        workers=workers or 0,
    ):
        report = run_fuzz(
            budget,
            seed=args.seed,
            solvers=solvers,
            out_dir=args.out,
            max_failures=args.max_failures,
            shrink_failures=not args.no_shrink,
            start_index=args.start_index,
            workers=workers,
        )
    print(report.summary())
    for cr in report.failures:
        print(f"\nFAIL {cr.description}")
        for f in cr.failures:
            print(f"  {f}")
        if cr.reproducer is not None:
            print(
                f"  reproducer: {cr.reproducer} "
                f"(n={cr.shrunk_n}, m={cr.shrunk_m}) — replay with "
                f"'repro fuzz replay {cr.reproducer}'"
            )
    return 0 if report.ok else 1


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.qa import replay

    target = Path(args.path)
    paths = sorted(target.glob("*.npz")) if target.is_dir() else [target]
    if not paths:
        print(f"no reproducers under {target}", file=sys.stderr)
        return 1
    bad = 0
    for path in paths:
        failures = replay(path)
        if failures:
            bad += 1
            print(f"FAIL {path.name}")
            for f in failures:
                print(f"  {f}")
        else:
            print(f"ok   {path.name}")
    print(f"{len(paths) - bad}/{len(paths)} reproducers clean")
    return 1 if bad else 0


def _cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.qa import load_reproducer, make_predicate, save_reproducer, shrink

    path = Path(args.instance)
    if path.suffix == ".npz":
        H, manifest = load_reproducer(path)
        seed = int(manifest["seed"]) if args.seed is None else args.seed
        solvers = manifest.get("solvers")
    else:
        H = load(path)
        seed = 0 if args.seed is None else args.seed
        solvers = None
    if args.solvers:
        solvers = [s.strip() for s in args.solvers.split(",") if s.strip()]
    fails = make_predicate(seed, solvers=solvers, metamorphic=True, oracle=True)
    if not fails(H):
        print(f"{path}: differential battery passes — nothing to shrink")
        return 1
    result = shrink(H, fails, max_evals=args.max_evals)
    print(result.summary())
    out = save_reproducer(
        result.hypergraph,
        {
            "kind": "shrunk-failure",
            "seed": seed,
            "solvers": solvers,
            "description": f"shrunk from {path.name} "
            f"(n={H.num_vertices}, m={H.num_edges})",
            "failures": [],
            "replay": {"metamorphic": True, "oracle": True, "focus_index": 0},
        },
        args.out,
    )
    print(f"reproducer written to {out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import ServerConfig, SolveServer

    workers = resolve_workers(args.workers)
    http = None
    if args.http:
        host, _, port = args.http.rpartition(":")
        http = (host or "127.0.0.1", int(port))
    config = ServerConfig(
        socket_path=args.socket,
        http=http,
        workers=workers,
        batch_window_ms=args.batch_window,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        cache_size=args.cache_size,
        default_deadline_ms=args.deadline or None,
        verify=not args.no_verify,
    )
    # The heartbeat polls the server's liveness gauges each beat; the
    # server only exists once the loop is running, hence the late binding.
    holder: dict[str, SolveServer] = {}

    def _gauges() -> dict:
        server = holder.get("server")
        return server.liveness_gauges() if server is not None else {}

    async def _main() -> None:
        server = SolveServer(config)
        holder["server"] = server
        await server.start()
        endpoints = str(args.socket)
        if http is not None:
            endpoints += f" and http://{http[0]}:{server.http_port}"
        print(f"serving on {endpoints} (workers={workers or 0})", file=sys.stderr)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            await server.stop()

    with _telemetry(
        args.telemetry,
        heartbeat=args.heartbeat,
        metrics_out=args.metrics_out,
        extra_gauges=_gauges,
        command="serve",
        socket=str(args.socket),
        workers=workers or 0,
    ):
        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass
    print("server stopped", file=sys.stderr)
    return 0


def _cmd_client_solve(args: argparse.Namespace) -> int:
    from repro.service import ServiceError, SolveClient

    if not args.instance and not args.content_hash:
        print("need an instance path or --content-hash", file=sys.stderr)
        return 2
    H = load(args.instance) if args.instance else None
    try:
        with SolveClient(args.socket, timeout=args.timeout) as client:
            response = client.solve(
                H,
                algorithm=args.algorithm,
                seed=args.seed,
                content_hash=args.content_hash or None,
                deadline_ms=args.deadline or None,
                request_id=args.id or None,
            )
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        print(f"cannot reach server at {args.socket}: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        json.dump(exc.response, sys.stdout, indent=2 if args.pretty else None)
        print()
        return 1
    json.dump(response, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0


def _cmd_client_ping(args: argparse.Namespace) -> int:
    from repro.service import SolveClient

    try:
        with SolveClient(args.socket, timeout=args.timeout) as client:
            ok = client.ping()
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        print(f"cannot reach server at {args.socket}: {exc}", file=sys.stderr)
        return 1
    print("pong" if ok else "no pong")
    return 0 if ok else 1


def _cmd_client_stats(args: argparse.Namespace) -> int:
    from repro.service import SolveClient

    try:
        with SolveClient(args.socket, timeout=args.timeout) as client:
            stats = client.stats()
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        print(f"cannot reach server at {args.socket}: {exc}", file=sys.stderr)
        return 1
    json.dump(stats, sys.stdout, indent=2)
    print()
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs.inspector import render_summary

    print(render_summary(args.path, width=args.width))
    return 0


def _cmd_trace_compare(args: argparse.Namespace) -> int:
    from repro.obs.inspector import TraceError, render_compare

    try:
        print(render_compare(args.path_a, args.path_b))
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs.inspector import TraceError, render_diff

    try:
        print(render_diff(args.path_a, args.path_b, top=args.top))
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace_flame(args: argparse.Namespace) -> int:
    from repro.obs.profile import render_flame, write_speedscope

    try:
        if args.speedscope:
            n = write_speedscope(args.path, args.speedscope)
            print(f"wrote {n} samples to {args.speedscope}", file=sys.stderr)
        print(render_flame(args.path, limit=args.limit))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel maximal independent sets of hypergraphs (SPAA 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a random instance")
    g.add_argument("family", choices=["uniform", "mixed", "graph", "linear", "bounded"])
    g.add_argument("--n", type=int, required=True, help="number of vertices")
    g.add_argument("--m", type=int, default=0, help="number of edges")
    g.add_argument("--d", type=int, default=3, help="edge size (uniform/linear)")
    g.add_argument("--dims", default="2,3,4", help="comma-separated sizes (mixed)")
    g.add_argument("--avg-degree", type=float, default=4.0, help="mean degree (graph)")
    g.add_argument("--beta-fraction", type=float, default=5.0, help="β multiplier (bounded)")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("-o", "--output", default="-", help="output path ('-' = stdout)")
    g.set_defaults(func=_cmd_generate)

    i = sub.add_parser("info", help="print instance statistics")
    i.add_argument("instance")
    i.set_defaults(func=_cmd_info)

    s = sub.add_parser("solve", help="compute a verified MIS")
    s.add_argument("instance")
    s.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="sbl")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--costs", action="store_true", help="account EREW-PRAM depth/work")
    s.add_argument(
        "--workers",
        default="0",
        help="accepted for interface symmetry with campaign/experiment "
        "('auto' resolves against BENCH_m02.json); a single solve always "
        "runs in-process",
    )
    s.add_argument("--pretty", action="store_true", help="indent the JSON output")
    s.add_argument("--save-trace", default="", help="write the full round trace to this path")
    s.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="stream span/metric events to this JSONL file (see 'repro trace')",
    )
    s.add_argument(
        "--profile",
        type=float,
        default=0.0,
        metavar="HZ",
        help="sample the solver stack at HZ while it runs (needs --telemetry; "
        "render with 'repro trace flame')",
    )
    s.add_argument(
        "--track-memory",
        action="store_true",
        help="record per-span allocation peaks via tracemalloc (slower)",
    )
    s.set_defaults(func=_cmd_solve)

    k = sub.add_parser("campaign", help="sweep a uniform-hypergraph grid over algorithms")
    k.add_argument("--sizes", default="100,200", help="comma-separated vertex counts")
    k.add_argument("--d", type=int, default=3, help="edge size")
    k.add_argument("--edge-factor", type=int, default=2, help="m = factor·n")
    k.add_argument("--algorithms", default="bl,kuw,greedy", help="comma-separated names")
    k.add_argument("--repeats", type=int, default=3)
    k.add_argument("--seed", type=int, default=0)
    k.add_argument("--csv", default="", help="also write per-run records to this CSV path")
    k.add_argument(
        "--workers",
        default="0",
        help="run the grid on N worker processes (0 = in-process, 'auto' = "
        "cpu count floored by the measured dispatch overhead in "
        "BENCH_m02.json); records are identical for every worker count",
    )
    k.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="stream span/metric events to this JSONL file (see 'repro trace')",
    )
    k.add_argument(
        "--profile",
        type=float,
        default=0.0,
        metavar="HZ",
        help="sample the parent-process stack at HZ (needs --telemetry)",
    )
    k.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SEC",
        help="flush progress/ETA/utilization gauges every SEC seconds",
    )
    k.add_argument(
        "--metrics-out",
        default="",
        metavar="PATH",
        help="write an OpenMetrics textfile (each heartbeat, or once at exit)",
    )
    k.set_defaults(func=_cmd_campaign)

    st = sub.add_parser(
        "stream", help="maintain an MIS under a churn stream of edge updates"
    )
    st.add_argument(
        "instance",
        nargs="?",
        default="",
        help="starting instance (omit to generate a sharded one)",
    )
    st.add_argument("--blocks", type=int, default=40, help="generated: component count")
    st.add_argument("--block-n", type=int, default=16, help="generated: vertices/block")
    st.add_argument("--block-m", type=int, default=30, help="generated: edges/block")
    st.add_argument("--d", type=int, default=3, help="generated: edge size")
    st.add_argument("--steps", type=int, default=20, help="number of update batches")
    st.add_argument("--batch", type=int, default=4, help="events per batch")
    st.add_argument(
        "--arrival", type=float, default=0.5, help="arrival fraction (rest departs)"
    )
    st.add_argument(
        "--hot", type=float, default=0.0, help="fraction of events hot-region biased"
    )
    st.add_argument(
        "--hot-window",
        type=float,
        default=0.125,
        help="hot region width as a fraction of the universe",
    )
    st.add_argument(
        "--adversarial",
        type=float,
        default=0.0,
        help="fraction of arrivals that are dup/superset injections",
    )
    st.add_argument(
        "--strategy",
        choices=["auto", "repair", "recompute"],
        default="auto",
        help="force a maintenance strategy (default: cost-model dispatch)",
    )
    st.add_argument("--seed", type=int, default=0)
    st.add_argument("--pretty", action="store_true", help="indent the JSON output")
    st.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="stream span/metric events to this JSONL file (see 'repro trace')",
    )
    st.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SEC",
        help="flush progress gauges every SEC seconds",
    )
    st.add_argument(
        "--metrics-out",
        default="",
        metavar="PATH",
        help="write an OpenMetrics textfile (each heartbeat, or once at exit)",
    )
    st.set_defaults(func=_cmd_stream)

    c = sub.add_parser("check", help="validate a claimed MIS")
    c.add_argument("instance")
    c.add_argument("--set", default="", help="comma-separated vertex ids")
    c.set_defaults(func=_cmd_check)

    e = sub.add_parser("experiment", help="run an experiment (E1–E17) or ablation (A1–A7)")
    e.add_argument("experiment_id")
    e.add_argument("--scale", choices=["quick", "full"], default="quick")
    e.add_argument("--seed", type=int, default=0)
    e.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="stream span/metric events to this JSONL file (see 'repro trace')",
    )
    e.add_argument(
        "--profile",
        type=float,
        default=0.0,
        metavar="HZ",
        help="sample the experiment stack at HZ (needs --telemetry)",
    )
    e.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SEC",
        help="flush progress/ETA/utilization gauges every SEC seconds",
    )
    e.add_argument(
        "--metrics-out",
        default="",
        metavar="PATH",
        help="write an OpenMetrics textfile (each heartbeat, or once at exit)",
    )
    e.add_argument(
        "--workers",
        default="0",
        help="fan repeated trials out over N worker processes (0 = "
        "in-process, 'auto' = cpu count floored by the measured dispatch "
        "overhead in BENCH_m02.json); experiments E1/E3/E8/E17 parallelise",
    )
    e.set_defaults(func=_cmd_experiment)

    f = sub.add_parser("fuzz", help="differential fuzzing, replay and shrinking")
    fsub = f.add_subparsers(dest="fuzz_command", required=True)
    fr = fsub.add_parser("run", help="run a differential fuzz campaign")
    fr.add_argument(
        "--budget",
        default="200",
        help="case count ('200') or wall-clock duration ('60s', '2m')",
    )
    fr.add_argument("--seed", type=int, default=0, help="campaign seed")
    fr.add_argument(
        "--solvers", default="", help="comma-separated solver subset (default: all)"
    )
    fr.add_argument(
        "-o",
        "--out",
        default="tests/regressions",
        help="directory for shrunk reproducers",
    )
    fr.add_argument(
        "--max-failures", type=int, default=1, help="stop after this many failing cases"
    )
    fr.add_argument(
        "--no-shrink", action="store_true", help="save failing instances unshrunk"
    )
    fr.add_argument(
        "--start-index", type=int, default=0, help="first case index of the stream"
    )
    fr.add_argument(
        "--workers",
        default="0",
        help="fan case batteries out over N worker processes on the shared "
        "campaign executor (0 = in-process, 'auto' = cpu count floored by "
        "the measured dispatch overhead in BENCH_m02.json)",
    )
    fr.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="stream span/metric events to this JSONL file (see 'repro trace')",
    )
    fr.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SEC",
        help="flush progress/ETA/utilization gauges every SEC seconds",
    )
    fr.add_argument(
        "--metrics-out",
        default="",
        metavar="PATH",
        help="write an OpenMetrics textfile (each heartbeat, or once at exit)",
    )
    fr.set_defaults(func=_cmd_fuzz_run)
    fp = fsub.add_parser("replay", help="replay reproducer file(s)")
    fp.add_argument("path", help="a .npz reproducer or a directory of them")
    fp.set_defaults(func=_cmd_fuzz_replay)
    fs = fsub.add_parser("shrink", help="delta-debug a failing instance")
    fs.add_argument("instance", help="instance file (text/JSON) or .npz reproducer")
    fs.add_argument(
        "--seed", type=int, default=None, help="solver seed (default: manifest's, or 0)"
    )
    fs.add_argument("--solvers", default="", help="comma-separated solver subset")
    fs.add_argument("--max-evals", type=int, default=2000, help="predicate eval budget")
    fs.add_argument("-o", "--out", default="tests/regressions", help="output directory")
    fs.set_defaults(func=_cmd_fuzz_shrink)

    v = sub.add_parser("serve", help="run the MIS solve service (unix socket + optional HTTP)")
    v.add_argument("--socket", default="repro.sock", help="unix socket path to bind")
    v.add_argument(
        "--http",
        default="",
        metavar="HOST:PORT",
        help="also serve HTTP/1.1 (POST /solve, GET /metrics, GET /healthz); "
        "port 0 picks a free port",
    )
    v.add_argument(
        "--workers",
        default="0",
        help="solve batches on N worker processes (0 = in-process, 'auto' = "
        "cpu count floored by the measured dispatch overhead in BENCH_m02.json)",
    )
    v.add_argument(
        "--batch-window",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batch gathering window in milliseconds",
    )
    v.add_argument("--max-batch", type=int, default=32, help="max cells per batch")
    v.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="admission bound on pending requests (excess is rejected)",
    )
    v.add_argument("--cache-size", type=int, default=1024, help="LRU result-cache capacity")
    v.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        metavar="MS",
        help="default per-request deadline (0 = none); requests still queued "
        "past it are expired instead of solved",
    )
    v.add_argument(
        "--no-verify", action="store_true", help="skip server-side MIS verification"
    )
    v.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="stream span/metric events to this JSONL file (see 'repro trace')",
    )
    v.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SEC",
        help="flush service gauges (queue depth, batch occupancy, cache hit "
        "rate, latency p50/p99) every SEC seconds",
    )
    v.add_argument(
        "--metrics-out",
        default="",
        metavar="PATH",
        help="write an OpenMetrics textfile (each heartbeat, or once at exit)",
    )
    v.set_defaults(func=_cmd_serve)

    cl = sub.add_parser("client", help="talk to a running solve service")
    clsub = cl.add_subparsers(dest="client_command", required=True)
    cs = clsub.add_parser("solve", help="submit one solve request")
    cs.add_argument("instance", nargs="?", default="", help="instance file (optional "
                    "when the server already holds it — use --content-hash)")
    cs.add_argument("--socket", default="repro.sock", help="server unix socket path")
    cs.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="sbl")
    cs.add_argument("--seed", type=int, default=0)
    cs.add_argument(
        "--content-hash",
        default="",
        help="refer to an instance the server already holds instead of sending it",
    )
    cs.add_argument("--deadline", type=float, default=0.0, metavar="MS",
                    help="per-request deadline in milliseconds")
    cs.add_argument("--id", default="", help="request id echoed in the response")
    cs.add_argument("--timeout", type=float, default=30.0, help="socket timeout (s)")
    cs.add_argument("--pretty", action="store_true", help="indent the JSON output")
    cs.set_defaults(func=_cmd_client_solve)
    cp = clsub.add_parser("ping", help="liveness round-trip")
    cp.add_argument("--socket", default="repro.sock")
    cp.add_argument("--timeout", type=float, default=5.0)
    cp.set_defaults(func=_cmd_client_ping)
    ct = clsub.add_parser("stats", help="print the server's stats snapshot")
    ct.add_argument("--socket", default="repro.sock")
    ct.add_argument("--timeout", type=float, default=5.0)
    ct.set_defaults(func=_cmd_client_stats)

    t = sub.add_parser("trace", help="inspect telemetry JSONL streams")
    tsub = t.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser("summary", help="span tree, per-phase rollups, metrics")
    ts.add_argument("path")
    ts.add_argument("--width", type=int, default=60, help="sparkline width")
    ts.set_defaults(func=_cmd_trace_summary)
    tc = tsub.add_parser("compare", help="side-by-side wall-time deltas of two runs")
    tc.add_argument("path_a")
    tc.add_argument("path_b")
    tc.set_defaults(func=_cmd_trace_compare)
    td = tsub.add_parser(
        "diff", help="structural span-tree diff ranked by wall-time regression"
    )
    td.add_argument("path_a", help="baseline trace")
    td.add_argument("path_b", help="candidate trace")
    td.add_argument(
        "--top", type=int, default=0, help="show only the N largest deltas (0 = all)"
    )
    td.set_defaults(func=_cmd_trace_diff)
    tf = tsub.add_parser("flame", help="render profile samples as folded stacks")
    tf.add_argument("path", help="telemetry JSONL with profile events (--profile)")
    tf.add_argument("--limit", type=int, default=40, help="rows per section")
    tf.add_argument(
        "--speedscope",
        default="",
        metavar="OUT",
        help="also write speedscope-compatible JSON to OUT",
    )
    tf.set_defaults(func=_cmd_trace_flame)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
