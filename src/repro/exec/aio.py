"""Awaitable batch execution for the solve service.

The asyncio front door (:mod:`repro.service.server`) must never block its
event loop on a solve: :class:`AsyncBatchExecutor` wraps the blocking
execution paths — the in-process serial loop and
:class:`~repro.exec.runner.ParallelRunner` — behind one awaitable call,
run on a worker thread via :func:`asyncio.to_thread`.

Failure isolation is the second job.  ``ParallelRunner.run_cells``
propagates a worker crash (``BrokenProcessPool``) for the *whole* batch;
a service must not let one poisoned request take down every concurrent
caller.  ``solve_batch`` therefore returns one :class:`CellOutcome` per
cell — result or error, never an exception — with these guarantees:

* **in-process mode** (``workers=None``): each cell solves under its own
  ``try``, so a crashing solver fails only its own outcome;
* **pool mode** (``workers=N``): a worker crash fails every outcome of
  the *current* batch (their results are unrecoverable) and the pool is
  rebuilt before returning, so the next batch dispatches normally.

Batches are executed one at a time by design — the service's micro-batch
loop is the pacing mechanism, and a single in-flight batch keeps the
shared tracer's span stack coherent (spans open/close from one dispatch
thread at a time).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro.exec import shm
from repro.exec.runner import Cell, CellResult, ParallelRunner
from repro.exec.shm import InstanceHandle
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import default_registry
from repro.obs.tracer import current_tracer
from repro.pram.machine import CountingMachine

__all__ = ["AsyncBatchExecutor", "CellOutcome"]


@dataclass(frozen=True)
class CellOutcome:
    """What one cell produced: a result or an error string, never both."""

    index: int
    result: CellResult | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _solve_cell_inline(index: int, cell: Cell) -> CellResult:
    """Run one cell in this process (the ``workers=None`` execution body).

    Mirrors the worker-side ``_run_cell`` — same solver call shape, same
    verification — minus pickling and telemetry shipping, so results are
    bit-identical to both the pool path and a direct solver call with the
    same seed.
    """
    instance = cell.instance
    H = shm.attach(instance) if isinstance(instance, InstanceHandle) else instance
    assert isinstance(H, Hypergraph)
    machine = CountingMachine()
    t0 = time.perf_counter_ns()
    res = cell.fn(H, cell.seed, machine=machine, **cell.options)
    wall_ns = time.perf_counter_ns() - t0
    if cell.verify:
        res.verify(H)
    machine_summary = (
        dict(res.machine)
        if res.machine is not None
        else {
            "depth": machine.depth,
            "work": machine.work,
            "max_processors": machine.max_processors,
        }
    )
    return CellResult(
        index=index,
        label=cell.label,
        mis_size=res.size,
        num_rounds=res.num_rounds,
        depth=int(machine_summary.get("depth", 0)),
        work=int(machine_summary.get("work", 0)),
        wall_ns=wall_ns,
        independent_set=res.independent_set,
        machine=machine_summary,
        meta=res.meta,
        rounds=None,
    )


class AsyncBatchExecutor:
    """Await batches of solver cells without blocking the event loop.

    Parameters
    ----------
    workers:
        ``None``/``0`` solves in-process (per-cell failure isolation,
        no IPC); a positive count owns a :class:`ParallelRunner` with
        that many worker processes (shared-memory instance transfer,
        telemetry splice — everything ``run_cells`` provides).
    mp_context:
        Start method for the owned pool.

    Close explicitly (or use as an async context manager): pool mode
    holds worker processes.
    """

    def __init__(self, workers: int | None = None, *, mp_context=None):
        self._workers = int(workers) if workers else 0
        self._mp_context = mp_context
        self._runner: ParallelRunner | None = (
            ParallelRunner(self._workers, mp_context=mp_context)
            if self._workers
            else None
        )
        self._closed = False

    @property
    def workers(self) -> int:
        """Worker process count (0 = in-process execution)."""
        return self._workers

    # -- execution -------------------------------------------------------
    async def solve_batch(self, cells: Sequence[Cell]) -> list[CellOutcome]:
        """Solve every cell on a worker thread; one outcome per cell."""
        if not cells:
            return []
        if self._closed:
            raise RuntimeError("AsyncBatchExecutor is closed")
        return await asyncio.to_thread(self._solve_blocking, list(cells))

    def _solve_blocking(self, cells: list[Cell]) -> list[CellOutcome]:
        if self._runner is not None:
            return self._solve_pool(cells)
        return self._solve_serial(cells)

    def _solve_serial(self, cells: list[Cell]) -> list[CellOutcome]:
        """In-process batch: per-cell isolation, executor-compatible counters.

        Maintains the same ``exec/cells_*`` progress counters and the
        ``exec/run_cells`` span shape as :meth:`ParallelRunner.run_cells`,
        so heartbeat liveness gauges and trace trees look identical
        whichever execution mode the service runs in.
        """
        tracer = current_tracer()
        registry = default_registry()
        registry.counter("exec/cells_scheduled").inc(len(cells))
        registry.gauge("exec/workers").set(1)
        outcomes: list[CellOutcome] = []
        with tracer.span("exec/run_cells", cells=len(cells), workers=0):
            for i, cell in enumerate(cells):
                t0 = time.perf_counter_ns()
                try:
                    outcomes.append(CellOutcome(i, _solve_cell_inline(i, cell)))
                except Exception as exc:  # noqa: BLE001 - isolation is the contract
                    obs_metrics.inc("exec/cells_failed")
                    outcomes.append(
                        CellOutcome(i, None, f"{type(exc).__name__}: {exc}")
                    )
                registry.counter("exec/cells_done").inc()
                registry.counter("exec/cell_wall_ns").inc(
                    time.perf_counter_ns() - t0
                )
        obs_metrics.inc("exec/cells_run", len(outcomes))
        return outcomes

    def _solve_pool(self, cells: list[Cell]) -> list[CellOutcome]:
        assert self._runner is not None
        try:
            results = self._runner.run_cells(cells)
            return [CellOutcome(i, r) for i, r in enumerate(results)]
        except BrokenProcessPool as exc:
            # The batch's in-flight results died with the worker.  Rebuild
            # the pool so the *next* batch runs; fail only this one.
            obs_metrics.inc("exec/pool_rebuilds")
            try:
                self._runner.close()
            except Exception:  # noqa: BLE001 - a broken pool may refuse to close
                pass
            self._runner = ParallelRunner(self._workers, mp_context=self._mp_context)
            message = f"worker crashed mid-batch: {exc}"
            return [CellOutcome(i, None, message) for i in range(len(cells))]
        except Exception as exc:  # noqa: BLE001 - e.g. a solver raised in a worker
            obs_metrics.inc("exec/cells_failed", len(cells))
            message = f"{type(exc).__name__}: {exc}"
            return [CellOutcome(i, None, message) for i in range(len(cells))]

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the owned pool, if any. Idempotent."""
        self._closed = True
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    async def __aenter__(self) -> "AsyncBatchExecutor":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()
