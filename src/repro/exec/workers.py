"""Worker-count resolution: ``--workers auto`` with a measured floor.

Every parallel entry point (``campaign``, ``experiment``, ``fuzz run``)
accepts ``--workers auto``.  Auto does not blindly return
``os.cpu_count()``: process fan-out has real dispatch overhead (pickling,
pool startup, telemetry splicing), and on small boxes that overhead can
eat the whole win.  The repo *measures* that overhead — the
``speedup_vs_serial`` table of ``BENCH_m02.json`` records the campaign
speedup at 1/2/4 workers on the recording machine — so auto uses the
measurement as a floor: if the best recorded speedup never cleared
:data:`AUTO_SPEEDUP_FLOOR`, fanning out is a measured loss and auto
resolves to in-process execution instead.

A missing or unreadable benchmark file falls back to plain
``os.cpu_count()`` (optimistic: no evidence against parallelism) — but a
file that *parses* and fails the schema check is counted on the
``exec/bench_m02_schema_error`` metric, so a baseline refresh that breaks
the contract is visible instead of silently optimistic.  The file goes
through :func:`repro.exec.benchfile.load_baseline`, the same
schema-checked loader the solve service uses.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.exec.benchfile import BenchSchemaError, load_baseline
from repro.obs import metrics as obs_metrics

__all__ = ["AUTO_SPEEDUP_FLOOR", "bench_m02_path", "resolve_workers"]

#: Minimum measured campaign speedup (vs serial) for ``auto`` to fan out.
#: Below this, measured dispatch overhead cancels the parallel win and
#: ``auto`` resolves to in-process execution.
AUTO_SPEEDUP_FLOOR = 1.15

WorkerSpec = Union[int, str, None]


def bench_m02_path() -> Path:
    """Location of the committed dispatch-overhead benchmark."""
    return Path(__file__).resolve().parents[3] / "BENCH_m02.json"


def _best_measured_speedup(path: Path) -> float | None:
    """Best ``speedup_vs_serial`` recorded in BENCH_m02.json, or ``None``.

    ``None`` means "no usable measurement" — callers treat that as
    optimistic.  A file that exists but fails the schema check bumps
    ``exec/bench_m02_schema_error`` before falling back, so a bad baseline
    refresh never silently changes ``auto`` behaviour again.
    """
    try:
        baseline = load_baseline(path, require_speedups=True)
    except (OSError, json.JSONDecodeError):
        return None
    except BenchSchemaError:
        obs_metrics.inc("exec/bench_m02_schema_error")
        return None
    return baseline.best_speedup()


def _auto_workers(bench_path: Path | None) -> int | None:
    cpus = os.cpu_count() or 1
    best = _best_measured_speedup(bench_path or bench_m02_path())
    if best is not None and best < AUTO_SPEEDUP_FLOOR:
        obs_metrics.inc("exec/workers_auto/floored")
        return None
    obs_metrics.inc("exec/workers_auto/cpu_count")
    return cpus if cpus > 1 else None


def resolve_workers(
    spec: WorkerSpec, *, bench_path: Path | None = None
) -> int | None:
    """Resolve a ``--workers`` value to a process count (or in-process).

    ``None``, ``0``, ``""`` and ``"0"`` mean in-process (returns
    ``None``); a positive int (or int string) is used as-is; ``"auto"``
    derives the count from ``os.cpu_count()``, floored to in-process when
    the measured dispatch overhead in ``BENCH_m02.json`` shows fan-out
    does not pay (see :data:`AUTO_SPEEDUP_FLOOR`).  *bench_path* overrides
    the benchmark location (tests).
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        spec = spec.strip().lower()
        if spec in ("", "0"):
            return None
        if spec == "auto":
            return _auto_workers(bench_path)
        try:
            spec = int(spec)
        except ValueError:
            raise ValueError(
                f"bad --workers value {spec!r}: want a worker count or 'auto'"
            ) from None
    if spec < 0:
        raise ValueError(f"--workers must be non-negative: {spec}")
    return spec or None
