"""Schema-checked loading of the committed ``BENCH_*.json`` baselines.

Two independent consumers read the benchmark baselines at runtime —
``--workers auto`` resolution (:mod:`repro.exec.workers` reads the
``speedup_vs_serial`` table of ``BENCH_m02.json``) and the solve service
(:mod:`repro.service.server` reports the measured dispatch context in its
``stats`` op).  Each used to hand-roll its own ``json.loads`` + key
plucking, which is how a baseline refresh once silently broke ``--workers
auto``: the key path changed, every lookup raised ``KeyError``, and the
broad ``except`` treated the committed file as absent.

This module is the single loader both go through.  :func:`load_baseline`
validates the *shape* of the document — ``medians_ns`` present and
numeric, ``speedup_vs_serial`` (when required) a non-empty mapping of
name → number — and raises :class:`BenchSchemaError` with the offending
key named, so a stale or refactored baseline is a loud, testable event
instead of a silent behaviour change.  I/O and JSON errors raise their
natural exceptions (``OSError`` / ``json.JSONDecodeError``); callers that
want to degrade gracefully catch those three explicitly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = ["BenchSchemaError", "BenchBaseline", "load_baseline"]


class BenchSchemaError(ValueError):
    """A baseline file parsed as JSON but does not have the expected shape."""


@dataclass(frozen=True)
class BenchBaseline:
    """One validated ``BENCH_*.json`` document.

    ``medians_ns`` / ``iqr_ns`` are the per-entry statistics the perf gate
    compares; ``speedup_vs_serial`` is the dispatch-overhead table (only
    the m02 campaign-throughput baseline records it); ``provenance`` is
    the machine/commit stamp; ``raw`` is the full document for consumers
    that need suite-specific extras.
    """

    path: Path
    medians_ns: dict[str, float]
    iqr_ns: dict[str, float] = field(default_factory=dict)
    speedup_vs_serial: dict[str, float] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)
    raw: dict[str, Any] = field(default_factory=dict)

    @property
    def machine_id(self) -> str | None:
        """The recording machine's normalized identity, when stamped."""
        value = self.provenance.get("machine_id")
        return str(value) if value is not None else None

    def best_speedup(self) -> float | None:
        """Max recorded ``speedup_vs_serial`` (``None`` when not recorded)."""
        if not self.speedup_vs_serial:
            return None
        return max(self.speedup_vs_serial.values())


def _numeric_table(doc: Mapping[str, Any], key: str, *, path: Path) -> dict[str, float]:
    """Validate ``doc[key]`` as a ``{name: number}`` mapping (missing = {})."""
    table = doc.get(key)
    if table is None:
        return {}
    if not isinstance(table, Mapping):
        raise BenchSchemaError(
            f"{path.name}: {key!r} must be a mapping, got {type(table).__name__}"
        )
    out: dict[str, float] = {}
    for name, value in table.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BenchSchemaError(
                f"{path.name}: {key}[{name!r}] must be a number, got {value!r}"
            )
        out[str(name)] = float(value)
    return out


def load_baseline(
    path: Path | str, *, require_speedups: bool = False
) -> BenchBaseline:
    """Load and shape-check one benchmark baseline file.

    Raises ``OSError`` when the file is unreadable, ``json.JSONDecodeError``
    when it is not JSON, and :class:`BenchSchemaError` when the document
    does not carry the expected tables.  With ``require_speedups`` the
    ``speedup_vs_serial`` table must be present and non-empty (what
    ``--workers auto`` needs from the m02 baseline).
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, Mapping):
        raise BenchSchemaError(f"{path.name}: top level must be an object")
    medians = _numeric_table(doc, "medians_ns", path=path)
    if not medians:
        raise BenchSchemaError(f"{path.name}: missing or empty 'medians_ns' table")
    iqr = _numeric_table(doc, "iqr_ns", path=path)
    speedups = _numeric_table(doc, "speedup_vs_serial", path=path)
    if require_speedups and not speedups:
        raise BenchSchemaError(
            f"{path.name}: missing or empty 'speedup_vs_serial' table "
            f"(required by --workers auto; refresh with scripts/bench_smoke.py)"
        )
    provenance = doc.get("provenance") or {}
    if not isinstance(provenance, Mapping):
        raise BenchSchemaError(f"{path.name}: 'provenance' must be a mapping")
    return BenchBaseline(
        path=path,
        medians_ns=medians,
        iqr_ns=iqr,
        speedup_vs_serial=speedups,
        provenance=dict(provenance),
        raw=dict(doc),
    )
