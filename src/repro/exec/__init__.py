"""repro.exec — the parallel campaign executor.

Batch execution of solver *cells* across worker processes with three
guarantees the analysis layer depends on:

* **Determinism** — per-cell seed leaves plus order-preserving result
  assembly make parallel output bit-identical to serial, for any worker
  count (:mod:`repro.exec.runner`).
* **Zero-copy instances** — each hypergraph is serialised once into a
  shared-memory block and attached (cached) by workers, instead of being
  pickled into every task (:mod:`repro.exec.shm`).
* **Telemetry that survives the process boundary** — workers capture
  spans/metrics locally and the parent splices them back into its own
  stream, so traces of parallel runs stay inspectable
  (:mod:`repro.exec.runner`).

Pools and runners hold OS processes and shared-memory blocks: always use
them as context managers or call ``close()``.
"""

from repro.exec.aio import AsyncBatchExecutor, CellOutcome
from repro.exec.benchfile import BenchBaseline, BenchSchemaError, load_baseline
from repro.exec.pool import WorkerPool, default_mp_context
from repro.exec.runner import Cell, CellResult, ParallelRunner, current_runner, use_runner
from repro.exec.shm import InstanceHandle, ShmArena, attach, detach_all
from repro.exec.workers import AUTO_SPEEDUP_FLOOR, resolve_workers

__all__ = [
    "AUTO_SPEEDUP_FLOOR",
    "AsyncBatchExecutor",
    "BenchBaseline",
    "BenchSchemaError",
    "Cell",
    "CellOutcome",
    "CellResult",
    "InstanceHandle",
    "ParallelRunner",
    "ShmArena",
    "WorkerPool",
    "attach",
    "current_runner",
    "default_mp_context",
    "detach_all",
    "load_baseline",
    "resolve_workers",
    "use_runner",
]
