"""A thin, lifecycle-disciplined process pool.

Wraps :class:`concurrent.futures.ProcessPoolExecutor` with the three
properties the executor layer (and :class:`~repro.pram.backend.ProcessBackend`)
needs and the stdlib class leaves implicit:

* **Order-preserving map.**  ``WorkerPool.map`` yields results in task
  order regardless of which worker finishes first — the keystone of the
  determinism contract (records come back in the same order serial
  execution would produce them).
* **Explicit, idempotent close.**  Pools hold OS processes; leaking one
  leaks processes until interpreter exit.  ``close()`` (and ``with``)
  shuts the executor down; calling it twice is fine; submitting after
  close raises immediately instead of hanging.
* **A pinned start method.**  On platforms with ``fork`` the pool uses it
  (workers inherit the imported modules, so startup is milliseconds);
  elsewhere ``spawn``.  Pinning the choice keeps worker behaviour — and
  thus measured throughput — identical across call sites.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator

__all__ = ["WorkerPool", "default_mp_context"]


def default_mp_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (fast, inherits imports), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class WorkerPool:
    """A closed-by-default process pool with order-preserving ``map``.

    Parameters
    ----------
    workers:
        Number of worker processes (≥ 1).
    mp_context:
        A multiprocessing context or start-method name; defaults to
        :func:`default_mp_context`.
    initializer, initargs:
        Run once in each worker at startup (e.g. seeding a cache).
    """

    def __init__(
        self,
        workers: int,
        *,
        mp_context: multiprocessing.context.BaseContext | str | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self.workers = int(workers)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp_context or default_mp_context(),
            initializer=initializer,
            initargs=initargs,
        )

    # -- execution -------------------------------------------------------
    def _require(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise RuntimeError("WorkerPool is closed")
        return self._executor

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule one call; returns its future."""
        return self._require().submit(fn, *args, **kwargs)

    def map(
        self,
        fn: Callable[..., Any],
        iterable: Iterable[Any],
        *,
        chunksize: int = 1,
    ) -> Iterator[Any]:
        """Apply *fn* across *iterable*; results yield in input order.

        Input order is a guarantee (inherited from
        ``ProcessPoolExecutor.map``), not an accident — callers rely on it
        for deterministic result assembly.
        """
        return self._require().map(fn, iterable, chunksize=chunksize)

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._executor is None

    def close(self) -> None:
        """Shut the executor down, waiting for in-flight tasks (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"WorkerPool(workers={self.workers}, {state})"
