"""Zero-copy instance transfer over POSIX shared memory.

The parallel executor runs thousands of cells against a handful of
instances.  Pickling a :class:`~repro.hypergraph.hypergraph.Hypergraph`
into every task payload would copy the edge arrays once *per cell*; the
arena copies them once *per instance* into a
:mod:`multiprocessing.shared_memory` block, and every task carries only an
:class:`InstanceHandle` — block name, array lengths, content hash — a few
hundred bytes regardless of instance size.

Workers :func:`attach` to the block and rebuild the hypergraph as
read-only NumPy views directly over the shared buffer (the canonical
arrays *are* the wire format, so reconstruction is
``Hypergraph.from_arrays(..., canonical=True)`` — no copy, no
re-canonicalisation).  A per-process cache keyed on the content hash makes
repeat attachments free: the typical campaign touches each instance from
each worker once.

Cleanup is the hard part of shared memory and is handled in exactly one
place: the arena that *created* a block owns its lifetime.  ``close()``
unlinks every live block and is invoked by ``with``-exit, by a
``weakref.finalize`` at garbage collection, and (transitively) at
interpreter exit — so blocks are reclaimed even when a worker crashed
mid-task or the parent unwound on an exception.  Workers never unlink;
their attachments are explicitly unregistered from the resource tracker
(attachment-side tracking would otherwise unlink blocks still in use —
the well-known CPython < 3.13 behaviour).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import metrics as obs_metrics

__all__ = ["InstanceHandle", "ShmArena", "attach", "detach_all"]

_INTP = np.dtype(np.intp)


@dataclass(frozen=True)
class InstanceHandle:
    """A picklable reference to a hypergraph published in shared memory.

    Attributes
    ----------
    block:
        Name of the shared-memory block holding the three canonical
        arrays, laid out back-to-back as ``vertices | indptr | indices``
        (all ``intp``).
    universe, n_vertices, n_indptr, n_indices:
        Scalars needed to slice the buffer back into arrays.
    content_hash:
        :meth:`Hypergraph.content_hash` of the instance — the worker-side
        cache key and an integrity check.
    """

    block: str
    universe: int
    n_vertices: int
    n_indptr: int
    n_indices: int
    content_hash: str

    @property
    def nbytes(self) -> int:
        """Payload size of the three arrays."""
        return (self.n_vertices + self.n_indptr + self.n_indices) * _INTP.itemsize


def _as_views(handle: InstanceHandle, buf) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three read-only array views over a shared buffer."""
    nv, np_, ni = handle.n_vertices, handle.n_indptr, handle.n_indices
    flat = np.frombuffer(buf, dtype=_INTP, count=nv + np_ + ni)
    flat.flags.writeable = False
    return flat[:nv], flat[nv : nv + np_], flat[nv + np_ :]


class ShmArena:
    """Owner of shared-memory instance blocks, with guaranteed cleanup.

    ``publish`` is idempotent per content: publishing an equal hypergraph
    twice returns the same handle and bumps a reference count; ``release``
    drops it and unlinks at zero.  ``close`` (also ``with``-exit and a GC
    finalizer) unlinks everything regardless of counts — the arena is the
    single owner, so no block outlives it.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._handles: dict[str, InstanceHandle] = {}  # content hash -> handle
        self._refcounts: dict[str, int] = {}
        self._finalizer = weakref.finalize(self, ShmArena._cleanup, self._blocks)

    # -- publication ----------------------------------------------------
    def publish(self, H: Hypergraph) -> InstanceHandle:
        """Copy *H*'s canonical arrays into shared memory; return the handle."""
        key = H.content_hash()
        existing = self._handles.get(key)
        if existing is not None:
            self._refcounts[key] += 1
            obs_metrics.inc("exec/arena_publish_dedup")
            return existing
        universe, vertices, indptr, indices = H.to_arrays()
        nbytes = (vertices.size + indptr.size + indices.size) * _INTP.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        offset = 0
        for arr in (vertices, indptr, indices):
            dst = np.frombuffer(shm.buf, dtype=_INTP, count=arr.size, offset=offset)
            dst[:] = arr
            offset += arr.nbytes
        handle = InstanceHandle(
            block=shm.name,
            universe=universe,
            n_vertices=vertices.size,
            n_indptr=indptr.size,
            n_indices=indices.size,
            content_hash=key,
        )
        self._blocks[shm.name] = shm
        self._handles[key] = handle
        self._refcounts[key] = 1
        obs_metrics.inc("exec/arena_published")
        obs_metrics.inc("exec/arena_published_bytes", nbytes)
        return handle

    def release(self, handle: InstanceHandle) -> None:
        """Drop one reference; unlink the block when the count reaches zero."""
        key = handle.content_hash
        if key not in self._refcounts:
            return
        self._refcounts[key] -= 1
        if self._refcounts[key] > 0:
            return
        del self._refcounts[key]
        del self._handles[key]
        shm = self._blocks.pop(handle.block, None)
        if shm is not None:
            _destroy(shm)

    def get(self, handle: InstanceHandle) -> Hypergraph:
        """Rebuild an instance from one of this arena's own blocks.

        Copies out of the mapping: the returned hypergraph must be able to
        outlive the block (views would pin the mmap open and make unlink
        raise ``BufferError``).  The zero-copy path is the worker-side
        :func:`attach`, whose cache owns the mapping for the process
        lifetime.
        """
        shm = self._blocks[handle.block]
        arrays = [a.copy() for a in _as_views(handle, shm.buf)]
        for a in arrays:
            a.flags.writeable = False
        return Hypergraph.from_arrays(handle.universe, *arrays)

    # -- lifecycle -------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[InstanceHandle]:
        return iter(self._handles.values())

    def close(self) -> None:
        """Unlink every live block (idempotent; exception-safe)."""
        self._handles.clear()
        self._refcounts.clear()
        ShmArena._cleanup(self._blocks)

    @staticmethod
    def _cleanup(blocks: dict[str, shared_memory.SharedMemory]) -> None:
        # Static (and operating on the dict, not self) so the GC finalizer
        # holds no reference back to the arena.
        while blocks:
            _, shm = blocks.popitem()
            _destroy(shm)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Mappings whose close failed because live views still pin the buffer.
#: Kept referenced so ``SharedMemory.__del__`` never retries the close
#: (which would surface the same ``BufferError`` as an unraisable
#: warning); the pages are reclaimed at process exit like any mapping.
_PINNED: list[shared_memory.SharedMemory] = []


def _destroy(shm: shared_memory.SharedMemory) -> None:
    try:
        try:
            shm.close()
        except BufferError:
            # Live views still pin the mapping; unlinking below still
            # reclaims the name and backing segment, and parking the object
            # in _PINNED stops __del__ retrying the close (an unraisable
            # BufferError otherwise).  The pages free at process exit.
            _PINNED.append(shm)
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#: Per-process attachment cache: content hash -> (mapping, hypergraph).
#: The SharedMemory object must stay referenced while any view into its
#: buffer is alive, so it is cached alongside the hypergraph it backs.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, Hypergraph]] = {}


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Map an existing block without adopting its lifetime.

    On CPython ≥ 3.13 ``track=False`` expresses that directly; earlier
    versions register every attachment with the resource tracker, which
    would reclaim the block out from under the creating arena.  There the
    registration is *suppressed* during the attach (registering and then
    unregistering would be wrong under ``fork``, where the tracker process
    is shared with the parent: the tracker's per-type cache is a set, so
    the unregister would erase the creator's own registration too).
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shm  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def attach(handle: InstanceHandle) -> Hypergraph:
    """Rebuild the instance behind *handle*, caching per process.

    The first attach per (process, instance) maps the block and builds
    read-only views; subsequent attaches are a dict hit.  Raises
    ``FileNotFoundError`` if the owning arena already unlinked the block.
    """
    cached = _ATTACHED.get(handle.content_hash)
    if cached is not None:
        obs_metrics.inc("exec/instance_cache_hits")
        return cached[1]
    shm = _attach_block(handle.block)
    H = Hypergraph.from_arrays(handle.universe, *_as_views(handle, shm.buf))
    _ATTACHED[handle.content_hash] = (shm, H)
    obs_metrics.inc("exec/instance_cache_misses")
    obs_metrics.inc("exec/attached_bytes", handle.nbytes)
    return H


def detach_all() -> None:
    """Drop the attachment cache and close the mappings (never unlinks).

    A mapping still referenced by live views (a caller kept the attached
    hypergraph alive) cannot be closed yet; it is parked in :data:`_PINNED`
    until process exit rather than left to a failing ``__del__``.
    """
    while _ATTACHED:
        _, (shm, _H) = _ATTACHED.popitem()
        try:
            shm.close()
        except BufferError:
            _PINNED.append(shm)
        except Exception:
            pass
