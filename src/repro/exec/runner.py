"""The parallel cell executor.

A **cell** is one solver invocation: ``(instance, algorithm fn, seed,
options)``.  Campaigns and experiment trial loops are grids of cells with
no data dependencies between them — embarrassingly parallel, except that
the results must be *bit-identical* to serial execution.  The runner
guarantees that by construction:

* **Seeds are inputs, not artifacts of scheduling.**  Every cell carries
  its own :class:`numpy.random.SeedSequence` leaf, derived by the caller
  from the campaign seed tree (:func:`repro.util.rng.spawn_seeds`).  A
  cell's randomness therefore depends only on its coordinates in the
  grid, never on which worker ran it or in what order.
* **Results assemble in submission order.**  ``run_cells`` maps over an
  order-preserving pool, so the returned list matches the cell list
  index-for-index no matter the completion order.

Instances travel by :class:`~repro.exec.shm.InstanceHandle` — published
once into shared memory by the parent, attached (and cached) by each
worker — so task payloads stay a few hundred bytes however large the
hypergraph is.

Telemetry round-trips: when the parent has an ambient tracer, each worker
runs its cell under a private :class:`~repro.obs.tracer.Tracer` over a
:class:`~repro.obs.events.MemorySink` and an isolated metrics registry,
and ships both back with the result.  The parent merges the metrics into
its default registry and splices the span events (ids remapped, roots
re-parented under the ``exec/run_cells`` span) into its own stream — so
``repro trace summary`` over a parallel run shows the same tree shape a
serial run would.
"""

from __future__ import annotations

import pickle
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence, Union

import numpy as np

from repro.exec import shm
from repro.exec.pool import WorkerPool
from repro.exec.shm import InstanceHandle, ShmArena
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import metrics as obs_metrics
from repro.obs.events import MemorySink
from repro.obs.metrics import default_registry, isolated_registry
from repro.obs.tracer import NULL_TRACER, Tracer, current_tracer, use_tracer
from repro.pram.machine import CountingMachine

__all__ = ["Cell", "CellResult", "ParallelRunner", "current_runner", "use_runner"]

SolverFn = Callable[..., Any]

#: Auto-chunking for :meth:`ParallelRunner.map_tasks`.  Aim each chunk at
#: this much measured work so the per-dispatch overhead (pickle + queue
#: round-trip, ~100µs) amortises on large grids, while chunks stay small
#: enough to load-balance.
CHUNK_TARGET_NS = 50_000_000
#: Items probed singly (per worker) before sizing chunks.
CHUNK_PROBE_FACTOR = 2
#: Below this many items per worker, chunking cannot beat plain dispatch.
CHUNK_MIN_FACTOR = 4


@dataclass(frozen=True)
class Cell:
    """One schedulable solver invocation.

    ``instance`` is either a published :class:`InstanceHandle` or a raw
    :class:`Hypergraph` (``run_cells`` publishes raw instances into a
    per-call arena automatically, deduplicated by content hash).  ``fn``
    must be picklable — a module-level callable with the solver signature
    ``fn(H, seed, *, machine=..., **options)``.
    """

    instance: Union[InstanceHandle, Hypergraph]
    fn: SolverFn
    seed: Any
    options: dict[str, Any] = field(default_factory=dict)
    verify: bool = True
    keep_rounds: bool = False
    label: str = ""


@dataclass(frozen=True)
class CellResult:
    """What comes back from one cell, in submission order.

    ``depth``/``work`` are the PRAM cost totals of the cell's
    :class:`CountingMachine`; ``rounds`` is the per-round trace only when
    the cell asked for it (``keep_rounds``) — it dominates payload size.
    """

    index: int
    label: str
    mis_size: int
    num_rounds: int
    depth: int
    work: int
    wall_ns: int
    independent_set: np.ndarray
    machine: dict[str, int]
    meta: dict[str, Any]
    rounds: list[Any] | None = None


class ParallelRunner:
    """Schedules cells over a :class:`WorkerPool`; owns nothing it leaks.

    Parameters
    ----------
    workers:
        Worker process count, or an existing :class:`WorkerPool` to borrow
        (borrowed pools are not closed by the runner).
    mp_context:
        Start method for a runner-owned pool (defaults to ``fork`` where
        available).

    Use as a context manager, or call :meth:`close` explicitly — the
    runner holds worker processes.
    """

    def __init__(
        self,
        workers: Union[int, WorkerPool],
        *,
        mp_context: Any = None,
    ):
        if isinstance(workers, WorkerPool):
            self._pool = workers
            self._owns_pool = False
        else:
            self._pool = WorkerPool(workers, mp_context=mp_context)
            self._owns_pool = True

    @property
    def workers(self) -> int:
        return self._pool.workers

    # -- execution -------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell]) -> list[CellResult]:
        """Run every cell; return results in cell order.

        Raw ``Hypergraph`` instances are published into a temporary arena
        for the duration of the call (handles passed in by the caller are
        used as-is and never released here).  If a worker dies the
        underlying ``BrokenProcessPool`` propagates — after the arena is
        torn down, so no shared-memory block outlives the failure.
        """
        if not cells:
            return []
        _check_picklable(cells)
        tracer = current_tracer()
        capture = _capture_config(tracer)
        registry = default_registry()
        registry.counter("exec/cells_scheduled").inc(len(cells))
        registry.gauge("exec/workers").set(self.workers)
        with ExitStack() as stack:
            arena = stack.enter_context(ShmArena())
            payloads = []
            for i, cell in enumerate(cells):
                instance = cell.instance
                if isinstance(instance, Hypergraph):
                    instance = arena.publish(instance)
                payloads.append((i, cell, instance, capture))
            with tracer.span(
                "exec/run_cells", cells=len(cells), workers=self.workers
            ) as span:
                # Stream-consume the (order-preserving) map so the progress
                # counters advance as results land — that's what a heartbeat
                # thread reads for liveness — instead of jumping at the end.
                results = []
                for r in self._pool.map(_run_cell, payloads):
                    registry.counter("exec/cells_done").inc()
                    registry.counter("exec/cell_wall_ns").inc(r["wall_ns"])
                    results.append(self._absorb(r, tracer, span))
        obs_metrics.inc("exec/cells_run", len(results))
        return results

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        label: str = "exec/map_tasks",
        chunksize: int | str | None = "auto",
    ) -> list[Any]:
        """Map a picklable function over *items*; results in item order.

        The generic sibling of :meth:`run_cells` for workloads that are
        not solver cells (the fuzz campaign's per-case batteries): same
        order-preserving pool, same telemetry round-trip (worker spans
        and metrics spliced back into the parent stream), but no
        shared-memory instance transfer — items travel pickled, so keep
        them small.  *fn* must be a module-level callable.

        ``chunksize`` controls dispatch granularity on large grids.  The
        default ``"auto"`` probes ``CHUNK_PROBE_FACTOR x workers`` items
        singly, then sizes contiguous chunks from the **measured** median
        per-item wall time toward :data:`CHUNK_TARGET_NS` of work per
        dispatch — so 10k cheap tasks stop paying per-task round-trip
        overhead, while expensive tasks degrade gracefully to chunks of
        one.  Pass an ``int`` to fix the chunk size, or ``1``/``None``
        to dispatch every item singly.  Chunks are contiguous slices and
        the pool map preserves order, so results always come back in
        item order regardless of granularity.
        """
        if not items:
            return []
        if not (chunksize == "auto" or chunksize is None or
                (isinstance(chunksize, int) and chunksize >= 1)):
            raise ValueError(f"chunksize must be 'auto', None or an int >= 1: "
                             f"{chunksize!r}")
        try:
            pickle.dumps(fn)
        except Exception as exc:
            raise TypeError(
                f"task function {fn!r} is not picklable (define it at module "
                f"level; lambdas and closures cannot cross process "
                f"boundaries): {exc}"
            ) from exc
        tracer = current_tracer()
        capture = _capture_config(tracer)
        registry = default_registry()
        registry.counter("exec/tasks_scheduled").inc(len(items))
        registry.gauge("exec/workers").set(self.workers)
        with tracer.span(label, tasks=len(items), workers=self.workers) as span:
            results = self._dispatch_tasks(
                fn, items, capture, tracer, registry, span, chunksize
            )
        obs_metrics.inc("exec/tasks_run", len(results))
        return results

    def _dispatch_tasks(
        self, fn, items, capture, tracer, registry, span, chunksize
    ) -> list[Any]:
        n = len(items)
        w = self.workers
        if chunksize == "auto" and n < CHUNK_MIN_FACTOR * w:
            chunksize = None  # too few items for chunking to pay off
        if chunksize is None or chunksize == 1:
            return [
                r for r, _ in self._map_singly(
                    fn, items, 0, capture, tracer, registry, span
                )
            ]
        if chunksize == "auto":
            # Probe: run a couple of items per worker singly and measure.
            probe_n = min(CHUNK_PROBE_FACTOR * w, n)
            probed = self._map_singly(
                fn, items[:probe_n], 0, capture, tracer, registry, span
            )
            walls = sorted(wall for _, wall in probed)
            median = walls[len(walls) // 2]
            remaining = n - probe_n
            size = max(1, CHUNK_TARGET_NS // max(median, 1))
            # Never starve the pool: keep at least one chunk per worker.
            size = int(min(size, max(1, -(-remaining // w))))
            registry.gauge("exec/chunk_size").set(size)
            head = [r for r, _ in probed]
            return head + self._map_chunked(
                fn, items[probe_n:], probe_n, size, capture, tracer, registry, span
            )
        registry.gauge("exec/chunk_size").set(chunksize)
        return self._map_chunked(
            fn, items, 0, chunksize, capture, tracer, registry, span
        )

    def _map_singly(
        self, fn, items, base, capture, tracer, registry, span
    ) -> list[tuple[Any, int]]:
        """Dispatch one task per item; return ``(result, wall_ns)`` pairs."""
        payloads = [(base + i, fn, item, capture) for i, item in enumerate(items)]
        out = []
        for r in self._pool.map(_run_task, payloads):
            registry.counter("exec/tasks_done").inc()
            registry.counter("exec/task_wall_ns").inc(r["wall_ns"])
            if r["metrics"] is not None:
                registry.merge_snapshot(r["metrics"])
            if r["events"]:
                _replay_events(tracer, r["events"], parent_id=span.span_id)
            out.append((r["result"], r["wall_ns"]))
        return out

    def _map_chunked(
        self, fn, items, base, size, capture, tracer, registry, span
    ) -> list[Any]:
        """Dispatch contiguous *size*-item slices; return flat results."""
        if not len(items):
            return []
        payloads = [
            (base + start, fn, list(items[start : start + size]), capture)
            for start in range(0, len(items), size)
        ]
        results: list[Any] = []
        for r in self._pool.map(_run_task_chunk, payloads):
            registry.counter("exec/chunks_dispatched").inc()
            registry.counter("exec/tasks_done").inc(r["count"])
            registry.counter("exec/task_wall_ns").inc(r["wall_ns"])
            if r["metrics"] is not None:
                registry.merge_snapshot(r["metrics"])
            if r["events"]:
                _replay_events(tracer, r["events"], parent_id=span.span_id)
            results.extend(r["results"])
        return results

    def _absorb(self, raw: dict[str, Any], tracer: Any, span: Any) -> CellResult:
        """Fold one worker result into parent telemetry; build its CellResult."""
        if raw["metrics"] is not None:
            default_registry().merge_snapshot(raw["metrics"])
        if raw["events"]:
            _replay_events(tracer, raw["events"], parent_id=span.span_id)
        machine = raw["machine"]
        return CellResult(
            index=raw["index"],
            label=raw["label"],
            mis_size=raw["size"],
            num_rounds=raw["num_rounds"],
            depth=int(machine.get("depth", 0)),
            work=int(machine.get("work", 0)),
            wall_ns=raw["wall_ns"],
            independent_set=raw["independent_set"],
            machine=machine,
            meta=raw["meta"],
            rounds=raw["rounds"],
        )

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._pool.closed

    def close(self) -> None:
        """Close the owned pool (borrowed pools stay open). Idempotent."""
        if self._owns_pool:
            self._pool.close()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"ParallelRunner(workers={self.workers}, {state})"


def _check_picklable(cells: Sequence[Cell]) -> None:
    """Fail fast, with the function named, instead of deep in the pool."""
    seen: set[int] = set()
    for cell in cells:
        if id(cell.fn) in seen:
            continue
        seen.add(id(cell.fn))
        try:
            pickle.dumps(cell.fn)
        except Exception as exc:
            raise TypeError(
                f"cell function {cell.fn!r} is not picklable (define it at "
                f"module level; lambdas and closures cannot cross process "
                f"boundaries): {exc}"
            ) from exc


def _replay_events(
    tracer: Any, events: list[dict[str, Any]], *, parent_id: int | None
) -> None:
    """Splice a worker's event stream into the parent tracer's sink.

    Worker span ids start at 1 per cell; a block of ids is reserved on the
    parent tracer and every id/parent shifted into it, keeping the merged
    stream collision-free.  Root spans of the cell are re-parented under
    the parent's ``exec/run_cells`` span so the offline tree keeps its
    shape.
    """
    max_id = max(
        (e.get("id", 0) for e in events if e.get("type") == "span"), default=0
    )
    base = tracer.reserve_ids(max_id)
    for event in events:
        event = dict(event)
        if event.get("type") == "span":
            event["id"] = event["id"] + base
            if "parent" in event:
                event["parent"] = event["parent"] + base
            elif parent_id is not None:
                event["parent"] = parent_id
        tracer.sink.emit(event)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _capture_config(tracer: Any) -> dict[str, Any] | None:
    """Telemetry-capture config shipped to workers (``None`` = no capture).

    A dict rather than a bool so attribution options (today: per-span
    allocation tracking) cross the process boundary with the payload.
    """
    if not tracer.enabled:
        return None
    return {"track_memory": bool(getattr(tracer, "track_memory", False))}


def _worker_tracer(capture: dict[str, Any] | None, registry: Any) -> tuple[Any, Any]:
    """Build the per-worker (sink, tracer) pair for one cell/task."""
    if capture is None:
        return None, NULL_TRACER
    sink = MemorySink()
    tracer = Tracer(
        sink, registry=registry, track_memory=capture.get("track_memory", False)
    )
    return sink, tracer


def _run_cell(payload: tuple[int, Cell, Any, Any]) -> dict[str, Any]:
    """Execute one cell in a worker process.

    Runs under an isolated metrics registry and (when the parent captures
    telemetry) a private memory-sink tracer — never the tracer/registry
    inherited across ``fork``, which may hold the parent's open file
    descriptors.  Returns a plain dict so the payload pickles without
    importing result classes in a particular order.
    """
    index, cell, instance, capture = payload
    with isolated_registry() as registry:
        H = shm.attach(instance) if isinstance(instance, InstanceHandle) else instance
        sink, tracer = _worker_tracer(capture, registry)
        machine = CountingMachine()
        try:
            with use_tracer(tracer):  # type: ignore[arg-type]
                t0 = time.perf_counter_ns()
                with tracer.span(
                    "exec/cell", machine=machine, index=index, label=cell.label
                ):
                    res = cell.fn(H, cell.seed, machine=machine, **cell.options)
                wall_ns = time.perf_counter_ns() - t0
        finally:
            if sink is not None:
                tracer.close()  # release GC hook / owned tracemalloc
        if cell.verify:
            res.verify(H)
        machine_summary = (
            dict(res.machine)
            if res.machine is not None
            else {
                "depth": machine.depth,
                "work": machine.work,
                "max_processors": machine.max_processors,
            }
        )
        return {
            "index": index,
            "label": cell.label,
            "size": res.size,
            "num_rounds": res.num_rounds,
            "independent_set": res.independent_set,
            "machine": machine_summary,
            "meta": res.meta,
            "rounds": res.rounds if cell.keep_rounds else None,
            "wall_ns": wall_ns,
            "metrics": registry.snapshot(),
            "events": sink.events if sink is not None else [],
        }


def _run_task(payload: tuple[int, Callable[[Any], Any], Any, Any]) -> dict[str, Any]:
    """Execute one generic task in a worker process.

    Same isolation discipline as :func:`_run_cell` — private registry,
    private memory-sink tracer when the parent captures telemetry — but
    the result is whatever the task function returns (it must pickle).
    """
    index, fn, item, capture = payload
    with isolated_registry() as registry:
        sink, tracer = _worker_tracer(capture, registry)
        try:
            with use_tracer(tracer):  # type: ignore[arg-type]
                t0 = time.perf_counter_ns()
                result = fn(item)
                wall_ns = time.perf_counter_ns() - t0
        finally:
            if sink is not None:
                tracer.close()
        return {
            "index": index,
            "result": result,
            "wall_ns": wall_ns,
            "metrics": registry.snapshot(),
            "events": sink.events if sink is not None else [],
        }


def _run_task_chunk(
    payload: tuple[int, Callable[[Any], Any], list[Any], Any],
) -> dict[str, Any]:
    """Execute a contiguous slice of tasks in one worker dispatch.

    One isolated registry and (when capturing) one private tracer cover
    the whole slice; the parent merges/splices them once per chunk, so a
    chunked run yields the same counters and span set as a singly-
    dispatched run — just fewer round-trips.
    """
    start, fn, chunk, capture = payload
    with isolated_registry() as registry:
        sink, tracer = _worker_tracer(capture, registry)
        results = []
        try:
            with use_tracer(tracer):  # type: ignore[arg-type]
                t0 = time.perf_counter_ns()
                for item in chunk:
                    results.append(fn(item))
                wall_ns = time.perf_counter_ns() - t0
        finally:
            if sink is not None:
                tracer.close()
        return {
            "start": start,
            "results": results,
            "count": len(results),
            "wall_ns": wall_ns,
            "metrics": registry.snapshot(),
            "events": sink.events if sink is not None else [],
        }


# ---------------------------------------------------------------------------
# ambient runner
# ---------------------------------------------------------------------------
#: The runner experiment trial loops fall back to (``None`` = run serially).
_current_runner: ParallelRunner | None = None


def current_runner() -> ParallelRunner | None:
    """The ambient runner installed by :func:`use_runner`, if any."""
    return _current_runner


@contextmanager
def use_runner(runner: ParallelRunner | None) -> Iterator[ParallelRunner | None]:
    """Install *runner* as the ambient runner for the block (nestable).

    Trial loops written against :func:`current_runner` transparently go
    parallel inside the block and stay serial outside it — no signature
    changes down the call stack.
    """
    global _current_runner
    previous = _current_runner
    _current_runner = runner
    try:
        yield runner
    finally:
        _current_runner = previous
