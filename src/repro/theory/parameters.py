"""SBL parameter choices (paper §2.2).

The paper fixes, for an n-vertex input:

* ``α = 1 / log⁽³⁾ n``                     (sampling exponent)
* ``p = n^{−α}``                            (per-round sampling probability)
* ``β = log⁽²⁾ n / (8 (log⁽³⁾ n)²)``        (edge-count exponent: m ≤ n^β)
* ``d = log⁽²⁾ n / (4 log⁽³⁾ n)``           (dimension cap for the BL calls)
* ``r = 2 log n / p``                       (w.h.p. round bound)
* vertex floor ``1/p² = n^{2α}``            (while-loop exit threshold)
* runtime bound ``n^{2 / log⁽³⁾ n}``        (Theorem 1)

and proves three failure events small:

* **A** — some round colours fewer than ``p·nᵢ/2`` vertices
  (per-round probability ``≤ e^{−p·nᵢ/8} ≤ e^{−1/(8p)}`` by Chernoff);
* **B** — some sampled sub-hypergraph has an edge of size ``> d``
  (probability ``≤ r·m·p^{d+1}``);
* **C** — some BL invocation exceeds its stage bound.

At laptop-scale n these asymptotic formulas give ``d < 2`` and ``p`` close
to 1 — the regime where the theorem's inequalities only hold "for
sufficiently large n".  :class:`SBLParameters` therefore records both the
**raw** formula values and the **effective** clamped values a practical
implementation must use (``d ≥ 2``, ``p ≤ p_max``); every experiment table
reports both so the asymptotic/practical gap stays visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.itlog import log_base, loglog, logloglog

__all__ = [
    "SBLParameters",
    "sbl_parameters",
    "round_bound",
    "chernoff_round_failure",
    "oversize_edge_bound",
    "runtime_bound_log2",
]


@dataclass(frozen=True)
class SBLParameters:
    """All §2.2 parameters for a given instance size.

    Attributes
    ----------
    n:
        Number of vertices.
    alpha, p, beta, d, r, vertex_floor:
        Raw values of the paper's formulas (floats; ``d`` not rounded).
    m_max:
        ``n^β`` — the largest edge count covered by Theorem 1.
    effective_d:
        ``max(2, ⌊d⌋)`` — the dimension cap an implementation actually
        enforces (a cap below 2 would reject ordinary graphs).
    effective_p:
        ``min(p, p_cap)`` with ``p_cap`` chosen so sampling is a strict
        subset even at small n (default cap 1/2).
    effective_vertex_floor:
        ``max(1/effective_p², floor_min)`` — the implementation exits to
        KUW below this many active vertices.  (Derived from the *effective*
        p: using the raw asymptotic p would put the floor above n itself
        for every feasible n, skipping the sampling loop entirely.)
    """

    n: int
    alpha: float
    p: float
    beta: float
    d: float
    r: float
    vertex_floor: float
    m_max: float
    effective_d: int
    effective_p: float
    effective_vertex_floor: int

    def runtime_bound_log2(self) -> float:
        """``log₂`` of the Theorem 1 bound ``n^{2/log⁽³⁾n}``."""
        return runtime_bound_log2(self.n)


def sbl_parameters(
    n: int,
    *,
    p_cap: float = 0.5,
    d_min: int = 2,
    floor_min: int = 4,
) -> SBLParameters:
    """Evaluate the §2.2 formulas (base-2 logs) for an n-vertex instance.

    Parameters
    ----------
    n:
        Number of vertices; must be at least 2.
    p_cap:
        Upper clamp for the effective sampling probability.
    d_min:
        Lower clamp for the effective dimension cap.
    floor_min:
        Lower clamp for the effective vertex floor.
    """
    if n < 2:
        raise ValueError(f"need n >= 2: {n}")
    log3 = logloglog(n, floor=1.0)
    log2n = loglog(n, floor=1.0)
    logn = log_base(n)
    alpha = 1.0 / log3
    p = n ** (-alpha)
    beta = log2n / (8.0 * log3 * log3)
    d = log2n / (4.0 * log3)
    r = 2.0 * logn / p
    vertex_floor = p ** (-2.0)
    effective_p = min(p, p_cap)
    return SBLParameters(
        n=n,
        alpha=alpha,
        p=p,
        beta=beta,
        d=d,
        r=r,
        vertex_floor=vertex_floor,
        m_max=n**beta,
        effective_d=max(d_min, math.floor(d)),
        effective_p=effective_p,
        effective_vertex_floor=max(floor_min, math.ceil(effective_p ** (-2.0))),
    )


def round_bound(n: int, p: float) -> float:
    """``r = 2 log n / p`` — the smallest r with ``(1−p/2)^r ≤ 1/(p²n)`` up to slack."""
    if not 0 < p <= 1:
        raise ValueError(f"p out of range: {p}")
    return 2.0 * log_base(n) / p


def chernoff_round_failure(p: float, n_i: int) -> float:
    """Per-round probability that fewer than ``p·nᵢ/2`` vertices get sampled.

    Lemma 1 with ``a = p·nᵢ/2``: ``exp(−p·nᵢ/8)``.
    """
    if not 0 < p <= 1:
        raise ValueError(f"p out of range: {p}")
    if n_i < 0:
        raise ValueError(f"negative round size: {n_i}")
    return math.exp(-p * n_i / 8.0)


def oversize_edge_bound(r: float, m: int, p: float, d: int) -> float:
    """Event B bound: ``r·m·p^{d+1}`` — some round fully marks an edge of size > d."""
    if not 0 < p <= 1:
        raise ValueError(f"p out of range: {p}")
    return r * m * p ** (d + 1)


def runtime_bound_log2(n: int) -> float:
    """``log₂`` of Theorem 1's runtime bound ``n^{2/log⁽³⁾n}``."""
    return (2.0 / logloglog(n, floor=1.0)) * log_base(n)
