"""Kelsen's scaling recurrences and stage counts (paper §3.1).

Kelsen's potential analysis hinges on a function ``f`` that scales the
threshold ladder ``v_i(H) = max(Δ_i, (log n)^{f(i)} v_{i+1})``:

* **Original (Kelsen 1992):** ``f(2) = 7``,
  ``f(i) = (i−1)·Σ_{j=2}^{i−1} f(j) + 7``, giving prefix sums
  ``F(1) = 0``, ``F(i) = i·F(i−1) + 7``.
* **Paper's replacement (§3.1):** the additive constant becomes ``d²``:
  ``f(i) = (i−1)·Σ_{j=2}^{i−1} f(j) + d²`` and ``F(i) = i·F(i−1) + d²``.
  This is what makes the claim inequality survive super-constant ``d``.

Derived quantities:

* ``λ(n) = 2 log⁽²⁾n / log n`` — the slack factor,
* ``q_j = 2^{d(d+1)} · log⁽²⁾n · (log n)^{F(j−1)(j−1)+2}`` — stages needed
  to knock ``Δ_j`` down once,
* the stage bound ``(log n)^{(d+4)!}`` of Theorem 2, verified against the
  induction ``F(i) ≤ d²·(i+2)!``.

Values explode quickly (``F`` is super-factorial); everything that can
overflow is also exposed in log₂-space.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.util.itlog import log_base, loglog

__all__ = [
    "f_original",
    "F_original",
    "f_paper",
    "F_paper",
    "lambda_n",
    "q_j",
    "log2_q_j",
    "factorial_bound",
    "log2_stage_bound",
    "F_upper_bound",
    "paper_scaling",
    "original_scaling",
]


@lru_cache(maxsize=None)
def F_original(i: int) -> int:
    """Prefix sum of Kelsen's original f: ``F(1)=0, F(i)=i·F(i−1)+7``."""
    if i < 1:
        raise ValueError(f"F defined for i >= 1: {i}")
    if i == 1:
        return 0
    return i * F_original(i - 1) + 7


def f_original(i: int) -> int:
    """Kelsen's original ``f``: ``f(2)=7``, ``f(i) = (i−1)·F(i−1) + 7``."""
    if i < 2:
        raise ValueError(f"f defined for i >= 2: {i}")
    return F_original(i) - F_original(i - 1)


def F_paper(i: int, d: int) -> int:
    """The paper's prefix sum: ``F(1)=0, F(i)=i·F(i−1)+d²``."""
    if i < 1:
        raise ValueError(f"F defined for i >= 1: {i}")
    if d < 2:
        raise ValueError(f"dimension must be >= 2: {d}")
    val = 0
    for k in range(2, i + 1):
        val = k * val + d * d
    return val


def f_paper(i: int, d: int) -> int:
    """The paper's ``f``: ``f(i) = (i−1)·F(i−1) + d²``."""
    if i < 2:
        raise ValueError(f"f defined for i >= 2: {i}")
    return F_paper(i, d) - F_paper(i - 1, d)


def lambda_n(n: int) -> float:
    """Slack factor ``λ(n) = 2·log⁽²⁾n / log n``."""
    return 2.0 * loglog(n, floor=1.0) / log_base(n)


def q_j(j: int, d: int, n: int, *, variant: str = "paper") -> float:
    """Stage count ``q_j = 2^{d(d+1)} · log⁽²⁾n · (log n)^{F(j−1)·(j−1)+2}``.

    May overflow to ``inf`` for moderate d; use :func:`log2_q_j` for tables.
    """
    return 2.0 ** min(log2_q_j(j, d, n, variant=variant), 1023.0)


def log2_q_j(j: int, d: int, n: int, *, variant: str = "paper") -> float:
    """``log₂ q_j`` — overflow-safe version of :func:`q_j`."""
    if j < 2:
        raise ValueError(f"q_j defined for j >= 2: {j}")
    Fjm1 = _F(j - 1, d, variant)
    logn = log_base(n)
    return (
        d * (d + 1)
        + math.log2(loglog(n, floor=1.0))
        + (Fjm1 * (j - 1) + 2) * math.log2(logn)
    )


def _F(i: int, d: int, variant: str) -> int:
    if variant == "paper":
        return F_paper(i, d)
    if variant == "original":
        return F_original(i)
    raise ValueError(f"unknown recurrence variant: {variant}")


def factorial_bound(d: int) -> int:
    """``(d+4)!`` — the exponent of Theorem 2's stage bound."""
    if d < 0:
        raise ValueError(f"negative dimension: {d}")
    return math.factorial(d + 4)


def log2_stage_bound(n: int, d: int) -> float:
    """``log₂`` of Theorem 2's bound ``(log n)^{(d+4)!}``."""
    return factorial_bound(d) * math.log2(log_base(n))


def F_upper_bound(i: int, d: int) -> int:
    """The induction bound ``d²·(i+2)!`` that closes §3.1 (``F(i) ≤ d²(i+2)!``)."""
    return d * d * math.factorial(i + 2)


def paper_scaling(d: int):
    """Bind the paper's d²-recurrence as ``(f, F)`` callables.

    Convenience for the potential machinery
    (:func:`repro.hypergraph.degrees.kelsen_potentials` takes the scaling
    functions as arguments)::

        f, F = paper_scaling(d=4)
        pots = kelsen_potentials(H, f, F)
    """
    if d < 2:
        raise ValueError(f"dimension must be >= 2: {d}")

    def f(i: int, _d: int = d) -> int:
        return f_paper(i, _d)

    def F(i: int, _d: int = d) -> int:
        return F_paper(i, _d)

    return f, F


def original_scaling():
    """Kelsen's original recurrence as ``(f, F)`` callables."""
    return f_original, F_original
