"""Concentration bounds (paper §3 Theorem 3 and §4).

Three tail bounds for the polynomial ``S(H, w, p) = Σ_e w(e)·C_e`` (the
weighted count of fully-blue edges), all parameterised by the conditional
expectation maxima ``D(H, w, p) = max_x P(H, w, p, x)``:

* **Kelsen (Theorem 3):** ``Pr[S > k(H)·D] < p(H)`` with
  ``k(H) = ((log n + 2)·δ)^{2^{d−1}}`` and
  ``p(H) = (2d⌈log n⌉m)^{d−1} · log n · (4e/δ)^{(δ−1)/4}``.
  With ``δ = log² n`` this yields Corollary 1:
  ``Pr[S > (log n)^{2^{d+1}}·D] < n^{−Θ(log n log log n)}``.
* **Kim–Vu (Corollary 3):** for polynomial degree ``k−j``,
  ``Pr[S > (1 + a_{k−j}·λ^{k−j})·D] ≤ 2e²·e^{−λ}·n^{k−j−1}`` with
  ``a_t = 8^t (t!)^{1/2}``; choosing ``λ = Θ(log² n)`` gives the improved
  migration factor ``(log n)^{2(k−j)}`` of Corollary 4.
* **Schudy–Sviridenko-shaped:** the same λ-power shape with the smaller
  constant ``a_t = (√2·t)^t`` appearing in their moment bound; included
  only to compare *shapes* in experiment E7 (we do not rely on its exact
  constants anywhere).

The migration bounds of Corollaries 2 and 4 — upper bounds on the one-stage
increase of ``d_{j−|X|}(X, H)`` due to higher-dimensional edges shrinking —
are exposed both directly and as per-``k`` log₂ terms for tabulation.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.util.itlog import log_base

__all__ = [
    "kelsen_tail",
    "kelsen_corollary1_exponent",
    "kim_vu_threshold_factor",
    "kim_vu_tail",
    "schudy_sviridenko_threshold_factor",
    "migration_bound",
    "kelsen_migration_log_terms",
    "kimvu_migration_log_terms",
]


def kelsen_tail(n: int, m: int, d: int, delta: float) -> tuple[float, float]:
    """Kelsen Theorem 3: return ``(log₂ k(H), log₂ p(H))``.

    ``S > k(H)·D`` happens with probability below ``p(H)``.  Both values are
    returned in log₂-space; ``k(H)`` in particular overflows floats already
    for ``d ≈ 10`` at ``δ = log² n``.
    """
    if n < 3:
        raise ValueError(f"Theorem 3 requires n >= 3: {n}")
    if d < 1:
        raise ValueError(f"dimension must be >= 1: {d}")
    if delta <= 1:
        raise ValueError(f"delta must exceed 1: {delta}")
    logn = log_base(n)
    log2_k = (2 ** (d - 1)) * (math.log2(logn + 2) + math.log2(delta))
    log2_p = (
        (d - 1) * math.log2(max(2 * d * math.ceil(logn) * max(m, 1), 2))
        + math.log2(logn)
        + ((delta - 1) / 4.0) * math.log2(4 * math.e / delta)
    )
    return log2_k, log2_p


def kelsen_corollary1_exponent(d: int) -> int:
    """Corollary 1's threshold exponent: ``S > (log n)^{2^{d+1}}·D`` is unlikely."""
    if d < 0:
        raise ValueError(f"negative dimension: {d}")
    return 2 ** (d + 1)


def kim_vu_threshold_factor(degree: int, lam: float) -> float:
    """Corollary 3 factor ``1 + a_t·λ^t`` with ``a_t = 8^t·(t!)^{1/2}``, t = degree."""
    if degree < 1:
        raise ValueError(f"polynomial degree must be >= 1: {degree}")
    if lam <= 0:
        raise ValueError(f"lambda must be positive: {lam}")
    a_t = 8.0**degree * math.sqrt(math.factorial(degree))
    return 1.0 + a_t * lam**degree


def kim_vu_tail(n: int, degree: int, lam: float) -> float:
    """Corollary 3 tail ``2e²·e^{−λ}·n^{degree−1}`` (clipped to 1)."""
    if degree < 1:
        raise ValueError(f"polynomial degree must be >= 1: {degree}")
    log_p = math.log(2.0) + 2.0 - lam + (degree - 1) * math.log(n)
    return min(1.0, math.exp(min(log_p, 0.0)) if log_p < 0 else 1.0)


def schudy_sviridenko_threshold_factor(degree: int, lam: float) -> float:
    """Schudy–Sviridenko-shaped factor ``1 + (√2·t)^t·λ^t`` (shape comparison only)."""
    if degree < 1:
        raise ValueError(f"polynomial degree must be >= 1: {degree}")
    if lam <= 0:
        raise ValueError(f"lambda must be positive: {lam}")
    a_t = (math.sqrt(2.0) * degree) ** degree
    return 1.0 + a_t * lam**degree


def _check_deltas(j: int, deltas: Mapping[int, float] | Sequence[float]) -> dict[int, float]:
    if isinstance(deltas, Mapping):
        table = {int(k): float(v) for k, v in deltas.items()}
    else:
        # Sequence indexed from 2: deltas[0] ↦ Δ_2.
        table = {k + 2: float(v) for k, v in enumerate(deltas)}
    for k, v in table.items():
        if v < 0:
            raise ValueError(f"Δ_{k} negative: {v}")
    return {k: v for k, v in table.items() if k > j}


def migration_bound(
    n: int,
    j: int,
    deltas: Mapping[int, float] | Sequence[float],
    *,
    variant: str = "kimvu",
) -> float:
    """One-stage migration upper bound on the increase of ``d_{j−|X|}(X, H)``.

    * ``variant='kelsen'`` — Corollary 2: ``Σ_{k>j} (log n)^{2^{k−j+1}}·Δ_k``.
    * ``variant='kimvu'``  — Corollary 4: ``Σ_{k>j} (log n)^{2(k−j)}·Δ_k``.
    * ``variant='trivial'`` — the naive bound ``Σ_{k>j} Δ_k`` scaled by
      nothing (each size-k edge set could in the worst case migrate down
      entirely; the paper notes Δ_k can be as large as n).

    *deltas* maps edge size ``k`` to ``Δ_k(H)`` (or is a sequence starting
    at ``Δ_2``).
    """
    table = _check_deltas(j, deltas)
    logn = log_base(n)
    total = 0.0
    for k, dk in table.items():
        if variant == "kelsen":
            total += logn ** (2 ** (k - j + 1)) * dk
        elif variant == "kimvu":
            total += logn ** (2 * (k - j)) * dk
        elif variant == "trivial":
            total += dk * float(n)
        else:
            raise ValueError(f"unknown migration variant: {variant}")
    return total


def kelsen_migration_log_terms(
    n: int, j: int, deltas: Mapping[int, float] | Sequence[float]
) -> dict[int, float]:
    """Per-k ``log₂`` of the Corollary 2 terms ``(log n)^{2^{k−j+1}}·Δ_k``."""
    table = _check_deltas(j, deltas)
    logn = log_base(n)
    return {
        k: (2 ** (k - j + 1)) * math.log2(logn) + (math.log2(dk) if dk > 0 else -math.inf)
        for k, dk in table.items()
    }


def kimvu_migration_log_terms(
    n: int, j: int, deltas: Mapping[int, float] | Sequence[float]
) -> dict[int, float]:
    """Per-k ``log₂`` of the Corollary 4 terms ``(log n)^{2(k−j)}·Δ_k``."""
    table = _check_deltas(j, deltas)
    logn = log_base(n)
    return {
        k: 2 * (k - j) * math.log2(logn) + (math.log2(dk) if dk > 0 else -math.inf)
        for k, dk in table.items()
    }
