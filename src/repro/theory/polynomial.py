"""The migration polynomial of §3 — ``S(H′, w′, p)`` and ``D(H′, w′, p)``.

Kelsen's (and the paper's) migration analysis bounds how many size-
``|X|+j`` edges can appear around a set ``X`` when size-``|X|+k`` edges
shrink.  The object it controls is a polynomial in the marking indicators:

* the auxiliary hypergraph ``H′`` has the same vertices as ``H`` and one
  edge for every ``(k−j)``-subset ``Y`` of some ``Z ∈ N_k(X, H)`` — all the
  ways a size-``|X|+k`` edge around ``X`` could lose ``k−j`` vertices,
* the weight ``w′(Y) = |{Z ∈ N_k(X, H) : Y ⊆ Z}|`` counts how many new
  size-``|X|+j`` edges appear around ``X`` if ``Y`` is fully colored blue,
* ``S(H′, w′, p) = Σ_Y w′(Y)·C_Y`` (with ``C_Y = Π_{v∈Y} C_v``) upper
  bounds the migration into ``N_j(X, H)``,
* ``P(H′, w′, p, x) = Σ_{Y ⊇ x} w′(Y)·p^{|Y|−|x|}`` is the conditional
  expectation given ``x`` blue, and ``D = max_x P`` (including ``x = ∅``,
  so ``D ≥ E[S]``).

Lemma 4 (= Lemma 3 in Kelsen) gives ``D(H′, w′, p) ≤ (Δ_{|X|+k}(H))^j``
when ``p ≤ 1/(2^{d+1}Δ(H))``; Theorem 3 / Kim–Vu then bound the upper tail
of ``S`` by multiples of ``D``.  This module constructs all of it exactly
and supports Monte-Carlo sampling of ``S``, which experiment E15 compares
against both tail bounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "WeightedHypergraph",
    "migration_polynomial",
    "partial_expectation",
    "D_value",
    "sample_S",
]


@dataclass(frozen=True)
class WeightedHypergraph:
    """An edge-weighted hypergraph ``(H′, w′)`` over the universe of ``H``.

    Attributes
    ----------
    universe:
        Ground-set size (same as the source hypergraph's).
    weights:
        Mapping from canonical edge tuples to positive weights.
    dimension:
        Maximum edge size (0 when empty).
    """

    universe: int
    weights: Mapping[tuple[int, ...], float]

    @property
    def dimension(self) -> int:
        return max((len(e) for e in self.weights), default=0)

    @property
    def num_edges(self) -> int:
        return len(self.weights)

    def total_weight(self) -> float:
        """``Σ_Y w′(Y)`` — the value of S when everything is marked."""
        return float(sum(self.weights.values()))


def migration_polynomial(
    H: Hypergraph, X: Iterable[int], j: int, k: int
) -> WeightedHypergraph:
    """Construct ``(H′, w′)`` for the migration from ``N_k(X)`` to ``N_j(X)``.

    Parameters
    ----------
    H:
        Source hypergraph.
    X:
        The centre set (non-empty, disjoint from the counted ``Z`` sets).
    j, k:
        Target and source distances with ``1 ≤ j < k ≤ dim(H) − |X|``.

    Returns
    -------
    WeightedHypergraph
        Edges are the ``(k−j)``-subsets ``Y``; ``w′(Y)`` counts the
        ``Z ∈ N_k(X, H)`` containing ``Y``.
    """
    Xs = frozenset(int(v) for v in X)
    if not Xs:
        raise ValueError("X must be non-empty")
    if not 1 <= j < k:
        raise ValueError(f"need 1 <= j < k: j={j}, k={k}")
    target = len(Xs) + k
    weights: dict[tuple[int, ...], float] = {}
    for e in H.edges:
        if len(e) != target or not Xs.issubset(e):
            continue
        Z = tuple(sorted(set(e) - Xs))
        for Y in itertools.combinations(Z, k - j):
            weights[Y] = weights.get(Y, 0.0) + 1.0
    return WeightedHypergraph(universe=H.universe, weights=weights)


def partial_expectation(
    W: WeightedHypergraph, p: float, x: Iterable[int] = ()
) -> float:
    """``P(H′, w′, p, x) = Σ_{Y ⊇ x} w′(Y)·p^{|Y|−|x|}``.

    For ``x = ∅`` this is ``E[S]``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p out of range: {p}")
    xs = frozenset(int(v) for v in x)
    total = 0.0
    for Y, w in W.weights.items():
        if xs.issubset(Y):
            total += w * p ** (len(Y) - len(xs))
    return total


def D_value(W: WeightedHypergraph, p: float) -> float:
    """``D(H′, w′, p) = max_x P(H′, w′, p, x)`` over all ``x`` (incl. ∅).

    Only subsets of actual edges can increase ``P`` beyond the ``x = ∅``
    value's competitors, so the maximisation enumerates edge subsets.
    """
    best = partial_expectation(W, p, ())
    seen: set[frozenset[int]] = set()
    for Y in W.weights:
        for size in range(1, len(Y) + 1):
            for x in itertools.combinations(Y, size):
                key = frozenset(x)
                if key in seen:
                    continue
                seen.add(key)
                best = max(best, partial_expectation(W, p, x))
    return best


def sample_S(
    W: WeightedHypergraph,
    p: float,
    trials: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Monte-Carlo draws of ``S(H′, w′, p)``.

    Each trial marks every vertex independently with probability *p* and
    sums the weights of fully marked edges.  Returns the ``trials`` draws.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p out of range: {p}")
    if trials < 1:
        raise ValueError(f"need at least one trial: {trials}")
    rng = as_generator(seed)
    if not W.weights:
        return np.zeros(trials)
    edges = list(W.weights.items())
    # Only vertices that occur in edges matter.
    support = sorted({v for Y, _ in edges for v in Y})
    index = {v: i for i, v in enumerate(support)}
    edge_idx = [np.array([index[v] for v in Y], dtype=np.intp) for Y, _ in edges]
    w = np.array([wt for _, wt in edges])
    out = np.empty(trials)
    for t in range(trials):
        marked = rng.random(len(support)) < p
        out[t] = float(sum(wt for ei, wt in zip(edge_idx, w) if marked[ei].all()))
    return out
