"""Closed-form theory from the paper.

Everything in this package is pure mathematics — no hypergraphs, no
randomness — encoding the formulas of the paper so that experiments can
compare measured behaviour against predicted bounds:

* :mod:`repro.theory.parameters` — §2.2 parameter choices of the SBL
  algorithm (``α, β, p, d, r``, the vertex floor ``1/p²``, the failure
  bounds of events A/B/C, and the final runtime bound).
* :mod:`repro.theory.recurrences` — Kelsen's scaling recurrences ``f`` /
  ``F`` (both his original constant-``7`` variant and the paper's ``d²``
  replacement), the stage counts ``q_j``, ``λ(n)``, and the
  ``(log n)^{(d+4)!}`` stage bound.
* :mod:`repro.theory.concentration` — tail bounds: Kelsen's Theorem 3,
  the Kim–Vu polynomial bound used in §4, a Schudy–Sviridenko-shaped
  bound, and the two migration upper bounds of Corollaries 2 and 4.
* :mod:`repro.theory.inequalities` — the verification predicates of the
  analysis: Lemma 6, the ``d(d+1) ≤ log⁽²⁾n·(d²−8)`` inequality, the claim
  inequality with either recurrence, and the §4.1 necessity condition
  ``F(j) ≥ F(j−1)·j + 5``.
"""

from repro.theory.parameters import SBLParameters, sbl_parameters
from repro.theory.recurrences import (
    F_original,
    F_paper,
    f_original,
    f_paper,
    factorial_bound,
    lambda_n,
    log2_stage_bound,
    q_j,
)
from repro.theory.concentration import (
    kelsen_migration_log_terms,
    kelsen_tail,
    kim_vu_tail,
    kim_vu_threshold_factor,
    kimvu_migration_log_terms,
    migration_bound,
)
from repro.theory.inequalities import (
    claim_inequality,
    dimension_inequality,
    f_necessity_holds,
    lemma6_exponent,
    lemma6_holds,
    original_f_claim_sides,
)

__all__ = [
    "SBLParameters",
    "sbl_parameters",
    "f_original",
    "f_paper",
    "F_original",
    "F_paper",
    "q_j",
    "lambda_n",
    "factorial_bound",
    "log2_stage_bound",
    "kelsen_tail",
    "kim_vu_tail",
    "kim_vu_threshold_factor",
    "migration_bound",
    "kelsen_migration_log_terms",
    "kimvu_migration_log_terms",
    "lemma6_exponent",
    "lemma6_holds",
    "claim_inequality",
    "dimension_inequality",
    "f_necessity_holds",
    "original_f_claim_sides",
]
