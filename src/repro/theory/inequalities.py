"""Verification predicates for the paper's analysis (§3.1, §4.1).

The core of the paper's §3.1 contribution is making the *claim inequality*

.. math::

    2^{d(d+1)} · Σ_{k>j} (\\log n)^{2^{k−j+1} + 2 − d² + F(j) − F(k−1)}
        ≤ \\frac{2}{\\log n + 2 \\log\\log n}

hold for super-constant ``d``, which fails under Kelsen's original ``F``
(the ``k = j+1`` term has exponent ``−1``, so the left side is
``2^{d(d+1)}/\\log n`` — too big once ``d`` grows) and holds under the
paper's ``d²``-variant via:

* **Lemma 6** — for ``k > j+1``, the exponent is at most ``6 − d²``, so
  the ``k = j+1`` term dominates;
* the reduction to ``d(d+1) ≤ (\\log\\log n)(d² − 8)``, which holds for all
  ``d < log⁽²⁾n / (4·log⁽³⁾n)``  (checked numerically across the paper's
  stated range in the tests and experiment E9).

Section 4.1 shows the improved Kim–Vu migration bound cannot lower the
runtime because any valid ``F`` must satisfy ``F(j) ≥ F(j−1)·j + 5``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.util.itlog import log_base, loglog, logloglog

__all__ = [
    "lemma6_exponent",
    "lemma6_holds",
    "claim_inequality",
    "claim_lhs_log2",
    "claim_rhs_log2",
    "dimension_inequality",
    "dimension_cap",
    "f_necessity_holds",
    "original_f_claim_sides",
]

FFunc = Callable[[int], float]


def lemma6_exponent(k: int, j: int, d: int, F: FFunc) -> float:
    """The exponent of the claim's ``k``-term: ``2^{k−j+1} + 2 + j·F(j−1) − F(k−1)``.

    For the paper's ``d²``-recurrence this equals the form printed in §3.1,
    ``2^{k−j+1} + 2 − d² + F(j) − F(k−1)`` (since ``F(j) = j·F(j−1) + d²``);
    written with ``j·F(j−1)`` it is also correct for Kelsen's original
    recurrence, where the additive constant is 7 instead of ``d²``.
    """
    if k <= j:
        raise ValueError(f"need k > j: k={k}, j={j}")
    if j < 2:
        raise ValueError(f"need j >= 2: {j}")
    return 2 ** (k - j + 1) + 2 + j * F(j - 1) - F(k - 1)


def lemma6_holds(d: int, F: FFunc, *, j_max: int | None = None) -> bool:
    """Lemma 6: for every ``j ≥ 2`` and ``k > j+1`` (k ≤ d), the exponent is
    at most the dominant ``k = j+1`` exponent ``6 − d²`` (paper variant).

    *F* must be the paper's ``d²``-variant for the lemma to hold at this
    threshold; Kelsen's original fails it once d is large.
    """
    top = j_max if j_max is not None else d
    for j in range(2, top + 1):
        for k in range(j + 2, d + 1):
            if lemma6_exponent(k, j, d, F) > 6 - d * d:
                return False
    return True


def claim_lhs_log2(n: float, d: int, j: int, F: FFunc, *, logn: float | None = None) -> float:
    """``log₂`` of the claim's left side ``2^{d(d+1)}·Σ_{k>j} (log n)^{exponent}``.

    Pass ``logn`` (= log₂ n) directly for n too large to represent.
    """
    if j < 2 or j > d:
        raise ValueError(f"need 2 <= j <= d: j={j}, d={d}")
    log2_logn = math.log2(logn if logn is not None else log_base(n))
    terms = []
    for k in range(j + 1, d + 1):
        e = lemma6_exponent(k, j, d, F)
        terms.append(e * log2_logn)
    if not terms:
        return -math.inf
    peak = max(terms)
    s = sum(2.0 ** (t - peak) for t in terms)
    return d * (d + 1) + peak + math.log2(s)


def claim_rhs_log2(n: float, *, logn: float | None = None) -> float:
    """``log₂`` of the claim's right side ``2 / (log n + 2 log⁽²⁾n)``."""
    ln = logn if logn is not None else log_base(n)
    l2 = math.log2(ln) if ln > 1 else 1.0
    return 1.0 - math.log2(ln + 2.0 * max(l2, 1.0))


def claim_inequality(
    n: float, d: int, j: int, F: FFunc, *, logn: float | None = None
) -> tuple[float, float, bool]:
    """Evaluate the claim inequality: returns ``(lhs_log2, rhs_log2, holds)``.

    ``holds`` is true iff the migration-increase claim of §3.1 is satisfied
    for this ``(n, d, j)`` under the scaling function *F*.  Pass ``logn``
    (= log₂ n) to evaluate at n beyond float range.
    """
    lhs = claim_lhs_log2(n, d, j, F, logn=logn)
    rhs = claim_rhs_log2(n, logn=logn)
    return lhs, rhs, lhs <= rhs


def dimension_inequality(n: int, d: int) -> tuple[float, float, bool]:
    """The reduced condition ``d(d+1) ≤ (log⁽²⁾n)·(d² − 8)``.

    Returns ``(lhs, rhs, holds)``.  Only meaningful for ``d ≥ 3`` (for
    ``d ≤ 2`` the right side is non-positive); the paper checks it for
    ``d < log⁽²⁾n/(4 log⁽³⁾n)``, a range in which ``d`` is comfortably
    above 3 once n is astronomically large.
    """
    lhs = float(d * (d + 1))
    rhs = loglog(n, floor=1.0) * (d * d - 8.0)
    return lhs, rhs, lhs <= rhs


def dimension_cap(n: int) -> float:
    """The paper's dimension cap ``log⁽²⁾n / (4·log⁽³⁾n)`` (Theorem 2)."""
    return loglog(n, floor=1.0) / (4.0 * logloglog(n, floor=1.0))


def f_necessity_holds(F: FFunc, j: int) -> bool:
    """§4.1 necessity: a valid scaling must satisfy ``F(j) ≥ F(j−1)·j + 5``."""
    if j < 2:
        raise ValueError(f"need j >= 2: {j}")
    return F(j) >= F(j - 1) * j + 5


def original_f_claim_sides(
    n: float, d: int, *, logn: float | None = None
) -> tuple[float, float, bool]:
    """The paper's counterexample to Kelsen's original F at super-constant d.

    With the original recurrence the ``k = j+1`` exponent equals ``−1``, so
    the claim reduces to ``2^{d(d+1)} ≤ 2·log n/(log n + 2 log⁽²⁾n)``.
    Returns ``(lhs, rhs, holds)`` — ``holds`` is false whenever
    ``d(d+1) > 1``, i.e. for every ``d ≥ 1``.
    """
    lhs = 2.0 ** min(d * (d + 1), 1023)
    ln = logn if logn is not None else log_base(n)
    l2 = max(math.log2(ln), 1.0) if ln > 1 else 1.0
    rhs = 2.0 * ln / (ln + 2.0 * l2)
    return lhs, rhs, lhs <= rhs
