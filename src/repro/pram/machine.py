"""PRAM cost accounting.

An algorithm announces each bulk-parallel step it performs; the machine
translates the step into (depth, work, processors) under a chosen PRAM
variant and accumulates totals.  The EREW costs are the textbook ones:

=============  =================  ============  =========================
step           depth              work          note
=============  =================  ============  =========================
``map(n)``     1                  n             independent per-item ops
``reduce(n)``  ⌈log₂ n⌉           n − 1         binary tree
``scan(n)``    2⌈log₂ n⌉          2n            Blelloch up+down sweep
``broadcast``  ⌈log₂ n⌉           n − 1         EREW copy-doubling
``sort(n)``    ⌈log₂ n⌉²          n⌈log₂ n⌉²/2  Batcher bitonic network
=============  =================  ============  =========================

On a CREW machine a broadcast is free (depth 1, concurrent reads allowed);
the :class:`CostModel` enum selects the variant so experiments can quantify
the EREW penalty.

Processor counts: each step records the processors it would use if executed
in the stated depth; by Brent's theorem, running on ``P`` processors instead
takes ``work/P + depth`` steps, which :meth:`CountingMachine.brent_time`
evaluates.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.util.itlog import log2_ceil

__all__ = ["CostModel", "PhaseCost", "Machine", "NullMachine", "CountingMachine"]


class CostModel(enum.Enum):
    """PRAM variant; affects the cost of concurrent-read-shaped steps."""

    EREW = "erew"
    CREW = "crew"


@dataclass
class PhaseCost:
    """Accumulated (depth, work, max processors) for one named phase."""

    depth: int = 0
    work: int = 0
    processors: int = 0
    steps: int = 0

    def add(self, depth: int, work: int, processors: int) -> None:
        self.depth += depth
        self.work += work
        self.processors = max(self.processors, processors)
        self.steps += 1


class Machine:
    """Interface for PRAM cost accounting.

    Subclasses implement :meth:`charge`; the step helpers translate the
    canonical primitives into charges.  All helpers accept ``n == 0``
    (no-op) so callers need no guards for empty rounds.
    """

    model: CostModel = CostModel.EREW

    # -- the single extension point ------------------------------------
    def charge(self, depth: int, work: int, processors: int) -> None:
        """Record one bulk step of the given cost."""
        raise NotImplementedError

    # -- canonical steps -------------------------------------------------
    def map(self, n: int, *, op_depth: int = 1) -> None:
        """n independent constant-time per-item operations."""
        if n > 0:
            self.charge(op_depth, n * op_depth, n)

    def reduce(self, n: int) -> None:
        """Associative reduction over n items (binary tree)."""
        if n > 1:
            self.charge(log2_ceil(n), n - 1, (n + 1) // 2)
        elif n == 1:
            self.charge(1, 1, 1)

    def scan(self, n: int) -> None:
        """Parallel prefix (Blelloch two-sweep)."""
        if n > 1:
            self.charge(2 * log2_ceil(n), 2 * n, n)
        elif n == 1:
            self.charge(1, 1, 1)

    def broadcast(self, n: int) -> None:
        """One value made readable by n processors.

        Costs ⌈log₂ n⌉ depth on EREW (copy doubling) but depth 1 on CREW.
        """
        if n <= 0:
            return
        if self.model is CostModel.CREW:
            self.charge(1, n, n)
        else:
            self.charge(log2_ceil(max(n, 1)) or 1, max(n - 1, 1), (n + 1) // 2)

    def sort(self, n: int) -> None:
        """Batcher bitonic sort over n keys."""
        if n > 1:
            lg = log2_ceil(n)
            self.charge(lg * lg, (n * lg * lg) // 2, n)
        elif n == 1:
            self.charge(1, 1, 1)

    def compact(self, n: int) -> None:
        """Stream compaction = scan + scatter map."""
        self.scan(n)
        self.map(n)

    def sync(self) -> None:
        """A global synchronisation barrier (depth 1, no work)."""
        self.charge(1, 0, 1)


class NullMachine(Machine):
    """Zero-overhead machine: all charges are dropped.

    Use when only the algorithmic result is needed.
    """

    def charge(self, depth: int, work: int, processors: int) -> None:  # noqa: D102
        pass


class CountingMachine(Machine):
    """Accumulates depth / work / processors, with optional named phases.

    Parameters
    ----------
    model:
        :class:`CostModel` variant (default EREW, as in the paper).

    Examples
    --------
    >>> mach = CountingMachine()
    >>> mach.map(8); mach.reduce(8)
    >>> mach.depth, mach.work
    (4, 15)
    """

    def __init__(self, model: CostModel = CostModel.EREW):
        self.model = model
        self.depth = 0
        self.work = 0
        self.max_processors = 0
        self.phases: dict[str, PhaseCost] = {}
        self._phase_stack: list[str] = []

    def charge(self, depth: int, work: int, processors: int) -> None:  # noqa: D102
        if depth < 0 or work < 0 or processors < 0:
            raise ValueError("costs must be non-negative")
        self.depth += depth
        self.work += work
        self.max_processors = max(self.max_processors, processors)
        for name in self._phase_stack:
            self.phases.setdefault(name, PhaseCost()).add(depth, work, processors)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to *name* (nestable)."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def brent_time(self, processors: int) -> float:
        """Simulated time on *processors* CPUs by Brent's theorem: W/P + D."""
        if processors < 1:
            raise ValueError(f"need at least one processor: {processors}")
        return self.work / processors + self.depth

    def snapshot(self) -> dict[str, int]:
        """Totals as a plain dict (stable keys, for traces/tables)."""
        return {
            "depth": self.depth,
            "work": self.work,
            "max_processors": self.max_processors,
        }

    def __repr__(self) -> str:
        return (
            f"CountingMachine(model={self.model.value}, depth={self.depth}, "
            f"work={self.work}, max_processors={self.max_processors})"
        )
