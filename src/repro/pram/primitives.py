"""Data-parallel primitives that compute *and* charge the cost model.

Each primitive performs the computation with vectorised NumPy (the honest
sequential execution) while charging a :class:`~repro.pram.machine.Machine`
what the same step costs on a PRAM.  Algorithms built from these primitives
therefore produce correct results *and* faithful depth/work ledgers without
duplicating logic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.pram.machine import Machine

__all__ = ["pmap", "preduce", "inclusive_scan", "exclusive_scan", "broadcast", "compact"]


def pmap(
    machine: Machine,
    fn: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    *,
    op_depth: int = 1,
) -> np.ndarray:
    """Elementwise map: apply vectorised *fn*, charge depth ``op_depth``.

    *fn* must be a vectorised function of the whole array (e.g. a ufunc
    expression); it is called once.
    """
    machine.map(int(x.size), op_depth=op_depth)
    return fn(x)


def preduce(
    machine: Machine,
    x: np.ndarray,
    op: str = "sum",
) -> np.generic:
    """Tree reduction.  *op* ∈ {'sum', 'max', 'min', 'any', 'all'}."""
    machine.reduce(int(x.size))
    if op == "sum":
        return x.sum()
    if op == "max":
        return x.max()
    if op == "min":
        return x.min()
    if op == "any":
        return x.any()
    if op == "all":
        return x.all()
    raise ValueError(f"unknown reduction op: {op}")


def inclusive_scan(machine: Machine, x: np.ndarray) -> np.ndarray:
    """Inclusive parallel prefix sum."""
    machine.scan(int(x.size))
    return np.cumsum(x)


def exclusive_scan(machine: Machine, x: np.ndarray) -> np.ndarray:
    """Exclusive parallel prefix sum (first element 0)."""
    machine.scan(int(x.size))
    out = np.zeros_like(x)
    if x.size > 1:
        np.cumsum(x[:-1], out=out[1:])
    return out


def broadcast(machine: Machine, value, n: int) -> np.ndarray:
    """Replicate *value* for n processors (EREW copy-doubling cost)."""
    machine.broadcast(n)
    return np.full(n, value)


def compact(machine: Machine, x: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Stream compaction: the elements of *x* where *keep* is true, in order.

    Charged as scan + scatter, the standard PRAM implementation.
    """
    if x.shape != keep.shape:
        raise ValueError("x and keep must be aligned")
    machine.compact(int(x.size))
    return x[keep]
