"""One full Beame–Luby round as a certified EREW program.

The cost model charges a BL round O(log) depth; this module *executes*
the round's data-parallel core — mark resolution — on the step-level
simulator, which rejects any concurrent access.  A green run is therefore
a constructive proof that the round really is EREW-implementable at
logarithmic depth, including the two places a naive implementation would
do concurrent reads/writes:

* gathering ``marked[v]`` for every incidence slot of ``v``
  (``deg(v)`` concurrent reads) — resolved by a **segmented broadcast**
  over the vertex-sorted incidence layout;
* unmarking a vertex that lies in several fully marked edges
  (concurrent writes) — resolved by a **segmented OR-combine** back in
  the same layout.

Layout
------
Let ``T`` be the incidence size ``Σ|e|``.  Two padded layouts of the
incidence slots are fixed up front (host-side, like compiling the
program):

* **vertex-major**: slots grouped by vertex, each group padded to
  ``S_v`` = next power of two ≥ max degree;
* **edge-major**: slots grouped by edge, each group padded to
  ``S_e`` = next power of two ≥ dimension.

A fixed bijection carries real slots between the layouts; pad slots read
a sentinel.  The program then runs:

1. seed vertex-major heads with ``marked[v]`` (exclusive: one head per v),
2. segmented broadcast (depth ``log S_v``),
3. permute to edge-major (one exclusive step),
4. segmented AND-combine per edge (depth ``log S_e``) → ``fully[j]``,
5. segmented broadcast of ``fully`` per edge (depth ``log S_e``),
6. permute votes back to vertex-major (one step),
7. segmented OR-combine per vertex (depth ``log S_v``) → ``unmark[v]``,
8. survivors: ``marked[v] ← marked[v] ∧ ¬unmark[v]`` (one step).

Total depth ``2·log S_v + 2·log S_e + O(1)`` — the logarithmic round core
the analysis assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.pram.programs import segmented_broadcast, segmented_combine
from repro.pram.simulator import EREWSimulator, Instruction

__all__ = ["BLRoundProgram", "run_bl_round_program"]


def _pow2_at_least(x: int) -> int:
    return 1 << max(x - 1, 0).bit_length() if x > 1 else 1


@dataclass
class BLRoundProgram:
    """Compiled layouts for running BL mark-resolution on one hypergraph.

    Attributes
    ----------
    H:
        The (fixed) hypergraph.
    seg_v, seg_e:
        Padded segment sizes of the vertex-major / edge-major layouts.
    steps:
        Total simulator steps of the last run.
    """

    H: Hypergraph
    seg_v: int = 0
    seg_e: int = 0
    steps: int = 0

    def __post_init__(self) -> None:
        H = self.H
        self.vertex_ids = H.vertices.tolist()
        self.vpos = {v: i for i, v in enumerate(self.vertex_ids)}
        edges = H.edges
        self.num_vertices = len(self.vertex_ids)
        self.num_edges = len(edges)
        degs = [0] * self.num_vertices
        for e in edges:
            for v in e:
                degs[self.vpos[v]] += 1
        self.seg_v = _pow2_at_least(max(degs, default=1) or 1)
        self.seg_e = _pow2_at_least(max((len(e) for e in edges), default=1))
        # Slot tables: vertex-major position ↔ edge-major position for
        # every real incidence slot.
        self.vm_total = self.seg_v * self.num_vertices
        self.em_total = self.seg_e * max(self.num_edges, 1)
        fill = [0] * self.num_vertices
        self.vm_to_em: dict[int, int] = {}
        self.em_to_vm: dict[int, int] = {}
        self.em_vertex: dict[int, int] = {}  # edge-major slot -> vertex index
        for j, e in enumerate(edges):
            for o, v in enumerate(e):
                vi = self.vpos[v]
                vm = vi * self.seg_v + fill[vi]
                fill[vi] += 1
                em = j * self.seg_e + o
                self.vm_to_em[vm] = em
                self.em_to_vm[em] = vm
                self.em_vertex[em] = vi

    def run(self, sim: EREWSimulator, marked: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Execute mark resolution for *marked* (bool over the universe).

        Returns ``(fully, survivors)``: per-edge fully-marked flags and the
        per-universe survivor mask (marked minus unmarked).  Raises
        :class:`~repro.pram.simulator.AccessViolation` if any step were
        non-exclusive — which is the point of running it here.
        """
        H = self.H
        steps = 0
        # Shared arrays.  vm/em carry mark bits in the two layouts;
        # pads hold the AND-identity 1 (em) / OR-identity 0 (vm).
        sim.alloc("marked", [1.0 if marked[v] else 0.0 for v in self.vertex_ids])
        sim.alloc("vm", self.vm_total)
        sim.alloc("em", [1.0] * self.em_total)
        sim.alloc("fully", max(self.num_edges, 1))
        sim.alloc("unmark", self.num_vertices)
        sim.alloc("survivor", self.num_vertices)

        # (1) seed vertex-major heads: vm[vi·S_v] = marked[vi]  (exclusive).
        sim.step(
            Instruction(
                "vm",
                lambda p: p * self.seg_v if p < self.num_vertices else None,
                "marked",
                lambda p: p,
                label="seed heads",
            )
        )
        steps += 1
        # (2) broadcast within vertex segments.
        steps += segmented_broadcast(sim, "vm", self.seg_v, self.num_vertices)
        # (3) permute to edge-major (real slots only; pads stay 1).
        sim.step(
            Instruction(
                "em",
                lambda p: self.vm_to_em.get(p),
                "vm",
                lambda p: p,
                label="permute vm→em",
            )
        )
        steps += 1
        # (4) AND-fold per edge (min on 0/1 values).
        steps += segmented_combine(sim, "em", self.seg_e, self.num_edges, op=min)
        sim.step(
            Instruction(
                "fully",
                lambda p: p if p < self.num_edges else None,
                "em",
                lambda p: p * self.seg_e,
                label="collect fully",
            )
        )
        steps += 1
        # (5) re-broadcast fully across each edge segment (reuse em).
        sim.step(
            Instruction(
                "em",
                lambda p: p * self.seg_e if p < self.num_edges else None,
                "fully",
                lambda p: p,
                label="seed edge heads",
            )
        )
        steps += 1
        steps += segmented_broadcast(sim, "em", self.seg_e, self.num_edges)
        # (6) permute votes back to vertex-major (pads → 0 = OR identity).
        sim.step(
            Instruction(
                "vm",
                lambda p: p if p < self.vm_total else None,
                "vm",
                lambda p: p,
                op=lambda a, b: 0.0,
                label="clear vm",
            )
        )
        steps += 1
        sim.step(
            Instruction(
                "vm",
                lambda p: self.em_to_vm.get(p),
                "em",
                lambda p: p,
                label="permute em→vm",
            )
        )
        steps += 1
        # (7) OR-fold per vertex (max on 0/1), collect unmark flags.
        steps += segmented_combine(sim, "vm", self.seg_v, self.num_vertices, op=max)
        sim.step(
            Instruction(
                "unmark",
                lambda p: p if p < self.num_vertices else None,
                "vm",
                lambda p: p * self.seg_v,
                label="collect unmark",
            )
        )
        steps += 1
        # (8) survivors = marked ∧ ¬unmark.
        sim.step(
            Instruction(
                "survivor",
                lambda p: p if p < self.num_vertices else None,
                "marked",
                lambda p: p,
                "unmark",
                lambda p: p,
                op=lambda a, b: a * (1.0 - b),
                label="survivors",
            )
        )
        steps += 1
        self.steps = steps

        fully = sim.memory("fully")[: self.num_edges] > 0.5
        survivors = np.zeros(H.universe, dtype=bool)
        surv_vals = sim.memory("survivor")
        for i, v in enumerate(self.vertex_ids):
            survivors[v] = surv_vals[i] > 0.5
        return fully, survivors


def run_bl_round_program(
    H: Hypergraph, marked: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Convenience wrapper: compile, run, return ``(fully, survivors, steps)``.

    The simulator is sized to the largest layout so every step has enough
    processors.
    """
    prog = BLRoundProgram(H)
    processors = max(prog.vm_total, prog.em_total, prog.num_vertices, 1)
    sim = EREWSimulator(processors)
    fully, survivors = prog.run(sim, marked)
    return fully, survivors, prog.steps
