"""A step-level EREW PRAM virtual machine.

The :mod:`repro.pram.machine` accountant *charges* canonical costs; this
module goes further and actually **executes** synchronous PRAM programs,
enforcing the EREW contract: in any one step, no shared-memory cell may be
read by more than one processor, written by more than one processor, or
read and written simultaneously.  Violations raise
:class:`AccessViolation` with the offending step, cell and processors —
which is how the tests *prove* that our log-depth broadcast/reduction/scan
programs are genuinely exclusive-read exclusive-write, rather than taking
the textbook costs on faith.

Model
-----
* Shared memory: named arrays of machine words (Python ints/floats).
* A program is a sequence of *steps*; in each step every **active**
  processor executes the same :class:`Instruction` (SIMD style) with its
  own processor id ``p`` available for addressing.
* Addresses are computed by pure Python callables ``p -> index`` supplied
  per instruction; a ``None`` address deactivates the processor for that
  step (processors are "switched off", the standard PRAM convention).
* Time = number of steps; work = total instructions executed by active
  processors.

This is a teaching-grade interpreter (every step is a Python loop), used
to validate the cost model and to host the reference PRAM programs in
:mod:`repro.pram.programs` — not a performance path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "AccessViolation",
    "Instruction",
    "EREWSimulator",
]

Address = Callable[[int], "int | None"]
BinOp = Callable[[float, float], float]


class AccessViolation(RuntimeError):
    """Concurrent access to one cell within a single EREW step.

    Attributes
    ----------
    step:
        0-based step index at which the violation occurred.
    kind:
        ``"read"``, ``"write"`` or ``"read/write"``.
    cell:
        ``(array_name, index)`` of the contested cell.
    processors:
        The processor ids involved.
    """

    def __init__(self, step: int, kind: str, cell: tuple[str, int], processors: Sequence[int]):
        self.step = step
        self.kind = kind
        self.cell = cell
        self.processors = list(processors)
        super().__init__(
            f"EREW violation at step {step}: {kind} of {cell[0]}[{cell[1]}] "
            f"by processors {self.processors}"
        )


@dataclass(frozen=True)
class Instruction:
    """One SIMD step: every active processor computes
    ``dst[dst_addr(p)] = op(src_a[a_addr(p)], src_b[b_addr(p)])``.

    * ``src_b``/``b_addr`` may be ``None`` for unary moves (``op`` then
      receives the single operand and ``0.0``).
    * Any address callable returning ``None`` deactivates that processor.
    * ``op`` defaults to "first operand" (a move).
    """

    dst: str
    dst_addr: Address
    src_a: str
    a_addr: Address
    src_b: str | None = None
    b_addr: Address | None = None
    op: BinOp = field(default=lambda a, b: a)
    label: str = ""


class EREWSimulator:
    """Execute programs step by step under the EREW access discipline.

    Parameters
    ----------
    processors:
        Number of processors ``0 … P−1``.

    Examples
    --------
    >>> sim = EREWSimulator(4)
    >>> sim.alloc("x", [1, 2, 3, 4]); sim.alloc("y", 4)
    >>> from repro.pram.programs import tree_reduce
    >>> steps = tree_reduce(sim, "x", 4)
    >>> float(sim.memory("x")[0])
    10.0
    """

    def __init__(self, processors: int):
        if processors < 1:
            raise ValueError(f"need at least one processor: {processors}")
        self.processors = processors
        self._mem: dict[str, np.ndarray] = {}
        self.steps_executed = 0
        self.work_executed = 0

    # -- memory management -------------------------------------------------
    def alloc(self, name: str, size_or_values) -> None:
        """Allocate a shared array, optionally initialised."""
        if name in self._mem:
            raise ValueError(f"array {name!r} already allocated")
        if isinstance(size_or_values, int):
            self._mem[name] = np.zeros(size_or_values, dtype=float)
        else:
            self._mem[name] = np.asarray(list(size_or_values), dtype=float)

    def memory(self, name: str) -> np.ndarray:
        """Read an array's current contents (a live view)."""
        try:
            return self._mem[name]
        except KeyError:
            raise KeyError(f"no such array: {name!r}") from None

    # -- execution -----------------------------------------------------------
    def step(self, instr: Instruction) -> None:
        """Execute one synchronous step, checking the EREW contract."""
        reads: dict[tuple[str, int], list[int]] = {}
        writes: dict[tuple[str, int], list[int]] = {}
        plan: list[tuple[int, int, float]] = []  # (processor, dst index, value)
        dst_arr = self.memory(instr.dst)
        a_arr = self.memory(instr.src_a)
        b_arr = self.memory(instr.src_b) if instr.src_b is not None else None

        active = 0
        for p in range(self.processors):
            d = instr.dst_addr(p)
            if d is None:
                continue
            a = instr.a_addr(p)
            if a is None:
                continue
            b = instr.b_addr(p) if instr.b_addr is not None else None
            if instr.src_b is not None and b is None:
                continue
            active += 1
            if not 0 <= d < dst_arr.size:
                raise IndexError(f"processor {p}: dst index {d} out of range")
            if not 0 <= a < a_arr.size:
                raise IndexError(f"processor {p}: src index {a} out of range")
            reads.setdefault((instr.src_a, a), []).append(p)
            if b is not None and b_arr is not None:
                if not 0 <= b < b_arr.size:
                    raise IndexError(f"processor {p}: src index {b} out of range")
                reads.setdefault((instr.src_b, b), []).append(p)
                val = instr.op(float(a_arr[a]), float(b_arr[b]))
            else:
                val = instr.op(float(a_arr[a]), 0.0)
            writes.setdefault((instr.dst, d), []).append(p)
            plan.append((p, d, val))

        for cell, ps in reads.items():
            if len(ps) > 1:
                raise AccessViolation(self.steps_executed, "read", cell, ps)
        for cell, ps in writes.items():
            if len(ps) > 1:
                raise AccessViolation(self.steps_executed, "write", cell, ps)
        for cell, ps in writes.items():
            if cell in reads:
                # A processor may read and write its own cell within a step
                # (register semantics); only *distinct* processors touching
                # the same cell violate exclusivity.
                involved = set(reads[cell]) | set(ps)
                if len(involved) > 1:
                    raise AccessViolation(
                        self.steps_executed, "read/write", cell, sorted(involved)
                    )

        # Synchronous semantics: all reads happened above, commit writes now.
        for _, d, val in plan:
            dst_arr[d] = val
        self.steps_executed += 1
        self.work_executed += active

    def run(self, program: Sequence[Instruction]) -> int:
        """Execute a whole program; returns the number of steps run."""
        for instr in program:
            self.step(instr)
        return len(program)
